//! # matlang
//!
//! A from-scratch Rust implementation of the matrix query languages studied
//! in *"Expressive power of linear algebra query languages"* (Geerts, Muñoz,
//! Riveros, Vrgoč, PODS 2021): MATLANG, for-MATLANG and the fragments
//! sum-MATLANG, FO-MATLANG and prod-MATLANG, together with every formalism
//! the paper relates them to — arithmetic circuits, the positive relational
//! algebra on K-relations and weighted first-order logic.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`semiring`] — annotation domains `K` (ℝ, ℕ, 𝔹, ℤ, tropical semirings).
//! * [`matrix`] — dense, CSR-sparse and adaptive `K`-matrices behind the
//!   common `MatrixStorage` interface.
//! * [`core`] — the expression AST, schemas, typing, fragments and the
//!   evaluator.
//! * [`engine`] — the query planner (CSE, loop-invariant hoisting,
//!   cost-based representation choice) and the parallel memoizing
//!   executor, including batched evaluation of many queries over one
//!   instance.
//! * [`server`] — a concurrent query service over a line-delimited TCP
//!   protocol: named instances, prepared queries with a persistent memo
//!   cache, and incremental `UPDATE`s that invalidate exactly the
//!   dependent plan nodes.
//! * [`algorithms`] — the paper's worked algorithms (order predicates,
//!   4-clique, transitive closure, LU/PLU, Csanky determinant & inverse) and
//!   their numeric baselines.
//! * [`circuits`] — arithmetic circuits and the for-MATLANG ↔ circuit
//!   translations of Section 5.
//! * [`ra`] — K-relations, RA⁺_K and the sum-MATLANG ↔ RA⁺_K translations of
//!   Section 6.1.
//! * [`wl`] — weighted structures, weighted logics and the FO-MATLANG ↔ WL
//!   translations of Section 6.2.
//! * [`parser`] — a textual surface syntax.
//!
//! ## Quickstart
//!
//! ```
//! use matlang::prelude::*;
//!
//! // The trace of a matrix as a sum-MATLANG expression: Σv. vᵀ·A·v.
//! let trace = Expr::sum("v", "n", Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")));
//!
//! // Type check it against a schema with one square matrix variable.
//! let schema = Schema::new().with_var("A", MatrixType::square("n"));
//! assert_eq!(typecheck(&trace, &schema).unwrap(), MatrixType::scalar());
//! assert_eq!(fragment_of(&trace), Fragment::SumMatlang);
//!
//! // Evaluate it over a concrete instance.
//! let a: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 5.0], &[7.0, 2.0]]).unwrap();
//! let instance = Instance::new().with_dim("n", 2).with_matrix("A", a);
//! let result = evaluate(&trace, &instance, &FunctionRegistry::standard_field()).unwrap();
//! assert_eq!(result.as_scalar().unwrap(), Real(3.0));
//! ```

pub use matlang_algorithms as algorithms;
pub use matlang_circuits as circuits;
pub use matlang_core as core;
pub use matlang_engine as engine;
pub use matlang_matrix as matrix;
pub use matlang_obs as obs;
pub use matlang_parser as parser;
pub use matlang_ra as ra;
pub use matlang_semiring as semiring;
pub use matlang_server as server;
pub use matlang_wl as wl;

/// Commonly used items, re-exported for `use matlang::prelude::*`.
pub mod prelude {
    pub use matlang_core::{
        evaluate, evaluate_with_env, fragment_of, typecheck, Dim, EvalError, Expr, Fragment,
        FunctionRegistry, Instance, MatrixType, Schema, SparseInstance, TypeError,
    };
    pub use matlang_engine::{Engine, ExecStats, Plan, PlanReport, Planner};
    pub use matlang_matrix::{
        configured_threads, random_adjacency, random_invertible, random_matrix, random_vector,
        sparse_erdos_renyi, sparse_power_law, Matrix, MatrixRepr, MatrixStorage,
        RandomMatrixConfig, SparseMatrix, WorkerPool,
    };
    pub use matlang_semiring::{
        ApproxEq, Boolean, Field, IntRing, MaxPlus, MinPlus, Nat, OrderedField, Real, Ring,
        Semiring,
    };
    pub use matlang_server::{
        Client, ClientError, DeltaWire, ErrorCode, SemiringKind, Server, ServerConfig, ServerError,
        ServerHello, Store, StoreConfig, UpdateReply,
    };
}
