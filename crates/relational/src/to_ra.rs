//! `Φ : sum-MATLANG → RA⁺_K` (Proposition 6.3).
//!
//! The translation is by induction on the expression.  A sub-expression `e`
//! with free iterator variables `v₁ … v_k` (variables bound by enclosing `Σ`
//! quantifiers) of type `(α, β)` is mapped to an `RA⁺_K` expression whose
//! signature is `{row_α, col_β} ∪ {it_{v₁}, …, it_{v_k}}` and whose
//! annotation at `(i, j, i₁, …, i_k)` equals
//! `⟦e⟧(I[v₁ ← b_{i₁}, …, v_k ← b_{i_k}])_{i,j}` — exactly the inductive
//! invariant of the paper's Appendix E.1.

use crate::encode::{col_attr, domain_attr, domain_relation, matrix_var_relation, row_attr};
use crate::expr::RaExpr;
use matlang_core::{typecheck, Dim, Expr, MatrixType, Schema, TypeError};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised by the sum-MATLANG → RA⁺_K translation.
#[derive(Debug, Clone, PartialEq)]
pub enum ToRaError {
    /// The expression uses an operator outside sum-MATLANG
    /// (`for`, `Π∘`, `Π` or the Hadamard product).
    NotSumMatlang {
        /// The offending operator.
        operator: &'static str,
    },
    /// The expression uses a pointwise function other than the multiplicative
    /// `mul`, which has no RA⁺_K counterpart.
    UnsupportedFunction {
        /// The function name.
        name: String,
    },
    /// Literal constants other than in `mul` position cannot be expressed in
    /// RA⁺_K (which has no constant relations).
    UnsupportedConstant,
    /// The expression does not type check.
    Type(TypeError),
}

impl fmt::Display for ToRaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToRaError::NotSumMatlang { operator } => {
                write!(f, "operator {operator} is outside sum-MATLANG")
            }
            ToRaError::UnsupportedFunction { name } => {
                write!(f, "pointwise function `{name}` has no RA+_K counterpart")
            }
            ToRaError::UnsupportedConstant => {
                write!(f, "literal constants have no RA+_K counterpart")
            }
            ToRaError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for ToRaError {}

impl From<TypeError> for ToRaError {
    fn from(e: TypeError) -> Self {
        ToRaError::Type(e)
    }
}

/// The attribute carrying the value of the iterator variable `v` in the
/// translation (the `γ_v` attribute of Appendix E.1).
pub fn iterator_attr(var: &str) -> String {
    format!("it_{var}")
}

struct Translator {
    /// Iterator variables currently in scope, with the size symbol of their
    /// canonical-vector dimension.
    bound: BTreeMap<String, String>,
    /// Fresh-name counter for intermediate join attributes.
    counter: usize,
}

struct Translated {
    expr: RaExpr,
    /// Iterator variables whose `it_*` attribute occurs in the signature.
    iterators: BTreeSet<String>,
    ty: MatrixType,
}

impl Translator {
    fn fresh_attr(&mut self, sym: &str) -> String {
        self.counter += 1;
        format!("mid{}_{}", self.counter, sym)
    }

    /// The translation of the expression "the canonical vector bound to `v`":
    /// all pairs `(row, it_v)` with equal components, annotated `1`.
    fn iterator_vector(&self, var: &str, sym: &str) -> RaExpr {
        let dom = domain_attr(sym);
        let row = row_attr(sym);
        let it = iterator_attr(var);
        let rows = RaExpr::rel(domain_relation(sym)).rename(&[(dom.as_str(), row.as_str())]);
        let iters = RaExpr::rel(domain_relation(sym)).rename(&[(dom.as_str(), it.as_str())]);
        rows.join(iters).select(&[row.as_str(), it.as_str()])
    }

    /// Pads `q` with the `it_v` attribute for every iterator in `missing`
    /// (joining with the corresponding domain relation), so that signatures
    /// line up for union / projection.
    fn pad(&self, q: RaExpr, missing: &BTreeSet<String>) -> RaExpr {
        let mut out = q;
        for var in missing {
            let sym = self.bound.get(var).expect("padded iterators are in scope");
            let dom = domain_attr(sym);
            let it = iterator_attr(var);
            out =
                out.join(RaExpr::rel(domain_relation(sym)).rename(&[(dom.as_str(), it.as_str())]));
        }
        out
    }

    /// The full list of output attributes for a translated sub-expression.
    fn signature(&self, ty: &MatrixType, iterators: &BTreeSet<String>) -> Vec<String> {
        let mut attrs = Vec::new();
        if let Dim::Sym(s) = &ty.rows {
            attrs.push(row_attr(s));
        }
        if let Dim::Sym(s) = &ty.cols {
            attrs.push(col_attr(s));
        }
        attrs.extend(iterators.iter().map(|v| iterator_attr(v)));
        attrs
    }

    fn translate(&mut self, expr: &Expr, schema: &Schema) -> Result<Translated, ToRaError> {
        match expr {
            Expr::Var(name) => {
                let ty = typecheck(expr, schema)?;
                if let Some(sym) = self.bound.get(name).cloned() {
                    Ok(Translated {
                        expr: self.iterator_vector(name, &sym),
                        iterators: BTreeSet::from([name.clone()]),
                        ty,
                    })
                } else {
                    Ok(Translated {
                        expr: RaExpr::rel(matrix_var_relation(name)),
                        iterators: BTreeSet::new(),
                        ty,
                    })
                }
            }
            Expr::Const(_) => Err(ToRaError::UnsupportedConstant),
            Expr::Transpose(inner) => {
                let t = self.translate(inner, schema)?;
                let ty = t.ty.transposed();
                let mut mapping: Vec<(String, String)> = Vec::new();
                if let Dim::Sym(s) = &t.ty.rows {
                    mapping.push((row_attr(s), col_attr(s)));
                }
                if let Dim::Sym(s) = &t.ty.cols {
                    mapping.push((col_attr(s), row_attr(s)));
                }
                let expr = if mapping.is_empty() {
                    t.expr
                } else {
                    let mapping_refs: Vec<(&str, &str)> = mapping
                        .iter()
                        .map(|(a, b)| (a.as_str(), b.as_str()))
                        .collect();
                    t.expr.rename(&mapping_refs)
                };
                Ok(Translated {
                    expr,
                    iterators: t.iterators,
                    ty,
                })
            }
            Expr::Ones(inner) => {
                // The result only depends on the row symbol of the argument.
                let inner_ty = self.typecheck_in_scope(inner, schema)?;
                let ty = MatrixType::new(inner_ty.rows.clone(), Dim::One);
                match &inner_ty.rows {
                    Dim::Sym(s) => {
                        let dom = domain_attr(s);
                        let row = row_attr(s);
                        Ok(Translated {
                            expr: RaExpr::rel(domain_relation(s))
                                .rename(&[(dom.as_str(), row.as_str())]),
                            iterators: BTreeSet::new(),
                            ty,
                        })
                    }
                    // 1(e) for a 1×… argument is the 1×1 all-ones matrix; RA⁺_K
                    // has no constant relations, so reuse the argument when it
                    // is already closed and scalar… there is no such case in
                    // sum-MATLANG practice, reject for clarity.
                    Dim::One => Err(ToRaError::UnsupportedConstant),
                }
            }
            Expr::Diag(inner) => {
                let t = self.translate(inner, schema)?;
                let ty = MatrixType::new(t.ty.rows.clone(), t.ty.rows.clone());
                let Dim::Sym(s) = &t.ty.rows else {
                    return Err(ToRaError::UnsupportedConstant);
                };
                let dom = domain_attr(s);
                let col = col_attr(s);
                let row = row_attr(s);
                let columns =
                    RaExpr::rel(domain_relation(s)).rename(&[(dom.as_str(), col.as_str())]);
                let expr = t.expr.join(columns).select(&[row.as_str(), col.as_str()]);
                Ok(Translated {
                    expr,
                    iterators: t.iterators,
                    ty,
                })
            }
            Expr::Add(a, b) => {
                let ta = self.translate(a, schema)?;
                let tb = self.translate(b, schema)?;
                let all: BTreeSet<String> = ta.iterators.union(&tb.iterators).cloned().collect();
                let missing_a: BTreeSet<String> = all.difference(&ta.iterators).cloned().collect();
                let missing_b: BTreeSet<String> = all.difference(&tb.iterators).cloned().collect();
                let left = self.pad(ta.expr, &missing_a);
                let right = self.pad(tb.expr, &missing_b);
                Ok(Translated {
                    expr: left.union(right),
                    iterators: all,
                    ty: ta.ty,
                })
            }
            Expr::ScalarMul(a, b) | Expr::Hadamard(a, b) => {
                let ta = self.translate(a, schema)?;
                let tb = self.translate(b, schema)?;
                let iterators: BTreeSet<String> =
                    ta.iterators.union(&tb.iterators).cloned().collect();
                Ok(Translated {
                    expr: ta.expr.join(tb.expr),
                    iterators,
                    ty: tb.ty,
                })
            }
            Expr::Apply(name, args) => {
                if name != "mul" {
                    return Err(ToRaError::UnsupportedFunction { name: name.clone() });
                }
                let mut translated = Vec::with_capacity(args.len());
                for arg in args {
                    translated.push(self.translate(arg, schema)?);
                }
                let ty = translated
                    .first()
                    .map(|t| t.ty.clone())
                    .ok_or(ToRaError::UnsupportedFunction { name: name.clone() })?;
                let mut iterators = BTreeSet::new();
                let mut expr: Option<RaExpr> = None;
                for t in translated {
                    iterators.extend(t.iterators);
                    expr = Some(match expr {
                        None => t.expr,
                        Some(prev) => prev.join(t.expr),
                    });
                }
                Ok(Translated {
                    expr: expr.expect("at least one argument"),
                    iterators,
                    ty,
                })
            }
            Expr::MatMul(a, b) => {
                let ta = self.translate(a, schema)?;
                let tb = self.translate(b, schema)?;
                let iterators: BTreeSet<String> =
                    ta.iterators.union(&tb.iterators).cloned().collect();
                let result_ty = MatrixType::new(ta.ty.rows.clone(), tb.ty.cols.clone());
                match &ta.ty.cols {
                    Dim::One => Ok(Translated {
                        expr: ta.expr.join(tb.expr),
                        iterators,
                        ty: result_ty,
                    }),
                    Dim::Sym(inner_sym) => {
                        let mid = self.fresh_attr(inner_sym);
                        let left_col = col_attr(inner_sym);
                        let right_row = row_attr(inner_sym);
                        let left = ta.expr.rename(&[(left_col.as_str(), mid.as_str())]);
                        let right = tb.expr.rename(&[(right_row.as_str(), mid.as_str())]);
                        let keep = self.signature(&result_ty, &iterators);
                        let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
                        Ok(Translated {
                            expr: left.join(right).project(&keep_refs),
                            iterators,
                            ty: result_ty,
                        })
                    }
                }
            }
            Expr::Let { var, value, body } => {
                // `let` is substitution sugar (footnote 1); inline it.
                let inlined = body.substitute(var, value);
                self.translate(&inlined, schema)
            }
            Expr::Sum { var, var_dim, body } => {
                let previous = self.bound.insert(var.clone(), var_dim.clone());
                let mut extended = schema.clone();
                extended.declare(
                    var.clone(),
                    MatrixType::new(Dim::sym(var_dim.clone()), Dim::One),
                );
                let result = self.translate(body, &extended);
                let translated = match result {
                    Ok(t) => t,
                    Err(e) => {
                        restore(&mut self.bound, var, previous);
                        return Err(e);
                    }
                };
                // Ensure the iterator attribute is present (so that summing
                // over it multiplies by the domain size when the body does not
                // mention the variable), then project it away.
                let mut with_it = translated.iterators.clone();
                let padded = if with_it.insert(var.clone()) {
                    self.pad(translated.expr, &BTreeSet::from([var.clone()]))
                } else {
                    translated.expr
                };
                restore(&mut self.bound, var, previous);
                let mut remaining = translated.iterators;
                remaining.remove(var);
                let keep = self.signature(&translated.ty, &remaining);
                let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
                Ok(Translated {
                    expr: padded.project(&keep_refs),
                    iterators: remaining,
                    ty: translated.ty,
                })
            }
            Expr::HProd { .. } => Err(ToRaError::NotSumMatlang { operator: "Π∘" }),
            Expr::MProd { .. } => Err(ToRaError::NotSumMatlang { operator: "Π" }),
            Expr::For { .. } => Err(ToRaError::NotSumMatlang { operator: "for" }),
        }
    }

    fn typecheck_in_scope(&self, expr: &Expr, schema: &Schema) -> Result<MatrixType, ToRaError> {
        let mut extended = schema.clone();
        for (var, sym) in &self.bound {
            extended.declare(
                var.clone(),
                MatrixType::new(Dim::sym(sym.clone()), Dim::One),
            );
        }
        Ok(typecheck(expr, &extended)?)
    }
}

fn restore(bound: &mut BTreeMap<String, String>, var: &str, previous: Option<String>) {
    match previous {
        Some(sym) => {
            bound.insert(var.to_string(), sym);
        }
        None => {
            bound.remove(var);
        }
    }
}

/// Proposition 6.3 — translates a *closed* sum-MATLANG expression over
/// `schema` into an equivalent `RA⁺_K` expression over the relational schema
/// `Rel(schema)` (see [`crate::encode::encode_instance`]).
pub fn matlang_to_ra(expr: &Expr, schema: &Schema) -> Result<RaExpr, ToRaError> {
    let mut translator = Translator {
        bound: BTreeMap::new(),
        counter: 0,
    };
    Ok(translator.translate(expr, schema)?.expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_instance;
    use matlang_core::{evaluate, FunctionRegistry, Instance};
    use matlang_matrix::{random_matrix, RandomMatrixConfig};
    use matlang_semiring::Nat;

    fn schema() -> Schema {
        Schema::new()
            .with_var("A", MatrixType::square("n"))
            .with_var("B", MatrixType::square("n"))
            .with_var("u", MatrixType::vector("n"))
    }

    fn random_instance(n: usize, seed: u64) -> Instance<Nat> {
        let cfg = |s| RandomMatrixConfig {
            seed: s,
            min_value: 0.0,
            max_value: 4.0,
            integer_entries: true,
            zero_probability: 0.3,
        };
        Instance::new()
            .with_dim("n", n)
            .with_matrix("A", random_matrix(n, n, &cfg(seed)))
            .with_matrix("B", random_matrix(n, n, &cfg(seed + 1)))
            .with_matrix("u", random_matrix(n, 1, &cfg(seed + 2)))
    }

    /// Checks the Proposition 6.3 invariant: the RA⁺_K translation evaluated
    /// over Rel(I) agrees entry-wise with the MATLANG evaluation over I.
    fn assert_equivalent(expr: &Expr, n: usize, seed: u64) {
        let schema = schema();
        let instance = random_instance(n, seed);
        let matrix = evaluate(
            expr,
            &instance,
            &FunctionRegistry::<Nat>::new().with_semiring_ops(),
        )
        .unwrap();
        let db = encode_instance(&schema, &instance).unwrap();
        let ra = matlang_to_ra(expr, &schema).unwrap();
        let relation = ra.evaluate(&db).unwrap();

        let ty = typecheck(expr, &schema).unwrap();
        for i in 0..matrix.rows() {
            for j in 0..matrix.cols() {
                let mut tuple: Vec<(String, u64)> = Vec::new();
                if let Dim::Sym(s) = &ty.rows {
                    tuple.push((row_attr(s), (i + 1) as u64));
                }
                if let Dim::Sym(s) = &ty.cols {
                    tuple.push((col_attr(s), (j + 1) as u64));
                }
                let tuple_refs: Vec<(&str, u64)> =
                    tuple.iter().map(|(a, v)| (a.as_str(), *v)).collect();
                let annotation = relation.annotation(&tuple_refs);
                assert_eq!(
                    &annotation,
                    matrix.get(i, j).unwrap(),
                    "mismatch at ({i},{j}) for {expr} with n={n}, seed={seed}"
                );
            }
        }
    }

    #[test]
    fn base_variables_and_transpose() {
        for n in [1, 3] {
            assert_equivalent(&Expr::var("A"), n, 1);
            assert_equivalent(&Expr::var("A").t(), n, 2);
            assert_equivalent(&Expr::var("u"), n, 3);
            assert_equivalent(&Expr::var("u").t(), n, 4);
        }
    }

    #[test]
    fn addition_and_hadamard() {
        for n in [2, 4] {
            assert_equivalent(&Expr::var("A").add(Expr::var("B")), n, 5);
            assert_equivalent(&Expr::var("A").had(Expr::var("B")), n, 6);
            assert_equivalent(&Expr::var("A").add(Expr::var("B").t()), n, 7);
        }
    }

    #[test]
    fn matrix_products() {
        for n in [2, 3] {
            assert_equivalent(&Expr::var("A").mm(Expr::var("B")), n, 8);
            assert_equivalent(&Expr::var("A").mm(Expr::var("u")), n, 9);
            assert_equivalent(
                &Expr::var("u").t().mm(Expr::var("A")).mm(Expr::var("u")),
                n,
                10,
            );
            assert_equivalent(&Expr::var("u").mm(Expr::var("u").t()), n, 11);
        }
    }

    #[test]
    fn ones_and_diag() {
        for n in [2, 3] {
            assert_equivalent(&Expr::var("A").ones(), n, 12);
            assert_equivalent(&Expr::var("u").diag(), n, 13);
            assert_equivalent(&Expr::var("A").ones().diag(), n, 14);
        }
    }

    #[test]
    fn sum_quantifiers() {
        for n in [2, 3] {
            // Trace.
            assert_equivalent(
                &Expr::sum(
                    "v",
                    "n",
                    Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
                ),
                n,
                15,
            );
            // Identity matrix.
            assert_equivalent(
                &Expr::sum("v", "n", Expr::var("v").mm(Expr::var("v").t())),
                n,
                16,
            );
            // Σ over a variable the body ignores: multiplies by n.
            assert_equivalent(&Expr::sum("v", "n", Expr::var("A")), n, 17);
            // Nested sums building a matrix from entries.
            assert_equivalent(
                &Expr::sum(
                    "v",
                    "n",
                    Expr::sum(
                        "w",
                        "n",
                        Expr::var("v")
                            .t()
                            .mm(Expr::var("A"))
                            .mm(Expr::var("w"))
                            .smul(Expr::var("v").mm(Expr::var("w").t())),
                    ),
                ),
                n,
                18,
            );
        }
    }

    #[test]
    fn let_bindings_are_inlined() {
        assert_equivalent(
            &Expr::let_in(
                "T",
                Expr::var("A").mm(Expr::var("B")),
                Expr::var("T").add(Expr::var("T")),
            ),
            3,
            19,
        );
    }

    #[test]
    fn rejects_constructs_outside_sum_matlang() {
        let schema = schema();
        assert!(matches!(
            matlang_to_ra(&Expr::lit(1.0), &schema),
            Err(ToRaError::UnsupportedConstant)
        ));
        assert!(matches!(
            matlang_to_ra(&Expr::hprod("v", "n", Expr::var("A")), &schema),
            Err(ToRaError::NotSumMatlang { .. })
        ));
        assert!(matches!(
            matlang_to_ra(&Expr::mprod("v", "n", Expr::var("A")), &schema),
            Err(ToRaError::NotSumMatlang { .. })
        ));
        assert!(matches!(
            matlang_to_ra(
                &Expr::for_loop("v", "n", "X", MatrixType::square("n"), Expr::var("X")),
                &schema
            ),
            Err(ToRaError::NotSumMatlang { .. })
        ));
        assert!(matches!(
            matlang_to_ra(
                &Expr::apply("div", vec![Expr::var("A"), Expr::var("B")]),
                &schema
            ),
            Err(ToRaError::UnsupportedFunction { .. })
        ));
        assert!(matches!(
            matlang_to_ra(&Expr::var("missing"), &schema),
            Err(ToRaError::Type(_))
        ));
    }

    #[test]
    fn mul_function_translates_to_joins() {
        assert_equivalent(
            &Expr::apply("mul", vec![Expr::var("A"), Expr::var("B"), Expr::var("A")]),
            3,
            20,
        );
    }

    #[test]
    fn errors_display() {
        assert!(!ToRaError::NotSumMatlang { operator: "for" }
            .to_string()
            .is_empty());
        assert!(!ToRaError::UnsupportedFunction { name: "f".into() }
            .to_string()
            .is_empty());
        assert!(!ToRaError::UnsupportedConstant.to_string().is_empty());
    }
}
