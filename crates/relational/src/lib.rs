//! K-relations, the positive relational algebra `RA⁺_K` and its equivalence
//! with sum-MATLANG (Section 6.1 of the paper).
//!
//! * [`kr`] — semiring-annotated relations (`K`-relations) with the
//!   operations union, projection, selection, renaming and natural join of
//!   Green–Karvounarakis–Tannen provenance semirings.
//! * [`expr`] — the `RA⁺_K` expression syntax and its evaluation over a
//!   `K`-database.
//! * [`encode`] — the schema/instance encodings `Rel(S)` / `Rel(I)` (matrices
//!   to relations) and `Mat(R)` / `Mat(J)` (binary relations to matrices).
//! * [`to_ra`] — the translation `Φ : sum-MATLANG → RA⁺_K` of
//!   Proposition 6.3.
//! * [`from_ra`] — the translation `Ψ : RA⁺_K → sum-MATLANG` of
//!   Proposition 6.4.
//!
//! Together the two translations and their round-trip tests realize
//! Corollary 6.5: sum-MATLANG and `RA⁺_K` over binary schemas are equally
//! expressive.

pub mod encode;
pub mod expr;
pub mod from_ra;
pub mod kr;
pub mod to_ra;

pub use encode::{
    decode_matrix_instance, encode_instance, matrix_var_relation, ACTIVE_DOMAIN_PREFIX,
};
pub use expr::{Database, RaError, RaExpr};
pub use from_ra::{ra_to_matlang, RaSchema};
pub use kr::Relation;
pub use to_ra::{matlang_to_ra, ToRaError};
