//! `Ψ : RA⁺_K → sum-MATLANG` (Proposition 6.4).
//!
//! For a *binary* relational schema (every base relation has arity ≤ 2) an
//! `RA⁺_K` expression `Q` with output attributes `A₁ < ⋯ < A_k` (k ≤ 2) is
//! translated into a sum-MATLANG expression over the matrix encoding
//! `Mat(J)` of the database (see [`crate::encode::decode_matrix_instance`]).
//!
//! Internally every attribute `A` of an intermediate result corresponds to a
//! vector variable `v_A` iterating over canonical vectors; the scalar kernel
//! `e_Q(v_{A₁}, …, v_{A_k})` satisfies the invariant
//! `⟦e_Q⟧(Mat(J)[v_{A_s} ← b_{i_s}]) = ⟦Q⟧(t)` with `t(A_s) = d_{i_s}`
//! (Appendix E.2), and the public entry point wraps it with `Σ` quantifiers
//! to produce the output matrix / vector / scalar.

use crate::encode::relation_matrix_var;
use crate::expr::{Database, RaError, RaExpr};
use matlang_core::Expr;
use matlang_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// The arities of the base relations, needed to translate leaves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaSchema {
    arities: BTreeMap<String, Vec<String>>,
}

impl RaSchema {
    /// An empty schema.
    pub fn new() -> RaSchema {
        RaSchema::default()
    }

    /// Declares a base relation with its attributes.
    pub fn with_relation(
        mut self,
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> RaSchema {
        let mut attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        attrs.sort();
        attrs.dedup();
        self.arities.insert(name.into(), attrs);
        self
    }

    /// Reads the schema off a concrete database.
    pub fn from_database<K: Semiring>(db: &Database<K>) -> RaSchema {
        let mut schema = RaSchema::new();
        for (name, rel) in db {
            schema.arities.insert(name.clone(), rel.attrs().to_vec());
        }
        schema
    }

    /// The sorted attributes of a base relation.
    pub fn attrs(&self, name: &str) -> Option<&[String]> {
        self.arities.get(name).map(Vec::as_slice)
    }
}

/// Errors raised by the RA⁺_K → sum-MATLANG translation.
#[derive(Debug, Clone, PartialEq)]
pub enum FromRaError {
    /// A base relation is not declared in the schema.
    UnknownRelation {
        /// The missing name.
        name: String,
    },
    /// A base relation has arity greater than two (the translation requires a
    /// binary schema; intermediate results may still have any arity).
    NotBinary {
        /// The offending relation.
        name: String,
        /// Its arity.
        arity: usize,
    },
    /// The expression is malformed (attribute mismatch, bad rename, …).
    Malformed {
        /// Description.
        message: String,
    },
}

impl fmt::Display for FromRaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromRaError::UnknownRelation { name } => write!(f, "unknown base relation `{name}`"),
            FromRaError::NotBinary { name, arity } => {
                write!(f, "base relation `{name}` has arity {arity} > 2")
            }
            FromRaError::Malformed { message } => write!(f, "malformed RA expression: {message}"),
        }
    }
}

impl std::error::Error for FromRaError {}

impl From<RaError> for FromRaError {
    fn from(e: RaError) -> Self {
        FromRaError::Malformed {
            message: e.to_string(),
        }
    }
}

/// The vector variable associated with an attribute.
pub fn attr_variable(attr: &str) -> String {
    format!("v_{attr}")
}

/// Translates an RA⁺_K expression into the scalar kernel
/// `e_Q(v_{A₁}, …, v_{A_k})` together with the sorted list of output
/// attributes.
fn translate(q: &RaExpr, schema: &RaSchema, dim: &str) -> Result<(Expr, Vec<String>), FromRaError> {
    match q {
        RaExpr::Rel(name) => {
            let attrs = schema
                .attrs(name)
                .ok_or_else(|| FromRaError::UnknownRelation { name: name.clone() })?;
            let var = relation_matrix_var(name);
            let expr = match attrs.len() {
                0 => Expr::var(var),
                1 => Expr::var(var).t().mm(Expr::var(attr_variable(&attrs[0]))),
                2 => Expr::var(attr_variable(&attrs[0]))
                    .t()
                    .mm(Expr::var(var))
                    .mm(Expr::var(attr_variable(&attrs[1]))),
                arity => {
                    return Err(FromRaError::NotBinary {
                        name: name.clone(),
                        arity,
                    })
                }
            };
            Ok((expr, attrs.to_vec()))
        }
        RaExpr::Union(a, b) => {
            let (ea, sa) = translate(a, schema, dim)?;
            let (eb, sb) = translate(b, schema, dim)?;
            if sa != sb {
                return Err(FromRaError::Malformed {
                    message: format!("union of signatures {sa:?} and {sb:?}"),
                });
            }
            Ok((ea.add(eb), sa))
        }
        RaExpr::Project(attrs, inner) => {
            let (e, sig) = translate(inner, schema, dim)?;
            let mut keep: Vec<String> = attrs.clone();
            keep.sort();
            keep.dedup();
            for a in &keep {
                if !sig.contains(a) {
                    return Err(FromRaError::Malformed {
                        message: format!("projection attribute {a} not in {sig:?}"),
                    });
                }
            }
            let removed: Vec<String> = sig.iter().filter(|a| !keep.contains(a)).cloned().collect();
            let mut expr = e;
            for attr in removed {
                expr = Expr::sum(attr_variable(&attr), dim, expr);
            }
            Ok((expr, keep))
        }
        RaExpr::Select(attrs, inner) => {
            let (e, sig) = translate(inner, schema, dim)?;
            for a in attrs {
                if !sig.contains(a) {
                    return Err(FromRaError::Malformed {
                        message: format!("selection attribute {a} not in {sig:?}"),
                    });
                }
            }
            let mut expr = e;
            for pair in attrs.windows(2) {
                let eq = Expr::var(attr_variable(&pair[0]))
                    .t()
                    .mm(Expr::var(attr_variable(&pair[1])));
                expr = expr.mm(eq);
            }
            Ok((expr, sig))
        }
        RaExpr::Rename(mapping, inner) => {
            let (e, sig) = translate(inner, schema, dim)?;
            // Simultaneous renaming via temporaries (so swaps work).
            let mut expr = e;
            for (old, _) in mapping {
                if !sig.contains(old) {
                    return Err(FromRaError::Malformed {
                        message: format!("renamed attribute {old} not in {sig:?}"),
                    });
                }
                expr = expr.substitute(&attr_variable(old), &Expr::var(format!("__tmp_{old}")));
            }
            for (old, new) in mapping {
                expr = expr.substitute(&format!("__tmp_{old}"), &Expr::var(attr_variable(new)));
            }
            let mut new_sig: Vec<String> = sig
                .iter()
                .map(|a| {
                    mapping
                        .iter()
                        .find(|(old, _)| old == a)
                        .map(|(_, new)| new.clone())
                        .unwrap_or_else(|| a.clone())
                })
                .collect();
            new_sig.sort();
            new_sig.dedup();
            if new_sig.len() != sig.len() {
                return Err(FromRaError::Malformed {
                    message: "renaming collapses attributes".to_string(),
                });
            }
            Ok((expr, new_sig))
        }
        RaExpr::Join(a, b) => {
            let (ea, sa) = translate(a, schema, dim)?;
            let (eb, sb) = translate(b, schema, dim)?;
            let mut sig = sa;
            for attr in sb {
                if !sig.contains(&attr) {
                    sig.push(attr);
                }
            }
            sig.sort();
            Ok((ea.mm(eb), sig))
        }
    }
}

/// Proposition 6.4 — translates an `RA⁺_K` expression over a binary schema
/// into a sum-MATLANG expression over the matrix encoding `Mat(J)`:
///
/// * output arity 2 → a square-matrix expression `Σv₁ Σv₂. e_Q × v₁·v₂ᵀ`,
/// * output arity 1 → a vector expression `Σv. e_Q × v`,
/// * output arity 0 → the scalar kernel itself.
///
/// `dim` is the size symbol used for the active-domain dimension.
pub fn ra_to_matlang(q: &RaExpr, schema: &RaSchema, dim: &str) -> Result<Expr, FromRaError> {
    let (kernel, sig) = translate(q, schema, dim)?;
    let expr = match sig.len() {
        0 => kernel,
        1 => {
            let v = attr_variable(&sig[0]);
            Expr::sum(&v, dim, kernel.smul(Expr::var(&v)))
        }
        2 => {
            let v1 = attr_variable(&sig[0]);
            let v2 = attr_variable(&sig[1]);
            Expr::sum(
                &v1,
                dim,
                Expr::sum(&v2, dim, kernel.smul(Expr::var(&v1).mm(Expr::var(&v2).t()))),
            )
        }
        arity => {
            return Err(FromRaError::Malformed {
                message: format!("output arity {arity} > 2 cannot be encoded as a matrix"),
            })
        }
    };
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode_matrix_instance;
    use crate::kr::Relation;
    use matlang_core::{evaluate, fragment_of, Fragment, FunctionRegistry};
    use matlang_semiring::Nat;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random binary database with one edge relation and one label relation.
    fn random_db(seed: u64, domain: u64) -> Database<Nat> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Relation<Nat> = Relation::new(["src", "dst"]);
        for _ in 0..(domain * 2) {
            let s = rng.gen_range(1..=domain);
            let d = rng.gen_range(1..=domain);
            edges
                .insert(&[("src", s), ("dst", d)], Nat(rng.gen_range(1..4)))
                .unwrap();
        }
        let mut labels: Relation<Nat> = Relation::new(["node"]);
        for v in 1..=domain {
            if rng.gen_bool(0.6) {
                labels
                    .insert(&[("node", v)], Nat(rng.gen_range(1..3)))
                    .unwrap();
            }
        }
        let mut db = Database::new();
        db.insert("E".to_string(), edges);
        db.insert("L".to_string(), labels);
        db
    }

    /// Checks the Proposition 6.4 invariant on every output tuple.
    fn assert_equivalent(q: &RaExpr, seed: u64) {
        let db = random_db(seed, 5);
        let schema = RaSchema::from_database(&db);
        let direct = q.evaluate(&db).unwrap();
        let sig = q.signature(&db).unwrap();

        let (instance, adom) = decode_matrix_instance(&db, "n").unwrap();
        let expr = ra_to_matlang(q, &schema, "n").unwrap();
        let registry = FunctionRegistry::<Nat>::new().with_semiring_ops();
        let matrix = evaluate(&expr, &instance, &registry).unwrap();

        match sig.len() {
            0 => {
                assert_eq!(
                    matrix.as_scalar().unwrap(),
                    direct.annotation(&[]),
                    "scalar mismatch"
                );
            }
            1 => {
                for (idx, &d) in adom.iter().enumerate() {
                    let expected = direct.annotation(&[(sig[0].as_str(), d)]);
                    assert_eq!(
                        matrix.get(idx, 0).unwrap(),
                        &expected,
                        "vector mismatch at {d}"
                    );
                }
            }
            2 => {
                for (i, &di) in adom.iter().enumerate() {
                    for (j, &dj) in adom.iter().enumerate() {
                        let expected =
                            direct.annotation(&[(sig[0].as_str(), di), (sig[1].as_str(), dj)]);
                        assert_eq!(
                            matrix.get(i, j).unwrap(),
                            &expected,
                            "matrix mismatch at ({di},{dj}) for seed {seed}"
                        );
                    }
                }
            }
            _ => unreachable!("test queries are at most binary"),
        }
    }

    #[test]
    fn base_relations_roundtrip() {
        for seed in 0..3 {
            assert_equivalent(&RaExpr::rel("E"), seed);
            assert_equivalent(&RaExpr::rel("L"), seed);
        }
    }

    #[test]
    fn union_projection_selection() {
        for seed in 0..3 {
            assert_equivalent(&RaExpr::rel("E").union(RaExpr::rel("E")), seed);
            assert_equivalent(&RaExpr::rel("E").project(&["src"]), seed);
            assert_equivalent(&RaExpr::rel("E").project(&[]), seed);
            assert_equivalent(&RaExpr::rel("E").select(&["src", "dst"]), seed);
        }
    }

    #[test]
    fn renames_and_joins() {
        for seed in 0..3 {
            // Two-hop paths: arity-3 intermediate projected back to binary.
            let two_hop = RaExpr::rel("E")
                .join(RaExpr::rel("E").rename(&[("src", "dst"), ("dst", "tgt")]))
                .project(&["src", "tgt"]);
            assert_equivalent(&two_hop, seed);
            // Edges whose target is labelled.
            let labelled = RaExpr::rel("E").join(RaExpr::rel("L").rename(&[("node", "dst")]));
            assert_equivalent(&labelled, seed);
            // Attribute swap.
            assert_equivalent(
                &RaExpr::rel("E").rename(&[("src", "dst"), ("dst", "src")]),
                seed,
            );
        }
    }

    #[test]
    fn triangle_count_query() {
        // π_∅( E(a,b) ⋈ E(b,c) ⋈ E(c,a) ): a nullary (scalar) query with a
        // ternary intermediate result — allowed, only the inputs are binary.
        let e_ab = RaExpr::rel("E").rename(&[("src", "a"), ("dst", "b")]);
        let e_bc = RaExpr::rel("E").rename(&[("src", "b"), ("dst", "c")]);
        let e_ca = RaExpr::rel("E").rename(&[("src", "c"), ("dst", "a")]);
        let triangles = e_ab.join(e_bc).join(e_ca).project(&[]);
        for seed in 0..3 {
            assert_equivalent(&triangles, seed);
        }
    }

    #[test]
    fn translated_expressions_are_sum_matlang() {
        let db = random_db(0, 4);
        let schema = RaSchema::from_database(&db);
        let q = RaExpr::rel("E")
            .join(RaExpr::rel("E").rename(&[("src", "dst"), ("dst", "tgt")]))
            .project(&["src", "tgt"]);
        let expr = ra_to_matlang(&q, &schema, "n").unwrap();
        assert_eq!(fragment_of(&expr), Fragment::SumMatlang);
    }

    #[test]
    fn translation_errors() {
        let schema = RaSchema::new().with_relation("T", ["a", "b", "c"]);
        assert!(matches!(
            ra_to_matlang(&RaExpr::rel("T"), &schema, "n"),
            Err(FromRaError::NotBinary { .. })
        ));
        assert!(matches!(
            ra_to_matlang(&RaExpr::rel("missing"), &RaSchema::new(), "n"),
            Err(FromRaError::UnknownRelation { .. })
        ));
        let schema = RaSchema::new().with_relation("E", ["src", "dst"]);
        assert!(matches!(
            ra_to_matlang(&RaExpr::rel("E").project(&["zzz"]), &schema, "n"),
            Err(FromRaError::Malformed { .. })
        ));
        assert!(matches!(
            ra_to_matlang(&RaExpr::rel("E").rename(&[("src", "dst")]), &schema, "n"),
            Err(FromRaError::Malformed { .. })
        ));
        // Binary join of relations with four distinct attributes: output
        // arity 4, which has no matrix encoding.
        let schema = RaSchema::new()
            .with_relation("E", ["src", "dst"])
            .with_relation("F", ["x", "y"]);
        assert!(matches!(
            ra_to_matlang(&RaExpr::rel("E").join(RaExpr::rel("F")), &schema, "n"),
            Err(FromRaError::Malformed { .. })
        ));
        assert!(!FromRaError::UnknownRelation { name: "R".into() }
            .to_string()
            .is_empty());
        assert!(!FromRaError::NotBinary {
            name: "T".into(),
            arity: 3
        }
        .to_string()
        .is_empty());
    }
}
