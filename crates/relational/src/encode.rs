//! The encodings between matrix instances and `K`-databases used by
//! Propositions 6.3 and 6.4.
//!
//! * `Rel(S)` / `Rel(I)` ([`encode_instance`]): a matrix variable `V` of type
//!   `(α, β)` becomes a binary relation `R_V` over the attributes
//!   `row_α` / `col_β` holding the (non-zero) entries of `mat(V)`, and every
//!   size symbol `α` contributes a unary "active domain" relation `adom_α`
//!   annotating each index `1 … D(α)` with `1`.
//! * `Mat(R)` / `Mat(J)` ([`decode_matrix_instance`]): a binary `K`-database
//!   becomes a matrix instance over square matrices indexed by the (sorted)
//!   active domain of the whole database.

use crate::expr::Database;
use crate::kr::Relation;
use matlang_core::{Dim, Instance, Schema};
use matlang_matrix::Matrix;
use matlang_semiring::Semiring;
use std::collections::BTreeSet;

/// Prefix of the unary active-domain relations `adom_α`.
pub const ACTIVE_DOMAIN_PREFIX: &str = "adom_";

/// The relation name `R_V` encoding the matrix variable `V`.
pub fn matrix_var_relation(var: &str) -> String {
    format!("R_{var}")
}

/// The attribute `row_α`.
pub fn row_attr(sym: &str) -> String {
    format!("row_{sym}")
}

/// The attribute `col_β`.
pub fn col_attr(sym: &str) -> String {
    format!("col_{sym}")
}

/// The attribute carried by the active-domain relation of symbol `α`.
pub fn domain_attr(sym: &str) -> String {
    format!("dom_{sym}")
}

/// The name of the active-domain relation of symbol `α`.
pub fn domain_relation(sym: &str) -> String {
    format!("{ACTIVE_DOMAIN_PREFIX}{sym}")
}

/// `Rel(I)` — encodes a matrix instance (w.r.t. its schema) as a
/// `K`-database: one binary/unary/nullary relation per matrix variable plus
/// one unary domain relation per size symbol.  Matrix indices are 1-based in
/// the relational encoding, matching the paper's data domain `ℕ \ {0}`.
pub fn encode_instance<K: Semiring>(
    schema: &Schema,
    instance: &Instance<K>,
) -> Result<Database<K>, String> {
    let mut db = Database::new();
    let mut symbols: BTreeSet<String> = BTreeSet::new();
    for (name, ty) in schema.iter() {
        let matrix = instance
            .matrix(name)
            .ok_or_else(|| format!("variable {name} has no matrix in the instance"))?;
        let mut attrs: Vec<String> = Vec::new();
        if let Dim::Sym(s) = &ty.rows {
            attrs.push(row_attr(s));
            symbols.insert(s.clone());
        }
        if let Dim::Sym(s) = &ty.cols {
            attrs.push(col_attr(s));
            symbols.insert(s.clone());
        }
        let mut rel = Relation::new(attrs.clone());
        for (i, j, value) in matrix.iter_entries() {
            if value.is_zero() {
                continue;
            }
            let mut tuple: Vec<(&str, u64)> = Vec::new();
            let row_name;
            let col_name;
            if let Dim::Sym(s) = &ty.rows {
                row_name = row_attr(s);
                tuple.push((row_name.as_str(), (i + 1) as u64));
            }
            if let Dim::Sym(s) = &ty.cols {
                col_name = col_attr(s);
                tuple.push((col_name.as_str(), (j + 1) as u64));
            }
            rel.insert(&tuple, value.clone())?;
        }
        db.insert(matrix_var_relation(name), rel);
    }
    for sym in symbols {
        let n = instance
            .dim_value(&Dim::Sym(sym.clone()))
            .ok_or_else(|| format!("size symbol {sym} has no value in the instance"))?;
        let attr = domain_attr(&sym);
        let mut rel = Relation::new([attr.clone()]);
        for i in 1..=n {
            rel.insert(&[(attr.as_str(), i as u64)], K::one())?;
        }
        db.insert(domain_relation(&sym), rel);
    }
    Ok(db)
}

/// The matrix variable name used by [`decode_matrix_instance`] for a base
/// relation.
pub fn relation_matrix_var(relation: &str) -> String {
    format!("M_{relation}")
}

/// `Mat(J)` — encodes a binary `K`-database as a matrix instance over square
/// matrices / vectors indexed by the sorted active domain of the whole
/// database (Section 6.1).  Returns the instance together with the active
/// domain, so callers can translate between domain values and indices.
///
/// Every relation must have arity ≤ 2; higher arities are rejected.
pub fn decode_matrix_instance<K: Semiring>(
    db: &Database<K>,
    dim_symbol: &str,
) -> Result<(Instance<K>, Vec<u64>), String> {
    let mut adom: BTreeSet<u64> = BTreeSet::new();
    for rel in db.values() {
        if rel.arity() > 2 {
            return Err(format!(
                "relation of arity {} cannot be encoded as a matrix",
                rel.arity()
            ));
        }
        adom.extend(rel.active_domain());
    }
    let adom: Vec<u64> = adom.into_iter().collect();
    let n = adom.len().max(1);
    let index_of = |v: u64| {
        adom.iter()
            .position(|&d| d == v)
            .expect("value from active domain")
    };

    let mut instance: Instance<K> = Instance::new().with_dim(dim_symbol, n);
    for (name, rel) in db {
        let matrix = match rel.arity() {
            2 => {
                let mut m = Matrix::zeros(n, n);
                for (row, value) in rel.iter() {
                    m.set(index_of(row[0]), index_of(row[1]), value.clone())
                        .map_err(|e| e.to_string())?;
                }
                m
            }
            1 => {
                let mut m = Matrix::zeros(n, 1);
                for (row, value) in rel.iter() {
                    m.set(index_of(row[0]), 0, value.clone())
                        .map_err(|e| e.to_string())?;
                }
                m
            }
            _ => {
                let value = rel
                    .iter()
                    .next()
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(K::zero);
                Matrix::scalar(value)
            }
        };
        instance.set_matrix(relation_matrix_var(name), matrix);
    }
    Ok((instance, adom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_core::MatrixType;
    use matlang_semiring::{Nat, Real};

    #[test]
    fn encode_square_matrix_and_domain() {
        let schema = Schema::new()
            .with_var("A", MatrixType::square("n"))
            .with_var("u", MatrixType::vector("n"))
            .with_var("s", MatrixType::scalar());
        let instance: Instance<Real> = Instance::new()
            .with_dim("n", 2)
            .with_matrix(
                "A",
                Matrix::from_f64_rows(&[&[0.0, 2.0], &[3.0, 0.0]]).unwrap(),
            )
            .with_matrix("u", Matrix::from_f64_rows(&[&[5.0], &[0.0]]).unwrap())
            .with_matrix("s", Matrix::scalar(Real(7.0)));
        let db = encode_instance(&schema, &instance).unwrap();

        let ra = &db[&matrix_var_relation("A")];
        assert_eq!(ra.attrs(), &[col_attr("n"), row_attr("n")]);
        assert_eq!(ra.annotation(&[("row_n", 1), ("col_n", 2)]), Real(2.0));
        assert_eq!(ra.annotation(&[("row_n", 2), ("col_n", 1)]), Real(3.0));
        assert_eq!(ra.support_size(), 2);

        let ru = &db[&matrix_var_relation("u")];
        assert_eq!(ru.attrs(), &[row_attr("n")]);
        assert_eq!(ru.annotation(&[("row_n", 1)]), Real(5.0));

        let rs = &db[&matrix_var_relation("s")];
        assert_eq!(rs.arity(), 0);
        assert_eq!(rs.annotation(&[]), Real(7.0));

        let dom = &db[&domain_relation("n")];
        assert_eq!(dom.support_size(), 2);
        assert_eq!(dom.annotation(&[("dom_n", 1)]), Real(1.0));
        assert_eq!(dom.annotation(&[("dom_n", 2)]), Real(1.0));
    }

    #[test]
    fn encode_requires_matrices_and_dimensions() {
        let schema = Schema::new().with_var("A", MatrixType::square("n"));
        let missing_matrix: Instance<Real> = Instance::new().with_dim("n", 2);
        assert!(encode_instance(&schema, &missing_matrix).is_err());
        let missing_dim: Instance<Real> = Instance::new().with_matrix("A", Matrix::identity(2));
        assert!(encode_instance(&schema, &missing_dim).is_err());
    }

    #[test]
    fn decode_binary_database_as_square_matrices() {
        let mut edges: Relation<Nat> = Relation::new(["src", "dst"]);
        edges.insert(&[("src", 10), ("dst", 30)], Nat(2)).unwrap();
        edges.insert(&[("src", 30), ("dst", 20)], Nat(5)).unwrap();
        let mut labels: Relation<Nat> = Relation::new(["node"]);
        labels.insert(&[("node", 20)], Nat(7)).unwrap();
        let mut db = Database::new();
        db.insert("E".to_string(), edges);
        db.insert("L".to_string(), labels);

        let (instance, adom) = decode_matrix_instance(&db, "n").unwrap();
        assert_eq!(adom, vec![10, 20, 30]);
        let e = instance.matrix(&relation_matrix_var("E")).unwrap();
        assert_eq!(e.shape(), (3, 3));
        // 10 → index 0, 30 → index 2, 20 → index 1; attrs sorted: dst < src,
        // so the first tuple component is dst.
        assert_eq!(e.get(2, 0).unwrap(), &Nat(2));
        assert_eq!(e.get(1, 2).unwrap(), &Nat(5));
        let l = instance.matrix(&relation_matrix_var("L")).unwrap();
        assert_eq!(l.shape(), (3, 1));
        assert_eq!(l.get(1, 0).unwrap(), &Nat(7));
    }

    #[test]
    fn decode_rejects_wide_relations_and_handles_empty_databases() {
        let wide: Relation<Nat> = Relation::new(["a", "b", "c"]);
        let mut db = Database::new();
        db.insert("W".to_string(), wide);
        assert!(decode_matrix_instance(&db, "n").is_err());

        let empty: Database<Nat> = Database::new();
        let (instance, adom) = decode_matrix_instance(&empty, "n").unwrap();
        assert!(adom.is_empty());
        assert_eq!(instance.dim_value(&Dim::sym("n")), Some(1));
    }
}
