//! Semiring-annotated relations (`K`-relations) in the sense of Green,
//! Karvounarakis and Tannen, as used in Section 6.1 of the paper.
//!
//! A `K`-relation over a signature (a finite set of attributes) assigns an
//! annotation in `K` to every tuple, with finite support.  Tuples range over
//! the data domain `D = ℕ \ {0}` (the paper's choice when encoding matrix
//! indices); we represent domain values as `u64`.

use matlang_semiring::Semiring;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A `K`-relation: a finite-support map from tuples to annotations.
///
/// Attributes are kept sorted; each tuple is stored as a vector of values
/// aligned with the sorted attribute list.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation<K> {
    attrs: Vec<String>,
    rows: HashMap<Vec<u64>, K>,
}

impl<K: Semiring> Relation<K> {
    /// An empty relation with the given signature (attributes are sorted and
    /// deduplicated).
    pub fn new(attrs: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let mut attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        attrs.sort();
        attrs.dedup();
        Relation {
            attrs,
            rows: HashMap::new(),
        }
    }

    /// The signature, sorted.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// The arity of the signature.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of tuples in the support.
    pub fn support_size(&self) -> usize {
        self.rows.len()
    }

    /// Inserts (accumulating with `⊕`) an annotation for a tuple given as
    /// `(attribute, value)` pairs; missing/extra attributes are an error.
    pub fn insert(&mut self, tuple: &[(&str, u64)], value: K) -> Result<(), String> {
        if value.is_zero() {
            return Ok(());
        }
        if tuple.len() != self.attrs.len() {
            return Err(format!(
                "tuple has {} attributes, relation has {}",
                tuple.len(),
                self.attrs.len()
            ));
        }
        let lookup: BTreeMap<&str, u64> = tuple.iter().copied().collect();
        let mut row = Vec::with_capacity(self.attrs.len());
        for attr in &self.attrs {
            match lookup.get(attr.as_str()) {
                Some(&v) => row.push(v),
                None => return Err(format!("tuple is missing attribute {attr}")),
            }
        }
        self.insert_row(row, value);
        Ok(())
    }

    /// Inserts (accumulating with `⊕`) an annotation for a tuple given in
    /// sorted-attribute order.
    pub fn insert_row(&mut self, row: Vec<u64>, value: K) {
        if value.is_zero() {
            return;
        }
        let entry = self.rows.entry(row).or_insert_with(K::zero);
        *entry = entry.add(&value);
        if entry.is_zero() {
            // Keep the support minimal (relevant for rings where x + (−x) = 0).
            let key: Vec<u64> = self
                .rows
                .iter()
                .find(|(_, v)| v.is_zero())
                .map(|(k, _)| k.clone())
                .expect("just inserted");
            self.rows.remove(&key);
        }
    }

    /// The annotation of a tuple given as `(attribute, value)` pairs
    /// (zero for tuples outside the support).
    pub fn annotation(&self, tuple: &[(&str, u64)]) -> K {
        let lookup: BTreeMap<&str, u64> = tuple.iter().copied().collect();
        let mut row = Vec::with_capacity(self.attrs.len());
        for attr in &self.attrs {
            match lookup.get(attr.as_str()) {
                Some(&v) => row.push(v),
                None => return K::zero(),
            }
        }
        self.rows.get(&row).cloned().unwrap_or_else(K::zero)
    }

    /// Iterates over the support as `(row-in-sorted-attribute-order, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u64>, &K)> {
        self.rows.iter()
    }

    /// The set of domain values appearing in the support (the active domain
    /// contribution of this relation).
    pub fn active_domain(&self) -> Vec<u64> {
        let mut values: Vec<u64> = self.rows.keys().flatten().copied().collect();
        values.sort_unstable();
        values.dedup();
        values
    }

    /// Union: pointwise `⊕` of two relations over the same signature.
    pub fn union(&self, other: &Relation<K>) -> Result<Relation<K>, String> {
        if self.attrs != other.attrs {
            return Err(format!(
                "union of incompatible signatures {:?} and {:?}",
                self.attrs, other.attrs
            ));
        }
        let mut out = self.clone();
        for (row, value) in &other.rows {
            out.insert_row(row.clone(), value.clone());
        }
        Ok(out)
    }

    /// Projection onto `attrs`: tuples agreeing on `attrs` have their
    /// annotations summed with `⊕`.
    pub fn project(&self, attrs: &[String]) -> Result<Relation<K>, String> {
        for a in attrs {
            if !self.attrs.contains(a) {
                return Err(format!("cannot project onto unknown attribute {a}"));
            }
        }
        let mut out = Relation::new(attrs.iter().cloned());
        let positions: Vec<usize> = out
            .attrs
            .iter()
            .map(|a| {
                self.attrs
                    .iter()
                    .position(|b| b == a)
                    .expect("checked above")
            })
            .collect();
        for (row, value) in &self.rows {
            let projected: Vec<u64> = positions.iter().map(|&p| row[p]).collect();
            out.insert_row(projected, value.clone());
        }
        Ok(out)
    }

    /// Selection `σ_X`: multiplies each annotation by `Eq_X(t)` (1 when all
    /// attributes in `X` hold equal values, 0 otherwise), i.e. keeps only the
    /// tuples where they are equal.
    pub fn select_equal(&self, attrs: &[String]) -> Result<Relation<K>, String> {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| {
                self.attrs
                    .iter()
                    .position(|b| b == a)
                    .ok_or_else(|| format!("cannot select on unknown attribute {a}"))
            })
            .collect::<Result<_, _>>()?;
        let mut out = Relation::new(self.attrs.iter().cloned());
        for (row, value) in &self.rows {
            let equal = positions.windows(2).all(|w| row[w[0]] == row[w[1]]);
            if equal {
                out.insert_row(row.clone(), value.clone());
            }
        }
        Ok(out)
    }

    /// Renaming: replaces attribute names according to `mapping`
    /// (`old → new`); unknown old names are an error, collisions too.
    pub fn rename(&self, mapping: &[(String, String)]) -> Result<Relation<K>, String> {
        let mut new_names = Vec::with_capacity(self.attrs.len());
        for attr in &self.attrs {
            let new = mapping
                .iter()
                .find(|(old, _)| old == attr)
                .map(|(_, new)| new.clone())
                .unwrap_or_else(|| attr.clone());
            new_names.push(new);
        }
        let mut sorted = new_names.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != new_names.len() {
            return Err("renaming would collapse two attributes".to_string());
        }
        for (old, _) in mapping {
            if !self.attrs.contains(old) {
                return Err(format!("cannot rename unknown attribute {old}"));
            }
        }
        let mut out = Relation::new(new_names.clone());
        // Position of each output attribute in the original row.
        let positions: Vec<usize> = out
            .attrs
            .iter()
            .map(|a| {
                new_names
                    .iter()
                    .position(|b| b == a)
                    .expect("constructed above")
            })
            .collect();
        for (row, value) in &self.rows {
            let renamed: Vec<u64> = positions.iter().map(|&p| row[p]).collect();
            out.insert_row(renamed, value.clone());
        }
        Ok(out)
    }

    /// Natural join: tuples agreeing on the shared attributes are combined
    /// and their annotations multiplied with `⊙`.
    pub fn join(&self, other: &Relation<K>) -> Relation<K> {
        let shared: Vec<String> = self
            .attrs
            .iter()
            .filter(|a| other.attrs.contains(a))
            .cloned()
            .collect();
        let out_attrs: Vec<String> = {
            let mut v = self.attrs.clone();
            v.extend(other.attrs.iter().cloned());
            v
        };
        let mut out = Relation::new(out_attrs);
        let self_shared_pos: Vec<usize> = shared
            .iter()
            .map(|a| self.attrs.iter().position(|b| b == a).expect("shared"))
            .collect();
        let other_shared_pos: Vec<usize> = shared
            .iter()
            .map(|a| other.attrs.iter().position(|b| b == a).expect("shared"))
            .collect();
        // Index the right side by its shared-attribute values.
        let mut index: HashMap<Vec<u64>, Vec<(&Vec<u64>, &K)>> = HashMap::new();
        for (row, value) in &other.rows {
            let key: Vec<u64> = other_shared_pos.iter().map(|&p| row[p]).collect();
            index.entry(key).or_default().push((row, value));
        }
        for (row, value) in &self.rows {
            let key: Vec<u64> = self_shared_pos.iter().map(|&p| row[p]).collect();
            let Some(matches) = index.get(&key) else {
                continue;
            };
            for (other_row, other_value) in matches {
                // Assemble the combined tuple in the output's sorted order.
                let combined: Vec<u64> = out
                    .attrs
                    .iter()
                    .map(|a| {
                        if let Some(p) = self.attrs.iter().position(|b| b == a) {
                            row[p]
                        } else {
                            let p = other
                                .attrs
                                .iter()
                                .position(|b| b == a)
                                .expect("attr origin");
                            other_row[p]
                        }
                    })
                    .collect();
                out.insert_row(combined, value.mul(other_value));
            }
        }
        out
    }
}

impl<K: Semiring> fmt::Display for Relation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.attrs.join(" | "))?;
        let mut rows: Vec<(&Vec<u64>, &K)> = self.rows.iter().collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        for (row, value) in rows {
            let cells: Vec<String> = row.iter().map(u64::to_string).collect();
            writeln!(f, "{}  -> {:?}", cells.join(" | "), value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Nat, Real};

    fn edge_relation() -> Relation<Nat> {
        let mut r = Relation::new(["src", "dst"]);
        r.insert(&[("src", 1), ("dst", 2)], Nat(1)).unwrap();
        r.insert(&[("src", 2), ("dst", 3)], Nat(2)).unwrap();
        r.insert(&[("src", 1), ("dst", 3)], Nat(3)).unwrap();
        r
    }

    #[test]
    fn construction_sorts_and_dedups_attributes() {
        let r: Relation<Nat> = Relation::new(["b", "a", "b"]);
        assert_eq!(r.attrs(), &["a".to_string(), "b".to_string()]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.support_size(), 0);
    }

    #[test]
    fn insert_accumulates_and_drops_zero() {
        let mut r: Relation<Nat> = Relation::new(["x"]);
        r.insert(&[("x", 5)], Nat(2)).unwrap();
        r.insert(&[("x", 5)], Nat(3)).unwrap();
        r.insert(&[("x", 6)], Nat(0)).unwrap();
        assert_eq!(r.annotation(&[("x", 5)]), Nat(5));
        assert_eq!(r.annotation(&[("x", 6)]), Nat(0));
        assert_eq!(r.support_size(), 1);
        assert!(r.insert(&[("y", 1)], Nat(1)).is_err());
        assert!(r.insert(&[], Nat(1)).is_err());
    }

    #[test]
    fn union_adds_annotations() {
        let r = edge_relation();
        let u = r.union(&r).unwrap();
        assert_eq!(u.annotation(&[("src", 2), ("dst", 3)]), Nat(4));
        let other: Relation<Nat> = Relation::new(["src"]);
        assert!(r.union(&other).is_err());
    }

    #[test]
    fn projection_sums_annotations() {
        let r = edge_relation();
        let p = r.project(&["src".to_string()]).unwrap();
        assert_eq!(p.annotation(&[("src", 1)]), Nat(4));
        assert_eq!(p.annotation(&[("src", 2)]), Nat(2));
        assert!(r.project(&["nope".to_string()]).is_err());
    }

    #[test]
    fn selection_keeps_equal_tuples() {
        let mut r: Relation<Nat> = Relation::new(["a", "b"]);
        r.insert(&[("a", 1), ("b", 1)], Nat(5)).unwrap();
        r.insert(&[("a", 1), ("b", 2)], Nat(7)).unwrap();
        let s = r.select_equal(&["a".to_string(), "b".to_string()]).unwrap();
        assert_eq!(s.annotation(&[("a", 1), ("b", 1)]), Nat(5));
        assert_eq!(s.annotation(&[("a", 1), ("b", 2)]), Nat(0));
        assert!(r.select_equal(&["zzz".to_string()]).is_err());
    }

    #[test]
    fn renaming_changes_the_signature() {
        let r = edge_relation();
        let renamed = r
            .rename(&[
                ("src".to_string(), "from".to_string()),
                ("dst".to_string(), "to".to_string()),
            ])
            .unwrap();
        assert_eq!(renamed.attrs(), &["from".to_string(), "to".to_string()]);
        assert_eq!(renamed.annotation(&[("from", 1), ("to", 2)]), Nat(1));
        assert!(r.rename(&[("src".to_string(), "dst".to_string())]).is_err());
        assert!(r.rename(&[("nope".to_string(), "x".to_string())]).is_err());
    }

    #[test]
    fn natural_join_multiplies_annotations() {
        let r = edge_relation();
        let renamed = r
            .rename(&[
                ("src".to_string(), "dst".to_string()),
                ("dst".to_string(), "nxt".to_string()),
            ])
            .unwrap();
        let j = r.join(&renamed);
        // Path 1 → 2 → 3 has annotation 1·2 = 2.
        assert_eq!(j.annotation(&[("src", 1), ("dst", 2), ("nxt", 3)]), Nat(2));
        // No edge leaves 3, so nothing is joined after (1, 3).
        assert_eq!(j.support_size(), 1);
    }

    #[test]
    fn join_on_disjoint_signatures_is_a_cartesian_product() {
        let mut a: Relation<Nat> = Relation::new(["x"]);
        a.insert(&[("x", 1)], Nat(2)).unwrap();
        a.insert(&[("x", 2)], Nat(3)).unwrap();
        let mut b: Relation<Nat> = Relation::new(["y"]);
        b.insert(&[("y", 7)], Nat(5)).unwrap();
        let j = a.join(&b);
        assert_eq!(j.annotation(&[("x", 1), ("y", 7)]), Nat(10));
        assert_eq!(j.annotation(&[("x", 2), ("y", 7)]), Nat(15));
    }

    #[test]
    fn ring_annotations_can_cancel() {
        use matlang_semiring::IntRing;
        let mut r: Relation<IntRing> = Relation::new(["x"]);
        r.insert(&[("x", 1)], IntRing(4)).unwrap();
        r.insert(&[("x", 1)], IntRing(-4)).unwrap();
        assert_eq!(r.support_size(), 0);
        assert_eq!(r.annotation(&[("x", 1)]), IntRing(0));
    }

    #[test]
    fn active_domain_and_display() {
        let r = edge_relation();
        assert_eq!(r.active_domain(), vec![1, 2, 3]);
        let shown = format!("{r}");
        assert!(shown.contains("dst"));
        let real: Relation<Real> = Relation::new(["a"]);
        assert_eq!(real.active_domain(), Vec::<u64>::new());
    }

    #[test]
    fn annotation_of_malformed_tuple_is_zero() {
        let r = edge_relation();
        assert_eq!(r.annotation(&[("src", 1)]), Nat(0));
    }
}
