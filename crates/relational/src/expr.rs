//! The `RA⁺_K` expression language and its semantics (Section 6.1, following
//! Green–Karvounarakis–Tannen).

use crate::kr::Relation;
use matlang_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A database: a named collection of `K`-relations.
pub type Database<K> = BTreeMap<String, Relation<K>>;

/// An `RA⁺_K` expression.
///
/// `Q := R | Q ∪ Q | π_X(Q) | σ_X(Q) | ρ_f(Q) | Q ⋈ Q`
#[derive(Debug, Clone, PartialEq)]
pub enum RaExpr {
    /// A base relation.
    Rel(String),
    /// Union (annotations added with `⊕`).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Projection onto a set of attributes (annotations summed with `⊕`).
    Project(Vec<String>, Box<RaExpr>),
    /// Selection keeping tuples whose listed attributes are all equal.
    Select(Vec<String>, Box<RaExpr>),
    /// Renaming given as `old → new` pairs.
    Rename(Vec<(String, String)>, Box<RaExpr>),
    /// Natural join (annotations multiplied with `⊙`).
    Join(Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    /// A base relation.
    pub fn rel(name: impl Into<String>) -> RaExpr {
        RaExpr::Rel(name.into())
    }

    /// Union with another expression.
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// Projection onto the given attributes.
    pub fn project(self, attrs: &[&str]) -> RaExpr {
        RaExpr::Project(
            attrs.iter().map(|s| s.to_string()).collect(),
            Box::new(self),
        )
    }

    /// Selection on equality of the given attributes.
    pub fn select(self, attrs: &[&str]) -> RaExpr {
        RaExpr::Select(
            attrs.iter().map(|s| s.to_string()).collect(),
            Box::new(self),
        )
    }

    /// Renaming `old → new`.
    pub fn rename(self, mapping: &[(&str, &str)]) -> RaExpr {
        RaExpr::Rename(
            mapping
                .iter()
                .map(|(o, n)| (o.to_string(), n.to_string()))
                .collect(),
            Box::new(self),
        )
    }

    /// Natural join with another expression.
    pub fn join(self, other: RaExpr) -> RaExpr {
        RaExpr::Join(Box::new(self), Box::new(other))
    }

    /// The output signature of this expression over the given database,
    /// or an error if a base relation is missing / attributes are unknown.
    pub fn signature<K: Semiring>(&self, db: &Database<K>) -> Result<Vec<String>, RaError> {
        match self {
            RaExpr::Rel(name) => db
                .get(name)
                .map(|r| r.attrs().to_vec())
                .ok_or_else(|| RaError::UnknownRelation { name: name.clone() }),
            RaExpr::Union(a, b) => {
                let sa = a.signature(db)?;
                let sb = b.signature(db)?;
                if sa != sb {
                    return Err(RaError::Incompatible {
                        message: format!("union of signatures {sa:?} and {sb:?}"),
                    });
                }
                Ok(sa)
            }
            RaExpr::Project(attrs, inner) => {
                let s = inner.signature(db)?;
                for a in attrs {
                    if !s.contains(a) {
                        return Err(RaError::Incompatible {
                            message: format!("projection attribute {a} not in {s:?}"),
                        });
                    }
                }
                let mut sorted = attrs.clone();
                sorted.sort();
                sorted.dedup();
                Ok(sorted)
            }
            RaExpr::Select(_, inner) => inner.signature(db),
            RaExpr::Rename(mapping, inner) => {
                let s = inner.signature(db)?;
                let mut renamed: Vec<String> = s
                    .iter()
                    .map(|a| {
                        mapping
                            .iter()
                            .find(|(old, _)| old == a)
                            .map(|(_, new)| new.clone())
                            .unwrap_or_else(|| a.clone())
                    })
                    .collect();
                renamed.sort();
                Ok(renamed)
            }
            RaExpr::Join(a, b) => {
                let mut s = a.signature(db)?;
                s.extend(b.signature(db)?);
                s.sort();
                s.dedup();
                Ok(s)
            }
        }
    }

    /// Evaluates the expression over a database, yielding a `K`-relation.
    pub fn evaluate<K: Semiring>(&self, db: &Database<K>) -> Result<Relation<K>, RaError> {
        match self {
            RaExpr::Rel(name) => db
                .get(name)
                .cloned()
                .ok_or_else(|| RaError::UnknownRelation { name: name.clone() }),
            RaExpr::Union(a, b) => {
                let ra = a.evaluate(db)?;
                let rb = b.evaluate(db)?;
                ra.union(&rb)
                    .map_err(|message| RaError::Incompatible { message })
            }
            RaExpr::Project(attrs, inner) => {
                let r = inner.evaluate(db)?;
                r.project(attrs)
                    .map_err(|message| RaError::Incompatible { message })
            }
            RaExpr::Select(attrs, inner) => {
                let r = inner.evaluate(db)?;
                r.select_equal(attrs)
                    .map_err(|message| RaError::Incompatible { message })
            }
            RaExpr::Rename(mapping, inner) => {
                let r = inner.evaluate(db)?;
                r.rename(mapping)
                    .map_err(|message| RaError::Incompatible { message })
            }
            RaExpr::Join(a, b) => {
                let ra = a.evaluate(db)?;
                let rb = b.evaluate(db)?;
                Ok(ra.join(&rb))
            }
        }
    }
}

/// Errors raised when evaluating `RA⁺_K` expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum RaError {
    /// A base relation is not present in the database.
    UnknownRelation {
        /// The missing relation name.
        name: String,
    },
    /// Signatures do not line up for the attempted operation.
    Incompatible {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            RaError::Incompatible { message } => write!(f, "incompatible operands: {message}"),
        }
    }
}

impl std::error::Error for RaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::Nat;

    fn db() -> Database<Nat> {
        let mut edges: Relation<Nat> = Relation::new(["src", "dst"]);
        edges.insert(&[("src", 1), ("dst", 2)], Nat(1)).unwrap();
        edges.insert(&[("src", 2), ("dst", 3)], Nat(1)).unwrap();
        edges.insert(&[("src", 1), ("dst", 3)], Nat(1)).unwrap();
        let mut labels: Relation<Nat> = Relation::new(["node"]);
        labels.insert(&[("node", 1)], Nat(1)).unwrap();
        labels.insert(&[("node", 3)], Nat(1)).unwrap();
        let mut database = Database::new();
        database.insert("E".to_string(), edges);
        database.insert("L".to_string(), labels);
        database
    }

    #[test]
    fn base_relations_and_unknown_names() {
        let db = db();
        let r = RaExpr::rel("E").evaluate(&db).unwrap();
        assert_eq!(r.support_size(), 3);
        assert!(matches!(
            RaExpr::rel("missing").evaluate(&db),
            Err(RaError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn two_hop_paths_via_rename_join_project() {
        // π_{src, tgt}( E ⋈ ρ_{src→dst, dst→tgt}(E) ) counts 2-paths.
        let db = db();
        let second_hop = RaExpr::rel("E").rename(&[("src", "dst"), ("dst", "tgt")]);
        let two_hop = RaExpr::rel("E").join(second_hop).project(&["src", "tgt"]);
        let r = two_hop.evaluate(&db).unwrap();
        assert_eq!(r.annotation(&[("src", 1), ("tgt", 3)]), Nat(1));
        assert_eq!(r.annotation(&[("src", 1), ("tgt", 2)]), Nat(0));
    }

    #[test]
    fn union_accumulates_multiplicities() {
        let db = db();
        let doubled = RaExpr::rel("E").union(RaExpr::rel("E"));
        let r = doubled.evaluate(&db).unwrap();
        assert_eq!(r.annotation(&[("src", 1), ("dst", 2)]), Nat(2));
    }

    #[test]
    fn selection_filters_on_equality() {
        let db = db();
        // Self loops: σ_{src=dst}(E) — none in this graph.
        let loops = RaExpr::rel("E").select(&["src", "dst"]);
        assert_eq!(loops.evaluate(&db).unwrap().support_size(), 0);
    }

    #[test]
    fn join_with_unary_relation_filters_endpoints() {
        let db = db();
        let labelled_targets = RaExpr::rel("E").join(RaExpr::rel("L").rename(&[("node", "dst")]));
        let r = labelled_targets.evaluate(&db).unwrap();
        assert_eq!(r.annotation(&[("src", 1), ("dst", 3)]), Nat(1));
        assert_eq!(r.annotation(&[("src", 1), ("dst", 2)]), Nat(0));
    }

    #[test]
    fn signatures_are_computed_and_validated() {
        let db = db();
        assert_eq!(
            RaExpr::rel("E").signature(&db).unwrap(),
            vec!["dst".to_string(), "src".to_string()]
        );
        assert_eq!(
            RaExpr::rel("E").project(&["src"]).signature(&db).unwrap(),
            vec!["src".to_string()]
        );
        let bad_union = RaExpr::rel("E").union(RaExpr::rel("L"));
        assert!(bad_union.signature(&db).is_err());
        assert!(bad_union.evaluate(&db).is_err());
        let bad_projection = RaExpr::rel("E").project(&["zzz"]);
        assert!(bad_projection.signature(&db).is_err());
        let join_sig = RaExpr::rel("E")
            .join(RaExpr::rel("L"))
            .signature(&db)
            .unwrap();
        assert_eq!(
            join_sig,
            vec!["dst".to_string(), "node".to_string(), "src".to_string()]
        );
        let renamed_sig = RaExpr::rel("L")
            .rename(&[("node", "x")])
            .signature(&db)
            .unwrap();
        assert_eq!(renamed_sig, vec!["x".to_string()]);
    }

    #[test]
    fn errors_display() {
        assert!(!RaError::UnknownRelation { name: "R".into() }
            .to_string()
            .is_empty());
        assert!(!RaError::Incompatible {
            message: "m".into()
        }
        .to_string()
        .is_empty());
    }
}
