//! Span-based tracing with per-query trace IDs, a bounded ring buffer of
//! finished traces, and a slow-query log.
//!
//! The model is deliberately small: a *trace* is begun once per request at
//! the session layer ([`begin`] with an id from [`next_id`]) and is owned by
//! the current thread; nested code opens child *spans* ([`span`]) or drops
//! zero-duration *events* ([`event`]) into it.  When the root guard drops,
//! the finished [`TraceRecord`] — parent plus children, with microsecond
//! offsets relative to the trace start — is pushed into a bounded global
//! ring buffer, and traces that took longer than the `MATLANG_SLOW_MS`
//! threshold (default 100 ms, overridable at runtime with [`set_slow_ms`])
//! are additionally recorded in the slow-query log and counted in the
//! `slow_queries_total` counter.  Fast traces with **no spans at all** —
//! warm cache-hit requests, which never enter instrumented engine code —
//! are dropped at the root instead of pushed, keeping the hot path free of
//! the ring lock and the ring full of traces with structure.
//!
//! When no trace is active on the current thread — the common case for
//! engine code driven outside a server session — [`span`] and [`event`] are
//! a thread-local read and nothing else, so instrumented library code pays
//! near-zero cost.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many finished traces (and slow queries) the ring buffers retain.
pub const RING_CAPACITY: usize = 256;

/// One span inside a finished trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `"plan"`, `"rewrite"`, `"execute:matmul"`.
    pub name: String,
    /// Index into [`TraceRecord::spans`] of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Start offset relative to the trace start, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds (0 for [`event`]s and sub-µs spans).
    pub dur_us: u64,
}

/// A finished trace: the parent span for one request plus its children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The per-query trace id handed to [`begin`].
    pub id: u64,
    /// The label handed to [`begin`] (by convention the request line).
    pub label: String,
    /// Total wall time of the trace in microseconds.
    pub total_us: u64,
    /// Child spans in creation order.
    pub spans: Vec<SpanRecord>,
}

/// One slow-query log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Trace id of the offending request.
    pub trace_id: u64,
    /// The trace label (request line).
    pub label: String,
    /// Total wall time in microseconds.
    pub total_us: u64,
    /// Forensic detail attached mid-request via [`attach_slow_detail`] —
    /// by convention the rewritten-DAG explain plus the per-node observed
    /// profile of the offending execution.  Empty when nothing attached.
    pub detail: Vec<String>,
}

/// How much of a label [`begin`] retains (truncated at a char boundary).
/// Labels are by convention request lines; a `LOAD`-sized line must not
/// drag megabytes into the ring, and an inline buffer keeps the hot
/// begin/drop cycle free of heap allocation entirely.
pub const LABEL_CAPACITY: usize = 96;

struct ActiveTrace {
    id: u64,
    label_len: u8,
    label_buf: [u8; LABEL_CAPACITY],
    started: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
}

impl ActiveTrace {
    fn label(&self) -> &str {
        // The buffer was copied from a `&str` prefix cut at a char
        // boundary, so it is valid UTF-8 by construction.
        std::str::from_utf8(&self.label_buf[..self.label_len as usize]).unwrap_or_default()
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Sentinel meaning "no runtime override, read `MATLANG_SLOW_MS`" — pass
/// it to [`set_slow_ms`] to clear a previous override.
pub const SLOW_MS_UNSET: u64 = u64::MAX;
static SLOW_MS_OVERRIDE: AtomicU64 = AtomicU64::new(SLOW_MS_UNSET);

/// How many traces' pending forensic detail the side channel retains while
/// their root guards are still open.
const PENDING_DETAIL_CAPACITY: usize = 64;

fn ring() -> &'static Mutex<VecDeque<TraceRecord>> {
    static RING: OnceLock<Mutex<VecDeque<TraceRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

fn slow_ring() -> &'static Mutex<VecDeque<SlowQuery>> {
    static RING: OnceLock<Mutex<VecDeque<SlowQuery>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

/// Parked forensic detail, keyed by trace id (see [`attach_slow_detail`]).
type PendingDetailRing = VecDeque<(u64, Vec<String>)>;

fn pending_detail() -> &'static Mutex<PendingDetailRing> {
    static PENDING: OnceLock<Mutex<PendingDetailRing>> = OnceLock::new();
    PENDING.get_or_init(|| Mutex::new(VecDeque::with_capacity(PENDING_DETAIL_CAPACITY)))
}

/// Entries currently parked in [`pending_detail`].  Letting the trace-drop
/// hot path skip the parking-lot mutex entirely when nothing is parked —
/// the overwhelmingly common case — keeps warm requests lock-free.
static PENDING_COUNT: AtomicU64 = AtomicU64::new(0);

/// Attach forensic detail lines to the trace `trace_id` **before** its root
/// guard drops.  The request's root trace guard lives at the session layer
/// and only finishes — and decides slowness — after the store returns, so
/// code deeper in the stack that can render an explain/profile cheaply
/// parks the lines here; [`TraceGuard::drop`] folds them into the
/// [`SlowQuery`] entry when the trace turns out slow and discards them
/// otherwise.  The parking lot is bounded; unclaimed entries (a trace that
/// never finishes) age out oldest-first.
pub fn attach_slow_detail(trace_id: u64, lines: Vec<String>) {
    if trace_id == 0 || !crate::enabled() {
        return;
    }
    if let Ok(mut pending) = pending_detail().lock() {
        if let Some(slot) = pending.iter_mut().find(|(id, _)| *id == trace_id) {
            slot.1 = lines;
            return;
        }
        if pending.len() == PENDING_DETAIL_CAPACITY {
            pending.pop_front();
        } else {
            PENDING_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        pending.push_back((trace_id, lines));
    }
}

/// Remove and return the pending detail for `trace_id`, if any.  Checks the
/// lock-free emptiness hint first so traces with nothing parked never take
/// the mutex.
fn take_slow_detail(trace_id: u64) -> Option<Vec<String>> {
    if PENDING_COUNT.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut pending = pending_detail().lock().ok()?;
    let idx = pending.iter().position(|(id, _)| *id == trace_id)?;
    PENDING_COUNT.fetch_sub(1, Ordering::Relaxed);
    pending.remove(idx).map(|(_, lines)| lines)
}

/// A fresh, process-unique trace id (nonzero; 0 means "no trace" on the
/// wire).
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The id of the trace active on this thread, or 0 if none.
#[inline]
pub fn current_id() -> u64 {
    ACTIVE.with(|a| a.borrow().as_ref().map_or(0, |t| t.id))
}

/// Is a trace active on this thread?  A cheap pre-check for call sites that
/// would otherwise allocate a span name.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// The slow-query threshold in milliseconds: a [`set_slow_ms`] override if
/// one was made, else `MATLANG_SLOW_MS`, else 100.
pub fn slow_ms() -> u64 {
    let o = SLOW_MS_OVERRIDE.load(Ordering::Relaxed);
    if o != SLOW_MS_UNSET {
        return o;
    }
    static ENV: OnceLock<u64> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MATLANG_SLOW_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(100)
    })
}

/// Override the slow-query threshold at runtime (tests, admin tooling).
pub fn set_slow_ms(ms: u64) {
    SLOW_MS_OVERRIDE.store(ms, Ordering::Relaxed);
}

/// Guard returned by [`begin`]; dropping it finishes the trace and records
/// it into the ring buffer (and the slow-query log when over threshold).
#[must_use = "dropping the guard is what finishes and records the trace"]
pub struct TraceGuard {
    armed: bool,
    // Traces are thread-local; keep the guard on the thread that began it.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Begin a trace on this thread.  The label (by convention the request
/// line) is retained up to [`LABEL_CAPACITY`] bytes, cut at a char
/// boundary; the copy is into an inline buffer, so beginning and dropping
/// a trace never touches the heap.
///
/// Returns an inert guard (and records nothing) when observability is
/// disabled or another trace is already active on the thread — an inner
/// `begin` never clobbers the outer request's trace.
pub fn begin(id: u64, label: &str) -> TraceGuard {
    let inert = TraceGuard {
        armed: false,
        _not_send: std::marker::PhantomData,
    };
    if !crate::enabled() {
        return inert;
    }
    let mut cut = label.len().min(LABEL_CAPACITY);
    while !label.is_char_boundary(cut) {
        cut -= 1;
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if slot.is_some() {
            return inert;
        }
        let mut label_buf = [0u8; LABEL_CAPACITY];
        label_buf[..cut].copy_from_slice(&label.as_bytes()[..cut]);
        *slot = Some(ActiveTrace {
            id,
            label_len: cut as u8,
            label_buf,
            started: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
        });
        TraceGuard {
            armed: true,
            _not_send: std::marker::PhantomData,
        }
    })
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let Some(t) = ACTIVE.with(|a| a.borrow_mut().take()) else {
            return;
        };
        let total_us = t.started.elapsed().as_micros() as u64;
        let slow = total_us >= slow_ms().saturating_mul(1000);
        // Claim any parked forensic detail either way, so an abandoned
        // attachment for a fast trace cannot linger in the parking lot.
        let detail = take_slow_detail(t.id);
        if slow {
            crate::counter!("slow_queries_total").inc();
            if let Ok(mut log) = slow_ring().lock() {
                if log.len() == RING_CAPACITY {
                    log.pop_front();
                }
                log.push_back(SlowQuery {
                    trace_id: t.id,
                    label: t.label().to_string(),
                    total_us,
                    detail: detail.unwrap_or_default(),
                });
            }
        }
        // Span-less fast traces are dropped at the root: a warm cache-hit
        // request opens no child spans and there is nothing in it to
        // inspect, so skipping the ring keeps the hot path at a
        // thread-local take plus one clock read (the id still went out on
        // the wire), and keeps the bounded ring full of traces with
        // structure.
        if slow || !t.spans.is_empty() {
            let record = TraceRecord {
                id: t.id,
                label: t.label().to_string(),
                total_us,
                spans: t.spans,
            };
            if let Ok(mut traces) = ring().lock() {
                if traces.len() == RING_CAPACITY {
                    traces.pop_front();
                }
                traces.push_back(record);
            }
        }
    }
}

/// Guard returned by [`span`]; dropping it closes the span.
#[must_use = "dropping the guard is what closes the span"]
pub struct SpanGuard {
    idx: Option<usize>,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open a child span of the trace active on this thread.  A no-op guard when
/// no trace is active.
pub fn span(name: &str) -> SpanGuard {
    let idx = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let t = slot.as_mut()?;
        let start_us = t.started.elapsed().as_micros() as u64;
        let parent = t.stack.last().copied();
        let idx = t.spans.len();
        t.spans.push(SpanRecord {
            name: name.to_string(),
            parent,
            start_us,
            dur_us: 0,
        });
        t.stack.push(idx);
        Some(idx)
    });
    SpanGuard {
        idx,
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            if let Some(t) = slot.as_mut() {
                let now_us = t.started.elapsed().as_micros() as u64;
                if let Some(s) = t.spans.get_mut(idx) {
                    s.dur_us = now_us.saturating_sub(s.start_us);
                }
                // Guards normally drop LIFO; tolerate stragglers anyway.
                if t.stack.last() == Some(&idx) {
                    t.stack.pop();
                } else {
                    t.stack.retain(|&i| i != idx);
                }
            }
        });
    }
}

/// Record a zero-duration event (e.g. one applied rewrite rule) under the
/// current span of the active trace.  A no-op when no trace is active.
pub fn event(name: &str) {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if let Some(t) = slot.as_mut() {
            let start_us = t.started.elapsed().as_micros() as u64;
            let parent = t.stack.last().copied();
            t.spans.push(SpanRecord {
                name: name.to_string(),
                parent,
                start_us,
                dur_us: 0,
            });
        }
    });
}

/// The most recent `n` finished traces, oldest first.
pub fn recent(n: usize) -> Vec<TraceRecord> {
    match ring().lock() {
        Ok(traces) => traces.iter().rev().take(n).rev().cloned().collect(),
        Err(_) => Vec::new(),
    }
}

/// The most recent `n` slow-query entries, oldest first.
pub fn slow_queries(n: usize) -> Vec<SlowQuery> {
    match slow_ring().lock() {
        Ok(log) => log.iter().rev().take(n).rev().cloned().collect(),
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find_trace(id: u64) -> Option<TraceRecord> {
        recent(RING_CAPACITY).into_iter().find(|t| t.id == id)
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn spans_nest_and_record() {
        let id = next_id();
        {
            let _t = begin(id, "EXEC g 0");
            assert_eq!(current_id(), id);
            assert!(active());
            {
                let _plan = span("plan");
                let _inner = span("rewrite");
                event("rewrite:fuse-mprod");
            }
            let _exec = span("execute:matmul");
        }
        assert_eq!(current_id(), 0, "trace must close when the guard drops");
        let t = find_trace(id).expect("trace must land in the ring buffer");
        assert_eq!(t.label, "EXEC g 0");
        let names: Vec<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["plan", "rewrite", "rewrite:fuse-mprod", "execute:matmul"]
        );
        assert_eq!(t.spans[0].parent, None);
        assert_eq!(t.spans[1].parent, Some(0), "rewrite nests under plan");
        assert_eq!(t.spans[2].parent, Some(1), "event nests under rewrite");
        assert_eq!(t.spans[3].parent, None, "sibling span is a root child");
    }

    #[test]
    fn span_without_active_trace_is_inert() {
        assert!(!active());
        let g = span("orphan");
        drop(g);
        event("orphan-event");
        assert_eq!(current_id(), 0);
    }

    #[test]
    fn inner_begin_does_not_clobber_outer_trace() {
        let outer = next_id();
        let inner = next_id();
        {
            let _t = begin(outer, "outer");
            let _s = span("work");
            {
                let _nested = begin(inner, "inner");
                assert_eq!(current_id(), outer, "outer trace stays active");
            }
            assert_eq!(current_id(), outer, "inner guard must not finish it");
        }
        assert!(find_trace(outer).is_some());
        assert!(find_trace(inner).is_none());
    }

    #[test]
    fn span_less_fast_traces_skip_the_ring() {
        let id = next_id();
        {
            let _t = begin(id, "EXEC warm 0");
            // No spans: a warm cache-hit request.
        }
        assert!(
            find_trace(id).is_none(),
            "span-less fast traces must not occupy the bounded ring"
        );
    }

    #[test]
    fn slow_queries_are_logged_when_over_threshold() {
        let id = next_id();
        set_slow_ms(0); // every trace counts as slow
        {
            let _t = begin(id, "EXEC slow 0");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_slow_ms(SLOW_MS_UNSET); // restore env/default behaviour
        let slow = slow_queries(RING_CAPACITY);
        let entry = slow.iter().find(|s| s.trace_id == id);
        let entry = entry.expect("slow query must be logged");
        assert_eq!(entry.label, "EXEC slow 0");
        assert!(entry.total_us >= 1000);
        assert!(crate::counter!("slow_queries_total").get() >= 1);
    }

    #[test]
    fn slow_detail_attaches_through_the_side_channel() {
        let id = next_id();
        set_slow_ms(0); // every trace counts as slow
        {
            let _t = begin(id, "EXEC forensic 0");
            attach_slow_detail(current_id(), vec!["plan nodes=3".into(), "#0 var G".into()]);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_slow_ms(SLOW_MS_UNSET);
        let entry = slow_queries(RING_CAPACITY)
            .into_iter()
            .find(|s| s.trace_id == id)
            .expect("slow query must be logged");
        assert_eq!(
            entry.detail,
            vec!["plan nodes=3".to_string(), "#0 var G".to_string()],
            "parked detail must fold into the slow-log entry"
        );
    }

    #[test]
    fn fast_traces_discard_parked_detail() {
        let id = next_id();
        {
            let _t = begin(id, "EXEC fast 0");
            attach_slow_detail(id, vec!["unused".into()]);
            // No sleep: with the default 100 ms threshold this is fast.
        }
        assert!(
            slow_queries(RING_CAPACITY).iter().all(|s| s.trace_id != id),
            "a fast trace must not reach the slow log"
        );
        // The parked entry was claimed and dropped, not leaked: attaching
        // again for the dead id and asking for it via a new slow trace
        // cannot resurrect it.
        let id2 = next_id();
        set_slow_ms(0);
        {
            let _t = begin(id2, "EXEC forensic 1");
            attach_slow_detail(id2, vec!["second".into()]);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_slow_ms(SLOW_MS_UNSET);
        let entry = slow_queries(RING_CAPACITY)
            .into_iter()
            .find(|s| s.trace_id == id2)
            .expect("slow query must be logged");
        assert_eq!(entry.detail, vec!["second".to_string()]);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        for _ in 0..RING_CAPACITY + 8 {
            let _t = begin(next_id(), "filler");
            let _s = span("fill");
        }
        assert!(recent(usize::MAX).len() <= RING_CAPACITY);
    }

    #[test]
    fn trace_ring_wraparound_retains_newest_in_issue_order() {
        const ISSUED: usize = RING_CAPACITY + 44;
        let mut issued = Vec::with_capacity(ISSUED);
        for _ in 0..ISSUED {
            let id = next_id();
            issued.push(id);
            let _t = begin(id, "EXEC wrap 0");
            let _s = span("wrap-fill");
        }
        let all = recent(usize::MAX);
        assert!(all.len() <= RING_CAPACITY);
        let mut ids: Vec<u64> = all.iter().map(|t| t.id).collect();
        // FIFO eviction drops oldest-first, so whichever of our traces
        // survive must be exactly the newest suffix of what we issued,
        // in issue order, with nothing duplicated or reordered.
        let ours: Vec<u64> = ids
            .iter()
            .copied()
            .filter(|id| issued.contains(id))
            .collect();
        assert!(!ours.is_empty(), "our newest traces must be retained");
        assert!(
            ours.len() < ISSUED,
            "the ring must have evicted the oldest of {ISSUED} traces"
        );
        assert_eq!(ours, issued[ISSUED - ours.len()..]);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate trace ids in the ring");
        // The newest-n view is the tail of the full listing.
        let tail: Vec<u64> = recent(8).iter().map(|t| t.id).collect();
        let full: Vec<u64> = recent(usize::MAX).iter().map(|t| t.id).collect();
        assert_eq!(tail.len(), 8);
        assert_eq!(tail, full[full.len() - 8..]);
    }

    #[test]
    fn slow_ring_wraparound_retains_newest_in_issue_order() {
        const ISSUED: usize = RING_CAPACITY + 44;
        set_slow_ms(0); // every trace counts as slow
        let mut issued = Vec::with_capacity(ISSUED);
        for _ in 0..ISSUED {
            let id = next_id();
            issued.push(id);
            let _t = begin(id, "EXEC slow-wrap 0");
        }
        set_slow_ms(SLOW_MS_UNSET);
        let all = slow_queries(usize::MAX);
        assert!(all.len() <= RING_CAPACITY);
        // Sibling tests toggle the process-wide threshold concurrently, so
        // a prefix of ours can be missing — but the survivors must still
        // appear in issue order with no duplicates, and more than the ring
        // holds can never survive.
        let ours: Vec<u64> = all
            .iter()
            .map(|s| s.trace_id)
            .filter(|id| issued.contains(id))
            .collect();
        assert!(ours.len() < ISSUED, "the slow ring must have evicted");
        let mut expect = issued.clone();
        expect.retain(|id| ours.contains(id));
        assert_eq!(ours, expect, "survivors must keep issue order");
        let mut deduped = ours.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), ours.len(), "duplicate slow-log entries");
        // The newest-n view is the tail of the full listing.
        let tail: Vec<u64> = slow_queries(8).iter().map(|s| s.trace_id).collect();
        let full: Vec<u64> = slow_queries(usize::MAX)
            .iter()
            .map(|s| s.trace_id)
            .collect();
        assert_eq!(tail.len(), 8);
        assert_eq!(tail, full[full.len() - 8..]);
    }
}
