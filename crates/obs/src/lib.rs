//! Zero-dependency observability for the MATLANG workspace.
//!
//! Pure `std`: atomics for the hot paths, one `RwLock` around the (cold)
//! metric-registration map, and a `Mutex` around the bounded trace / slow-query
//! ring buffers.  The crate deliberately has no other dependencies so every
//! other crate in the workspace — including `matlang_matrix` at the bottom of
//! the dependency graph — can link it without cycles.
//!
//! Three parts:
//!
//! * [`metrics`] — a process-wide registry of monotonic [`Counter`]s,
//!   [`Gauge`]s and log₂-bucketed latency [`Histogram`]s.  Updates are relaxed
//!   atomic operations; handles are `&'static` and are meant to be cached in
//!   `OnceLock` statics at the call site (the [`counter!`], [`gauge!`] and
//!   [`histogram!`] macros do exactly that), so a hot-path increment is a
//!   branch on the global enable flag plus one `fetch_add`.
//!   [`metrics::render`] emits Prometheus-style text exposition with
//!   p50/p95/p99 quantiles interpolated from the histogram buckets.
//!
//! * [`trace`] — span-based tracing.  A session layer calls
//!   [`trace::begin`] with a fresh [`trace::next_id`]; downstream code opens
//!   child spans with [`trace::span`] (a no-op when no trace is active on the
//!   current thread).  When the root guard drops, the finished trace —
//!   parent span plus children — is recorded into a bounded ring buffer, and
//!   traces slower than the `MATLANG_SLOW_MS` threshold additionally land in
//!   the slow-query log.
//!
//! * [`export`] — renders finished traces from the ring as Chrome
//!   trace-event JSON (`chrome://tracing` / Perfetto), with a hand-rolled
//!   validating parser for tests and smoke checks.
//!
//! The whole subsystem can be switched off at runtime with [`set_enabled`]
//! (or at startup with `MATLANG_OBS=0`); when disabled, counters,
//! histograms and traces all short-circuit to a single relaxed load so the
//! instrumented hot paths stay within the release-guard overhead budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub mod export;
pub mod metrics;
pub mod trace;

pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};

/// Global on/off switch for metric recording and trace capture.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// One-time latch for the `MATLANG_OBS` environment override.
static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Is observability recording currently enabled?
///
/// The first call honours the `MATLANG_OBS` environment variable (`0`,
/// `off` or `false` disable recording at startup); afterwards the flag is
/// whatever [`set_enabled`] last set.  A single relaxed load on the hot path.
#[inline]
pub fn enabled() -> bool {
    ENV_INIT.get_or_init(|| {
        if let Ok(v) = std::env::var("MATLANG_OBS") {
            let v = v.trim();
            if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Turn observability recording on or off process-wide.
///
/// Used by the release-mode overhead guard to measure the instrumented warm
/// `EXEC` path against the same binary with recording disabled.
pub fn set_enabled(on: bool) {
    enabled(); // latch the env override first so it cannot clobber `on` later
    ENABLED.store(on, Ordering::Relaxed);
}

/// Cache a `&'static Counter` handle for `$name` in a local `OnceLock`.
///
/// Expands to an expression of type `&'static Counter`; registration happens
/// once, every later evaluation is a single static load.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Cache a `&'static Gauge` handle for `$name` in a local `OnceLock`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Cache a `&'static Histogram` handle for `$name` in a local `OnceLock`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_defaults_to_true() {
        // MATLANG_OBS is not set in the test environment; the default must
        // be "recording on" so a fresh server exposes data without opt-in.
        assert!(super::enabled());
    }

    #[test]
    fn handle_macros_return_stable_pointers() {
        let a = counter!("macro_test_total");
        let b = counter!("macro_test_total");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert!(a.get() >= 1);
        let h1 = histogram!("macro_test_us");
        let h2 = histogram!("macro_test_us");
        assert!(std::ptr::eq(h1, h2));
        let g1 = gauge!("macro_test_gauge");
        g1.set(-3);
        assert_eq!(gauge!("macro_test_gauge").get(), -3);
    }
}
