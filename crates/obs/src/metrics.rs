//! Lock-free metrics: counters, gauges, log₂-bucketed histograms, and a
//! process-wide registry with Prometheus-style text exposition.
//!
//! The registry map is behind an `RwLock`, but that lock is only taken when a
//! metric is first registered (and when [`render`] walks the map).  Handles
//! are `&'static` — leaked once per metric name — so hot paths cache them in
//! `OnceLock` statics (see the [`counter!`](crate::counter) family of macros)
//! and every update is a relaxed atomic operation with no lock in sight.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Number of histogram buckets: one for zero plus one per power of two up to
/// `2⁶³..=u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonic counter.  `inc`/`add` are relaxed atomic adds gated on the
/// global enable flag.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh, unregistered counter (registered ones come from
    /// [`Registry::counter`]).
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge (current value of something, e.g. live sessions).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh, unregistered gauge.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` samples (latencies in microseconds by
/// convention, but unit-agnostic).
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i − 1]`, so bucket boundaries are the powers of two and the
/// last bucket (`i = 64`) covers `[2⁶³, u64::MAX]`.  Every update is two
/// relaxed `fetch_add`s plus one for the running sum — no locks, no
/// allocation — and quantiles are recovered by linear interpolation inside
/// the bucket where the requested rank falls.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array from a const item.
        // The const is a repeat seed, never a shared value, so the
        // interior-mutability lint does not apply.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket index for a sample: 0 for 0, otherwise the bit length of
    /// `v` (so 1 → 1, 2..=3 → 2, 4..=7 → 3, …, `u64::MAX` → 64).
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive `[lower, upper]` range of values that land in bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        if crate::enabled() {
            self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps on overflow; latencies in µs would need
    /// ~585 000 years of accumulated time to wrap).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by finding the bucket that
    /// contains the rank `q·count` and interpolating linearly between the
    /// bucket's bounds.  Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_of(&self.buckets(), q)
    }
}

/// The quantile estimator shared by [`Histogram::quantile`] and windowed
/// [`HistogramSnapshot`] diffs: find the bucket containing the rank
/// `q·count` and interpolate linearly inside its bounds.
fn quantile_of(buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = cum + c;
        if (next as f64) >= rank {
            let (lo, hi) = Histogram::bucket_bounds(i);
            let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
            return lo as f64 + frac * (hi - lo) as f64;
        }
        cum = next;
    }
    // Rank beyond the last non-empty bucket (q == 1.0 rounding): the max
    // representable value of the highest occupied bucket.
    let last = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
    Histogram::bucket_bounds(last).1 as f64
}

/// A point-in-time copy of one histogram's state, diffable against a later
/// copy to recover per-window quantiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (same bucketing as [`Histogram`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all samples at snapshot time.
    pub sum: u64,
    /// Number of samples at snapshot time.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Interpolated `q`-quantile of the samples in this snapshot.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_of(&self.buckets, q)
    }

    /// The samples recorded *between* `earlier` and this snapshot — the
    /// windowed histogram.  Counters are monotone, so per-bucket saturating
    /// subtraction is exact.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, (now, old)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *out = now.saturating_sub(*old);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.wrapping_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
        }
    }
}

/// A timestamped copy of every registered metric — the unit the windowed
/// ring stores and [`render_window_lines`] diffs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Microseconds since the process's snapshot clock started.
    pub at_us: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Microseconds on the process-wide monotonic snapshot clock (0 at the
/// first read).
pub fn clock_us() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}

// A metric handle bundle; copying it out of the map under the read lock is
// what lets callers keep using the handle lock-free afterwards.
#[derive(Clone, Copy)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The process-wide metric registry: a name → metric map.  Registration
/// (cold) takes the write lock once per name; lookups for already-registered
/// names take the read lock, and callers are expected to cache the returned
/// `&'static` handle so steady-state updates touch no lock at all.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Get or register the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> &'static Counter {
        match self.get_or_insert(name, || Metric::Counter(Box::leak(Box::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Get or register the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Box::leak(Box::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or register the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Box::leak(Box::default()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.metrics.read().unwrap().get(name) {
            return *m;
        }
        let mut map = self.metrics.write().unwrap();
        *map.entry(name.to_string()).or_insert_with(make)
    }

    /// A timestamped copy of every registered metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.read().unwrap();
        let mut snap = MetricsSnapshot {
            at_us: clock_us(),
            ..MetricsSnapshot::default()
        };
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            buckets: h.buckets(),
                            sum: h.sum(),
                            count: h.count(),
                        },
                    );
                }
            }
        }
        snap
    }

    /// Render every registered metric as Prometheus-style text exposition,
    /// one line per element, in name order.  Histograms are rendered as
    /// summaries with interpolated p50/p95/p99 quantiles plus `_sum` and
    /// `_count` series.
    pub fn render_lines(&self) -> Vec<String> {
        let map = self.metrics.read().unwrap();
        let mut lines = Vec::with_capacity(map.len() * 2);
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    lines.push(format!("# TYPE {name} counter"));
                    lines.push(format!("{name} {}", c.get()));
                }
                Metric::Gauge(g) => {
                    lines.push(format!("# TYPE {name} gauge"));
                    lines.push(format!("{name} {}", g.get()));
                }
                Metric::Histogram(h) => {
                    lines.push(format!("# TYPE {name} summary"));
                    for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                        lines.push(format!(
                            "{name}{{quantile=\"{label}\"}} {:.1}",
                            h.quantile(q)
                        ));
                    }
                    lines.push(format!("{name}_sum {}", h.sum()));
                    lines.push(format!("{name}_count {}", h.count()));
                }
            }
        }
        lines
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Render the global registry as one newline-terminated exposition string.
pub fn render() -> String {
    let mut out = String::new();
    for line in registry().render_lines() {
        let _ = writeln!(out, "{line}");
    }
    out
}

/// How many periodic snapshots the windowed ring retains.  At one snapshot
/// per `METRICS`/`METRICS WINDOW` request this bounds both memory and the
/// lookback horizon; older snapshots fall off the front.
pub const WINDOW_RING_CAPACITY: usize = 128;

fn window_ring() -> &'static Mutex<VecDeque<MetricsSnapshot>> {
    static RING: OnceLock<Mutex<VecDeque<MetricsSnapshot>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(WINDOW_RING_CAPACITY)))
}

/// Take a snapshot of the global registry and push it into the bounded
/// window ring.  Returns the snapshot timestamp ([`clock_us`]).  The server
/// records one on every `METRICS` request, so the ring accrues baselines
/// without any background thread.
pub fn record_snapshot() -> u64 {
    let snap = registry().snapshot();
    let at = snap.at_us;
    let mut ring = window_ring().lock().expect("window ring poisoned");
    if ring.len() == WINDOW_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(snap);
    at
}

/// Render the **windowed** view of the global registry over (roughly) the
/// last `secs` seconds, one line per element.
///
/// The baseline is the most recent ring snapshot at least `secs` old —
/// falling back to the oldest retained snapshot when the ring is younger
/// than the request, and to an empty baseline (process lifetime) when the
/// ring is empty.  Counters render as windowed deltas plus per-second
/// rates, gauges as their current value, histograms as windowed
/// p50/p95/p99 with `_sum`/`_count` deltas.  The current snapshot is
/// recorded into the ring afterwards, so consecutive calls see each other
/// as baselines.
pub fn render_window_lines(secs: u64) -> Vec<String> {
    let now = registry().snapshot();
    let horizon_us = secs.saturating_mul(1_000_000);
    let baseline = {
        let ring = window_ring().lock().expect("window ring poisoned");
        ring.iter()
            .rev()
            .find(|s| now.at_us.saturating_sub(s.at_us) >= horizon_us)
            .or_else(|| ring.front())
            .cloned()
            .unwrap_or_default()
    };
    let span_us = now.at_us.saturating_sub(baseline.at_us);
    let span_s = span_us as f64 / 1e6;
    let rate_div = span_s.max(1e-6);

    let mut lines = Vec::with_capacity(now.counters.len() * 2 + 8);
    lines.push(format!(
        "# window requested_s={secs} actual_s={span_s:.3} baseline_at_us={}",
        baseline.at_us
    ));
    for (name, &value) in &now.counters {
        let delta = value.saturating_sub(baseline.counters.get(name).copied().unwrap_or(0));
        lines.push(format!("# TYPE {name}_delta gauge"));
        lines.push(format!("{name}_delta {delta}"));
        lines.push(format!("# TYPE {name}_rate gauge"));
        lines.push(format!("{name}_rate {:.3}", delta as f64 / rate_div));
    }
    for (name, &value) in &now.gauges {
        lines.push(format!("# TYPE {name} gauge"));
        lines.push(format!("{name} {value}"));
    }
    for (name, hist) in &now.histograms {
        let window = hist.since(baseline.histograms.get(name).unwrap_or(&Default::default()));
        lines.push(format!("# TYPE {name} summary"));
        for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            lines.push(format!(
                "{name}{{quantile=\"{label}\"}} {:.1}",
                window.quantile(q)
            ));
        }
        lines.push(format!("{name}_sum {}", window.sum));
        lines.push(format!("{name}_count {}", window.count));
    }

    let mut ring = window_ring().lock().expect("window ring poisoned");
    if ring.len() == WINDOW_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(now);
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn bucket_boundaries_cover_the_edges() {
        // Satellite: explicit coverage of 0, 1, u64::MAX and bucket edges.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..64 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(lo, 1u64 << (i - 1));
            assert_eq!(hi, (1u64 << i) - 1);
            // The bounds round-trip: both edges map back to bucket i, and
            // the neighbours of the edges fall in the adjacent buckets.
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            assert_eq!(Histogram::bucket_index(hi + 1), i + 1);
        }
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
    }

    #[test]
    fn histogram_observe_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram reads 0");
        h.observe(0);
        h.observe(1);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX.wrapping_add(1)); // documented wrap
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[64], 1);

        // A cluster of identical samples pins the median inside one bucket.
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(100); // bucket 7: [64, 127]
        }
        let p50 = h.quantile(0.5);
        assert!((64.0..=127.0).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(0.99) <= 127.0);
        assert_eq!(h.quantile(1.0), 127.0);
        assert_eq!(h.quantile(0.0), 64.0);
    }

    #[test]
    fn quantiles_interpolate_across_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(8); // bucket 4: [8, 15]
        }
        for _ in 0..10 {
            h.observe(1000); // bucket 10: [512, 1023]
        }
        assert!(h.quantile(0.5) <= 15.0);
        let p99 = h.quantile(0.99);
        assert!((512.0..=1023.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn concurrent_counter_and_histogram_updates_are_exact() {
        // Satellite: concurrent updates under both MATLANG_THREADS settings.
        // The env var steers the matrix kernels, not this crate, so here we
        // spawn the equivalent worker counts directly: the CI matrix runs
        // this test under both MATLANG_THREADS=1 and =4 process environments.
        let threads: usize = match std::env::var("MATLANG_THREADS") {
            Ok(v) => v.trim().parse().unwrap_or(4).max(1),
            Err(_) => 4,
        };
        let per_thread: u64 = 100_000;
        let c = Arc::new(Counter::new());
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..threads {
            let c = Arc::clone(&c);
            let h = Arc::clone(&h);
            handles.push(thread::spawn(move || {
                for i in 0..per_thread {
                    c.inc();
                    h.observe(t as u64 * per_thread + i);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let n = threads as u64 * per_thread;
        assert_eq!(c.get(), n, "relaxed adds must not lose increments");
        assert_eq!(h.count(), n);
        assert_eq!(h.buckets().iter().sum::<u64>(), n);
        // Sum of 0..n is exact under relaxed accumulation too.
        assert_eq!(h.sum(), n * (n - 1) / 2);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let r = Registry::default();
        r.counter("test_exec_total").add(3);
        r.gauge("test_sessions").set(2);
        r.histogram("test_latency_us").observe(10);
        let text = r.render_lines().join("\n");
        assert!(text.contains("# TYPE test_exec_total counter"));
        assert!(text.contains("test_exec_total 3"));
        assert!(text.contains("# TYPE test_sessions gauge"));
        assert!(text.contains("test_sessions 2"));
        assert!(text.contains("# TYPE test_latency_us summary"));
        assert!(text.contains("test_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("test_latency_us_sum 10"));
        assert!(text.contains("test_latency_us_count 1"));
    }

    #[test]
    fn snapshots_copy_every_metric_kind() {
        let r = Registry::default();
        r.counter("snap_total").add(7);
        r.gauge("snap_gauge").set(-2);
        r.histogram("snap_us").observe(100);
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("snap_total"), Some(&7));
        assert_eq!(snap.gauges.get("snap_gauge"), Some(&-2));
        let h = snap.histograms.get("snap_us").expect("histogram snapshot");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 100);
        assert_eq!(h.buckets[Histogram::bucket_index(100)], 1);
    }

    #[test]
    fn histogram_snapshot_diffs_recover_windowed_quantiles() {
        let h = Histogram::new();
        for _ in 0..50 {
            h.observe(8); // bucket 4: [8, 15]
        }
        let before = HistogramSnapshot {
            buckets: h.buckets(),
            sum: h.sum(),
            count: h.count(),
        };
        for _ in 0..50 {
            h.observe(1000); // bucket 10: [512, 1023]
        }
        let after = HistogramSnapshot {
            buckets: h.buckets(),
            sum: h.sum(),
            count: h.count(),
        };
        let window = after.since(&before);
        assert_eq!(window.count, 50);
        assert_eq!(window.sum, 50 * 1000);
        // The window contains only the late cluster, so even the median is
        // in the high bucket — the lifetime histogram's median is not.
        let p50 = window.quantile(0.5);
        assert!((512.0..=1023.0).contains(&p50), "windowed p50 = {p50}");
        assert!(after.quantile(0.5) <= 15.0, "lifetime p50 stays low");
    }

    #[test]
    fn windowed_rendering_diffs_against_ring_baselines() {
        // The window ring and registry are process-global; unique metric
        // names keep this monotone under parallel tests.
        registry().counter("win_render_total").add(5);
        record_snapshot();
        registry().counter("win_render_total").add(10);
        registry().histogram("win_render_us").observe(100);
        // secs=0: the baseline is the most recent snapshot (age ≥ 0).
        let lines = render_window_lines(0);
        let text = lines.join("\n");
        assert!(
            lines[0].starts_with("# window requested_s=0 actual_s="),
            "header: {}",
            lines[0]
        );
        assert!(
            text.contains("win_render_total_delta 10"),
            "windowed counter delta missing:\n{text}"
        );
        assert!(
            text.contains("win_render_total_rate "),
            "windowed counter rate missing:\n{text}"
        );
        assert!(
            text.contains("win_render_us{quantile=\"0.5\"}"),
            "windowed histogram quantiles missing:\n{text}"
        );
        assert!(
            text.contains("win_render_us_sum 100"),
            "windowed histogram sum missing:\n{text}"
        );
        assert!(
            text.contains("win_render_us_count 1"),
            "windowed histogram count missing:\n{text}"
        );
    }

    #[test]
    fn registry_handles_are_stable_and_kind_checked() {
        let r = Registry::default();
        let a = r.counter("stable");
        let b = r.counter("stable");
        assert!(std::ptr::eq(a, b));
        let err = std::panic::catch_unwind(|| r.histogram("stable"));
        assert!(err.is_err(), "kind mismatch must panic");
    }
}
