//! Trace export: render finished traces as Chrome trace-event JSON.
//!
//! The [trace ring](crate::trace) keeps the last 256 finished traces with
//! their span trees.  [`render_chrome_trace`] turns a slice of those into
//! the JSON array format understood by `chrome://tracing`, Perfetto, and
//! Speedscope, so a `TRACE EXPORT` scrape can be dropped straight into a
//! flamegraph viewer.
//!
//! Layout: each trace becomes one thread lane (`tid` = position in the
//! slice, newest last), holding a complete `"X"` event for the whole
//! request followed by one `"X"` event per span at its recorded offset.
//! Ring timestamps are relative to each trace's start — absolute wall
//! times are not recorded — so lanes all start at `ts = 0`; within a lane
//! the offsets are real and nesting renders faithfully.
//!
//! The crate is zero-dependency, so both the writer and the validating
//! parser ([`validate_chrome_trace`], used by wire tests and the CI smoke
//! binary) are hand-rolled here.

use crate::trace::TraceRecord;
use std::fmt::Write as _;

/// Escapes `s` into `out` as a JSON string literal (without the quotes).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct Event<'a> {
    name: &'a str,
    cat: &'a str,
    tid: usize,
    ts: u64,
    dur: u64,
    trace_id: u64,
}

fn push_event(out: &mut String, first: &mut bool, e: Event<'_>) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  {\"name\":\"");
    escape_json_into(out, e.name);
    let _ = write!(
        out,
        "\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":\"{:016x}\"}}}}",
        e.cat, e.ts, e.dur, e.tid, e.trace_id
    );
}

/// Renders `traces` as a Chrome trace-event JSON array (the "JSON Array
/// Format": a bare array of complete-duration `"X"` events).
///
/// The output is a single self-contained JSON document; an empty slice
/// renders as `[]`.
pub fn render_chrome_trace(traces: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(128 + traces.len() * 160);
    out.push_str("[\n");
    let mut first = true;
    for (tid, trace) in traces.iter().enumerate() {
        push_event(
            &mut out,
            &mut first,
            Event {
                name: &trace.label,
                cat: "request",
                tid,
                ts: 0,
                dur: trace.total_us,
                trace_id: trace.id,
            },
        );
        for span in &trace.spans {
            push_event(
                &mut out,
                &mut first,
                Event {
                    name: &span.name,
                    cat: "span",
                    tid,
                    ts: span.start_us,
                    dur: span.dur_us,
                    trace_id: trace.id,
                },
            );
        }
    }
    out.push_str("\n]\n");
    out
}

/// Validates that `text` is a well-formed Chrome trace-event JSON array
/// and returns the number of events.  Checks full JSON syntax (a minimal
/// recursive-descent parse — the crate is zero-dependency) plus the trace
/// schema: the top level is an array, every element an object carrying
/// `name`/`ph`/`ts`/`pid`/`tid` keys.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let events = p.parse_array_of_events()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(events)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    /// Parses the top-level `[ {event}, ... ]`, returning the event count
    /// after checking each event object for the required trace keys.
    fn parse_array_of_events(&mut self) -> Result<usize, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut count = 0;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(0);
        }
        loop {
            self.skip_ws();
            let keys = self.parse_object()?;
            for required in ["name", "ph", "ts", "pid", "tid"] {
                if !keys.iter().any(|k| k == required) {
                    return Err(format!("event {count} missing key `{required}`"));
                }
            }
            count += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(count);
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    /// Parses an object, returning its top-level key names.
    fn parse_object(&mut self) -> Result<Vec<String>, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut keys = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            keys.push(self.parse_string()?);
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.parse_value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(keys);
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => self.parse_string().map(|_| ()),
            Some(b'{') => self.parse_object().map(|_| ()),
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.parse_value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => {
                            return Err(format!(
                                "expected `,` or `]` at byte {}, found {:?}",
                                self.pos,
                                other.map(|c| c as char)
                            ))
                        }
                    }
                }
            }
            Some(b't') => self.parse_literal("true"),
            Some(b'f') => self.parse_literal("false"),
            Some(b'n') => self.parse_literal("null"),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "unexpected value start at byte {}: {:?}",
                self.pos,
                other.map(|c| c as char)
            )),
        }
    }

    fn parse_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                saw_digit |= b.is_ascii_digit();
                self.pos += 1;
            } else {
                break;
            }
        }
        if saw_digit {
            Ok(())
        } else {
            Err(format!("malformed number at byte {start}"))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!("bad \\u escape at byte {}", self.pos))
                                    }
                                }
                            }
                            out.push('\u{fffd}');
                        }
                        Some(e @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                            self.pos += 1;
                            out.push(match e {
                                b'n' => '\n',
                                b'r' => '\r',
                                b't' => '\t',
                                other => other as char,
                            });
                        }
                        other => {
                            return Err(format!(
                                "bad escape at byte {}: {:?}",
                                self.pos,
                                other.map(|c| c as char)
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRecord;

    fn sample_trace(id: u64, label: &str) -> TraceRecord {
        TraceRecord {
            id,
            label: label.to_string(),
            total_us: 120,
            spans: vec![
                SpanRecord {
                    name: "plan".to_string(),
                    parent: None,
                    start_us: 3,
                    dur_us: 40,
                },
                SpanRecord {
                    name: "execute:matmul".to_string(),
                    parent: Some(0),
                    start_us: 45,
                    dur_us: 70,
                },
            ],
        }
    }

    #[test]
    fn renders_valid_chrome_trace_json() {
        let traces = vec![sample_trace(1, "EXEC g 0"), sample_trace(2, "UPDATE g G 3")];
        let json = render_chrome_trace(&traces);
        // 2 request lanes + 2 spans each.
        assert_eq!(validate_chrome_trace(&json), Ok(6));
        assert!(json.contains("\"tid\":0") && json.contains("\"tid\":1"));
        assert!(json.contains("\"trace_id\":\"0000000000000001\""));
    }

    #[test]
    fn empty_slice_renders_empty_array() {
        let json = render_chrome_trace(&[]);
        assert_eq!(validate_chrome_trace(&json), Ok(0));
    }

    #[test]
    fn escapes_hostile_labels() {
        let mut t = sample_trace(7, "EXEC \"quoted\" \\slash\n\ttab");
        t.spans[0].name = "span\u{0001}ctl".to_string();
        let json = render_chrome_trace(&[t]);
        assert_eq!(validate_chrome_trace(&json), Ok(3));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\u0001"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"a\":1}").is_err()); // not an array
        assert!(validate_chrome_trace("[{\"name\":\"x\"}]").is_err()); // missing keys
        assert!(validate_chrome_trace(
            "[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":0}] junk"
        )
        .is_err());
        assert!(validate_chrome_trace(
            "[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":0}]"
        )
        .is_ok());
    }
}
