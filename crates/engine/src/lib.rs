//! Query planning and parallel execution for MATLANG expressions.
//!
//! The tree-walking evaluator in `matlang_core` implements the paper's
//! semantics directly: every occurrence of a subexpression is re-evaluated,
//! and a Σ/Π loop re-evaluates loop-invariant subterms (such as `Gᵀ·G`
//! inside a Σ-body) on every iteration.  This crate adds the layer the
//! paper leaves as future work — *efficient* evaluation:
//!
//! * [`Planner`] compiles a type-checked [`matlang_core::Expr`] into a
//!   DAG-shaped physical [`Plan`]: the algebraic rewriter
//!   (`matlang_core::rewrite`) runs first, then the **cost-based rewrite
//!   layer** ([`rewrite`]) reorders matrix chains by the classic DP,
//!   pushes transposes into products and `1(e)` onto its row source, and
//!   products against a diagonalized vector are fused into scaling
//!   kernels; structurally identical subexpressions are hash-consed to a
//!   single node (CSE), loop-invariant nodes are identified, and a simple
//!   nnz/density cost model built from [`InstanceStats`] chooses a
//!   storage representation per node and marks heavy products for the
//!   threaded kernels.  Every cost-based rewrite is recorded in the
//!   [`PlanReport`].
//! * [`Executor`] evaluates the DAG with one memoized result per shared or
//!   loop-invariant node, dropping cache entries precisely when a loop
//!   rebinds a variable they depend on — so hoisting falls out of cache
//!   scoping — and runs marked products on the row-partitioned
//!   `std::thread::scope` kernels of [`matlang_matrix::parallel`].
//! * [`Engine`] ties the two together, including **batched evaluation** of
//!   many queries over one instance with a shared node cache
//!   ([`Engine::evaluate_batch`]).
//!
//! Results agree with [`matlang_core::evaluate`] on every storage backend
//! — same values, same error cases (the threaded kernels partition rows
//! without changing per-row arithmetic; the `rewrite::simplify` pre-pass
//! is gated by [`constants_fold_exactly`] so its ℝ-based constant folding
//! never runs over a semiring where it would change results; the
//! cost-based rules are semiring identities whose reordering/dropping is
//! additionally gated on provable totality, so error discriminants and
//! their order are preserved too).  Chain reordering does change the
//! *association* of products, so over ℝ floating point the low-order bits
//! can differ when intermediates round — disable with
//! `Engine::builder().cost_rewrites(false)` for strict operation-order
//! parity.
//! The `engine_parity` test suite enforces agreement over the full
//! evaluator corpus and randomized expressions across the Boolean, ℕ and
//! tropical semirings.
//!
//! ```
//! use matlang_core::{Expr, FunctionRegistry, Instance};
//! use matlang_engine::Engine;
//! use matlang_matrix::Matrix;
//! use matlang_semiring::Real;
//!
//! // Σv. vᵀ·(GᵀG)·v — the Gram matrix is loop-invariant and computed once.
//! let gram = Expr::var("G").t().mm(Expr::var("G"));
//! let e = Expr::sum("v", "n", Expr::var("v").t().mm(gram).mm(Expr::var("v")));
//! let instance: Instance<Real> = Instance::new()
//!     .with_dim("n", 2)
//!     .with_matrix("G", Matrix::from_f64_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap());
//! let out = Engine::new()
//!     .evaluate(&e, &instance, &FunctionRegistry::standard_field())
//!     .unwrap();
//! assert_eq!(out.as_scalar().unwrap(), Real(6.0));
//! ```

pub mod delta;
pub mod exec;
pub mod plan;
pub mod planner;
pub mod rewrite;

pub use delta::{DeltaFallback, DeltaOverlay, DeltaReport};
pub use exec::{cache_residency, ExecOptions, ExecStats, Executor, NodeCache, NodeSample};
pub use plan::{
    AppliedRewrite, NodeEstimate, NodeId, Plan, PlanNode, PlanOp, PlanReport, ReprChoice,
};
pub use planner::{InstanceStats, ObservedStats, PlanOptions, Planner, VarStats};
pub use rewrite::{rewrite_with_stats, RewriteOutcome};

use matlang_core::{EvalError, Expr, FunctionRegistry, Instance};
use matlang_matrix::MatrixStorage;
use matlang_semiring::Semiring;

/// A stable fingerprint of an expression's structure, suitable as the
/// query half of a plan-cache key (the instance half is
/// [`InstanceStats::schema_fingerprint`]).
///
/// The fingerprint hashes the expression's canonical textual form, which
/// `matlang_parser` guarantees round-trips (`parse(e.to_string()) == e`),
/// so two expressions collide exactly when they are structurally equal —
/// modulo ordinary 64-bit hash collisions — independently of how they were
/// built.
pub fn expr_fingerprint(expr: &Expr) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    expr.to_string().hash(&mut hasher);
    hasher.finish()
}

/// Whether `K` interprets literal constants compatibly with `f64`
/// arithmetic — the soundness condition for folding the
/// `matlang_core::rewrite` constant rules into a plan evaluated over `K`.
///
/// The rewriter folds `1 × e → e`, `c + d → c ⊕ d` and `c · d → c ⊙ d`
/// *in `f64`*; that is exact precisely when [`Semiring::from_f64`] maps
/// `0`/`1` to the semiring's identities and commutes with addition and
/// multiplication on arbitrary constants — including the negatives and
/// fractions the paper's derived expressions use (`minus` desugars to
/// `+ (−1) ×`, Csanky uses `1/2`).  The probe checks those identities on
/// sample points, so only faithful ℝ-embeddings (e.g. [`Real`]) pass;
/// the tropical semirings fail on `⊕ = min`, and 𝔹/ℕ/ℤ fail on negative
/// or fractional constants (`from_f64` saturates or rounds there, so
/// e.g. `1 + (−1)` must evaluate through the semiring, not fold to `0`).
/// [`Engine`] consults this so that planned evaluation is semantically
/// identical to [`matlang_core::evaluate`] over *every* exported
/// semiring, constants included.
///
/// [`Real`]: matlang_semiring::Real
pub fn constants_fold_exactly<K: Semiring>() -> bool {
    let c = |v: f64| K::from_f64(v);
    c(0.0).is_zero()
        && c(1.0).is_one()
        && c(2.0).add(&c(3.0)) == c(5.0)
        && c(2.0).mul(&c(3.0)) == c(6.0)
        && c(-1.0).mul(&c(3.0)) == c(-3.0)
        && c(1.0).add(&c(-1.0)) == c(0.0)
        && c(0.5).mul(&c(2.0)) == c(1.0)
}

/// The result of a batched evaluation: per-query results and cache
/// statistics, plus the planner's report for the whole batch.
#[derive(Debug)]
pub struct BatchOutcome<M> {
    /// One result per query, in input order.  A failing query occupies its
    /// slot without aborting the rest of the batch.
    pub results: Vec<Result<M, EvalError>>,
    /// Cache/parallelism counters attributed to each query.
    pub per_query: Vec<ExecStats>,
    /// Totals across the batch.
    pub stats: ExecStats,
    /// What the planner did with the batch.
    pub report: PlanReport,
}

/// Planner + executor behind one convenience façade.
///
/// An `Engine` is cheap to construct and stateless across calls; the node
/// cache lives for one [`evaluate`](Engine::evaluate) or
/// [`evaluate_batch`](Engine::evaluate_batch) call (batches share it across
/// their queries).  For finer control — reusing a [`Plan`], inspecting
/// [`PlanReport`], driving roots manually — use [`Planner`] and
/// [`Executor`] directly.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    /// Planning configuration (simplification, parallel threshold).
    pub plan_options: PlanOptions,
    /// Execution configuration (threads, representation hints).
    pub exec_options: ExecOptions,
}

impl Engine {
    /// An engine with default options: simplification on, representation
    /// hints on, worker count from `MATLANG_THREADS` /
    /// `available_parallelism`.
    pub fn new() -> Self {
        Engine::default()
    }

    /// A typed builder over every engine option — cost rewrites,
    /// simplification, delta maintenance, thread override — replacing the
    /// accumulated one-off constructors:
    ///
    /// ```
    /// use matlang_engine::Engine;
    /// let engine = Engine::builder()
    ///     .cost_rewrites(false)
    ///     .threads(1)
    ///     .build();
    /// assert!(!engine.plan_options.cost_rewrites);
    /// ```
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Overrides the worker-thread count (`1` forces serial kernels).
    #[deprecated(since = "0.6.0", note = "use `Engine::builder().threads(n)`")]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.exec_options.threads = threads.max(1);
        self
    }

    /// Disables the `rewrite::simplify` pre-pass (see
    /// [`PlanOptions::simplify`] for when that matters).
    #[deprecated(since = "0.6.0", note = "use `Engine::builder().simplify(false)`")]
    pub fn without_simplify(mut self) -> Self {
        self.plan_options.simplify = false;
        self
    }

    /// Disables the cost-based rewrite layer — chain reordering,
    /// transpose/ones pushdown and diag-product fusion (see
    /// [`PlanOptions::cost_rewrites`]).  Useful for strict
    /// operation-order parity with the tree evaluator and as the
    /// baseline in the `rewrite_speedup` benchmark.
    #[deprecated(since = "0.6.0", note = "use `Engine::builder().cost_rewrites(false)`")]
    pub fn without_cost_rewrites(mut self) -> Self {
        self.plan_options.cost_rewrites = false;
        self
    }

    /// Plans `queries` against `instance`'s statistics without executing.
    ///
    /// The `rewrite::simplify` pre-pass runs only when it is enabled in
    /// [`PlanOptions`] **and** [`constants_fold_exactly`] holds for `K` —
    /// over semirings whose constants do not embed ℝ-compatibly (the
    /// tropical family, 𝔹/ℕ/ℤ with negative or fractional literals) the
    /// pass is skipped automatically, so planned evaluation always agrees
    /// with the tree evaluator.
    pub fn plan<K: Semiring, M: MatrixStorage<Elem = K>>(
        &self,
        queries: &[Expr],
        instance: &Instance<K, M>,
    ) -> Plan {
        let mut options = self.plan_options.clone();
        options.simplify = options.simplify && constants_fold_exactly::<K>();
        Planner::with_options(options).plan(queries, &InstanceStats::from_instance(instance))
    }

    /// Plans `queries` against **explicit** statistics — the adaptive
    /// re-planning entry point.  Same per-semiring simplify gating as
    /// [`Engine::plan`] (which is why `K` appears even though no instance
    /// is passed), but the caller supplies the [`InstanceStats`] — e.g.
    /// freshly re-collected after updates — and an [`ObservedStats`] store
    /// of execution truth for the planner to consult over its estimates.
    /// Pass `&ObservedStats::default()` to plan purely from the model.
    pub fn plan_with_stats<K: Semiring>(
        &self,
        queries: &[Expr],
        stats: &InstanceStats,
        observed: &ObservedStats,
    ) -> Plan {
        let mut options = self.plan_options.clone();
        options.simplify = options.simplify && constants_fold_exactly::<K>();
        Planner::with_options(options).plan_with_observed(queries, stats, observed)
    }

    /// Plans and evaluates a single expression.  Semantically identical to
    /// [`matlang_core::evaluate`]; faster whenever the expression has
    /// shared subexpressions, loop-invariant subterms or products heavy
    /// enough to parallelize.
    pub fn evaluate<K: Semiring, M: MatrixStorage<Elem = K>>(
        &self,
        expr: &Expr,
        instance: &Instance<K, M>,
        registry: &FunctionRegistry<K>,
    ) -> Result<M, EvalError> {
        let plan = self.plan(std::slice::from_ref(expr), instance);
        let root = plan.roots()[0];
        Executor::new(&plan, instance, registry, self.exec_options).run(root)
    }

    /// Plans and evaluates a batch of queries over one instance with a
    /// shared node cache: subterms common to several queries are computed
    /// once for the whole batch.
    pub fn evaluate_batch<K: Semiring, M: MatrixStorage<Elem = K>>(
        &self,
        queries: &[Expr],
        instance: &Instance<K, M>,
        registry: &FunctionRegistry<K>,
    ) -> BatchOutcome<M> {
        let plan = self.plan(queries, instance);
        let mut exec = Executor::new(&plan, instance, registry, self.exec_options);
        let (results, per_query) = exec.run_all();
        BatchOutcome {
            results,
            per_query,
            stats: exec.stats(),
            report: plan.report,
        }
    }
}

/// Builds an [`Engine`] from named options — the typed replacement for the
/// deprecated `with_threads` / `without_simplify` /
/// `without_cost_rewrites` one-off constructors.  Every setter has the
/// default-on semantics of [`PlanOptions`] / [`ExecOptions`]; unset fields
/// keep their defaults.
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    plan_options: PlanOptions,
    exec_options: ExecOptions,
}

impl EngineBuilder {
    /// Enables/disables the cost-based rewrite layer
    /// ([`PlanOptions::cost_rewrites`], default `true`).
    pub fn cost_rewrites(mut self, enabled: bool) -> Self {
        self.plan_options.cost_rewrites = enabled;
        self
    }

    /// Enables/disables the `rewrite::simplify` pre-pass
    /// ([`PlanOptions::simplify`], default `true`).
    pub fn simplify(mut self, enabled: bool) -> Self {
        self.plan_options.simplify = enabled;
        self
    }

    /// Enables/disables delta-maintenance policy for services running
    /// incremental updates ([`PlanOptions::delta_maintenance`], default
    /// `true`; see [`delta`]).
    pub fn delta_maintenance(mut self, enabled: bool) -> Self {
        self.plan_options.delta_maintenance = enabled;
        self
    }

    /// Overrides the worker-thread count (`1` forces serial kernels; the
    /// default follows `MATLANG_THREADS` / available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec_options.threads = threads.max(1);
        self
    }

    /// Estimated multiplications above which a product runs threaded
    /// ([`PlanOptions::parallel_work_threshold`]).
    pub fn parallel_work_threshold(mut self, threshold: f64) -> Self {
        self.plan_options.parallel_work_threshold = threshold;
        self
    }

    /// The configured engine.
    pub fn build(self) -> Engine {
        Engine {
            plan_options: self.plan_options,
            exec_options: self.exec_options,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_core::evaluate;
    use matlang_matrix::Matrix;
    use matlang_semiring::Real;

    #[test]
    fn engine_facade_matches_core_evaluate() {
        let e = Expr::sum(
            "v",
            "n",
            Expr::var("v").t().mm(Expr::var("G")).mm(Expr::var("v")),
        );
        let inst: Instance<Real> = Instance::new().with_dim("n", 3).with_matrix(
            "G",
            Matrix::from_f64_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]).unwrap(),
        );
        let registry = FunctionRegistry::standard_field();
        let engine = Engine::new();
        assert_eq!(
            engine.evaluate(&e, &inst, &registry).unwrap(),
            evaluate(&e, &inst, &registry).unwrap()
        );
        let outcome = engine.evaluate_batch(&[e.clone(), e], &inst, &registry);
        assert_eq!(outcome.results.len(), 2);
        assert_eq!(outcome.per_query.len(), 2);
        assert_eq!(outcome.report.queries, 2);
        // The second (identical) query is answered entirely from cache.
        assert_eq!(outcome.per_query[1].cache_misses, 0);
        assert!(outcome.per_query[1].cache_hits >= 1);
    }

    #[test]
    fn builder_covers_every_option() {
        let engine = Engine::builder()
            .threads(1)
            .simplify(false)
            .cost_rewrites(false)
            .delta_maintenance(false)
            .parallel_work_threshold(1e5)
            .build();
        assert_eq!(engine.exec_options.threads, 1);
        assert!(!engine.plan_options.simplify);
        assert!(!engine.plan_options.cost_rewrites);
        assert!(!engine.plan_options.delta_maintenance);
        assert_eq!(engine.plan_options.parallel_work_threshold, 1e5);
        // Defaults stay on when unset.
        let default = Engine::builder().build();
        assert!(default.plan_options.delta_maintenance);
        assert!(default.plan_options.simplify);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_still_configure() {
        // One-release shims: same effect as the builder equivalents.
        let engine = Engine::new().with_threads(1).without_simplify();
        assert_eq!(engine.exec_options.threads, 1);
        assert!(!engine.plan_options.simplify);
        let engine = Engine::new().without_cost_rewrites();
        assert!(!engine.plan_options.cost_rewrites);
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let a = Expr::var("G").t().mm(Expr::var("G"));
        let b = Expr::var("G").t().mm(Expr::var("G"));
        let c = Expr::var("G").mm(Expr::var("G").t());
        assert_eq!(expr_fingerprint(&a), expr_fingerprint(&b));
        assert_ne!(expr_fingerprint(&a), expr_fingerprint(&c));

        let inst: Instance<Real> = Instance::new()
            .with_dim("n", 3)
            .with_matrix("G", Matrix::identity(3));
        let stats = InstanceStats::from_instance(&inst);
        let same = InstanceStats::from_instance(
            &Instance::<Real>::new()
                .with_dim("n", 3)
                // Different nnz, same shapes: same schema fingerprint.
                .with_matrix("G", Matrix::zeros(3, 3)),
        );
        let different = InstanceStats::from_instance(
            &Instance::<Real>::new()
                .with_dim("n", 4)
                .with_matrix("G", Matrix::identity(4)),
        );
        assert_eq!(stats.schema_fingerprint(), same.schema_fingerprint());
        assert_ne!(stats.schema_fingerprint(), different.schema_fingerprint());
    }

    #[test]
    fn constant_folding_probe_accepts_exactly_the_real_embeddings() {
        use matlang_semiring::{Boolean, MaxPlus, MinPlus, Nat};
        assert!(constants_fold_exactly::<Real>());
        // Tropical: ⊕ is min/max, so 2 + 3 must not fold to 5.
        assert!(!constants_fold_exactly::<MinPlus>());
        assert!(!constants_fold_exactly::<MaxPlus>());
        // 𝔹/ℕ: negative and fractional literals don't embed, so folds
        // like 1 + (−1) → 0 would change results.
        assert!(!constants_fold_exactly::<Boolean>());
        assert!(!constants_fold_exactly::<Nat>());
    }

    #[test]
    fn tropical_constants_are_not_folded_by_the_engine() {
        use matlang_semiring::MinPlus;
        // Over min-plus, `1 × G` adds 1 to every entry (⊙ is +) and
        // `2 + 3` is min(2, 3): both would change under ℝ-folding, so the
        // engine must skip the simplify pass and agree with the tree
        // evaluator exactly.
        let inst: Instance<MinPlus> = Instance::new()
            .with_dim("n", 1)
            .with_matrix("G", Matrix::scalar(MinPlus(4.0)));
        let registry = FunctionRegistry::<MinPlus>::new();
        let engine = Engine::new();
        for e in [
            Expr::lit(1.0).smul(Expr::var("G")),
            Expr::lit(2.0).add(Expr::lit(3.0)),
            Expr::lit(1.0).minus(Expr::var("G")),
        ] {
            let naive = evaluate(&e, &inst, &registry).unwrap();
            let planned = engine.evaluate(&e, &inst, &registry).unwrap();
            assert_eq!(naive, planned, "engine diverged on {e} over min-plus");
        }
        let folded = evaluate(&Expr::lit(2.0).add(Expr::lit(3.0)), &inst, &registry).unwrap();
        assert_eq!(folded.as_scalar().unwrap(), MinPlus(2.0), "⊕ is min");
    }
}
