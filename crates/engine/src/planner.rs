//! The query planner: expression → hash-consed DAG plan.
//!
//! Planning is four deterministic steps:
//!
//! 1. **Simplify** — fold the algebraic rewriter
//!    ([`matlang_core::rewrite::simplify`]) into planning, recording the
//!    saved AST nodes ([`matlang_core::rewrite::savings`]) in the
//!    [`PlanReport`].
//! 2. **Hash-cons (CSE)** — intern every structurally distinct
//!    subexpression once; repeated subtrees (within a query *and across
//!    the queries of a batch*) share a [`NodeId`], so the executor computes
//!    them once.
//! 3. **Hoisting analysis** — mark the nodes that sit inside a loop body
//!    but do not depend on the loop's bound variables; the executor's
//!    scoped memo keeps exactly those nodes alive across iterations.
//! 4. **Cost model** — propagate shape / non-zero-count estimates from
//!    [`InstanceStats`] bottom-up, choose a storage representation per node
//!    (density against the thresholds of [`matlang_matrix::repr`]), and
//!    mark products heavy enough for the row-partitioned parallel kernel.

use crate::plan::{
    AppliedRewrite, ConstVal, NodeEstimate, NodeId, Plan, PlanNode, PlanOp, PlanReport, ReprChoice,
};
use matlang_core::{rewrite, Dim, Expr, Instance, MatrixType};
use matlang_matrix::repr::{MIN_ADAPTIVE_ENTRIES, SPARSIFY_THRESHOLD};
use matlang_matrix::MatrixStorage;
use matlang_semiring::Semiring;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Planner configuration.
#[derive(Clone, Debug)]
pub struct PlanOptions {
    /// Run [`matlang_core::rewrite::simplify`] on every query before
    /// planning (default `true`).
    ///
    /// The rewriter's constant-handling rules interpret literals through
    /// `f64` arithmetic, which is exact only over semirings that embed ℝ
    /// faithfully.  [`Planner`] itself is semiring-agnostic and applies
    /// this flag as given; the typed [`crate::Engine`] front door
    /// additionally gates it on [`crate::constants_fold_exactly`], so
    /// engine evaluation never folds constants over a semiring where that
    /// would change results (tropical min/max-plus, 𝔹/ℕ/ℤ with negative
    /// or fractional literals).
    pub simplify: bool,
    /// Run the cost-based rewrite layer ([`crate::rewrite`]) on every
    /// query before building the DAG, and fuse `diag(v) · A` / `A ·
    /// diag(v)` products into the scaling kernels (default `true`).
    ///
    /// Unlike [`simplify`](PlanOptions::simplify), these rules are
    /// identities in every commutative semiring (no constants are
    /// interpreted), so no per-semiring gating is needed.  They do change
    /// the association of products, so over ℝ floating point the result
    /// can differ from the tree evaluator's in the low-order bits when
    /// intermediate values round; disable for strict operation-order
    /// parity.
    pub cost_rewrites: bool,
    /// Estimated semiring multiplications above which a product node is
    /// marked for the threaded kernel (default `1e6`): below roughly a
    /// million multiply-adds, thread spawn/join overhead eats the win.
    pub parallel_work_threshold: f64,
    /// Let services maintain cached plan-node values through delta
    /// propagation ([`crate::delta`]) on incremental updates instead of
    /// invalidating and recomputing (default `true`).  The planner itself
    /// only reports coverage ([`crate::PlanReport::delta_supported_nodes`]);
    /// the flag is policy for update paths like the query server's
    /// `UPDATE`, which additionally gate on
    /// [`crate::delta::join_is_idempotent`] and the update being
    /// insert-only so patched values stay bit-identical to recomputation.
    pub delta_maintenance: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            simplify: true,
            cost_rewrites: true,
            parallel_work_threshold: 1e6,
            delta_maintenance: true,
        }
    }
}

/// Per-variable statistics of one instance matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VarStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of non-zero entries.
    pub nnz: usize,
}

/// The instance summary the cost model plans against: size-symbol values
/// and per-matrix shape / non-zero counts.  Collecting it is `O(1)` per
/// matrix for the CSR and adaptive backends and `O(rows·cols)` for dense.
#[derive(Clone, Debug, Default)]
pub struct InstanceStats {
    /// Size-symbol assignments `D(γ) = n`.
    pub dims: BTreeMap<String, usize>,
    /// Per-matrix-variable statistics.
    pub vars: BTreeMap<String, VarStats>,
}

impl InstanceStats {
    /// No statistics at all: every node plans without an estimate.
    pub fn empty() -> Self {
        InstanceStats::default()
    }

    /// Collects statistics from an instance over any storage backend.
    pub fn from_instance<K: Semiring, M: MatrixStorage<Elem = K>>(
        instance: &Instance<K, M>,
    ) -> Self {
        let mut stats = InstanceStats::default();
        for (sym, n) in instance.dims() {
            stats.dims.insert(sym.clone(), n);
        }
        for (var, m) in instance.matrices() {
            stats.vars.insert(
                var.clone(),
                VarStats {
                    rows: m.rows(),
                    cols: m.cols(),
                    nnz: m.nnz(),
                },
            );
        }
        stats
    }

    /// A fingerprint of the instance's **schema-level** shape: size-symbol
    /// assignments plus per-variable dimensions, deliberately excluding
    /// non-zero counts.  Two instances with the same fingerprint produce
    /// mutually *valid* plans: the node set, roots and dependency index
    /// are functions of the queries and shapes alone, while nnz tunes the
    /// advisory representation/parallelism hints **and**, with the
    /// cost-based rewrite layer, the chosen chain association and kernel
    /// fusions — every such variant evaluates identically over any
    /// same-schema instance, it is merely cost-tuned for the nnz profile
    /// it was planned against ([`crate::Plan::structure_fingerprint`]
    /// identifies the variant).  A plan cache — e.g. the query server's
    /// prepared-statement cache — can therefore key on `(query
    /// fingerprint, schema fingerprint)` and keep serving a cached plan
    /// across incremental instance updates.
    pub fn schema_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for (sym, n) in &self.dims {
            sym.hash(&mut hasher);
            n.hash(&mut hasher);
        }
        for (var, stats) in &self.vars {
            var.hash(&mut hasher);
            stats.rows.hash(&mut hasher);
            stats.cols.hash(&mut hasher);
        }
        hasher.finish()
    }

    pub(crate) fn dim(&self, sym: &str) -> Option<usize> {
        self.dims.get(sym).copied()
    }

    fn dim_value(&self, dim: &Dim) -> Option<usize> {
        match dim {
            Dim::One => Some(1),
            Dim::Sym(s) => self.dim(s),
        }
    }

    pub(crate) fn shape_of(&self, ty: &MatrixType) -> Option<(usize, usize)> {
        Some((self.dim_value(&ty.rows)?, self.dim_value(&ty.cols)?))
    }

    /// Overlays observed per-variable statistics: for every variable whose
    /// observed shape still matches this schema, the observed non-zero
    /// count replaces the estimate.  Observations whose shape disagrees
    /// (the schema changed since they were harvested) are ignored — they
    /// describe a matrix that no longer exists.  The
    /// [`schema_fingerprint`](InstanceStats::schema_fingerprint) is
    /// unaffected, since it deliberately excludes nnz.
    pub fn with_observed(mut self, observed: &ObservedStats) -> Self {
        for (var, obs) in &observed.vars {
            if let Some(est) = self.vars.get_mut(var) {
                if est.rows == obs.rows && est.cols == obs.cols {
                    est.nnz = obs.nnz;
                }
            }
        }
        self
    }
}

/// Interior-node observations are pruned back to the most recent plan's
/// fingerprints once the store exceeds this many entries, bounding memory
/// across arbitrarily many re-plans.
const MAX_NODE_OBSERVATIONS: usize = 4096;

/// Execution truth fed back into planning — the store behind adaptive
/// re-planning (ROADMAP item 3c).
///
/// After a plan executes, [`ObservedStats::absorb`] harvests the
/// executor's always-on per-node samples
/// ([`crate::Executor::observed_samples`]): the *actual* output shape and
/// non-zero count of every node that was computed.  Two views are kept:
///
/// * [`vars`](ObservedStats::vars) — per **variable** observations, for
///   reporting observed-vs-estimated drift (the query server's `STATS`
///   verb) and for overlaying onto an [`InstanceStats`] whose nnz may be
///   stale ([`InstanceStats::with_observed`]).
/// * [`nodes`](ObservedStats::nodes) — per **interior node**
///   observations, keyed by the structural fingerprint of the subtree
///   ([`crate::Plan::node_fingerprints`]).  The planner consults these
///   while building a new plan ([`Planner::plan_with_observed`]): a node
///   whose subtree was executed before gets its *observed* nnz instead of
///   the cost model's estimate, so representation choices — and every
///   parent estimate propagated from it — track reality.
///
/// Observations are advisory: they tune costs and representation hints,
/// never semantics, so a stale or mismatched observation can cost speed
/// but not correctness.  (A loop-bound variable shadowing an instance
/// matrix of the same name and shape can alias an observation — same
/// advisory-only caveat.)
#[derive(Clone, Debug, Default)]
pub struct ObservedStats {
    /// Per instance-variable observed statistics, as last executed.
    pub vars: BTreeMap<String, VarStats>,
    /// Interior-node observations keyed by structural fingerprint.
    pub nodes: BTreeMap<u64, VarStats>,
    /// How many executions have been absorbed.
    pub executions: u64,
}

impl ObservedStats {
    /// A store with no observations.
    pub fn new() -> Self {
        ObservedStats::default()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.nodes.is_empty()
    }

    /// Harvests one execution: for every plan node that was actually
    /// computed (`sample.computed > 0`; cache hits carry no fresh truth),
    /// records its observed shape/nnz under the node's structural
    /// fingerprint, and additionally under the variable name for `Var`
    /// nodes.  `samples` is [`crate::Executor::observed_samples`] and must
    /// be parallel to `plan.nodes()`; extra or missing slots are ignored.
    pub fn absorb(&mut self, plan: &crate::Plan, samples: &[crate::NodeSample]) {
        let fps = plan.node_fingerprints();
        for ((node, sample), fp) in plan.nodes().iter().zip(samples).zip(&fps) {
            if sample.computed == 0 {
                continue;
            }
            let stats = VarStats {
                rows: sample.rows,
                cols: sample.cols,
                nnz: sample.nnz as usize,
            };
            if let PlanOp::Var(name) = &node.op {
                self.vars.insert(name.clone(), stats);
            }
            self.nodes.insert(*fp, stats);
        }
        if self.nodes.len() > MAX_NODE_OBSERVATIONS {
            let keep: std::collections::BTreeSet<u64> = fps.into_iter().collect();
            self.nodes.retain(|fp, _| keep.contains(fp));
        }
        self.executions += 1;
    }
}

/// Compiles type-checked expressions into DAG-shaped [`Plan`]s.
#[derive(Clone, Debug, Default)]
pub struct Planner {
    /// The planning configuration.
    pub options: PlanOptions,
}

impl Planner {
    /// A planner with default options.
    pub fn new() -> Self {
        Planner::default()
    }

    /// A planner with explicit options.
    pub fn with_options(options: PlanOptions) -> Self {
        Planner { options }
    }

    /// Plans a batch of queries against one instance summary.  The
    /// returned plan has one root per query, in order; structurally
    /// identical subexpressions are shared across the whole batch.
    pub fn plan(&self, queries: &[Expr], stats: &InstanceStats) -> Plan {
        self.plan_with_observed(queries, stats, &ObservedStats::default())
    }

    /// Plans like [`Planner::plan`], additionally consulting observed
    /// execution statistics: any node whose structural fingerprint has an
    /// observation with a matching shape takes the **observed** nnz in
    /// place of the cost model's estimate, re-deriving its representation
    /// choice from the observed density, and parent estimates propagate
    /// from the corrected value.  This is the feedback half of adaptive
    /// re-planning — chain association (via the caller refreshing
    /// `stats`) and dense/CSR choices track executed reality instead of
    /// the model.
    pub fn plan_with_observed(
        &self,
        queries: &[Expr],
        stats: &InstanceStats,
        observed: &ObservedStats,
    ) -> Plan {
        let _plan_span = matlang_obs::trace::span("plan");
        let plan_timer = matlang_obs::enabled().then(std::time::Instant::now);
        let mut report = PlanReport {
            queries: queries.len(),
            trace_id: matlang_obs::trace::current_id(),
            ..PlanReport::default()
        };
        let mut builder = Builder {
            stats,
            observed,
            options: &self.options,
            nodes: Vec::new(),
            fingerprints: Vec::new(),
            dedup: HashMap::new(),
            scope: Vec::new(),
            loops: Vec::new(),
            fused: Vec::new(),
        };
        let mut roots = Vec::with_capacity(queries.len());
        for query in queries {
            let mut planned = if self.options.simplify {
                report.simplify_savings += rewrite::savings(query);
                rewrite::simplify(query)
            } else {
                query.clone()
            };
            if self.options.cost_rewrites {
                let rewrite_span = matlang_obs::trace::span("rewrite");
                let outcome = crate::rewrite::rewrite_with_stats(&planned, stats);
                for applied in &outcome.applied {
                    matlang_obs::trace::event(&format!("rewrite:{}", applied.rule));
                }
                drop(rewrite_span);
                report.rewrites.extend(outcome.applied);
                planned = outcome.expr;
            }
            report.tree_nodes += planned.size();
            roots.push(builder.build(&planned));
        }
        report.rewrites.append(&mut builder.fused);
        let mut nodes = builder.nodes;
        let mut dependents: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (id, node) in nodes.iter_mut().enumerate() {
            node.cacheable = node.refs > 1 || node.hoistable;
            if node.refs > 1 {
                report.shared_nodes += 1;
            }
            if node.hoistable {
                report.hoistable_nodes += 1;
            }
            match node.est.map(|e| e.choice) {
                Some(ReprChoice::Dense) => report.dense_nodes += 1,
                Some(ReprChoice::Sparse) => report.sparse_nodes += 1,
                None => {}
            }
            if node.est.map(|e| e.parallel).unwrap_or(false) {
                match node.op {
                    PlanOp::MatMul(_, _) => report.parallel_products += 1,
                    _ => report.parallel_elementwise += 1,
                }
            }
            if matches!(node.op, PlanOp::ScaleRows { .. } | PlanOp::ScaleCols { .. }) {
                report.fused_products += 1;
            }
            if node.op.supports_delta() {
                report.delta_supported_nodes += 1;
            }
            for var in &node.free_vars {
                dependents.entry(var.clone()).or_default().push(id);
            }
        }
        report.dag_nodes = nodes.len();
        if let Some(t) = plan_timer {
            matlang_obs::counter!("plan_total").inc();
            matlang_obs::histogram!("plan_latency_us").observe(t.elapsed().as_micros() as u64);
        }
        Plan {
            nodes,
            roots,
            dependents,
            report,
        }
    }

    /// Plans a single query; see [`Planner::plan`].
    pub fn plan_one(&self, query: &Expr, stats: &InstanceStats) -> Plan {
        self.plan(std::slice::from_ref(query), stats)
    }
}

/// The dedup key for hash-consing: the operation plus the advisory
/// statistics of its scope-bound free variables.  The statistics part
/// keeps structurally identical subexpressions *distinct* when variable
/// shadowing gives the same name different shapes in different scopes —
/// otherwise the first-interned occurrence's cost estimate would silently
/// misdrive representation and parallelism choices for the others.  When
/// the scopes agree (the overwhelmingly common case, e.g. the same loop
/// variable name over the same dimension) the keys collide and the nodes
/// share, which is exactly what CSE wants.
type DedupKey = (PlanOp, Vec<(String, Option<VarStats>)>);

struct Builder<'a> {
    stats: &'a InstanceStats,
    observed: &'a ObservedStats,
    options: &'a PlanOptions,
    nodes: Vec<PlanNode>,
    /// Structural fingerprint of every interned node, parallel to
    /// `nodes` — children-first interning means a node's children are
    /// always fingerprinted before the node itself.
    fingerprints: Vec<u64>,
    dedup: HashMap<DedupKey, NodeId>,
    /// Bound loop/let variables in scope, innermost last, with the advisory
    /// statistics of their bound value (`None` when unknown — which also
    /// correctly shadows any instance matrix of the same name).
    scope: Vec<(String, Option<VarStats>)>,
    /// The enclosing loops' bound-variable names, innermost last.
    loops: Vec<Vec<String>>,
    /// Diag-pushdown fusions performed while building, merged into
    /// [`PlanReport::rewrites`] afterwards.
    fused: Vec<AppliedRewrite>,
}

impl Builder<'_> {
    fn build(&mut self, expr: &Expr) -> NodeId {
        match expr {
            Expr::Var(name) => self.intern(PlanOp::Var(name.clone())),
            Expr::Const(c) => self.intern(PlanOp::Const(ConstVal(*c))),
            Expr::Transpose(e) => {
                let a = self.build(e);
                self.intern(PlanOp::Transpose(a))
            }
            Expr::Ones(e) => {
                let a = self.build(e);
                self.intern(PlanOp::Ones(a))
            }
            Expr::Diag(e) => {
                let a = self.build(e);
                self.intern(PlanOp::Diag(a))
            }
            Expr::MatMul(a, b) => {
                // Diag pushdown: fuse `diag(v) · B` / `A · diag(v)` into
                // the scaling kernels when the statistics certify the
                // shapes (so the fused kernel cannot hit an error case the
                // unfused product would not).  Child build order matches
                // the unfused product's evaluation order exactly.
                if self.options.cost_rewrites {
                    if let Expr::Diag(v) = a.as_ref() {
                        let vec = self.build(v);
                        let mat = self.build(b);
                        if let Some(op) = self.try_fuse_diag(vec, mat, true) {
                            return op;
                        }
                        let diag = self.intern(PlanOp::Diag(vec));
                        return self.intern(PlanOp::MatMul(diag, mat));
                    }
                    if let Expr::Diag(v) = b.as_ref() {
                        let mat = self.build(a);
                        let vec = self.build(v);
                        if let Some(op) = self.try_fuse_diag(vec, mat, false) {
                            return op;
                        }
                        let diag = self.intern(PlanOp::Diag(vec));
                        return self.intern(PlanOp::MatMul(mat, diag));
                    }
                }
                let (a, b) = (self.build(a), self.build(b));
                self.intern(PlanOp::MatMul(a, b))
            }
            Expr::Add(a, b) => {
                let (a, b) = (self.build(a), self.build(b));
                self.intern(PlanOp::Add(a, b))
            }
            Expr::ScalarMul(a, b) => {
                let (a, b) = (self.build(a), self.build(b));
                self.intern(PlanOp::ScalarMul(a, b))
            }
            Expr::Hadamard(a, b) => {
                let (a, b) = (self.build(a), self.build(b));
                self.intern(PlanOp::Hadamard(a, b))
            }
            Expr::Apply(name, args) => {
                let args: Vec<NodeId> = args.iter().map(|a| self.build(a)).collect();
                self.intern(PlanOp::Apply(name.clone(), args))
            }
            Expr::Let { var, value, body } => {
                let value_id = self.build(value);
                let value_stats = self.nodes[value_id].est.map(|e| VarStats {
                    rows: e.rows,
                    cols: e.cols,
                    nnz: e.nnz.round() as usize,
                });
                self.scope.push((var.clone(), value_stats));
                let body_id = self.build(body);
                self.scope.pop();
                self.intern(PlanOp::Let {
                    var: var.clone(),
                    value: value_id,
                    body: body_id,
                })
            }
            Expr::For {
                var,
                var_dim,
                acc,
                acc_type,
                init,
                body,
            } => {
                let init_id = init.as_ref().map(|e| self.build(e));
                let var_stats = self.stats.dim(var_dim).map(|n| VarStats {
                    rows: n,
                    cols: 1,
                    nnz: 1,
                });
                let acc_stats = self.stats.shape_of(acc_type).map(|(rows, cols)| VarStats {
                    rows,
                    cols,
                    nnz: rows * cols,
                });
                self.scope.push((var.clone(), var_stats));
                self.scope.push((acc.clone(), acc_stats));
                self.loops.push(vec![var.clone(), acc.clone()]);
                let body_id = self.build(body);
                self.loops.pop();
                self.scope.pop();
                self.scope.pop();
                self.intern(PlanOp::For {
                    var: var.clone(),
                    var_dim: var_dim.clone(),
                    acc: acc.clone(),
                    acc_type: acc_type.clone(),
                    init: init_id,
                    body: body_id,
                })
            }
            Expr::Sum { var, var_dim, body } => {
                let body_id = self.build_loop_body(var, var_dim, body);
                self.intern(PlanOp::Sum {
                    var: var.clone(),
                    var_dim: var_dim.clone(),
                    body: body_id,
                })
            }
            Expr::HProd { var, var_dim, body } => {
                let body_id = self.build_loop_body(var, var_dim, body);
                self.intern(PlanOp::HProd {
                    var: var.clone(),
                    var_dim: var_dim.clone(),
                    body: body_id,
                })
            }
            Expr::MProd { var, var_dim, body } => {
                let body_id = self.build_loop_body(var, var_dim, body);
                self.intern(PlanOp::MProd {
                    var: var.clone(),
                    var_dim: var_dim.clone(),
                    body: body_id,
                })
            }
        }
    }

    fn build_loop_body(&mut self, var: &str, var_dim: &str, body: &Expr) -> NodeId {
        let var_stats = self.stats.dim(var_dim).map(|n| VarStats {
            rows: n,
            cols: 1,
            nnz: 1,
        });
        self.scope.push((var.to_string(), var_stats));
        self.loops.push(vec![var.to_string()]);
        let body_id = self.build(body);
        self.loops.pop();
        self.scope.pop();
        body_id
    }

    /// Interns the fused scaling node for `diag(vec) · mat` (`row_side`)
    /// or `mat · diag(vec)` when the estimates certify that `vec` is a
    /// vector of the matching dimension — the condition under which the
    /// fused kernel is value- and error-equivalent to the unfused
    /// product.  Returns `None` (caller falls back to `Diag` + `MatMul`)
    /// when the statistics cannot certify the shapes.
    fn try_fuse_diag(&mut self, vec: NodeId, mat: NodeId, row_side: bool) -> Option<NodeId> {
        let (ve, me) = (self.nodes[vec].est?, self.nodes[mat].est?);
        if ve.cols != 1 {
            return None;
        }
        let matched = if row_side {
            ve.rows == me.rows
        } else {
            me.cols == ve.rows
        };
        if !matched {
            return None;
        }
        // Unfused: the cheaper product kernel against the materialized
        // diagonal; fused: one pass over the matrix's stored entries.
        let diag_est = NodeEstimate {
            rows: ve.rows,
            cols: ve.rows,
            ..ve
        };
        let (l, r) = if row_side {
            (diag_est, me)
        } else {
            (me, diag_est)
        };
        let (_, own_work) = product_cost((l.rows, l.cols, l.nnz), (r.rows, r.cols, r.nnz));
        let unfused = own_work + ve.nnz;
        let saving = (unfused - me.nnz).max(0.0);
        self.fused.push(AppliedRewrite {
            rule: "diag-pushdown",
            detail: if row_side {
                format!("diag(v) · [{}×{}] fused into row scaling", me.rows, me.cols)
            } else {
                format!(
                    "[{}×{}] · diag(v) fused into column scaling",
                    me.rows, me.cols
                )
            },
            saving,
        });
        let op = if row_side {
            PlanOp::ScaleRows { vec, mat }
        } else {
            PlanOp::ScaleCols { mat, vec }
        };
        Some(self.intern(op))
    }

    fn intern(&mut self, op: PlanOp) -> NodeId {
        let free_vars = self.free_vars_of(&op);
        let scope_sig: Vec<(String, Option<VarStats>)> = free_vars
            .iter()
            .filter(|name| self.scope.iter().any(|(bound, _)| bound == *name))
            .map(|name| (name.clone(), self.lookup_var(name)))
            .collect();
        let key = (op, scope_sig);
        if let Some(&id) = self.dedup.get(&key) {
            self.nodes[id].refs += 1;
            self.mark_hoistable(id);
            return id;
        }
        let fingerprint = crate::plan::op_fingerprint(&key.0, &self.fingerprints);
        // Observed truth beats the model: when this exact subtree was
        // executed before with the same output shape, take its measured
        // nnz and re-derive the representation choice from the observed
        // density.  Parent estimates then propagate from the corrected
        // value.  Shape mismatches mean the schema changed since the
        // observation — ignore those.
        let est = match (self.estimate(&key.0), self.observed.nodes.get(&fingerprint)) {
            (Some(e), Some(obs)) if obs.rows == e.rows && obs.cols == e.cols => {
                Some(finish(e.rows, e.cols, obs.nnz as f64, e.work, e.parallel))
            }
            // A node the model could not estimate at all (e.g. a variable
            // absent from the statistics) still gets an observed one.
            (None, Some(obs)) => Some(finish(
                obs.rows,
                obs.cols,
                obs.nnz as f64,
                obs.nnz as f64,
                false,
            )),
            (e, _) => e,
        };
        let id = self.nodes.len();
        self.nodes.push(PlanNode {
            op: key.0.clone(),
            free_vars,
            refs: 1,
            hoistable: false,
            cacheable: false,
            est,
        });
        self.fingerprints.push(fingerprint);
        self.dedup.insert(key, id);
        self.mark_hoistable(id);
        id
    }

    /// Marks `id` loop-invariant when it occurs inside a loop body and is
    /// independent of the innermost loop's bound variables.
    fn mark_hoistable(&mut self, id: NodeId) {
        if let Some(innermost) = self.loops.last() {
            let invariant = innermost
                .iter()
                .all(|bound| !self.nodes[id].free_vars.contains(bound));
            if invariant {
                self.nodes[id].hoistable = true;
            }
        }
    }

    fn free_vars_of(&self, op: &PlanOp) -> BTreeSet<String> {
        let of = |id: &NodeId| self.nodes[*id].free_vars.clone();
        match op {
            PlanOp::Var(name) => BTreeSet::from([name.clone()]),
            PlanOp::Const(_) => BTreeSet::new(),
            PlanOp::Transpose(a) | PlanOp::Ones(a) | PlanOp::Diag(a) => of(a),
            PlanOp::MatMul(a, b)
            | PlanOp::Add(a, b)
            | PlanOp::ScalarMul(a, b)
            | PlanOp::Hadamard(a, b)
            | PlanOp::ScaleRows { vec: a, mat: b }
            | PlanOp::ScaleCols { mat: a, vec: b } => {
                let mut out = of(a);
                out.extend(of(b));
                out
            }
            PlanOp::Apply(_, args) => {
                let mut out = BTreeSet::new();
                for a in args {
                    out.extend(of(a));
                }
                out
            }
            PlanOp::Let { var, value, body } => {
                let mut out = of(body);
                out.remove(var);
                out.extend(of(value));
                out
            }
            PlanOp::For {
                var,
                acc,
                init,
                body,
                ..
            } => {
                let mut out = of(body);
                out.remove(var);
                out.remove(acc);
                if let Some(init) = init {
                    out.extend(of(init));
                }
                out
            }
            PlanOp::Sum { var, body, .. }
            | PlanOp::HProd { var, body, .. }
            | PlanOp::MProd { var, body, .. } => {
                let mut out = of(body);
                out.remove(var);
                out
            }
        }
    }

    fn lookup_var(&self, name: &str) -> Option<VarStats> {
        for (bound, stats) in self.scope.iter().rev() {
            if bound == name {
                return *stats;
            }
        }
        self.stats.vars.get(name).copied()
    }

    fn estimate(&self, op: &PlanOp) -> Option<NodeEstimate> {
        let est = |id: &NodeId| self.nodes[*id].est;
        match op {
            PlanOp::Var(name) => {
                let s = self.lookup_var(name)?;
                Some(finish(s.rows, s.cols, s.nnz as f64, 0.0, false))
            }
            PlanOp::Const(_) => Some(finish(1, 1, 1.0, 0.0, false)),
            PlanOp::Transpose(a) => {
                let a = est(a)?;
                Some(finish(a.cols, a.rows, a.nnz, a.work + a.nnz, false))
            }
            PlanOp::Ones(a) => {
                let a = est(a)?;
                Some(finish(a.rows, 1, a.rows as f64, a.work, false))
            }
            PlanOp::Diag(a) => {
                let a = est(a)?;
                Some(finish(a.rows, a.rows, a.nnz, a.work, false))
            }
            PlanOp::MatMul(l, r) => {
                let (l, r) = (est(l)?, est(r)?);
                if l.cols != r.rows {
                    return None;
                }
                let (nnz, own_work) =
                    product_cost((l.rows, l.cols, l.nnz), (r.rows, r.cols, r.nnz));
                let parallel = own_work >= self.options.parallel_work_threshold;
                Some(finish(
                    l.rows,
                    r.cols,
                    nnz,
                    l.work + r.work + own_work,
                    parallel,
                ))
            }
            PlanOp::Add(l, r) => {
                let (l, r) = (est(l)?, est(r)?);
                let nnz = l.nnz + r.nnz;
                // The dense elementwise kernel touches every output entry
                // once; that entry count is what the parallel threshold is
                // compared against (a sparse result falls back to the
                // serial O(nnz) merge at execution time, where the mark is
                // simply ignored).
                let parallel = (l.rows * l.cols) as f64 >= self.options.parallel_work_threshold;
                Some(finish(l.rows, l.cols, nnz, l.work + r.work + nnz, parallel))
            }
            PlanOp::ScalarMul(l, r) => {
                let (l, r) = (est(l)?, est(r)?);
                Some(finish(
                    r.rows,
                    r.cols,
                    r.nnz,
                    l.work + r.work + r.nnz,
                    false,
                ))
            }
            PlanOp::Hadamard(l, r) => {
                let (l, r) = (est(l)?, est(r)?);
                let nnz = l.nnz.min(r.nnz);
                let parallel = (l.rows * l.cols) as f64 >= self.options.parallel_work_threshold;
                Some(finish(l.rows, l.cols, nnz, l.work + r.work + nnz, parallel))
            }
            PlanOp::ScaleRows { vec, mat } | PlanOp::ScaleCols { mat, vec } => {
                let (v, m) = (est(vec)?, est(mat)?);
                // One pass over the matrix's stored entries; rows whose
                // scale entry is absent drop out of the result.
                let scale_frac = if v.rows > 0 {
                    (v.nnz / v.rows as f64).min(1.0)
                } else {
                    0.0
                };
                Some(finish(
                    m.rows,
                    m.cols,
                    m.nnz * scale_frac,
                    v.work + m.work + m.nnz,
                    false,
                ))
            }
            PlanOp::Apply(_, args) => {
                // Arbitrary pointwise functions need not preserve zeros:
                // assume a dense result of the first argument's shape.
                let first = est(args.first()?)?;
                let mut work = (first.rows * first.cols) as f64;
                for a in args {
                    work += est(a)?.work;
                }
                Some(finish(
                    first.rows,
                    first.cols,
                    (first.rows * first.cols) as f64,
                    work,
                    false,
                ))
            }
            PlanOp::Let { value, body, .. } => {
                let (v, b) = (est(value)?, est(body)?);
                Some(finish(b.rows, b.cols, b.nnz, v.work + b.work, false))
            }
            PlanOp::For {
                var_dim,
                acc_type,
                init,
                body,
                ..
            } => {
                let n = self.stats.dim(var_dim)? as f64;
                let b = est(body)?;
                let (rows, cols) = self.stats.shape_of(acc_type)?;
                let init_work = match init {
                    Some(init) => est(init)?.work,
                    None => 0.0,
                };
                Some(finish(
                    rows,
                    cols,
                    (rows * cols) as f64,
                    init_work + n * b.work,
                    false,
                ))
            }
            PlanOp::Sum { var_dim, body, .. } => {
                let n = self.stats.dim(var_dim)? as f64;
                let b = est(body)?;
                Some(finish(
                    b.rows,
                    b.cols,
                    n * b.nnz,
                    n * (b.work + b.nnz),
                    false,
                ))
            }
            PlanOp::HProd { var_dim, body, .. } => {
                let n = self.stats.dim(var_dim)? as f64;
                let b = est(body)?;
                Some(finish(b.rows, b.cols, b.nnz, n * (b.work + b.nnz), false))
            }
            PlanOp::MProd { var_dim, body, .. } => {
                let n = self.stats.dim(var_dim)? as f64;
                let b = est(body)?;
                let step = b.nnz
                    * if b.rows > 0 {
                        b.nnz / b.rows as f64
                    } else {
                        0.0
                    };
                Some(finish(
                    b.rows,
                    b.cols,
                    (b.rows * b.cols) as f64,
                    n * (b.work + step),
                    false,
                ))
            }
        }
    }
}

/// Estimated `(result nnz, own work)` of one matrix product from the
/// operands' `(rows, cols, nnz)` — **the** product-cost formula, shared
/// by the planner's node estimates, the diag-fusion gate and the
/// cost-based rewriter's chain DP so all of them price products against
/// the same model.  Gustavson visits, for every stored left entry, the
/// matching right row; the dense kernel scans `rows × inner × cols`; the
/// executor picks whichever fits the operand representations, so cost
/// with the cheaper of the two.  The nnz estimate is capped at the
/// output shape.
pub(crate) fn product_cost(
    (l_rows, l_cols, l_nnz): (usize, usize, f64),
    (r_rows, r_cols, r_nnz): (usize, usize, f64),
) -> (f64, f64) {
    let per_right_row = if r_rows > 0 {
        r_nnz / r_rows as f64
    } else {
        0.0
    };
    let sparse_work = l_nnz * per_right_row;
    let dense_work = (l_rows as f64) * (l_cols as f64) * (r_cols as f64);
    let nnz = sparse_work.min((l_rows * r_cols) as f64);
    (nnz, sparse_work.min(dense_work))
}

/// Clamps the non-zero estimate to the shape and derives the
/// representation choice from the density thresholds of
/// [`matlang_matrix::repr`].
fn finish(rows: usize, cols: usize, nnz: f64, work: f64, parallel: bool) -> NodeEstimate {
    let total = (rows * cols) as f64;
    let nnz = nnz.min(total);
    let choice = if rows * cols >= MIN_ADAPTIVE_ENTRIES && nnz <= SPARSIFY_THRESHOLD * total {
        ReprChoice::Sparse
    } else {
        ReprChoice::Dense
    };
    NodeEstimate {
        rows,
        cols,
        nnz,
        work,
        choice,
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> InstanceStats {
        InstanceStats {
            dims: BTreeMap::from([("n".to_string(), 100)]),
            vars: BTreeMap::from([(
                "G".to_string(),
                VarStats {
                    rows: 100,
                    cols: 100,
                    nnz: 800,
                },
            )]),
        }
    }

    fn gram() -> Expr {
        Expr::var("G").t().mm(Expr::var("G"))
    }

    #[test]
    fn identical_subexpressions_share_a_node() {
        // (GᵀG) + (GᵀG): the Gram matrix is interned once.
        let plan = Planner::new().plan_one(&gram().add(gram()), &stats());
        assert_eq!(plan.report.queries, 1);
        assert!(plan.report.shared_nodes >= 1);
        // Var(G), Transpose, MatMul, Add — four distinct nodes.
        assert_eq!(plan.report.dag_nodes, 4);
        let add = plan.node(*plan.roots().first().unwrap());
        let children = add.op.children();
        assert_eq!(children[0], children[1]);
    }

    #[test]
    fn sharing_extends_across_batch_queries() {
        let q1 = gram();
        let q2 = gram().t();
        let plan = Planner::new().plan(&[q1, q2], &stats());
        assert_eq!(plan.roots().len(), 2);
        // q2's Gram subterm is q1's root.
        assert!(plan.node(plan.roots()[0]).refs >= 2);
    }

    #[test]
    fn loop_invariant_nodes_are_marked_hoistable() {
        // Σv. vᵀ·(GᵀG)·v — the Gram matrix does not mention v.  Planned
        // with cost rewrites off: this test pins the hoisting *analysis*,
        // and the chain reorderer would (correctly) trade the hoisted
        // Gram product for per-iteration vector chains here.
        let e = Expr::sum("v", "n", Expr::var("v").t().mm(gram()).mm(Expr::var("v")));
        let plan = Planner::with_options(PlanOptions {
            cost_rewrites: false,
            ..PlanOptions::default()
        })
        .plan_one(&e, &stats());
        let gram_node = plan
            .nodes()
            .iter()
            .find(|n| matches!(n.op, PlanOp::MatMul(_, _)) && !n.free_vars.contains("v"))
            .expect("gram node present");
        assert!(gram_node.hoistable);
        assert!(gram_node.cacheable);
        // vᵀ·(GᵀG) depends on v: not hoistable.
        let dependent = plan
            .nodes()
            .iter()
            .find(|n| matches!(n.op, PlanOp::MatMul(_, _)) && n.free_vars.contains("v"))
            .expect("v-dependent node present");
        assert!(!dependent.hoistable);
        assert!(plan.report.hoistable_nodes >= 1);
    }

    #[test]
    fn free_vars_subtract_binders() {
        let e = Expr::sum("v", "n", Expr::var("v").t().mm(Expr::var("G")));
        let plan = Planner::new().plan_one(&e, &stats());
        let root = plan.node(plan.roots()[0]);
        assert!(root.free_vars.contains("G"));
        assert!(!root.free_vars.contains("v"));
        // v, vᵀ and vᵀ·G all depend on v; the Σ node itself does not.
        assert_eq!(plan.dependents_of("v").len(), 3);
    }

    #[test]
    fn simplify_savings_are_reported() {
        let e = Expr::lit(1.0).smul(Expr::var("G").t().t());
        let expected = rewrite::savings(&e);
        assert!(expected > 0);
        let plan = Planner::new().plan_one(&e, &stats());
        assert_eq!(plan.report.simplify_savings, expected);
        assert_eq!(plan.report.tree_nodes, 1); // simplified to Var(G)
        let off = Planner::with_options(PlanOptions {
            simplify: false,
            ..PlanOptions::default()
        })
        .plan_one(&e, &stats());
        assert_eq!(off.report.simplify_savings, 0);
        assert!(off.report.tree_nodes > 1);
    }

    #[test]
    fn cost_model_prefers_sparse_for_sparse_products() {
        // A 1000-node, average-degree-8 graph: G·G is estimated at
        // 8000·8 = 64 000 of 10⁶ entries ≈ 6.4% < 25% → CSR.
        let s = InstanceStats {
            dims: BTreeMap::from([("n".to_string(), 1000)]),
            vars: BTreeMap::from([(
                "G".to_string(),
                VarStats {
                    rows: 1000,
                    cols: 1000,
                    nnz: 8000,
                },
            )]),
        };
        let plan = Planner::new().plan_one(&Expr::var("G").mm(Expr::var("G")), &s);
        let root = plan.node(plan.roots()[0]);
        let est = root.est.expect("estimate present");
        assert_eq!((est.rows, est.cols), (1000, 1000));
        assert_eq!(est.choice, ReprChoice::Sparse);
        assert!(!est.parallel, "64 000 multiplies is below the threshold");
    }

    #[test]
    fn cost_model_marks_heavy_products_parallel() {
        let mut s = stats();
        s.vars.insert(
            "D".to_string(),
            VarStats {
                rows: 100,
                cols: 100,
                nnz: 10_000,
            },
        );
        let planner = Planner::with_options(PlanOptions {
            parallel_work_threshold: 1e5,
            ..PlanOptions::default()
        });
        let plan = planner.plan_one(&Expr::var("D").mm(Expr::var("D")), &s);
        let est = plan.node(plan.roots()[0]).est.unwrap();
        assert_eq!(est.choice, ReprChoice::Dense);
        assert!(est.parallel);
        assert_eq!(plan.report.parallel_products, 1);
    }

    #[test]
    fn unknown_variables_plan_without_estimates() {
        let plan = Planner::new().plan_one(&Expr::var("missing").t(), &stats());
        assert!(plan.nodes().iter().all(|n| n.est.is_none()));
    }

    #[test]
    fn let_bound_variables_shadow_instance_stats() {
        // let G = 1×1 scalar in Gᵀ: the inner transpose must see the
        // let-bound shape, not the 100×100 instance matrix.
        let e = Expr::let_in("G", Expr::lit(2.0), Expr::var("G").t());
        let plan = Planner::new().plan_one(
            &Expr::Let {
                var: "G".into(),
                value: Box::new(Expr::lit(2.0).smul(Expr::lit(3.0).smul(Expr::var("G")))),
                body: Box::new(Expr::var("G").t().mm(Expr::var("G"))),
            },
            &stats(),
        );
        let root = plan.node(plan.roots()[0]);
        assert!(root.est.is_some());
        let simple = Planner::with_options(PlanOptions {
            simplify: false,
            ..PlanOptions::default()
        })
        .plan_one(&e, &stats());
        let root = simple.node(simple.roots()[0]);
        let est = root.est.expect("estimate");
        assert_eq!((est.rows, est.cols), (1, 1));
    }

    #[test]
    fn shadowed_scopes_do_not_share_estimates() {
        // (let G = <1×1> in Gᵀ·G) + Gᵀ·G: the inner product is over the
        // let-bound scalar, the outer one over the 100×100 instance
        // matrix.  Scope-blind hash-consing would merge them and freeze
        // the scalar estimate onto the heavy outer product.
        let inner = Expr::var("G").t().mm(Expr::var("G"));
        let e = Expr::Let {
            var: "G".into(),
            value: Box::new(Expr::lit(2.0).smul(Expr::lit(3.0).smul(Expr::lit(4.0)))),
            body: Box::new(inner.clone()),
        }
        .add(inner);
        let planner = Planner::with_options(PlanOptions {
            simplify: false,
            ..PlanOptions::default()
        });
        let plan = planner.plan_one(&e, &stats());
        let products: Vec<_> = plan
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, PlanOp::MatMul(_, _)))
            .collect();
        assert_eq!(products.len(), 2, "shadowed products must stay distinct");
        let shapes: Vec<_> = products
            .iter()
            .map(|n| n.est.map(|e| (e.rows, e.cols)))
            .collect();
        assert!(shapes.contains(&Some((1, 1))));
        assert!(shapes.contains(&Some((100, 100))));
    }

    #[test]
    fn identical_scopes_still_share_across_loops() {
        // Two Σ-loops binding the same name over the same dimension: the
        // scope signature matches, so the bodies hash-cons to one node.
        let body = || Expr::var("v").t().mm(Expr::var("G")).mm(Expr::var("v"));
        let e = Expr::sum("v", "n", body()).add(Expr::sum("v", "n", body()));
        let plan = Planner::new().plan_one(&e, &stats());
        let sums: Vec<_> = plan
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, PlanOp::Sum { .. }))
            .collect();
        assert_eq!(sums.len(), 1, "identical loops must share one node");
        assert_eq!(sums[0].refs, 2);
    }

    #[test]
    fn report_displays_summary() {
        let plan = Planner::new().plan_one(&gram(), &stats());
        let text = plan.report.to_string();
        assert!(text.contains("dag nodes"));
        assert!(text.contains("1 query"));
    }

    #[test]
    fn node_fingerprints_are_stable_across_plannings() {
        // Same query planned twice (even inside differently-shaped
        // batches): per-node fingerprints of the shared structure agree,
        // so observations harvested from one plan match the other.
        let plan_a = Planner::new().plan_one(&gram(), &stats());
        let plan_b = Planner::new().plan(&[Expr::var("G").t(), gram()], &stats());
        let fps_a = plan_a.node_fingerprints();
        let fps_b = plan_b.node_fingerprints();
        let root_a = fps_a[plan_a.roots()[0]];
        let root_b = fps_b[plan_b.roots()[1]];
        assert_eq!(root_a, root_b, "identical subtrees must fingerprint equal");
        // Distinct structures must (practically) not collide.
        assert_ne!(fps_b[plan_b.roots()[0]], root_b);
    }

    #[test]
    fn observed_nnz_overrides_the_estimate_and_the_repr_choice() {
        // Model: a degree-8 graph makes G·G look sparse (6.4% < 25%).
        let s = InstanceStats {
            dims: BTreeMap::from([("n".to_string(), 1000)]),
            vars: BTreeMap::from([(
                "G".to_string(),
                VarStats {
                    rows: 1000,
                    cols: 1000,
                    nnz: 8000,
                },
            )]),
        };
        let q = Expr::var("G").mm(Expr::var("G"));
        let planner = Planner::new();
        let estimated = planner.plan_one(&q, &s);
        let root = estimated.roots()[0];
        assert_eq!(estimated.node(root).est.unwrap().choice, ReprChoice::Sparse);

        // Observation: the executed product actually came out dense.
        let mut observed = ObservedStats::new();
        observed.nodes.insert(
            estimated.node_fingerprints()[root],
            VarStats {
                rows: 1000,
                cols: 1000,
                nnz: 900_000,
            },
        );
        let replanned = planner.plan_with_observed(std::slice::from_ref(&q), &s, &observed);
        let est = replanned.node(replanned.roots()[0]).est.unwrap();
        assert_eq!(est.nnz, 900_000.0, "observed nnz replaces the estimate");
        assert_eq!(est.choice, ReprChoice::Dense, "repr choice tracks reality");

        // A shape-mismatched (stale-schema) observation is ignored.
        let mut stale = ObservedStats::new();
        stale.nodes.insert(
            estimated.node_fingerprints()[root],
            VarStats {
                rows: 5,
                cols: 5,
                nnz: 25,
            },
        );
        let kept = planner.plan_with_observed(std::slice::from_ref(&q), &s, &stale);
        assert_eq!(
            kept.node(kept.roots()[0]).est.unwrap().choice,
            ReprChoice::Sparse
        );
    }

    #[test]
    fn absorb_harvests_computed_nodes_from_an_execution() {
        use matlang_core::{FunctionRegistry, Instance};
        use matlang_matrix::Matrix;
        use matlang_semiring::Real;

        let inst: Instance<Real> = Instance::new().with_dim("n", 3).with_matrix(
            "G",
            Matrix::from_f64_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]).unwrap(),
        );
        let q = Expr::var("G").t().mm(Expr::var("G"));
        let plan = Planner::new().plan_one(&q, &InstanceStats::from_instance(&inst));
        let registry = FunctionRegistry::standard_field();
        let mut exec = crate::Executor::new(&plan, &inst, &registry, crate::ExecOptions::default());
        exec.run(plan.roots()[0]).unwrap();

        let mut observed = ObservedStats::new();
        observed.absorb(&plan, exec.observed_samples());
        assert_eq!(observed.executions, 1);
        assert!(!observed.is_empty());
        // The leaf observation carries the real matrix statistics …
        let g = observed.vars.get("G").expect("G observed");
        assert_eq!((g.rows, g.cols, g.nnz), (3, 3, 5));
        // … and the root's observation matches the actual product.
        let root_fp = plan.node_fingerprints()[plan.roots()[0]];
        let root_obs = observed.nodes.get(&root_fp).expect("root observed");
        assert_eq!((root_obs.rows, root_obs.cols), (3, 3));
        assert!(root_obs.nnz > 0);

        // Overlaying onto matching-schema stats swaps in observed nnz.
        let mut stale = InstanceStats::from_instance(&inst);
        stale.vars.get_mut("G").unwrap().nnz = 9999;
        let merged = stale.with_observed(&observed);
        assert_eq!(merged.vars.get("G").unwrap().nnz, 5);
    }
}
