//! Cost-based algebraic rewriting: the layer between a type-checked
//! [`Expr`] and the DAG plan.
//!
//! Where [`matlang_core::rewrite::simplify`] removes *syntactic* noise
//! (double transposes, `1 ×`, dead `let`s) with rules that are always
//! wins, the rules here change the **evaluation strategy** and are only
//! applied when the planner's nnz/density cost model — the same
//! [`InstanceStats`]-driven model that picks storage representations —
//! estimates a saving:
//!
//! * **Matrix-chain reordering** — a product chain `e₁ · e₂ · ⋯ · e_k`
//!   (`k ≥ 3`) is re-parenthesized by the classic interval DP over the
//!   cost model.  Inside Σ/Π/for loops the DP amortizes the cost of
//!   loop-invariant sub-products by the iteration count, because the
//!   executor's scoped memo computes those once per loop, not per
//!   iteration.
//! * **Transpose pushdown** — `(e₁ · e₂)ᵀ → e₂ᵀ · e₁ᵀ` when transposing
//!   the (cheap, CSR-friendly) operands beats materializing the product
//!   and transposing it; `eᵀᵀ` introduced in the process is cancelled on
//!   the spot, so e.g. `(Gᵀ · G)ᵀ` becomes `Gᵀ · G` and then shares its
//!   DAG node with the un-transposed Gram matrix.
//! * **Ones pushdown** — `1(e)` only depends on `e`'s *row count*, so the
//!   operand is replaced by its cheapest row source: `1(e₁ · e₂) → 1(e₁)`,
//!   `1(e₁ + e₂) → 1(e₁)`, `1(c × e) → 1(e)`, `1(diag(v)) → 1(v)`,
//!   `1(1(e)) → 1(e)` — the `1(e)`-contraction part of the ISSUE's diag /
//!   ones pushdown (the `diag(v) · A` half is fused by the planner into
//!   the [`crate::plan::PlanOp::ScaleRows`] / `ScaleCols` kernels).
//!
//! Every rule is an algebraic identity in every commutative semiring, so
//! rewritten plans evaluate to the same values as [`matlang_core::evaluate`]
//! on every backend; the `rewrite_semantics` property suite pins this over
//! random well-typed expressions on 𝔹/ℕ/min-plus, dense and adaptive.
//! Rules that drop a subterm (ones pushdown) or reverse operand order
//! (transpose pushdown) additionally require the affected operands to be
//! **provably total** — evaluable without error, which the estimator
//! certifies only when every variable is known and every operator's shape
//! precondition is met — so error behavior is preserved exactly, down to
//! the discriminant and the order in which errors surface.  Chain
//! reordering preserves the left-to-right factor order, so it never needs
//! that gate.
//!
//! Every application is recorded as an [`AppliedRewrite`] (rule name,
//! site, estimated saving) and surfaced through
//! [`PlanReport::rewrites`](crate::plan::PlanReport::rewrites).

use crate::plan::AppliedRewrite;
use crate::planner::{InstanceStats, VarStats};
use matlang_core::Expr;
use std::collections::BTreeSet;

/// The rewriter's result: the (possibly) rewritten expression and a record
/// of every rule application.
#[derive(Clone, Debug)]
pub struct RewriteOutcome {
    /// The rewritten expression (equal to the input when nothing applied).
    pub expr: Expr,
    /// Rule applications in the order they were performed.
    pub applied: Vec<AppliedRewrite>,
}

/// The expression-level estimate the rewrite rules compare costs with —
/// the [`Expr`] counterpart of [`crate::plan::NodeEstimate`], extended
/// with the totality certificate the reordering rules need.
#[derive(Clone, Copy, Debug)]
struct ExprEstimate {
    rows: usize,
    cols: usize,
    /// Expected non-zero output entries.
    nnz: f64,
    /// Estimated semiring operations to evaluate the subexpression once.
    work: f64,
    /// Whether evaluation provably cannot fail: every variable is known
    /// and every operator's shape precondition is certified by the
    /// estimates.  Conservative — `Apply` and the loop forms are never
    /// certified.
    total: bool,
}

/// Estimated `(result nnz, own work)` of one product — delegates to the
/// single shared formula in [`crate::planner::product_cost`], so the
/// chain DP prices products against exactly the model the planner's node
/// estimates use.
fn product_cost(l: &ExprEstimate, r: &ExprEstimate) -> (f64, f64) {
    crate::planner::product_cost((l.rows, l.cols, l.nnz), (r.rows, r.cols, r.nnz))
}

/// `eᵀ` without stacking transposes: unwraps an existing outer transpose
/// instead of double-wrapping, so transpose pushdown cancels `eᵀᵀ` on the
/// spot.
fn transpose_of(e: &Expr) -> Expr {
    match e {
        Expr::Transpose(inner) => (**inner).clone(),
        other => other.clone().t(),
    }
}

/// The cheapest subexpression with the same row count as `e` — what
/// `1(e)` actually depends on.
fn row_source(e: &Expr) -> Expr {
    match e {
        Expr::MatMul(a, _) | Expr::Add(a, _) | Expr::Hadamard(a, _) => row_source(a),
        Expr::ScalarMul(_, b) => row_source(b),
        Expr::Diag(v) => row_source(v),
        Expr::Ones(x) => row_source(x),
        other => other.clone(),
    }
}

/// Flattens the maximal product spine of `e` into its factors, in
/// left-to-right evaluation order.
fn flatten_chain(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::MatMul(a, b) = e {
        flatten_chain(a, out);
        flatten_chain(b, out);
    } else {
        out.push(e.clone());
    }
}

/// Relative improvement below which a rewrite is not worth the churn (and
/// floating-point cost ties must not flip the tree).
const MIN_IMPROVEMENT: f64 = 0.999;

/// Fixed cost of *executing* one product node, in semiring-operation
/// equivalents: result allocation, kernel dispatch, representation
/// normalization and memo bookkeeping — roughly a microsecond, i.e. on
/// the order of 10³ semiring operations.  For loop-free chains every
/// association has the same number of products, so this cancels and
/// decisions depend on the kernels' work alone; inside loops it is what
/// stops the DP from "optimizing" one hoisted, memoized product into n
/// per-iteration vector products whose constant overheads dwarf their
/// arithmetic (a 10k-iteration Σ would otherwise trade one big SpMM for
/// 30 000 micro-products and run slower).
const PRODUCT_OVERHEAD: f64 = 1000.0;

/// One interval of the chain DP: the segment's product estimate, its
/// amortized own cost (factor works excluded — they are identical across
/// associations) and the best split point.
type ChainSeg = (ExprEstimate, f64, usize);

struct Rewriter<'a> {
    stats: &'a InstanceStats,
    /// Bound loop/let variables in scope, innermost last, with advisory
    /// statistics (mirrors the planner's `Builder` scope).
    scope: Vec<(String, Option<VarStats>)>,
    /// Enclosing loops, innermost last: bound-variable names plus the
    /// iteration count when the governing dimension is known.
    loops: Vec<(Vec<String>, Option<usize>)>,
    applied: Vec<AppliedRewrite>,
}

impl Rewriter<'_> {
    fn lookup(&self, name: &str) -> Option<VarStats> {
        for (bound, stats) in self.scope.iter().rev() {
            if bound == name {
                return *stats;
            }
        }
        self.stats.vars.get(name).copied()
    }

    /// How many evaluations one computation of a subterm with free
    /// variables `vars` amortizes over: the product of the iteration
    /// counts of the enclosing loops (innermost first) whose binders the
    /// subterm does not mention — exactly the loops across which the
    /// executor's scoped memo keeps its value alive.
    fn amortization(&self, vars: &BTreeSet<String>) -> f64 {
        let mut factor = 1.0;
        for (binders, n) in self.loops.iter().rev() {
            if binders.iter().any(|b| vars.contains(b)) {
                break;
            }
            match n {
                Some(n) if *n > 0 => factor *= *n as f64,
                _ => break,
            }
        }
        factor
    }

    /// Best-effort shape/cost/totality estimate; `None` when a variable or
    /// dimension is unknown or an inner product cannot be shaped.
    fn est(&mut self, e: &Expr) -> Option<ExprEstimate> {
        match e {
            Expr::Var(name) => {
                let s = self.lookup(name)?;
                Some(ExprEstimate {
                    rows: s.rows,
                    cols: s.cols,
                    nnz: s.nnz as f64,
                    work: 0.0,
                    total: true,
                })
            }
            Expr::Const(_) => Some(ExprEstimate {
                rows: 1,
                cols: 1,
                nnz: 1.0,
                work: 0.0,
                total: true,
            }),
            Expr::Transpose(a) => {
                let a = self.est(a)?;
                Some(ExprEstimate {
                    rows: a.cols,
                    cols: a.rows,
                    nnz: a.nnz,
                    work: a.work + a.nnz,
                    total: a.total,
                })
            }
            Expr::Ones(a) => {
                let a = self.est(a)?;
                Some(ExprEstimate {
                    rows: a.rows,
                    cols: 1,
                    nnz: a.rows as f64,
                    work: a.work,
                    total: a.total,
                })
            }
            Expr::Diag(a) => {
                let a = self.est(a)?;
                Some(ExprEstimate {
                    rows: a.rows,
                    cols: a.rows,
                    nnz: a.nnz,
                    // Unlike the planner's node estimate, charge the
                    // materialization of the diagonal — the ones-pushdown
                    // rule needs to see that skipping it saves work.
                    work: a.work + a.nnz,
                    total: a.total && a.cols == 1,
                })
            }
            Expr::MatMul(a, b) => {
                let (l, r) = (self.est(a)?, self.est(b)?);
                if l.cols != r.rows {
                    return None;
                }
                let (nnz, own) = product_cost(&l, &r);
                Some(ExprEstimate {
                    rows: l.rows,
                    cols: r.cols,
                    nnz,
                    work: l.work + r.work + own,
                    total: l.total && r.total,
                })
            }
            Expr::Add(a, b) => {
                let (l, r) = (self.est(a)?, self.est(b)?);
                let nnz = (l.nnz + r.nnz).min((l.rows * l.cols) as f64);
                Some(ExprEstimate {
                    rows: l.rows,
                    cols: l.cols,
                    nnz,
                    work: l.work + r.work + nnz,
                    total: l.total && r.total && (l.rows, l.cols) == (r.rows, r.cols),
                })
            }
            Expr::Hadamard(a, b) => {
                let (l, r) = (self.est(a)?, self.est(b)?);
                let nnz = l.nnz.min(r.nnz);
                Some(ExprEstimate {
                    rows: l.rows,
                    cols: l.cols,
                    nnz,
                    work: l.work + r.work + nnz,
                    total: l.total && r.total && (l.rows, l.cols) == (r.rows, r.cols),
                })
            }
            Expr::ScalarMul(a, b) => {
                let (l, r) = (self.est(a)?, self.est(b)?);
                Some(ExprEstimate {
                    rows: r.rows,
                    cols: r.cols,
                    nnz: r.nnz,
                    work: l.work + r.work + r.nnz,
                    total: l.total && r.total && (l.rows, l.cols) == (1, 1),
                })
            }
            Expr::Apply(_, args) => {
                let first = self.est(args.first()?)?;
                let dense = (first.rows * first.cols) as f64;
                let mut work = dense;
                for a in args {
                    work += self.est(a)?.work;
                }
                Some(ExprEstimate {
                    rows: first.rows,
                    cols: first.cols,
                    nnz: dense,
                    work,
                    // An unknown function name or a shape mismatch among
                    // the arguments only surfaces at runtime.
                    total: false,
                })
            }
            Expr::Let { var, value, body } => {
                let v = self.est(value)?;
                self.scope.push((
                    var.clone(),
                    Some(VarStats {
                        rows: v.rows,
                        cols: v.cols,
                        nnz: v.nnz.round() as usize,
                    }),
                ));
                let b = self.est(body);
                self.scope.pop();
                let b = b?;
                Some(ExprEstimate {
                    rows: b.rows,
                    cols: b.cols,
                    nnz: b.nnz,
                    work: v.work + b.work,
                    total: v.total && b.total,
                })
            }
            Expr::For {
                var,
                var_dim,
                acc,
                acc_type,
                init,
                body,
            } => {
                let n = self.stats.dim(var_dim)?;
                let (rows, cols) = self.stats.shape_of(acc_type)?;
                let init_work = match init {
                    Some(init) => self.est(init)?.work,
                    None => 0.0,
                };
                self.scope.push((
                    var.clone(),
                    Some(VarStats {
                        rows: n,
                        cols: 1,
                        nnz: 1,
                    }),
                ));
                self.scope.push((
                    acc.clone(),
                    Some(VarStats {
                        rows,
                        cols,
                        nnz: rows * cols,
                    }),
                ));
                let b = self.est(body);
                self.scope.pop();
                self.scope.pop();
                let b = b?;
                Some(ExprEstimate {
                    rows,
                    cols,
                    nnz: (rows * cols) as f64,
                    work: init_work + n as f64 * b.work,
                    total: false,
                })
            }
            Expr::Sum { var, var_dim, body }
            | Expr::HProd { var, var_dim, body }
            | Expr::MProd { var, var_dim, body } => {
                let n = self.stats.dim(var_dim)?;
                self.scope.push((
                    var.clone(),
                    Some(VarStats {
                        rows: n,
                        cols: 1,
                        nnz: 1,
                    }),
                ));
                let b = self.est(body);
                self.scope.pop();
                let b = b?;
                let (nnz, step) = match e {
                    Expr::Sum { .. } => (n as f64 * b.nnz, b.nnz),
                    Expr::HProd { .. } => (b.nnz, b.nnz),
                    _ => {
                        let per_row = if b.rows > 0 {
                            b.nnz / b.rows as f64
                        } else {
                            0.0
                        };
                        ((b.rows * b.cols) as f64, b.nnz * per_row)
                    }
                };
                Some(ExprEstimate {
                    rows: b.rows,
                    cols: b.cols,
                    nnz: nnz.min((b.rows * b.cols) as f64),
                    work: n as f64 * (b.work + step),
                    total: false,
                })
            }
        }
    }

    /// Structural recursion: rewrite children first, then apply the local
    /// rules at product, transpose and ones nodes.
    fn rewrite(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Var(_) | Expr::Const(_) => e.clone(),
            Expr::Transpose(inner) => {
                let inner = self.rewrite(inner);
                self.rewrite_transpose(inner)
            }
            Expr::Ones(inner) => {
                let inner = self.rewrite(inner);
                self.rewrite_ones(inner)
            }
            Expr::Diag(inner) => Expr::Diag(Box::new(self.rewrite(inner))),
            Expr::MatMul(a, b) => {
                let tree = Expr::MatMul(Box::new(self.rewrite(a)), Box::new(self.rewrite(b)));
                self.reorder_chain(tree)
            }
            Expr::Add(a, b) => Expr::Add(Box::new(self.rewrite(a)), Box::new(self.rewrite(b))),
            Expr::ScalarMul(a, b) => {
                Expr::ScalarMul(Box::new(self.rewrite(a)), Box::new(self.rewrite(b)))
            }
            Expr::Hadamard(a, b) => {
                Expr::Hadamard(Box::new(self.rewrite(a)), Box::new(self.rewrite(b)))
            }
            Expr::Apply(name, args) => {
                Expr::Apply(name.clone(), args.iter().map(|a| self.rewrite(a)).collect())
            }
            Expr::Let { var, value, body } => {
                let value = self.rewrite(value);
                let value_stats = self.est(&value).map(|e| VarStats {
                    rows: e.rows,
                    cols: e.cols,
                    nnz: e.nnz.round() as usize,
                });
                self.scope.push((var.clone(), value_stats));
                let body = self.rewrite(body);
                self.scope.pop();
                Expr::Let {
                    var: var.clone(),
                    value: Box::new(value),
                    body: Box::new(body),
                }
            }
            Expr::For {
                var,
                var_dim,
                acc,
                acc_type,
                init,
                body,
            } => {
                let init = init.as_ref().map(|e| Box::new(self.rewrite(e)));
                let n = self.stats.dim(var_dim);
                let var_stats = n.map(|n| VarStats {
                    rows: n,
                    cols: 1,
                    nnz: 1,
                });
                let acc_stats = self.stats.shape_of(acc_type).map(|(rows, cols)| VarStats {
                    rows,
                    cols,
                    nnz: rows * cols,
                });
                self.scope.push((var.clone(), var_stats));
                self.scope.push((acc.clone(), acc_stats));
                self.loops.push((vec![var.clone(), acc.clone()], n));
                let body = self.rewrite(body);
                self.loops.pop();
                self.scope.pop();
                self.scope.pop();
                Expr::For {
                    var: var.clone(),
                    var_dim: var_dim.clone(),
                    acc: acc.clone(),
                    acc_type: acc_type.clone(),
                    init,
                    body: Box::new(body),
                }
            }
            Expr::Sum { var, var_dim, body } => {
                let body = self.rewrite_loop_body(var, var_dim, body);
                Expr::Sum {
                    var: var.clone(),
                    var_dim: var_dim.clone(),
                    body: Box::new(body),
                }
            }
            Expr::HProd { var, var_dim, body } => {
                let body = self.rewrite_loop_body(var, var_dim, body);
                Expr::HProd {
                    var: var.clone(),
                    var_dim: var_dim.clone(),
                    body: Box::new(body),
                }
            }
            Expr::MProd { var, var_dim, body } => {
                let body = self.rewrite_loop_body(var, var_dim, body);
                Expr::MProd {
                    var: var.clone(),
                    var_dim: var_dim.clone(),
                    body: Box::new(body),
                }
            }
        }
    }

    fn rewrite_loop_body(&mut self, var: &str, var_dim: &str, body: &Expr) -> Expr {
        let n = self.stats.dim(var_dim);
        let var_stats = n.map(|n| VarStats {
            rows: n,
            cols: 1,
            nnz: 1,
        });
        self.scope.push((var.to_string(), var_stats));
        self.loops.push((vec![var.to_string()], n));
        let body = self.rewrite(body);
        self.loops.pop();
        self.scope.pop();
        body
    }

    /// `(e₁ · e₂)ᵀ → e₂ᵀ · e₁ᵀ` when the cost model prefers transposing
    /// the operands (and both operands are provably total — the rewrite
    /// reverses their evaluation order).
    fn rewrite_transpose(&mut self, inner: Expr) -> Expr {
        if let Expr::MatMul(a, b) = &inner {
            if let (Some(l), Some(r)) = (self.est(a), self.est(b)) {
                if l.total && r.total && l.cols == r.rows {
                    let (prod_nnz, prod_own) = product_cost(&l, &r);
                    // Unfused: compute the product, transpose the result.
                    let lhs_cost = prod_own + prod_nnz;
                    let lt = ExprEstimate {
                        rows: l.cols,
                        cols: l.rows,
                        ..l
                    };
                    let rt = ExprEstimate {
                        rows: r.cols,
                        cols: r.rows,
                        ..r
                    };
                    // Pushed down: transpose both operands, multiply.
                    let (_, rev_own) = product_cost(&rt, &lt);
                    let rhs_cost = l.nnz + r.nnz + rev_own;
                    if rhs_cost < lhs_cost * MIN_IMPROVEMENT {
                        self.applied.push(AppliedRewrite {
                            rule: "transpose-pushdown",
                            detail: format!("({a} · {b})ᵀ → operand transposes"),
                            saving: lhs_cost - rhs_cost,
                        });
                        let pushed =
                            Expr::MatMul(Box::new(transpose_of(b)), Box::new(transpose_of(a)));
                        // The new product may extend an enclosing chain or
                        // itself be a reorderable chain.
                        return self.reorder_chain(pushed);
                    }
                }
            }
        }
        Expr::Transpose(Box::new(inner))
    }

    /// `1(e) → 1(row source of e)` when the source is strictly cheaper and
    /// the dropped computation is provably total.
    fn rewrite_ones(&mut self, inner: Expr) -> Expr {
        if let Some(ie) = self.est(&inner) {
            if ie.total {
                let source = row_source(&inner);
                if source != inner {
                    if let Some(se) = self.est(&source) {
                        if se.rows == ie.rows && se.work < ie.work * MIN_IMPROVEMENT {
                            self.applied.push(AppliedRewrite {
                                rule: "ones-pushdown",
                                detail: format!("1({inner}) → 1({source})"),
                                saving: ie.work - se.work,
                            });
                            return Expr::Ones(Box::new(source));
                        }
                    }
                }
            }
        }
        Expr::Ones(Box::new(inner))
    }

    /// Re-parenthesizes a maximal product chain by the interval DP when
    /// the cost model finds a strictly cheaper association.  Factor order
    /// is preserved, so evaluation order (and therefore error behavior)
    /// is unchanged; only the association differs.
    fn reorder_chain(&mut self, tree: Expr) -> Expr {
        let mut factors = Vec::new();
        flatten_chain(&tree, &mut factors);
        let k = factors.len();
        if k < 3 {
            return tree;
        }
        let Some(ests) = factors
            .iter()
            .map(|f| self.est(f))
            .collect::<Option<Vec<_>>>()
        else {
            return tree;
        };
        if ests.windows(2).any(|w| w[0].cols != w[1].rows) {
            return tree;
        }
        let free: Vec<BTreeSet<String>> = factors.iter().map(|f| f.free_vars()).collect();

        // seg[i][j] covers the product of factors i..=j.
        let mut seg: Vec<Vec<Option<ChainSeg>>> = vec![vec![None; k]; k];
        for (i, est) in ests.iter().enumerate() {
            seg[i][i] = Some((ExprEstimate { work: 0.0, ..*est }, 0.0, i));
        }
        for len in 2..=k {
            for i in 0..=(k - len) {
                let j = i + len - 1;
                let mut vars = BTreeSet::new();
                for f in &free[i..=j] {
                    vars.extend(f.iter().cloned());
                }
                let amortize = self.amortization(&vars);
                let mut best: Option<ChainSeg> = None;
                for s in i..j {
                    let (le, lc, _) = seg[i][s].expect("shorter interval filled");
                    let (re, rc, _) = seg[s + 1][j].expect("shorter interval filled");
                    let (nnz, own) = product_cost(&le, &re);
                    let cost = lc + rc + (own + PRODUCT_OVERHEAD) / amortize;
                    if best.map_or(true, |(_, c, _)| cost < c) {
                        best = Some((
                            ExprEstimate {
                                rows: le.rows,
                                cols: re.cols,
                                nnz,
                                work: 0.0,
                                total: le.total && re.total,
                            },
                            cost,
                            s,
                        ));
                    }
                }
                seg[i][j] = best;
            }
        }
        let (_, best_cost, _) = seg[0][k - 1].expect("full interval filled");

        // Cost of the association as it stands, with the same amortization.
        let mut idx = 0;
        let (_, current_cost, _) = self.assoc_cost(&tree, &ests, &free, &mut idx);
        if best_cost >= current_cost * MIN_IMPROVEMENT {
            return tree;
        }
        self.applied.push(AppliedRewrite {
            rule: "matrix-chain-reorder",
            detail: format!("{k}-factor chain: ≈{current_cost:.0} → ≈{best_cost:.0} ops"),
            saving: current_cost - best_cost,
        });
        build_tree(&factors, &seg, 0, k - 1)
    }

    /// The amortized own-cost of an existing association, computed with
    /// the same combinators as the DP so the comparison is exact.
    /// Returns `(estimate, cost, free variables)` and advances `idx`
    /// through the factor list.
    fn assoc_cost(
        &self,
        e: &Expr,
        ests: &[ExprEstimate],
        free: &[BTreeSet<String>],
        idx: &mut usize,
    ) -> (ExprEstimate, f64, BTreeSet<String>) {
        if let Expr::MatMul(a, b) = e {
            let (le, lc, lv) = self.assoc_cost(a, ests, free, idx);
            let (re, rc, rv) = self.assoc_cost(b, ests, free, idx);
            let (nnz, own) = product_cost(&le, &re);
            let mut vars = lv;
            vars.extend(rv);
            let cost = lc + rc + (own + PRODUCT_OVERHEAD) / self.amortization(&vars);
            (
                ExprEstimate {
                    rows: le.rows,
                    cols: re.cols,
                    nnz,
                    work: 0.0,
                    total: le.total && re.total,
                },
                cost,
                vars,
            )
        } else {
            let est = ExprEstimate {
                work: 0.0,
                ..ests[*idx]
            };
            let vars = free[*idx].clone();
            *idx += 1;
            (est, 0.0, vars)
        }
    }
}

/// Rebuilds the DP's optimal association over `factors[i..=j]`.
fn build_tree(factors: &[Expr], seg: &[Vec<Option<ChainSeg>>], i: usize, j: usize) -> Expr {
    if i == j {
        return factors[i].clone();
    }
    let (_, _, s) = seg[i][j].expect("interval filled");
    Expr::MatMul(
        Box::new(build_tree(factors, seg, i, s)),
        Box::new(build_tree(factors, seg, s + 1, j)),
    )
}

/// Applies the cost-based rules to `expr` until a fixpoint (each pass
/// strictly reduces the estimated cost, so this terminates; a small pass
/// cap guards against pathological interactions).
pub fn rewrite_with_stats(expr: &Expr, stats: &InstanceStats) -> RewriteOutcome {
    let mut current = expr.clone();
    let mut applied = Vec::new();
    for _ in 0..4 {
        let mut rewriter = Rewriter {
            stats,
            scope: Vec::new(),
            loops: Vec::new(),
            applied: Vec::new(),
        };
        let next = rewriter.rewrite(&current);
        if next == current {
            break;
        }
        applied.extend(rewriter.applied);
        current = next;
    }
    RewriteOutcome {
        expr: current,
        applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// n = 1000, G sparse (degree 8), D dense, A skinny (10 × 1000),
    /// u/w vectors.
    fn stats() -> InstanceStats {
        let var = |rows, cols, nnz| VarStats { rows, cols, nnz };
        InstanceStats {
            dims: BTreeMap::from([("n".to_string(), 1000), ("m".to_string(), 10)]),
            vars: BTreeMap::from([
                ("G".to_string(), var(1000, 1000, 8000)),
                ("D".to_string(), var(1000, 1000, 1_000_000)),
                ("A".to_string(), var(10, 1000, 10_000)),
                ("u".to_string(), var(1000, 1, 1000)),
                ("w".to_string(), var(1000, 1, 1000)),
            ]),
        }
    }

    fn g() -> Expr {
        Expr::var("G")
    }

    #[test]
    fn chain_reorder_prefers_matrix_vector_association() {
        // (G·G)·u left-associated costs a full SpMM; G·(G·u) is two
        // matvecs.  The DP must right-associate.
        let e = g().mm(g()).mm(Expr::var("u"));
        let out = rewrite_with_stats(&e, &stats());
        assert_eq!(out.expr, g().mm(g().mm(Expr::var("u"))));
        assert_eq!(out.applied.len(), 1);
        assert_eq!(out.applied[0].rule, "matrix-chain-reorder");
        assert!(out.applied[0].saving > 0.0);
    }

    #[test]
    fn chain_reorder_preserves_factor_order() {
        let e = g().mm(g()).mm(g()).mm(Expr::var("u"));
        let out = rewrite_with_stats(&e, &stats());
        let mut factors = Vec::new();
        flatten_chain(&out.expr, &mut factors);
        assert_eq!(
            factors,
            vec![g(), g(), g(), Expr::var("u")],
            "reordering must only change the association"
        );
    }

    #[test]
    fn already_optimal_chains_are_left_alone() {
        let e = g().mm(g().mm(Expr::var("u")));
        let out = rewrite_with_stats(&e, &stats());
        assert_eq!(out.expr, e);
        assert!(out.applied.is_empty());
    }

    #[test]
    fn unknown_variables_disable_reordering() {
        let e = Expr::var("missing").mm(g()).mm(Expr::var("u"));
        let out = rewrite_with_stats(&e, &stats());
        assert_eq!(out.expr, e);
        assert!(out.applied.is_empty());
    }

    #[test]
    fn transpose_distributes_over_products_and_cancels() {
        // (Gᵀ·G)ᵀ → Gᵀ·Gᵀᵀ → Gᵀ·G: the Gram matrix itself.
        let gram = g().t().mm(g());
        let out = rewrite_with_stats(&gram.clone().t(), &stats());
        assert_eq!(out.expr, gram);
        assert_eq!(out.applied.len(), 1);
        assert_eq!(out.applied[0].rule, "transpose-pushdown");
    }

    #[test]
    fn transpose_of_dense_product_is_kept_when_cheaper() {
        // Both operands dense: (D·D)ᵀ — transposing the operands does not
        // shrink the product, and the result transpose costs the same nnz
        // as the two operand transposes; no clear win, so no rewrite.
        let e = Expr::var("D").mm(Expr::var("D")).t();
        let out = rewrite_with_stats(&e, &stats());
        assert_eq!(out.expr, e);
    }

    #[test]
    fn ones_pushdown_skips_the_product() {
        let e = g().mm(g()).ones();
        let out = rewrite_with_stats(&e, &stats());
        assert_eq!(out.expr, g().ones());
        assert_eq!(out.applied.len(), 1);
        assert_eq!(out.applied[0].rule, "ones-pushdown");
    }

    #[test]
    fn ones_pushdown_requires_totality() {
        // `gt0` may be unregistered at runtime: the dropped subterm is not
        // provably total, so `1(G·gt0(G))` must keep its operand.
        let e = g().mm(Expr::apply("gt0", vec![g()])).ones();
        let out = rewrite_with_stats(&e, &stats());
        assert_eq!(out.expr, e);
        assert!(out.applied.is_empty());
    }

    #[test]
    fn ones_pushdown_through_diag_and_scalar_mul() {
        let e = Expr::var("u").diag().ones();
        let out = rewrite_with_stats(&e, &stats());
        assert_eq!(out.expr, Expr::var("u").ones());
        let e = Expr::lit(2.0).smul(g().mm(g())).ones();
        let out = rewrite_with_stats(&e, &stats());
        assert_eq!(out.expr, g().ones());
    }

    #[test]
    fn loop_invariant_products_are_amortized() {
        // A·(D·(v + u)) with A skinny (10 × 1000) and D dense.  Outside a
        // loop, the right association is optimal (one dense matvec beats
        // the 10⁷-op A·D), so the DP must leave it alone.  Inside Σv the
        // vector `v + u` changes every iteration while A·D is
        // loop-invariant — computed once and memoized by the executor —
        // so the loop-aware DP must flip to (A·D)·(v + u), paying the big
        // product once and a skinny 10 × 1000 matvec per iteration.
        fn has_ad_product(e: &Expr) -> bool {
            match e {
                Expr::MatMul(a, b) => {
                    (**a == Expr::var("A") && **b == Expr::var("D"))
                        || has_ad_product(a)
                        || has_ad_product(b)
                }
                _ => false,
            }
        }
        let chain = |vec: Expr| Expr::var("A").mm(Expr::var("D").mm(vec.add(Expr::var("u"))));

        let outside = rewrite_with_stats(&chain(Expr::var("w")), &stats());
        assert_eq!(outside.expr, chain(Expr::var("w")), "optimal as written");
        assert!(outside.applied.is_empty());

        let inside = rewrite_with_stats(&Expr::sum("v", "n", chain(Expr::var("v"))), &stats());
        let Expr::Sum { body, .. } = &inside.expr else {
            panic!("sum preserved, got {}", inside.expr);
        };
        assert!(
            has_ad_product(body),
            "loop-invariant A·D must be hoistable: {body}"
        );
        assert_eq!(inside.applied.len(), 1);
        assert_eq!(inside.applied[0].rule, "matrix-chain-reorder");
    }

    #[test]
    fn passes_compose_transpose_then_chain() {
        // ((G·G)ᵀ)·u: pushing the transpose down exposes a 3-factor chain
        // Gᵀ·Gᵀ·u that the DP right-associates into two matvecs.
        let e = g().mm(g()).t().mm(Expr::var("u"));
        let out = rewrite_with_stats(&e, &stats());
        assert_eq!(out.expr, g().t().mm(g().t().mm(Expr::var("u"))));
        let rules: Vec<&str> = out.applied.iter().map(|r| r.rule).collect();
        assert!(rules.contains(&"transpose-pushdown"));
        assert!(rules.contains(&"matrix-chain-reorder"));
    }

    #[test]
    fn empty_stats_disable_every_rule() {
        let exprs = [
            g().mm(g()).mm(Expr::var("u")),
            g().mm(g()).t(),
            g().mm(g()).ones(),
        ];
        for e in exprs {
            let out = rewrite_with_stats(&e, &InstanceStats::empty());
            assert_eq!(out.expr, e);
            assert!(out.applied.is_empty());
        }
    }
}
