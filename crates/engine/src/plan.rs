//! The physical plan IR: a hash-consed DAG of MATLANG operations.
//!
//! Where the tree-walking evaluator in `matlang_core` re-evaluates every
//! occurrence of a subexpression, a [`Plan`] assigns each *structurally
//! distinct* subexpression a single [`NodeId`]: identical subtrees are
//! interned to the same node (common-subexpression elimination), and the
//! executor memoizes one result per node.  Loop-invariant hoisting falls
//! out of the same mechanism — each node records the set of matrix
//! variables its value depends on ([`PlanNode::free_vars`]), the plan keeps
//! a reverse index from variable name to dependent nodes, and the executor
//! drops exactly those cache entries when a loop rebinds its iteration
//! vector.  A node inside a Σ/Π body that does not mention the loop
//! variable therefore keeps its cached value across all `n` iterations: it
//! is computed once, exactly as if it had been hoisted out of the loop.
//!
//! Plans are built by the [`crate::Planner`] and evaluated by the
//! [`crate::Executor`]; [`PlanReport`] summarizes what the planner did
//! (CSE sharing, hoistable nodes, `rewrite::simplify` savings, per-node
//! representation choices and parallel-kernel marks).

use matlang_core::MatrixType;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Index of a node in its [`Plan`]; children always have smaller ids than
/// their parents (the node list is in topological order).
pub type NodeId = usize;

/// A literal scalar with **bitwise** equality and hashing, so that plan
/// operations containing constants can be hash-consed.  (Plain `f64` is not
/// `Eq`/`Hash`; bit equality is stricter than `==` only for `NaN` and
/// `-0.0`, where treating the values as distinct is the conservative
/// choice.)
#[derive(Clone, Copy, Debug)]
pub struct ConstVal(pub f64);

impl PartialEq for ConstVal {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for ConstVal {}

impl Hash for ConstVal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.to_bits());
    }
}

/// One operation of the physical plan — the same operator set as
/// [`matlang_core::Expr`], with subexpressions replaced by [`NodeId`]s into
/// the owning [`Plan`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PlanOp {
    /// A matrix variable (instance matrix or loop/let binding).
    Var(String),
    /// A literal scalar constant.
    Const(ConstVal),
    /// Transpose `eᵀ`.
    Transpose(NodeId),
    /// The ones vector `1(e)`.
    Ones(NodeId),
    /// Diagonalization `diag(e)`.
    Diag(NodeId),
    /// Matrix product `e₁ · e₂`.
    MatMul(NodeId, NodeId),
    /// Matrix addition `e₁ + e₂`.
    Add(NodeId, NodeId),
    /// Scalar multiplication `e₁ × e₂`.
    ScalarMul(NodeId, NodeId),
    /// Hadamard product `e₁ ∘ e₂`.
    Hadamard(NodeId, NodeId),
    /// Fused `diag(vec) · mat` — the planner's diag-pushdown rewrite of a
    /// product with a diagonalized left operand.  Evaluates `vec` first and
    /// `mat` second, exactly as the unfused `MatMul(Diag(vec), mat)` would,
    /// and runs [`matlang_matrix::MatrixStorage::scale_rows`] instead of
    /// materializing the diagonal.
    ScaleRows {
        /// The scaling vector (the operand of the fused `diag`).
        vec: NodeId,
        /// The matrix whose rows are scaled.
        mat: NodeId,
    },
    /// Fused `mat · diag(vec)`; the column-scaling mirror of
    /// [`PlanOp::ScaleRows`], evaluating `mat` first.
    ScaleCols {
        /// The matrix whose columns are scaled.
        mat: NodeId,
        /// The scaling vector (the operand of the fused `diag`).
        vec: NodeId,
    },
    /// Pointwise function application `f(e₁, …, e_k)`.
    Apply(String, Vec<NodeId>),
    /// `let var = value in body`.
    Let {
        /// The bound variable name.
        var: String,
        /// The bound value.
        value: NodeId,
        /// The body in which the binding is visible.
        body: NodeId,
    },
    /// The canonical for-loop `for var, acc (= init)?. body`.
    For {
        /// The iteration vector variable.
        var: String,
        /// The size symbol governing the iteration count.
        var_dim: String,
        /// The accumulator variable.
        acc: String,
        /// The declared accumulator type.
        acc_type: MatrixType,
        /// Optional initializer (defaults to the zero matrix).
        init: Option<NodeId>,
        /// The loop body.
        body: NodeId,
    },
    /// The additive-update loop `Σvar. body`.
    Sum {
        /// The iteration vector variable.
        var: String,
        /// The size symbol governing the iteration count.
        var_dim: String,
        /// The summand.
        body: NodeId,
    },
    /// The Hadamard-product loop `Π∘var. body`.
    HProd {
        /// The iteration vector variable.
        var: String,
        /// The size symbol governing the iteration count.
        var_dim: String,
        /// The factor.
        body: NodeId,
    },
    /// The matrix-product loop `Πvar. body`.
    MProd {
        /// The iteration vector variable.
        var: String,
        /// The size symbol governing the iteration count.
        var_dim: String,
        /// The factor.
        body: NodeId,
    },
}

impl PlanOp {
    /// The child node ids of this operation, in evaluation order.
    pub fn children(&self) -> Vec<NodeId> {
        match self {
            PlanOp::Var(_) | PlanOp::Const(_) => Vec::new(),
            PlanOp::Transpose(a) | PlanOp::Ones(a) | PlanOp::Diag(a) => vec![*a],
            PlanOp::MatMul(a, b)
            | PlanOp::Add(a, b)
            | PlanOp::ScalarMul(a, b)
            | PlanOp::Hadamard(a, b) => vec![*a, *b],
            PlanOp::ScaleRows { vec, mat } => vec![*vec, *mat],
            PlanOp::ScaleCols { mat, vec } => vec![*mat, *vec],
            PlanOp::Apply(_, args) => args.clone(),
            PlanOp::Let { value, body, .. } => vec![*value, *body],
            PlanOp::For { init, body, .. } => {
                let mut out = Vec::new();
                if let Some(init) = init {
                    out.push(*init);
                }
                out.push(*body);
                out
            }
            PlanOp::Sum { body, .. } | PlanOp::HProd { body, .. } | PlanOp::MProd { body, .. } => {
                vec![*body]
            }
        }
    }

    /// A short static name for this operation kind — used for tracing span
    /// labels (`execute:matmul`) and the `EXPLAIN`/`PROFILE` renderings.
    pub fn label(&self) -> &'static str {
        match self {
            PlanOp::Var(_) => "var",
            PlanOp::Const(_) => "const",
            PlanOp::Transpose(_) => "transpose",
            PlanOp::Ones(_) => "ones",
            PlanOp::Diag(_) => "diag",
            PlanOp::MatMul(_, _) => "matmul",
            PlanOp::Add(_, _) => "add",
            PlanOp::ScalarMul(_, _) => "scalar-mul",
            PlanOp::Hadamard(_, _) => "hadamard",
            PlanOp::ScaleRows { .. } => "scale-rows",
            PlanOp::ScaleCols { .. } => "scale-cols",
            PlanOp::Apply(_, _) => "apply",
            PlanOp::Let { .. } => "let",
            PlanOp::For { .. } => "for",
            PlanOp::Sum { .. } => "sum",
            PlanOp::HProd { .. } => "hprod",
            PlanOp::MProd { .. } => "mprod",
        }
    }

    /// A one-line rendering of the operation with `#id` child references,
    /// e.g. `matmul #1 #2` or `sum v:n #4` — the node column of
    /// [`Plan::explain`].
    pub fn describe(&self) -> String {
        let kids = |ids: &[NodeId]| {
            ids.iter()
                .map(|i| format!("#{i}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        match self {
            PlanOp::Var(name) => format!("var {name}"),
            PlanOp::Const(c) => format!("const {}", c.0),
            PlanOp::Apply(name, args) => format!("apply {name} {}", kids(args)),
            PlanOp::Let { var, value, body } => format!("let {var} = #{value} in #{body}"),
            PlanOp::For {
                var,
                var_dim,
                acc,
                init,
                body,
                ..
            } => match init {
                Some(init) => format!("for {var}:{var_dim} acc {acc} init #{init} body #{body}"),
                None => format!("for {var}:{var_dim} acc {acc} body #{body}"),
            },
            PlanOp::Sum { var, var_dim, body } => format!("sum {var}:{var_dim} #{body}"),
            PlanOp::HProd { var, var_dim, body } => format!("hprod {var}:{var_dim} #{body}"),
            PlanOp::MProd { var, var_dim, body } => format!("mprod {var}:{var_dim} #{body}"),
            other => {
                let children = other.children();
                if children.is_empty() {
                    other.label().to_string()
                } else {
                    format!("{} {}", other.label(), kids(&children))
                }
            }
        }
    }

    /// Whether [`crate::delta`] has a propagation rule for this operation.
    /// Nodes without one fall back to invalidation when an update reaches
    /// them: pointwise function application is not linear over the
    /// semiring, and the loop constructs rebind variables per iteration,
    /// so their deltas are not expressible from the child deltas alone.
    pub fn supports_delta(&self) -> bool {
        !matches!(
            self,
            PlanOp::Apply(_, _)
                | PlanOp::Let { .. }
                | PlanOp::For { .. }
                | PlanOp::Sum { .. }
                | PlanOp::HProd { .. }
                | PlanOp::MProd { .. }
        )
    }
}

/// The representation the cost model picked for a node's result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReprChoice {
    /// Dense row-major storage.
    Dense,
    /// CSR storage.
    Sparse,
}

/// The cost model's advisory estimate for one node: output shape, expected
/// non-zero count, the work to produce it, and the decisions derived from
/// those numbers.  Estimates are best-effort — a node whose inputs are
/// unknown (e.g. a variable absent from the instance) simply carries no
/// estimate, and nothing downstream depends on one being present.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeEstimate {
    /// Estimated output rows.
    pub rows: usize,
    /// Estimated output columns.
    pub cols: usize,
    /// Expected number of non-zero output entries.
    pub nnz: f64,
    /// Estimated semiring multiplications to compute the node once.
    pub work: f64,
    /// The storage representation chosen for the result.
    pub choice: ReprChoice,
    /// Whether a product node is heavy enough for the threaded kernel.
    pub parallel: bool,
}

impl NodeEstimate {
    /// Expected fraction of non-zero entries (0 for an empty shape).
    pub fn density(&self) -> f64 {
        let total = (self.rows * self.cols) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.nnz / total
        }
    }
}

/// One node of a [`Plan`]: the operation plus everything the planner
/// learned about it.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// The operation.
    pub op: PlanOp,
    /// The matrix variables this node's *value* depends on: free variables
    /// of the subexpression the node represents.  Binders subtract their
    /// bound names, so a loop node does not depend on its own iteration
    /// vector.
    pub free_vars: BTreeSet<String>,
    /// How many parents reference this node (> 1 means CSE found sharing).
    pub refs: usize,
    /// Whether some occurrence of this node sits inside a loop body whose
    /// bound variables it does not mention — the executor's scoped cache
    /// keeps such a node's value across that loop's iterations, i.e. the
    /// node is effectively hoisted out of the loop.
    pub hoistable: bool,
    /// Whether the executor should memoize this node's result.  Caching a
    /// node that is referenced once and never survives a loop iteration
    /// would only pay an extra clone, so the planner marks exactly the
    /// shared (`refs > 1`) and [`hoistable`](PlanNode::hoistable) nodes.
    pub cacheable: bool,
    /// The cost model's estimate, when the instance statistics allowed one.
    pub est: Option<NodeEstimate>,
}

/// One application of a cost-based rewrite rule, recorded in the
/// [`PlanReport`] so that tests, the query server and the
/// `rewrite_speedup` benchmark can see exactly what the planner changed
/// and what it expects to gain.
#[derive(Clone, Debug, PartialEq)]
pub struct AppliedRewrite {
    /// The rule identifier: `"matrix-chain-reorder"`,
    /// `"transpose-pushdown"`, `"ones-pushdown"` or `"diag-pushdown"`.
    pub rule: &'static str,
    /// A human-readable summary of the rewritten site.
    pub detail: String,
    /// Estimated semiring operations saved per evaluation (from the same
    /// nnz/density cost model the planner's representation choices use).
    pub saving: f64,
}

/// What the planner did, in numbers — exposed for reports, tests and the
/// `planner_speedup` benchmark.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanReport {
    /// Number of planned queries (roots).
    pub queries: usize,
    /// Total AST nodes of the (simplified) query trees — what the naive
    /// evaluator would traverse.
    pub tree_nodes: usize,
    /// Distinct DAG nodes after hash-consing.
    pub dag_nodes: usize,
    /// Nodes referenced more than once (CSE hits).
    pub shared_nodes: usize,
    /// Total AST nodes removed by folding `rewrite::simplify` into
    /// planning, summed over the queries (`rewrite::savings`).
    pub simplify_savings: usize,
    /// Nodes marked loop-invariant with respect to an enclosing loop.
    pub hoistable_nodes: usize,
    /// Nodes whose cost-model choice is dense storage.
    pub dense_nodes: usize,
    /// Nodes whose cost-model choice is CSR storage.
    pub sparse_nodes: usize,
    /// Product nodes marked for the row-partitioned parallel kernel.
    pub parallel_products: usize,
    /// Elementwise (add/Hadamard) nodes marked for the row-partitioned
    /// parallel kernel.
    pub parallel_elementwise: usize,
    /// Every cost-based rewrite the planner applied (chain reordering,
    /// transpose/ones pushdown, diag fusion), in application order.
    pub rewrites: Vec<AppliedRewrite>,
    /// Product nodes fused into [`PlanOp::ScaleRows`] /
    /// [`PlanOp::ScaleCols`] kernels.
    pub fused_products: usize,
    /// Nodes with a delta-propagation rule ([`PlanOp::supports_delta`]);
    /// updates reaching the remaining nodes invalidate instead of patch.
    pub delta_supported_nodes: usize,
    /// The observability trace id ([`matlang_obs::trace`]) that was active
    /// while this plan was built; 0 when planning ran outside a trace.
    pub trace_id: u64,
}

impl PlanReport {
    /// Total estimated semiring operations saved per evaluation by the
    /// cost-based rewrites, summed over [`PlanReport::rewrites`].
    pub fn rewrite_savings(&self) -> f64 {
        self.rewrites.iter().map(|r| r.saving).sum()
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} quer{} · {} tree nodes → {} dag nodes ({} shared, {} hoistable) · \
             simplify saved {} · repr {} dense / {} sparse · {} parallel products · \
             {} parallel elementwise · {} cost rewrites (≈{:.0} ops saved) · \
             {} fused products · {} delta-supported nodes",
            self.queries,
            if self.queries == 1 { "y" } else { "ies" },
            self.tree_nodes,
            self.dag_nodes,
            self.shared_nodes,
            self.hoistable_nodes,
            self.simplify_savings,
            self.dense_nodes,
            self.sparse_nodes,
            self.parallel_products,
            self.parallel_elementwise,
            self.rewrites.len(),
            self.rewrite_savings(),
            self.fused_products,
            self.delta_supported_nodes,
        )
    }
}

/// A compiled, DAG-shaped physical plan for one or more queries over a
/// common instance.
#[derive(Clone, Debug)]
pub struct Plan {
    pub(crate) nodes: Vec<PlanNode>,
    pub(crate) roots: Vec<NodeId>,
    pub(crate) dependents: HashMap<String, Vec<NodeId>>,
    /// The planner's summary of this plan.
    pub report: PlanReport,
}

impl Plan {
    /// All nodes, in topological (children-first) order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// One root per planned query, in query order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id]
    }

    /// The nodes whose cached value must be dropped when `var` is rebound.
    pub fn dependents_of(&self, var: &str) -> &[NodeId] {
        self.dependents.get(var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A fingerprint of the plan's **physical structure**: the interned
    /// operation of every node plus the root list.  Because the cost-based
    /// rewrite layer can produce different DAGs for the same query texts
    /// (chain association and kernel fusion depend on instance
    /// statistics), this is the value that identifies *which* rewritten
    /// DAG a prepared statement actually executes — the query server
    /// reports it on every `PREPARE` so clients can tell plan variants
    /// apart.
    pub fn structure_fingerprint(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for node in &self.nodes {
            node.op.hash(&mut hasher);
        }
        self.roots.hash(&mut hasher);
        hasher.finish()
    }

    /// Per-node **structural** fingerprints, in node order: each node's
    /// fingerprint hashes its operation kind, its salient payload
    /// (variable/function names, constants, loop headers) and its
    /// children's fingerprints — but *not* the raw [`NodeId`]s, which
    /// depend on interning order.  The fingerprint of a node therefore
    /// identifies the subexpression it computes independently of which
    /// plan it sits in, so observed statistics harvested from one
    /// executed plan ([`crate::ObservedStats`]) can be matched against
    /// the nodes of a *re-planned* DAG for the same queries.
    pub fn node_fingerprints(&self) -> Vec<u64> {
        let mut fps = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let fp = op_fingerprint(&node.op, &fps);
            fps.push(fp);
        }
        fps
    }

    /// Renders the rewritten DAG as one line per node — operation, child
    /// references, the cost model's estimate (shape, nnz, work,
    /// representation, parallel mark), cache and delta eligibility —
    /// followed by the root list and the applied cost-based rewrites.
    /// This is the payload of the query server's `EXPLAIN` verb.
    pub fn explain(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.nodes.len() + self.roots.len() + 2);
        lines.push(format!(
            "plan nodes={} roots={} fingerprint={:016x}",
            self.nodes.len(),
            self.roots.len(),
            self.structure_fingerprint()
        ));
        for (id, node) in self.nodes.iter().enumerate() {
            let est = match node.est {
                Some(est) => format!(
                    "est {}x{} nnz~{:.0} work~{:.0} {}{}",
                    est.rows,
                    est.cols,
                    est.nnz,
                    est.work,
                    match est.choice {
                        ReprChoice::Dense => "dense",
                        ReprChoice::Sparse => "sparse",
                    },
                    if est.parallel { " parallel" } else { "" },
                ),
                None => "est ?".to_string(),
            };
            lines.push(format!(
                "#{id} {} | {est} | cache={} delta={}",
                node.op.describe(),
                if node.cacheable { "yes" } else { "no" },
                if node.op.supports_delta() {
                    "yes"
                } else {
                    "no"
                },
            ));
        }
        for (q, root) in self.roots.iter().enumerate() {
            lines.push(format!("root q{q} = #{root}"));
        }
        for rewrite in &self.report.rewrites {
            lines.push(format!(
                "rewrite {} (~{:.0} ops saved): {}",
                rewrite.rule, rewrite.saving, rewrite.detail
            ));
        }
        lines
    }

    /// Marks **every** node cacheable, not just the shared and hoistable
    /// ones the planner selects for one-shot evaluation.
    ///
    /// For a plan executed once, caching single-reference nodes only costs
    /// an extra `Arc` per node; for a *prepared* plan executed repeatedly
    /// over a persistent [`crate::exec::NodeCache`], it is what makes a
    /// re-execution O(1): the root itself is served from the cache until an
    /// update invalidates it.  Correctness is unaffected — the executor's
    /// invalidation discipline (and
    /// [`Plan::invalidate_dependents_in`] for external updates) drops
    /// entries exactly when a variable they depend on changes.
    pub fn mark_all_cacheable(&mut self) {
        for node in &mut self.nodes {
            node.cacheable = true;
        }
    }

    /// Drops from `cache` the entries of every node whose value depends on
    /// `var`, returning how many entries were actually dropped.
    ///
    /// This is the **external** counterpart of the executor's internal
    /// rebinding invalidation, driven by the same dependency index: after a
    /// caller mutates the instance matrix bound to `var` (an incremental
    /// update), exactly the dependent subgraph of the plan DAG loses its
    /// memoized results — standing queries untouched by the update keep
    /// their warm cache.
    pub fn invalidate_dependents_in<T>(&self, cache: &mut [Option<T>], var: &str) -> u64 {
        let mut dropped = 0;
        for &id in self.dependents_of(var) {
            if let Some(slot) = cache.get_mut(id) {
                if slot.take().is_some() {
                    dropped += 1;
                }
            }
        }
        dropped
    }
}

/// The structural fingerprint of one operation, given the fingerprints of
/// its (lower-id) children — the bottom-up step behind
/// [`Plan::node_fingerprints`], shared with the planner so it can
/// fingerprint nodes *while interning them* and consult observed
/// statistics for the subtree being built.
pub(crate) fn op_fingerprint(op: &PlanOp, fingerprints: &[u64]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    op.label().hash(&mut h);
    match op {
        PlanOp::Var(name) => name.hash(&mut h),
        PlanOp::Const(c) => c.hash(&mut h),
        PlanOp::Apply(name, _) => name.hash(&mut h),
        PlanOp::Let { var, .. } => var.hash(&mut h),
        PlanOp::For {
            var,
            var_dim,
            acc,
            acc_type,
            ..
        } => {
            var.hash(&mut h);
            var_dim.hash(&mut h);
            acc.hash(&mut h);
            acc_type.hash(&mut h);
        }
        PlanOp::Sum { var, var_dim, .. }
        | PlanOp::HProd { var, var_dim, .. }
        | PlanOp::MProd { var, var_dim, .. } => {
            var.hash(&mut h);
            var_dim.hash(&mut h);
        }
        _ => {}
    }
    for child in op.children() {
        fingerprints[child].hash(&mut h);
    }
    h.finish()
}
