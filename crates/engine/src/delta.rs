//! Delta-driven incremental view maintenance over the plan DAG.
//!
//! The query server's standing queries (reachability, iterated semiring
//! products) are exactly the workloads where a point `UPDATE` should cost
//! microseconds; before this module, any update invalidated every
//! dependent plan node and the next `EXEC` recomputed full products from
//! scratch.  Here an update is instead **propagated**: the changed entries
//! of a variable flow bottom-up through the hash-consed DAG
//! ([`crate::Plan`]) as a sparse delta per node, and each cached value is
//! patched instead of recomputed — the matrix lift of the semi-naive
//! `previous_delta`/`current_delta` Datalog loop, where only the frontier
//! delta multiplies each round.
//!
//! # Exactness
//!
//! Patching is gated so results stay **bit-identical** to full
//! recomputation (the standing parity constraint):
//!
//! * the semiring's `⊕` must be **idempotent** (`a ⊕ a = a`), probed at
//!   runtime by [`join_is_idempotent`] — Boolean and the tropical
//!   min/max-plus semirings qualify, ℝ/ℕ/ℤ do not;
//! * the update must be **insert-only**: every touched entry must satisfy
//!   `old ⊕ new = new` (absorption), so overwriting equals `⊕`-merging.
//!   For Boolean that means edge insertions; for min-plus, weight
//!   *lowerings*.  Deletions have no inverse in a semiring (no
//!   subtraction), so they fall back to invalidation.
//!
//! Under those two conditions the one-sided product rule
//! `Δ(l·r) = Δl·r_new ⊕ l_new·Δr` is exact: the double-counted `Δl·Δr`
//! term collapses under idempotency, and every other operator with a
//! propagation rule ([`crate::PlanOp::supports_delta`]) is linear over
//! `⊕`.  Nodes without a rule (pointwise `apply`, the loop binders) are
//! invalidated — a *partial* fallback recorded in the [`DeltaReport`].
//!
//! # Lazy overlays
//!
//! Patching a multi-million-entry cached product for every point update
//! would cost `O(nnz)` per node per update — as bad as recomputing.
//! Instead each node's pending delta accumulates in a small sparse
//! **overlay** ([`DeltaOverlay`]); the true value of node `i` is
//! `cache[i] ⊕ overlay[i]`.  Per update only the overlay grows (by the
//! few propagated entries); the merge into the big base value is deferred
//! until either the overlay outgrows a fraction of the base (amortized
//! compaction) or an `EXEC` needs the raw cached value
//! ([`DeltaOverlay::flush_for_roots`] folds exactly the requested roots
//! when everything is warm).

use crate::exec::NodeCache;
use crate::plan::{NodeId, Plan, PlanOp};
use matlang_matrix::{MatrixError, MatrixStorage, SparseMatrix};
use matlang_semiring::Semiring;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Runtime probe: is the semiring's `⊕` idempotent (`a ⊕ a = a`) on a
/// spread of sample values?  Modeled on [`crate::constants_fold_exactly`]:
/// the engine is generic over `K`, so eligibility for exact delta
/// maintenance is decided by testing the algebra, not by naming types.
/// `Boolean`, `MinPlus` and `MaxPlus` pass; `Real`, `Nat` and `IntRing`
/// fail on the first sample.
pub fn join_is_idempotent<K: Semiring>() -> bool {
    const SAMPLES: [f64; 7] = [0.0, 1.0, 2.0, -1.5, 0.25, 7.0, 1.0e6];
    SAMPLES.iter().all(|&x| {
        let v = K::from_f64(x);
        v.add(&v) == v
    })
}

/// Whether overwriting `old` with `new` equals `⊕`-merging them — the
/// per-entry insert-only test (`old ⊕ new = new`, absorption).
pub fn absorbs<K: Semiring>(old: &K, new: &K) -> bool {
    old.add(new) == *new
}

/// Why an update (or one node of it) could not take the delta path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaFallback {
    /// `⊕` is not idempotent ([`join_is_idempotent`] failed), so patched
    /// values would double-count overlapping contributions.
    NonIdempotentSemiring,
    /// Some touched entry fails `old ⊕ new = new` (a delete or a
    /// non-absorbing overwrite).
    NotInsertOnly,
    /// No prepared plan exists for the instance, so there is no DAG to
    /// propagate through.
    NoPlan,
    /// Delta maintenance is disabled
    /// ([`crate::PlanOptions::delta_maintenance`]).
    Disabled,
    /// The batch failed mid-application; dependents were invalidated to
    /// stay consistent.
    PartialBatch,
}

impl DeltaFallback {
    /// A stable, token-safe (no whitespace) wire code for the reason.
    pub fn code(&self) -> &'static str {
        match self {
            DeltaFallback::NonIdempotentSemiring => "non-idempotent-semiring",
            DeltaFallback::NotInsertOnly => "not-insert-only",
            DeltaFallback::NoPlan => "no-plan",
            DeltaFallback::Disabled => "disabled",
            DeltaFallback::PartialBatch => "partial-batch",
        }
    }
}

impl std::fmt::Display for DeltaFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// What one [`propagate`] pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Cached nodes whose pending overlay absorbed a non-empty delta.
    pub patched: u64,
    /// Cached nodes invalidated because no propagation rule applies below
    /// them (partial fallback).
    pub invalidated: u64,
    /// Overlays folded into their base value because they outgrew it.
    pub compacted: u64,
    /// Operation names that forced partial fallback, for diagnostics.
    pub unsupported: BTreeSet<&'static str>,
}

impl DeltaReport {
    /// Merge another pass's counters into this one.
    pub fn absorb(&mut self, other: DeltaReport) {
        self.patched += other.patched;
        self.invalidated += other.invalidated;
        self.compacted += other.compacted;
        self.unsupported.extend(other.unsupported);
    }
}

/// A node's change under one update, as seen by its parents.
enum NodeDelta<K: Semiring> {
    /// Value provably unchanged.
    Clean,
    /// Value changed by exactly this sparse `⊕`-delta.
    Dirty(SparseMatrix<K>),
    /// Change not expressible as a delta; the node (if cached) was
    /// invalidated and parents must follow.
    Unknown,
}

/// Pending per-node sparse overlays on top of a [`NodeCache`].
///
/// Invariant: `pending[i]` is only ever `Some` while `cache[i]` is `Some`
/// — an overlay without a base value is meaningless and is cleared
/// whenever the cache entry drops.
#[derive(Clone, Debug, Default)]
pub struct DeltaOverlay<K: Semiring> {
    pending: Vec<Option<SparseMatrix<K>>>,
}

/// Overlays are compacted into their base once `overlay_nnz * 4` exceeds
/// `base_nnz + 64`: the slack keeps tiny bases from compacting on every
/// update, the factor keeps the deferred merge amortized `O(nnz)`.
const COMPACT_FACTOR: usize = 4;
const COMPACT_SLACK: usize = 64;

impl<K: Semiring> DeltaOverlay<K> {
    /// An empty overlay for a plan with `len` nodes.
    pub fn new(len: usize) -> Self {
        DeltaOverlay {
            pending: vec![None; len],
        }
    }

    /// Drops every pending overlay and resizes to `len` (on re-plan).
    pub fn reset(&mut self, len: usize) {
        self.pending.clear();
        self.pending.resize(len, None);
    }

    /// Number of nodes with a pending overlay.
    pub fn pending_nodes(&self) -> usize {
        self.pending.iter().filter(|p| p.is_some()).count()
    }

    /// Heap bytes held by the pending overlay patches (CSR accounting per
    /// patch).  O(pending nodes) — each patch reports in O(1).
    pub fn pending_bytes(&self) -> usize {
        self.pending.iter().flatten().map(|p| p.heap_bytes()).sum()
    }

    /// Drops the pending overlay of one node (on invalidation).
    pub fn clear_node(&mut self, id: NodeId) {
        if let Some(slot) = self.pending.get_mut(id) {
            *slot = None;
        }
    }

    fn ensure_len(&mut self, len: usize) {
        if self.pending.len() != len {
            self.reset(len);
        }
    }

    /// The node's current value at `(i, j)`: base `⊕` pending overlay.
    fn value_at<M>(&self, cache: &NodeCache<M>, id: NodeId, i: usize, j: usize) -> Option<K>
    where
        M: MatrixStorage<Elem = K>,
    {
        let base = cache.get(id)?.as_ref()?;
        let v = base.get_entry(i, j).ok()?;
        match self.pending.get(id)?.as_ref() {
            Some(p) => {
                let d = p.get(i, j).ok()?;
                if d.is_zero() {
                    Some(v)
                } else {
                    Some(v.add(&d))
                }
            }
            None => Some(v),
        }
    }

    /// Folds node `id`'s pending overlay into its cached base value.
    /// Returns whether a merge actually happened.  A failed merge (shape
    /// drift — cannot happen on a consistent plan) invalidates the node,
    /// which is always safe.
    pub fn flush_node<M>(&mut self, cache: &mut NodeCache<M>, id: NodeId) -> bool
    where
        M: MatrixStorage<Elem = K>,
    {
        let Some(pending) = self.pending.get_mut(id).and_then(Option::take) else {
            return false;
        };
        let Some(slot) = cache.get_mut(id) else {
            return false;
        };
        let Some(base) = slot.as_ref() else {
            return false;
        };
        match base.apply_delta(&pending) {
            Ok(merged) => {
                *slot = Some(Arc::new(merged));
                true
            }
            Err(_) => {
                *slot = None;
                false
            }
        }
    }

    /// Prepares the cache for executing `roots`: when every requested root
    /// is cached, only those roots' overlays need folding (the executor
    /// short-circuits on a root cache hit and never reads interior nodes);
    /// otherwise the executor may read any cached interior value, so every
    /// pending overlay is folded.  Returns the number of merges.
    pub fn flush_for_roots<M>(&mut self, cache: &mut NodeCache<M>, roots: &[NodeId]) -> u64
    where
        M: MatrixStorage<Elem = K>,
    {
        let all_roots_cached = roots
            .iter()
            .all(|&r| cache.get(r).map(|s| s.is_some()).unwrap_or(false));
        let mut flushed = 0;
        if all_roots_cached {
            for &r in roots {
                if self.flush_node(cache, r) {
                    flushed += 1;
                }
            }
        } else {
            for id in 0..self.pending.len() {
                if self.flush_node(cache, id) {
                    flushed += 1;
                }
            }
        }
        flushed
    }
}

/// Propagates one insert-only update of `var` (its changed entries with
/// their **new** values, zero entries stripped) through the plan DAG,
/// patching cached node values via their overlays and invalidating the
/// cones where no rule applies.
///
/// The caller is responsible for the exactness gate
/// ([`join_is_idempotent`] plus per-entry [`absorbs`]) **and** for having
/// already applied the update to the instance matrix itself — this
/// function only maintains the plan cache.
pub fn propagate<K, M>(
    plan: &Plan,
    cache: &mut NodeCache<M>,
    overlay: &mut DeltaOverlay<K>,
    var: &str,
    update: &SparseMatrix<K>,
) -> DeltaReport
where
    K: Semiring,
    M: MatrixStorage<Elem = K>,
{
    let n = plan.nodes().len();
    overlay.ensure_len(n);
    let mut report = DeltaReport::default();
    if update.nnz() == 0 {
        return report;
    }
    let _span = matlang_obs::trace::span("delta-propagate");
    let mut deltas: Vec<NodeDelta<K>> = Vec::with_capacity(n);
    // Topological (children-first) node order: every rule sees its
    // children already patched, so "current value" below always means the
    // post-update value base ⊕ overlay.
    for id in 0..n {
        let node = plan.node(id);
        if !node.free_vars.contains(var) {
            deltas.push(NodeDelta::Clean);
            continue;
        }
        if cache.get(id).map(|s| s.is_none()).unwrap_or(true) {
            // Not cached: nothing to patch here, and any cached parent
            // will see `Unknown` and invalidate itself — which cannot
            // happen on a consistently maintained cache, where a cached
            // parent implies cached children.
            deltas.push(NodeDelta::Unknown);
            continue;
        }
        let computed = node_delta(plan, cache, overlay, &deltas, id, update);
        let outcome = match computed {
            NodeDelta::Dirty(d) if d.nnz() == 0 => NodeDelta::Clean,
            other => other,
        };
        match outcome {
            NodeDelta::Clean => deltas.push(NodeDelta::Clean),
            NodeDelta::Unknown => {
                if let Some(slot) = cache.get_mut(id) {
                    if slot.take().is_some() {
                        report.invalidated += 1;
                    }
                }
                overlay.clear_node(id);
                if !node.op.supports_delta() {
                    report.unsupported.insert(op_name(&node.op));
                }
                deltas.push(NodeDelta::Unknown);
            }
            NodeDelta::Dirty(d) => {
                let merged = match overlay.pending[id].take() {
                    Some(prev) => prev.add(&d),
                    None => Ok(d.clone()),
                };
                match merged {
                    Ok(pending) => {
                        report.patched += 1;
                        let base_nnz = cache[id].as_ref().map(|b| b.nnz()).unwrap_or(0);
                        if pending.nnz() * COMPACT_FACTOR > base_nnz + COMPACT_SLACK {
                            overlay.pending[id] = Some(pending);
                            if overlay.flush_node(cache, id) {
                                report.compacted += 1;
                            }
                        } else {
                            overlay.pending[id] = Some(pending);
                        }
                        deltas.push(NodeDelta::Dirty(d));
                    }
                    Err(_) => {
                        // Shape drift between overlay generations — cannot
                        // happen on one plan, but invalidating is safe.
                        cache[id] = None;
                        overlay.clear_node(id);
                        report.invalidated += 1;
                        deltas.push(NodeDelta::Unknown);
                    }
                }
            }
        }
    }
    report
}

fn op_name(op: &PlanOp) -> &'static str {
    match op {
        PlanOp::Var(_) => "var",
        PlanOp::Const(_) => "const",
        PlanOp::Transpose(_) => "transpose",
        PlanOp::Ones(_) => "ones",
        PlanOp::Diag(_) => "diag",
        PlanOp::MatMul(_, _) => "matmul",
        PlanOp::Add(_, _) => "add",
        PlanOp::ScalarMul(_, _) => "scalarmul",
        PlanOp::Hadamard(_, _) => "hadamard",
        PlanOp::ScaleRows { .. } => "scalerows",
        PlanOp::ScaleCols { .. } => "scalecols",
        PlanOp::Apply(_, _) => "apply",
        PlanOp::Let { .. } => "let",
        PlanOp::For { .. } => "for",
        PlanOp::Sum { .. } => "sum",
        PlanOp::HProd { .. } => "hprod",
        PlanOp::MProd { .. } => "mprod",
    }
}

/// The per-operator propagation rules.  `id` is cached and depends on the
/// updated variable; children were processed first.
fn node_delta<K, M>(
    plan: &Plan,
    cache: &NodeCache<M>,
    overlay: &DeltaOverlay<K>,
    deltas: &[NodeDelta<K>],
    id: NodeId,
    update: &SparseMatrix<K>,
) -> NodeDelta<K>
where
    K: Semiring,
    M: MatrixStorage<Elem = K>,
{
    let node = plan.node(id);
    let child = |c: NodeId| &deltas[c];
    match &node.op {
        PlanOp::Var(_) => NodeDelta::Dirty(update.clone()),
        // `1(e)` depends only on the child's row count, which an entry
        // update never changes.
        PlanOp::Ones(_) => NodeDelta::Clean,
        PlanOp::Transpose(a) => match child(*a) {
            NodeDelta::Clean => NodeDelta::Clean,
            NodeDelta::Dirty(d) => NodeDelta::Dirty(d.transpose()),
            NodeDelta::Unknown => NodeDelta::Unknown,
        },
        PlanOp::Diag(a) => match child(*a) {
            NodeDelta::Clean => NodeDelta::Clean,
            NodeDelta::Dirty(d) => match d.diag() {
                Ok(d) => NodeDelta::Dirty(d),
                Err(_) => NodeDelta::Unknown,
            },
            NodeDelta::Unknown => NodeDelta::Unknown,
        },
        PlanOp::Add(a, b) => match (child(*a), child(*b)) {
            (NodeDelta::Unknown, _) | (_, NodeDelta::Unknown) => NodeDelta::Unknown,
            (NodeDelta::Clean, NodeDelta::Clean) => NodeDelta::Clean,
            (NodeDelta::Dirty(d), NodeDelta::Clean) | (NodeDelta::Clean, NodeDelta::Dirty(d)) => {
                NodeDelta::Dirty(d.clone())
            }
            (NodeDelta::Dirty(dl), NodeDelta::Dirty(dr)) => match dl.add(dr) {
                Ok(d) => NodeDelta::Dirty(d),
                Err(_) => NodeDelta::Unknown,
            },
        },
        PlanOp::MatMul(a, b) => matmul_delta(cache, overlay, deltas, *a, *b),
        PlanOp::Hadamard(a, b) => hadamard_delta(cache, overlay, deltas, *a, *b),
        PlanOp::ScalarMul(s, e) => {
            if !matches!(child(*s), NodeDelta::Clean) {
                // The scalar operand changed: every entry of the result
                // changes, which is not a sparse delta worth building.
                return NodeDelta::Unknown;
            }
            match child(*e) {
                NodeDelta::Clean => NodeDelta::Clean,
                NodeDelta::Unknown => NodeDelta::Unknown,
                NodeDelta::Dirty(d) => match overlay.value_at(cache, *s, 0, 0) {
                    Some(scalar) => NodeDelta::Dirty(d.scalar_mul(&scalar)),
                    None => NodeDelta::Unknown,
                },
            }
        }
        // `scale_rows(mat, vec) = diag(vec) · mat`:
        // Δ = diag(Δvec)·mat_new ⊕ diag(vec_new)·Δmat, the second term
        // computed entrywise (`vec_new[i] ⊗ Δmat[i,j]`, the kernel's
        // multiplication order).
        PlanOp::ScaleRows { vec, mat } => {
            scaling_delta(cache, overlay, deltas, *vec, *mat, true, update)
        }
        // `scale_cols(mat, vec) = mat · diag(vec)`; the entrywise term is
        // `Δmat[i,j] ⊗ vec_new[j]`.
        PlanOp::ScaleCols { mat, vec } => {
            scaling_delta(cache, overlay, deltas, *vec, *mat, false, update)
        }
        PlanOp::Const(_)
        | PlanOp::Apply(_, _)
        | PlanOp::Let { .. }
        | PlanOp::For { .. }
        | PlanOp::Sum { .. }
        | PlanOp::HProd { .. }
        | PlanOp::MProd { .. } => NodeDelta::Unknown,
    }
}

/// `Δ(l·r) = Δl·r_new ⊕ l_new·Δr`, with each side expanded distributively
/// over `base ⊕ overlay` so only sparse-delta kernels run:
/// `Δl·r_new = Δl·r_base ⊕ Δl·r_ov` and `l_new·Δr = l_base·Δr ⊕ l_ov·Δr`.
fn matmul_delta<K, M>(
    cache: &NodeCache<M>,
    overlay: &DeltaOverlay<K>,
    deltas: &[NodeDelta<K>],
    a: NodeId,
    b: NodeId,
) -> NodeDelta<K>
where
    K: Semiring,
    M: MatrixStorage<Elem = K>,
{
    let (dl, dr) = (&deltas[a], &deltas[b]);
    if matches!(dl, NodeDelta::Unknown) || matches!(dr, NodeDelta::Unknown) {
        return NodeDelta::Unknown;
    }
    if matches!(dl, NodeDelta::Clean) && matches!(dr, NodeDelta::Clean) {
        return NodeDelta::Clean;
    }
    let terms = || -> Result<Option<SparseMatrix<K>>, MatrixError> {
        let mut acc: Option<SparseMatrix<K>> = None;
        let mut fold = |t: SparseMatrix<K>| -> Result<(), MatrixError> {
            acc = Some(match acc.take() {
                Some(prev) => prev.add(&t)?,
                None => t,
            });
            Ok(())
        };
        if let NodeDelta::Dirty(d) = dl {
            let r_base = cache[b].as_ref().ok_or(MatrixError::BadConstruction {
                message: "uncached product operand".into(),
            })?;
            fold(r_base.matmul_delta_pre(d)?)?;
            if let Some(r_ov) = overlay.pending[b].as_ref() {
                fold(d.matmul(r_ov)?)?;
            }
        }
        if let NodeDelta::Dirty(d) = dr {
            let l_base = cache[a].as_ref().ok_or(MatrixError::BadConstruction {
                message: "uncached product operand".into(),
            })?;
            fold(l_base.matmul_delta_post(d)?)?;
            if let Some(l_ov) = overlay.pending[a].as_ref() {
                fold(l_ov.matmul(d)?)?;
            }
        }
        Ok(acc)
    };
    match terms() {
        Ok(Some(d)) => NodeDelta::Dirty(d),
        Ok(None) => NodeDelta::Clean,
        Err(_) => NodeDelta::Unknown,
    }
}

/// `Δ(l∘r) = Δl∘r_new ⊕ l_new∘Δr`, evaluated entrywise at the deltas'
/// support via [`DeltaOverlay::value_at`] (the other side's value is only
/// needed at those few positions).
fn hadamard_delta<K, M>(
    cache: &NodeCache<M>,
    overlay: &DeltaOverlay<K>,
    deltas: &[NodeDelta<K>],
    a: NodeId,
    b: NodeId,
) -> NodeDelta<K>
where
    K: Semiring,
    M: MatrixStorage<Elem = K>,
{
    let (dl, dr) = (&deltas[a], &deltas[b]);
    if matches!(dl, NodeDelta::Unknown) || matches!(dr, NodeDelta::Unknown) {
        return NodeDelta::Unknown;
    }
    if matches!(dl, NodeDelta::Clean) && matches!(dr, NodeDelta::Clean) {
        return NodeDelta::Clean;
    }
    let terms = || -> Option<SparseMatrix<K>> {
        let mut acc: Option<SparseMatrix<K>> = None;
        let mut fold = |t: SparseMatrix<K>| -> Option<()> {
            acc = Some(match acc.take() {
                Some(prev) => prev.add(&t).ok()?,
                None => t,
            });
            Some(())
        };
        if let NodeDelta::Dirty(d) = dl {
            let mut triplets = Vec::with_capacity(d.nnz());
            for (i, j, v) in d.iter_entries() {
                let other = overlay.value_at(cache, b, i, j)?;
                let term = v.mul(&other); // left ⊗ right, the kernel order
                if !term.is_zero() {
                    triplets.push((i, j, term));
                }
            }
            fold(SparseMatrix::from_triplets(d.rows(), d.cols(), triplets).ok()?)?;
        }
        if let NodeDelta::Dirty(d) = dr {
            let mut triplets = Vec::with_capacity(d.nnz());
            for (i, j, v) in d.iter_entries() {
                let other = overlay.value_at(cache, a, i, j)?;
                let term = other.mul(v);
                if !term.is_zero() {
                    triplets.push((i, j, term));
                }
            }
            fold(SparseMatrix::from_triplets(d.rows(), d.cols(), triplets).ok()?)?;
        }
        acc
    };
    match terms() {
        Some(d) => NodeDelta::Dirty(d),
        None => NodeDelta::Unknown,
    }
}

/// Shared rule for the fused scaling kernels.  With `row_scaling` the node
/// is `diag(vec)·mat`, otherwise `mat·diag(vec)`.
fn scaling_delta<K, M>(
    cache: &NodeCache<M>,
    overlay: &DeltaOverlay<K>,
    deltas: &[NodeDelta<K>],
    vec: NodeId,
    mat: NodeId,
    row_scaling: bool,
    _update: &SparseMatrix<K>,
) -> NodeDelta<K>
where
    K: Semiring,
    M: MatrixStorage<Elem = K>,
{
    let (dv, dm) = (&deltas[vec], &deltas[mat]);
    if matches!(dv, NodeDelta::Unknown) || matches!(dm, NodeDelta::Unknown) {
        return NodeDelta::Unknown;
    }
    if matches!(dv, NodeDelta::Clean) && matches!(dm, NodeDelta::Clean) {
        return NodeDelta::Clean;
    }
    let terms = || -> Option<SparseMatrix<K>> {
        let mut acc: Option<SparseMatrix<K>> = None;
        let mut fold = |t: SparseMatrix<K>| -> Option<()> {
            acc = Some(match acc.take() {
                Some(prev) => prev.add(&t).ok()?,
                None => t,
            });
            Some(())
        };
        if let NodeDelta::Dirty(d) = dv {
            // diag(Δvec)·mat_new (resp. mat_new·diag(Δvec)): expand over
            // mat's base ⊕ overlay with the sparse-delta product kernels.
            let ddiag = d.diag().ok()?;
            let m_base = cache[mat].as_ref()?;
            if row_scaling {
                fold(m_base.matmul_delta_pre(&ddiag).ok()?)?;
                if let Some(m_ov) = overlay.pending[mat].as_ref() {
                    fold(ddiag.matmul(m_ov).ok()?)?;
                }
            } else {
                fold(m_base.matmul_delta_post(&ddiag).ok()?)?;
                if let Some(m_ov) = overlay.pending[mat].as_ref() {
                    fold(m_ov.matmul(&ddiag).ok()?)?;
                }
            }
        }
        if let NodeDelta::Dirty(d) = dm {
            // vec_new[i] ⊗ Δmat[i,j] (resp. Δmat[i,j] ⊗ vec_new[j]): the
            // scaling factor looked up entrywise at the delta's support.
            let mut triplets = Vec::with_capacity(d.nnz());
            for (i, j, v) in d.iter_entries() {
                let scale_idx = if row_scaling { i } else { j };
                let s = overlay.value_at(cache, vec, scale_idx, 0)?;
                let term = if row_scaling { s.mul(v) } else { v.mul(&s) };
                if !term.is_zero() {
                    triplets.push((i, j, term));
                }
            }
            fold(SparseMatrix::from_triplets(d.rows(), d.cols(), triplets).ok()?)?;
        }
        acc
    };
    match terms() {
        Some(d) => NodeDelta::Dirty(d),
        None => NodeDelta::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use matlang_core::{Expr, FunctionRegistry, Instance};
    use matlang_matrix::{Matrix, MatrixRepr};
    use matlang_semiring::{Boolean, IntRing, MaxPlus, MinPlus, Nat, Real};

    #[test]
    fn idempotency_probe_matches_the_algebra() {
        assert!(join_is_idempotent::<Boolean>());
        assert!(join_is_idempotent::<MinPlus>());
        assert!(join_is_idempotent::<MaxPlus>());
        assert!(!join_is_idempotent::<Real>());
        assert!(!join_is_idempotent::<Nat>());
        assert!(!join_is_idempotent::<IntRing>());
    }

    #[test]
    fn absorption_is_the_insert_only_test() {
        assert!(absorbs(&Boolean(false), &Boolean(true)));
        assert!(!absorbs(&Boolean(true), &Boolean(false)));
        // Min-plus: lowering a weight absorbs, raising it does not.
        assert!(absorbs(&MinPlus(5.0), &MinPlus(3.0)));
        assert!(!absorbs(&MinPlus(3.0), &MinPlus(5.0)));
        assert!(absorbs(&MinPlus::infinity(), &MinPlus(2.0)));
    }

    #[test]
    fn fallback_codes_are_single_tokens() {
        for fb in [
            DeltaFallback::NonIdempotentSemiring,
            DeltaFallback::NotInsertOnly,
            DeltaFallback::NoPlan,
            DeltaFallback::Disabled,
            DeltaFallback::PartialBatch,
        ] {
            assert!(!fb.code().contains(char::is_whitespace));
            assert_eq!(fb.to_string(), fb.code());
        }
    }

    /// End-to-end over a DAG with product, transpose, add and ones nodes:
    /// warm the cache, mutate the instance, propagate, flush, and compare
    /// every root against a cold recompute on the mutated instance.
    #[test]
    fn propagated_boolean_update_is_bit_identical_to_recompute() {
        let n = 12;
        let expr = Expr::var("G")
            .mm(Expr::var("G"))
            .add(Expr::var("G").t())
            .mm(Expr::var("G").ones());
        let registry = FunctionRegistry::<Boolean>::new();
        let mut dense = Matrix::<Boolean>::zeros(n, n);
        for k in 0..n {
            dense.set(k, (k + 1) % n, Boolean(true)).unwrap();
        }
        let mut inst: Instance<Boolean, MatrixRepr<Boolean>> = Instance::new()
            .with_dim("n", n)
            .with_matrix("G", MatrixRepr::from_dense_auto(dense));

        let engine = Engine::new();
        let mut plan = engine.plan(std::slice::from_ref(&expr), &inst);
        plan.mark_all_cacheable();
        let mut exec = crate::Executor::new(&plan, &inst, &registry, engine.exec_options);
        exec.run(plan.roots()[0]).unwrap();
        let mut cache = exec.into_cache();
        let mut overlay = DeltaOverlay::new(plan.nodes().len());

        // Three updates in sequence, so overlays accumulate across rounds.
        let updates = [(3usize, 7usize), (7, 2), (0, 5)];
        for &(i, j) in &updates {
            {
                let g = inst.matrix_mut("G").unwrap();
                g.set_entry(i, j, Boolean(true)).unwrap();
            }
            let delta = SparseMatrix::from_triplets(n, n, vec![(i, j, Boolean(true))]).unwrap();
            let report = propagate(&plan, &mut cache, &mut overlay, "G", &delta);
            assert_eq!(report.invalidated, 0, "every op here has a rule");
            assert!(report.patched > 0);

            overlay.flush_for_roots(&mut cache, plan.roots());
            let mut warm =
                crate::Executor::with_cache(&plan, &inst, &registry, engine.exec_options, cache);
            let patched = warm.run_shared(plan.roots()[0]).unwrap();
            assert_eq!(warm.stats().cache_misses, 0, "root must be served warm");
            cache = warm.into_cache();

            let cold = engine.evaluate(&expr, &inst, &registry).unwrap();
            assert_eq!(patched.to_dense(), cold.to_dense(), "delta path diverged");
        }
    }

    /// A plan with an unsupported node (pointwise apply) invalidates the
    /// cone above the update but leaves independent nodes cached.
    #[test]
    fn unsupported_ops_invalidate_partially() {
        let expr = Expr::apply("f", vec![Expr::var("G").mm(Expr::var("G"))]);
        let mut registry = FunctionRegistry::<Boolean>::new();
        registry.register("f", |vs: &[Boolean]| vs[0]);
        let mut inst: Instance<Boolean, MatrixRepr<Boolean>> = Instance::new()
            .with_dim("n", 4)
            .with_matrix("G", MatrixRepr::from_dense_auto(Matrix::identity(4)));
        let engine = Engine::new();
        let mut plan = engine.plan(std::slice::from_ref(&expr), &inst);
        plan.mark_all_cacheable();
        let mut exec = crate::Executor::new(&plan, &inst, &registry, engine.exec_options);
        exec.run(plan.roots()[0]).unwrap();
        let mut cache = exec.into_cache();
        let mut overlay = DeltaOverlay::new(plan.nodes().len());

        inst.matrix_mut("G")
            .unwrap()
            .set_entry(0, 1, Boolean(true))
            .unwrap();
        let delta = SparseMatrix::from_triplets(4, 4, vec![(0, 1, Boolean(true))]).unwrap();
        let report = propagate(&plan, &mut cache, &mut overlay, "G", &delta);
        assert!(report.invalidated >= 1, "apply node must drop");
        assert!(report.unsupported.contains("apply"));
        assert!(report.patched >= 1, "the product below apply is patched");

        // Re-execution over the half-patched cache still matches cold.
        overlay.flush_for_roots(&mut cache, plan.roots());
        let mut warm =
            crate::Executor::with_cache(&plan, &inst, &registry, engine.exec_options, cache);
        let patched = warm.run_shared(plan.roots()[0]).unwrap();
        let cold = engine.evaluate(&expr, &inst, &registry).unwrap();
        assert_eq!(patched.to_dense(), cold.to_dense());
    }

    #[test]
    fn empty_update_is_a_no_op() {
        let expr = Expr::var("G").mm(Expr::var("G"));
        let registry = FunctionRegistry::<Boolean>::new();
        let inst: Instance<Boolean, MatrixRepr<Boolean>> = Instance::new()
            .with_dim("n", 3)
            .with_matrix("G", MatrixRepr::from_dense_auto(Matrix::identity(3)));
        let engine = Engine::new();
        let mut plan = engine.plan(std::slice::from_ref(&expr), &inst);
        plan.mark_all_cacheable();
        let mut exec = crate::Executor::new(&plan, &inst, &registry, engine.exec_options);
        exec.run(plan.roots()[0]).unwrap();
        let mut cache = exec.into_cache();
        let mut overlay = DeltaOverlay::new(plan.nodes().len());
        let delta = SparseMatrix::zeros(3, 3);
        let report = propagate(&plan, &mut cache, &mut overlay, "G", &delta);
        assert_eq!(report, DeltaReport::default());
        assert_eq!(overlay.pending_nodes(), 0);
    }

    /// Repeated updates trigger overlay compaction once the pending delta
    /// outgrows the base, and the compacted value stays exact.
    #[test]
    fn overlays_compact_and_stay_exact() {
        let n = 6;
        let expr = Expr::var("G").mm(Expr::var("G"));
        let registry = FunctionRegistry::<MinPlus>::new();
        // All-∞ (the min-plus zero): every update below is a first insert,
        // so absorption holds trivially and overlays keep growing.
        let dense = Matrix::<MinPlus>::zeros(n, n);
        let mut inst: Instance<MinPlus, MatrixRepr<MinPlus>> = Instance::new()
            .with_dim("n", n)
            .with_matrix("G", MatrixRepr::from_dense_auto(dense));
        let engine = Engine::new();
        let mut plan = engine.plan(std::slice::from_ref(&expr), &inst);
        plan.mark_all_cacheable();
        let mut exec = crate::Executor::new(&plan, &inst, &registry, engine.exec_options);
        exec.run(plan.roots()[0]).unwrap();
        let mut cache = exec.into_cache();
        let mut overlay = DeltaOverlay::new(plan.nodes().len());

        let mut total = DeltaReport::default();
        for step in 0..n * n {
            let (i, j) = (step / n, step % n);
            let w = MinPlus(1.0 + step as f64);
            {
                let g = inst.matrix_mut("G").unwrap();
                let old = g.get_entry(i, j).unwrap();
                assert!(absorbs(&old, &w), "weight lowering only");
                g.set_entry(i, j, w).unwrap();
            }
            let delta = SparseMatrix::from_triplets(n, n, vec![(i, j, w)]).unwrap();
            total.absorb(propagate(&plan, &mut cache, &mut overlay, "G", &delta));
        }
        assert!(total.compacted > 0, "dense-ified G must compact overlays");
        overlay.flush_for_roots(&mut cache, plan.roots());
        let mut warm =
            crate::Executor::with_cache(&plan, &inst, &registry, engine.exec_options, cache);
        let patched = warm.run_shared(plan.roots()[0]).unwrap();
        let cold = engine.evaluate(&expr, &inst, &registry).unwrap();
        assert_eq!(patched.to_dense(), cold.to_dense());
    }
}
