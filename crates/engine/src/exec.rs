//! The plan executor: memoized, invalidation-scoped DAG evaluation.
//!
//! [`Executor`] evaluates a [`Plan`] over an instance exactly as the
//! tree-walking evaluator in `matlang_core::eval` would — same operation
//! order, same error cases, bit-identical results — but it keeps one
//! memoized result per cache-worthy DAG node:
//!
//! * a node referenced from several places (CSE sharing) is computed once;
//! * a node inside a loop body that does not depend on the loop variable
//!   keeps its cached value across iterations — rebinding a variable drops
//!   exactly the cache entries of the nodes whose
//!   [`free_vars`](crate::plan::PlanNode::free_vars) mention it, so
//!   loop-invariant subterms are computed once, as if hoisted;
//! * a batch of queries shares one cache, so subterms common to several
//!   queries (e.g. powers of the same adjacency matrix) are computed once
//!   for the whole batch.
//!
//! Product nodes the planner marked heavy run on the row-partitioned
//! threaded kernels of [`matlang_matrix::parallel`]; the worker count
//! honors [`ExecOptions::threads`], which defaults to the `MATLANG_THREADS`
//! environment variable via [`matlang_matrix::configured_threads`].

use crate::plan::{NodeId, Plan, PlanOp, ReprChoice};
use matlang_core::{Dim, EvalError, FunctionRegistry, Instance, MatrixType};
use matlang_matrix::MatrixStorage;
use matlang_semiring::Semiring;
use std::collections::HashMap;
use std::sync::Arc;

/// Above this many entries the executor never *forces* a dense
/// representation from a cost-model hint: a wrong estimate must not
/// materialize a huge dense matrix.
const DENSE_HINT_MAX_ENTRIES: usize = 1 << 20;

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Worker threads for products the planner marked parallel (default:
    /// [`matlang_matrix::configured_threads`], i.e. the `MATLANG_THREADS`
    /// environment variable or the machine's available parallelism).
    /// `1` disables threading entirely.
    pub threads: usize,
    /// Apply the planner's per-node representation choices to cached
    /// values (adaptive backend only; other backends ignore the hints).
    pub apply_repr_hints: bool,
    /// Time every node computation in the per-node [`NodeSample`]s — the
    /// engine side of the server's `PROFILE` verb.  Off by default: the
    /// executor always records output shape/nnz and hit/computed counts on
    /// the cache-miss path (cheap — the compute it rides on dwarfs it, and
    /// warm hits never reach it), but the per-node `Instant` reads stay
    /// opt-in.
    pub profile: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: matlang_matrix::configured_threads(),
            apply_repr_hints: true,
            profile: false,
        }
    }
}

/// Per-node observation sample.  Shape, nnz and hit/computed counts are
/// recorded on every execution ([`Executor::observed_samples`]) — they feed
/// the server's observed-statistics planner feedback; `total_ns` is filled
/// only under [`ExecOptions::profile`].
///
/// Wall time is *inclusive*: a node's `total_ns` contains the evaluation of
/// its children on the same cache-miss path, exactly like the span tree the
/// tracer records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeSample {
    /// Times this node was computed (cache misses).
    pub computed: u64,
    /// Times this node was answered from the memo cache.
    pub hits: u64,
    /// Total inclusive wall time of the computations, in nanoseconds.
    pub total_ns: u64,
    /// Output shape as last computed.
    pub rows: usize,
    /// Output shape as last computed.
    pub cols: usize,
    /// Output nonzero count as last computed.
    pub nnz: u64,
}

/// Counters the executor maintains while running a plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Node evaluations answered from the memo cache.
    pub cache_hits: u64,
    /// Node evaluations that had to compute.
    pub cache_misses: u64,
    /// Cache entries dropped because a variable they depend on was rebound.
    pub invalidations: u64,
    /// Products executed on the threaded kernels.
    pub parallel_products: u64,
    /// Elementwise operations (add/Hadamard) executed on the threaded
    /// kernels.
    pub parallel_elementwise: u64,
    /// Products executed on the fused diag-scaling kernels
    /// (`scale_rows`/`scale_cols`) instead of materializing a diagonal.
    pub fused_products: u64,
    /// Cached node values patched in place by delta propagation
    /// ([`crate::delta`]) instead of being invalidated and recomputed.
    /// The executor itself never increments this; services running the
    /// delta path (the query server's `UPDATE`) fill it in when reporting.
    pub delta_patches: u64,
    /// The observability trace id ([`matlang_obs::trace`]) active when the
    /// executor was created; 0 when none.  Carried, not accumulated:
    /// [`ExecStats::since`] propagates the latest value instead of
    /// subtracting.
    pub trace_id: u64,
}

impl ExecStats {
    /// The counter deltas accumulated since `earlier` (a snapshot of the
    /// same executor's stats).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            invalidations: self.invalidations - earlier.invalidations,
            parallel_products: self.parallel_products - earlier.parallel_products,
            parallel_elementwise: self.parallel_elementwise - earlier.parallel_elementwise,
            fused_products: self.fused_products - earlier.fused_products,
            delta_patches: self.delta_patches - earlier.delta_patches,
            trace_id: self.trace_id,
        }
    }
}

impl std::fmt::Display for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses / {} invalidations / {} parallel products / \
             {} parallel elementwise / {} fused products / {} delta patches",
            self.cache_hits,
            self.cache_misses,
            self.invalidations,
            self.parallel_products,
            self.parallel_elementwise,
            self.fused_products,
            self.delta_patches
        )
    }
}

/// The executor's memo store: one optional shared value per plan node.
///
/// The cells are `Arc`s, so extracting the cache from one executor
/// ([`Executor::into_cache`]) and seeding the next one with it
/// ([`Executor::with_cache`]) is how long-lived services keep results warm
/// across requests over the *same* plan and instance; cross-thread sharing
/// is safe because `MatrixStorage` values are `Send + Sync`.  Invalidate
/// entries after an instance mutation with
/// [`Plan::invalidate_dependents_in`](crate::plan::Plan::invalidate_dependents_in).
pub type NodeCache<M> = Vec<Option<Arc<M>>>;

/// Residency of a memo cache: `(resident entries, heap bytes)`.  Each
/// resident value reports its exact backing-buffer size via
/// [`MatrixStorage::heap_bytes`]; `Arc`-shared values are counted once per
/// slot (the cache is the owner of record for capacity accounting).
pub fn cache_residency<M: MatrixStorage>(cache: &NodeCache<M>) -> (usize, usize) {
    let mut entries = 0;
    let mut bytes = 0;
    for value in cache.iter().flatten() {
        entries += 1;
        bytes += value.heap_bytes();
    }
    (entries, bytes)
}

enum FoldKind {
    Sum,
    HProd,
    MProd,
}

/// Evaluates a [`Plan`] over one instance, memoizing node results.
///
/// The executor is generic over the storage backend exactly like
/// [`matlang_core::evaluate`]; its results are bit-identical to the tree
/// evaluator's on every backend (the `engine_parity` suite enforces this).
pub struct Executor<'p, K: Semiring, M: MatrixStorage<Elem = K>> {
    plan: &'p Plan,
    instance: &'p Instance<K, M>,
    registry: &'p FunctionRegistry<K>,
    options: ExecOptions,
    /// Memoized node results.  Values are reference-counted (atomically,
    /// so caches can be handed between server worker threads) and a cache
    /// hit costs a pointer copy, never a deep matrix clone — with thousands
    /// of loop iterations hitting a multi-million-entry cached product,
    /// deep clones would dwarf the evaluation itself.
    cache: NodeCache<M>,
    env: HashMap<String, Arc<M>>,
    stats: ExecStats,
    /// Per-node samples: shape/nnz/hit counts always, wall time only under
    /// [`ExecOptions::profile`].
    samples: Vec<NodeSample>,
}

impl<'p, K: Semiring, M: MatrixStorage<Elem = K>> Executor<'p, K, M> {
    /// An executor for `plan` over `instance`, resolving pointwise
    /// functions in `registry`.
    pub fn new(
        plan: &'p Plan,
        instance: &'p Instance<K, M>,
        registry: &'p FunctionRegistry<K>,
        options: ExecOptions,
    ) -> Self {
        Executor {
            plan,
            instance,
            registry,
            options,
            cache: vec![None; plan.nodes().len()],
            env: HashMap::new(),
            stats: ExecStats {
                trace_id: matlang_obs::trace::current_id(),
                ..ExecStats::default()
            },
            samples: vec![NodeSample::default(); plan.nodes().len()],
        }
    }

    /// An executor seeded with a [`NodeCache`] extracted from an earlier
    /// executor over the *same plan and instance* (see
    /// [`Executor::into_cache`]) — the persistence hook behind prepared
    /// queries in a long-lived service.  A cache of the wrong length (from
    /// a different plan) is discarded and replaced by an empty one.
    pub fn with_cache(
        plan: &'p Plan,
        instance: &'p Instance<K, M>,
        registry: &'p FunctionRegistry<K>,
        options: ExecOptions,
        cache: NodeCache<M>,
    ) -> Self {
        let mut exec = Executor::new(plan, instance, registry, options);
        if cache.len() == plan.nodes().len() {
            exec.cache = cache;
        }
        exec
    }

    /// Consumes the executor, returning its memo cache for reuse by a later
    /// [`Executor::with_cache`].  Entries computed under temporary loop/let
    /// bindings were already dropped by the executor's invalidation
    /// discipline, so everything returned is valid for the instance as the
    /// executor last saw it.
    pub fn into_cache(self) -> NodeCache<M> {
        self.cache
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// The per-node profile samples, indexed by [`NodeId`].  `None` unless
    /// the executor was created with [`ExecOptions::profile`] set (without
    /// it the samples exist but their `total_ns` is always 0; use
    /// [`Executor::observed_samples`] for those).
    pub fn profile_samples(&self) -> Option<&[NodeSample]> {
        self.options.profile.then_some(self.samples.as_slice())
    }

    /// The always-on per-node observation samples, indexed by [`NodeId`]:
    /// output shape/nnz as last computed plus hit/computed counts.  Wall
    /// times are 0 unless [`ExecOptions::profile`] was set.  This is what
    /// the server harvests into its per-instance observed statistics after
    /// every execution.
    pub fn observed_samples(&self) -> &[NodeSample] {
        &self.samples
    }

    /// Evaluates one root of the plan.  The shared cache persists across
    /// calls, so evaluating several roots in sequence reuses their common
    /// subterms.
    pub fn run(&mut self, root: NodeId) -> Result<M, EvalError> {
        self.run_shared(root)
            .map(|rc| Arc::try_unwrap(rc).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Evaluates one root, returning the result **shared** rather than
    /// detached: when the root is cached (a warm prepared query), this is
    /// a reference-count bump where [`run`](Executor::run) would pay a
    /// deep clone of a value the cache still holds.  The zero-copy path
    /// for callers that only read the result — e.g. serializing it to a
    /// wire format.
    pub fn run_shared(&mut self, root: NodeId) -> Result<Arc<M>, EvalError> {
        self.eval_node(root)
    }

    /// Evaluates every root in query order, returning per-query results
    /// and per-query stat deltas.  A failing query does not abort the
    /// batch — its error is returned in its slot and the remaining queries
    /// still run against the shared cache.
    pub fn run_all(&mut self) -> (Vec<Result<M, EvalError>>, Vec<ExecStats>) {
        let mut results = Vec::with_capacity(self.plan.roots().len());
        let mut per_query = Vec::with_capacity(self.plan.roots().len());
        for &root in self.plan.roots() {
            let before = self.stats;
            results.push(self.run(root));
            per_query.push(self.stats.since(&before));
        }
        (results, per_query)
    }

    fn eval_node(&mut self, id: NodeId) -> Result<Arc<M>, EvalError> {
        if let Some(cached) = &self.cache[id] {
            self.stats.cache_hits += 1;
            self.samples[id].hits += 1;
            return Ok(Arc::clone(cached));
        }
        self.stats.cache_misses += 1;
        // On the warm path (cache hit above) neither branch below runs, so
        // tracing costs nothing per node once a prepared query's roots are
        // cached; with an active trace, each computed node becomes a child
        // span (nested via guard scoping, inclusive of its children).
        let _span = matlang_obs::trace::active().then(|| {
            matlang_obs::trace::span(&format!("execute:{}", self.plan.node(id).op.label()))
        });
        let timer = self.options.profile.then(std::time::Instant::now);
        let mut value = self.compute(id)?;
        {
            // Always-on observation: shape/nnz ride the miss path, where
            // the compute they describe dwarfs them; only the per-node
            // clock reads stay behind the `profile` flag.
            let sample = &mut self.samples[id];
            sample.computed += 1;
            if let Some(start) = timer {
                sample.total_ns += start.elapsed().as_nanos() as u64;
            }
            sample.rows = value.rows();
            sample.cols = value.cols();
            sample.nnz = value.nnz() as u64;
        }
        let node = self.plan.node(id);
        if node.cacheable {
            if self.options.apply_repr_hints {
                if let Some(est) = node.est {
                    // Re-representing needs ownership; values still shared
                    // with the environment (plain variable loads) keep
                    // their current representation rather than pay a deep
                    // clone.
                    value = match Arc::try_unwrap(value) {
                        Ok(owned) => {
                            let adjusted = match est.choice {
                                ReprChoice::Sparse => owned.prefer_repr(true),
                                ReprChoice::Dense
                                    if owned.rows() * owned.cols() <= DENSE_HINT_MAX_ENTRIES =>
                                {
                                    owned.prefer_repr(false)
                                }
                                ReprChoice::Dense => owned,
                            };
                            Arc::new(adjusted)
                        }
                        Err(shared) => shared,
                    };
                }
            }
            self.cache[id] = Some(Arc::clone(&value));
        }
        Ok(value)
    }

    fn compute(&mut self, id: NodeId) -> Result<Arc<M>, EvalError> {
        let plan = self.plan;
        match &plan.node(id).op {
            PlanOp::Var(name) => self.lookup(name),
            PlanOp::Const(c) => Ok(Arc::new(M::scalar(K::from_f64(c.0)))),
            PlanOp::Transpose(a) => Ok(Arc::new(self.eval_node(*a)?.transpose())),
            PlanOp::Ones(a) => {
                let value = self.eval_node(*a)?;
                Ok(Arc::new(M::ones_vector(value.rows())))
            }
            PlanOp::Diag(a) => Ok(Arc::new(self.eval_node(*a)?.diag()?)),
            PlanOp::MatMul(a, b) => {
                let parallel = plan.node(id).est.map(|e| e.parallel).unwrap_or(false);
                let left = self.eval_node(*a)?;
                let right = self.eval_node(*b)?;
                let product = if parallel && self.options.threads > 1 {
                    self.stats.parallel_products += 1;
                    left.matmul_threaded(right.as_ref(), self.options.threads)?
                } else {
                    left.matmul(right.as_ref())?
                };
                Ok(Arc::new(product))
            }
            PlanOp::Add(a, b) => {
                let parallel = plan.node(id).est.map(|e| e.parallel).unwrap_or(false);
                let left = self.eval_node(*a)?;
                let right = self.eval_node(*b)?;
                let sum = if parallel && self.options.threads > 1 {
                    self.stats.parallel_elementwise += 1;
                    left.add_threaded(right.as_ref(), self.options.threads)?
                } else {
                    left.add(right.as_ref())?
                };
                Ok(Arc::new(sum))
            }
            PlanOp::ScalarMul(a, b) => {
                let left = self.eval_node(*a)?;
                if !left.is_scalar() {
                    return Err(EvalError::NotAScalar {
                        shape: left.shape(),
                    });
                }
                let scalar = left.as_scalar()?;
                let right = self.eval_node(*b)?;
                Ok(Arc::new(right.scalar_mul(&scalar)))
            }
            PlanOp::ScaleRows { vec, mat } => {
                let scale = self.eval_node(*vec)?;
                let matrix = self.eval_node(*mat)?;
                self.stats.fused_products += 1;
                Ok(Arc::new(matrix.scale_rows(scale.as_ref())?))
            }
            PlanOp::ScaleCols { mat, vec } => {
                let matrix = self.eval_node(*mat)?;
                let scale = self.eval_node(*vec)?;
                self.stats.fused_products += 1;
                Ok(Arc::new(matrix.scale_cols(scale.as_ref())?))
            }
            PlanOp::Hadamard(a, b) => {
                let parallel = plan.node(id).est.map(|e| e.parallel).unwrap_or(false);
                let left = self.eval_node(*a)?;
                let right = self.eval_node(*b)?;
                let product = if parallel && self.options.threads > 1 {
                    self.stats.parallel_elementwise += 1;
                    left.hadamard_threaded(right.as_ref(), self.options.threads)?
                } else {
                    left.hadamard(right.as_ref())?
                };
                Ok(Arc::new(product))
            }
            PlanOp::Apply(name, args) => {
                let f = self
                    .registry
                    .get(name)
                    .ok_or_else(|| EvalError::UnknownFunction { name: name.clone() })?
                    .clone();
                let values: Vec<Arc<M>> = args
                    .iter()
                    .map(|a| self.eval_node(*a))
                    .collect::<Result<_, _>>()?;
                let refs: Vec<&M> = values.iter().map(Arc::as_ref).collect();
                Ok(Arc::new(M::zip_with(&refs, |entries| f(entries))?))
            }
            PlanOp::Let { var, value, body } => {
                let bound = self.eval_node(*value)?;
                let saved = self.bind(var, bound);
                let result = self.eval_node(*body);
                self.unbind(var, saved);
                result
            }
            PlanOp::For {
                var,
                var_dim,
                acc,
                acc_type,
                init,
                body,
            } => self.run_for(var, var_dim, acc, acc_type, *init, *body),
            PlanOp::Sum { var, var_dim, body } => {
                self.fold_loop(var, var_dim, *body, FoldKind::Sum)
            }
            PlanOp::HProd { var, var_dim, body } => {
                self.fold_loop(var, var_dim, *body, FoldKind::HProd)
            }
            PlanOp::MProd { var, var_dim, body } => {
                self.fold_loop(var, var_dim, *body, FoldKind::MProd)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_for(
        &mut self,
        var: &str,
        var_dim: &str,
        acc: &str,
        acc_type: &MatrixType,
        init: Option<NodeId>,
        body: NodeId,
    ) -> Result<Arc<M>, EvalError> {
        let n = self.dim_of(var_dim)?;
        let acc_shape =
            self.instance
                .shape_of(acc_type)
                .ok_or_else(|| EvalError::UnknownDimension {
                    symbol: acc_type.rows.to_string(),
                })?;
        let mut accumulator = match init {
            Some(init) => {
                let value = self.eval_node(init)?;
                if value.shape() != acc_shape {
                    return Err(EvalError::LoopShapeMismatch {
                        acc: acc.to_string(),
                        expected: acc_shape,
                        found: value.shape(),
                    });
                }
                value
            }
            None => Arc::new(M::zeros(acc_shape.0, acc_shape.1)),
        };
        let saved_var = self.take_binding(var);
        let saved_acc = self.take_binding(acc);
        let mut outcome = Ok(());
        for i in 0..n {
            let canonical = Arc::new(M::canonical(n, i)?);
            self.bind(var, canonical);
            self.bind(acc, Arc::clone(&accumulator));
            match self.eval_node(body) {
                Ok(value) => {
                    if value.shape() != acc_shape {
                        outcome = Err(EvalError::LoopShapeMismatch {
                            acc: acc.to_string(),
                            expected: acc_shape,
                            found: value.shape(),
                        });
                        break;
                    }
                    accumulator = value;
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        self.unbind(var, saved_var);
        self.unbind(acc, saved_acc);
        outcome.map(|_| accumulator)
    }

    /// Shared Σ / Π∘ / Π iteration, mirroring `matlang_core::eval`'s
    /// `fold_loop` operation-for-operation (folding from the first value is
    /// the paper's neutral-element initialization).
    fn fold_loop(
        &mut self,
        var: &str,
        var_dim: &str,
        body: NodeId,
        kind: FoldKind,
    ) -> Result<Arc<M>, EvalError> {
        let n = self.dim_of(var_dim)?;
        let saved_var = self.take_binding(var);
        let mut acc: Option<Arc<M>> = None;
        let mut outcome = Ok(());
        for i in 0..n {
            let canonical = Arc::new(M::canonical(n, i)?);
            self.bind(var, canonical);
            match self.eval_node(body) {
                Ok(value) => {
                    let combined = match acc.take() {
                        None => Ok(value),
                        Some(prev) => match kind {
                            FoldKind::Sum => prev.add(value.as_ref()).map(Arc::new),
                            FoldKind::HProd => prev.hadamard(value.as_ref()).map(Arc::new),
                            FoldKind::MProd => prev.matmul(value.as_ref()).map(Arc::new),
                        }
                        .map_err(EvalError::from),
                    };
                    match combined {
                        Ok(next) => acc = Some(next),
                        Err(e) => {
                            outcome = Err(e);
                            break;
                        }
                    }
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        self.unbind(var, saved_var);
        outcome?;
        acc.ok_or(EvalError::EmptyIteration {
            symbol: var_dim.to_string(),
        })
    }

    fn lookup(&self, name: &str) -> Result<Arc<M>, EvalError> {
        if let Some(m) = self.env.get(name) {
            return Ok(Arc::clone(m));
        }
        self.instance
            .matrix(name)
            .map(|m| Arc::new(m.clone()))
            .ok_or_else(|| EvalError::UnknownVariable {
                name: name.to_string(),
            })
    }

    fn dim_of(&self, symbol: &str) -> Result<usize, EvalError> {
        let n = self
            .instance
            .dim_value(&Dim::Sym(symbol.to_string()))
            .ok_or_else(|| EvalError::UnknownDimension {
                symbol: symbol.to_string(),
            })?;
        if n == 0 {
            return Err(EvalError::EmptyIteration {
                symbol: symbol.to_string(),
            });
        }
        Ok(n)
    }

    /// Binds `name`, dropping the cache entries that depended on its
    /// previous binding.  Returns the binding it replaced.
    fn bind(&mut self, name: &str, value: Arc<M>) -> Option<Arc<M>> {
        self.invalidate(name);
        self.env.insert(name.to_string(), value)
    }

    /// Removes a binding *without* invalidating — callers must follow up
    /// with [`bind`](Self::bind) (which invalidates) before any dependent
    /// node is evaluated again.
    fn take_binding(&mut self, name: &str) -> Option<Arc<M>> {
        self.env.remove(name)
    }

    /// Restores the binding saved by [`bind`](Self::bind) /
    /// [`take_binding`](Self::take_binding), dropping dependent cache
    /// entries computed under the inner binding.
    fn unbind(&mut self, name: &str, saved: Option<Arc<M>>) {
        self.invalidate(name);
        match saved {
            Some(value) => {
                self.env.insert(name.to_string(), value);
            }
            None => {
                self.env.remove(name);
            }
        }
    }

    fn invalidate(&mut self, name: &str) {
        for &id in self.plan.dependents_of(name) {
            if self.cache[id].take().is_some() {
                self.stats.invalidations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{InstanceStats, Planner};
    use matlang_core::{evaluate, Expr};
    use matlang_matrix::Matrix;
    use matlang_semiring::Real;

    fn instance() -> Instance<Real> {
        Instance::new().with_dim("n", 4).with_matrix(
            "G",
            Matrix::from_f64_rows(&[
                &[0.0, 1.0, 0.0, 0.0],
                &[0.0, 0.0, 2.0, 0.0],
                &[0.0, 0.0, 0.0, 3.0],
                &[4.0, 0.0, 0.0, 0.0],
            ])
            .unwrap(),
        )
    }

    fn run_one(expr: &Expr, inst: &Instance<Real>) -> (Result<Matrix<Real>, EvalError>, ExecStats) {
        let plan = Planner::new().plan_one(expr, &InstanceStats::from_instance(inst));
        let registry = FunctionRegistry::standard_field();
        let mut exec = Executor::new(&plan, inst, &registry, ExecOptions::default());
        let root = plan.roots()[0];
        let out = exec.run(root);
        (out, exec.stats())
    }

    #[test]
    fn shared_subterms_hit_the_cache() {
        let gram = Expr::var("G").t().mm(Expr::var("G"));
        let e = gram.clone().add(gram);
        let inst = instance();
        let (out, stats) = run_one(&e, &inst);
        let expected = evaluate(&e, &inst, &FunctionRegistry::standard_field()).unwrap();
        assert_eq!(out.unwrap(), expected);
        assert!(stats.cache_hits >= 1, "second Gram use must hit: {stats}");
    }

    #[test]
    fn loop_invariant_subterms_are_computed_once() {
        // Σv. vᵀ·(GᵀG)·v — the Gram product must be computed exactly once
        // across the 4 iterations.
        let e = Expr::sum(
            "v",
            "n",
            Expr::var("v")
                .t()
                .mm(Expr::var("G").t().mm(Expr::var("G")))
                .mm(Expr::var("v")),
        );
        let inst = instance();
        let (out, stats) = run_one(&e, &inst);
        let expected = evaluate(&e, &inst, &FunctionRegistry::standard_field()).unwrap();
        assert_eq!(out.unwrap(), expected);
        // The Gram node misses once and hits on iterations 2..4.
        assert!(stats.cache_hits >= 3, "expected hoisting hits: {stats}");
        // v-dependent entries were dropped on every rebind.
        assert!(stats.invalidations > 0);
    }

    #[test]
    fn invalidation_keeps_loop_iterations_correct() {
        // Σv. v·vᵀ = I: every iteration depends on v, so each must
        // recompute — a stale cache would return n copies of b₁·b₁ᵀ.
        let e = Expr::sum("v", "n", Expr::var("v").mm(Expr::var("v").t()));
        let inst = instance();
        let (out, _) = run_one(&e, &inst);
        assert_eq!(out.unwrap(), Matrix::identity(4));
    }

    #[test]
    fn batch_queries_share_the_cache() {
        let gram = Expr::var("G").t().mm(Expr::var("G"));
        let q1 = gram.clone();
        let q2 = gram.clone().t();
        let inst = instance();
        let plan = Planner::new().plan(
            &[q1.clone(), q2.clone()],
            &InstanceStats::from_instance(&inst),
        );
        let registry = FunctionRegistry::standard_field();
        let mut exec = Executor::new(&plan, &inst, &registry, ExecOptions::default());
        let (results, per_query) = exec.run_all();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].as_ref().unwrap(),
            &evaluate(&q1, &inst, &registry).unwrap()
        );
        assert_eq!(
            results[1].as_ref().unwrap(),
            &evaluate(&q2, &inst, &registry).unwrap()
        );
        // Query 2 reuses query 1's Gram result from the shared cache.  (At
        // this 4×4 size the cost model keeps the result transpose — the
        // product's nnz is no larger than the operands', so pushing the
        // transpose down would not pay.)
        assert!(per_query[1].cache_hits >= 1);
        assert_eq!(per_query[1].cache_misses, 1, "only the new transpose node");
    }

    #[test]
    fn failing_batch_query_does_not_poison_the_rest() {
        let inst = instance();
        let bad = Expr::var("missing");
        let good = Expr::var("G").t();
        let plan = Planner::new().plan(&[bad, good.clone()], &InstanceStats::from_instance(&inst));
        let registry = FunctionRegistry::standard_field();
        let mut exec = Executor::new(&plan, &inst, &registry, ExecOptions::default());
        let (results, _) = exec.run_all();
        assert!(matches!(results[0], Err(EvalError::UnknownVariable { .. })));
        assert_eq!(
            results[1].as_ref().unwrap(),
            &evaluate(&good, &inst, &registry).unwrap()
        );
    }

    #[test]
    fn error_cases_match_the_tree_evaluator() {
        let inst = instance();
        let registry = FunctionRegistry::standard_field();
        for e in [
            Expr::var("Z"),
            Expr::var("G").smul(Expr::var("G")),
            Expr::sum("v", "missing", Expr::var("v")),
            Expr::apply("nope", vec![Expr::var("G")]),
        ] {
            let naive = evaluate(&e, &inst, &registry).unwrap_err();
            let (planned, _) = run_one(&e, &inst);
            assert_eq!(
                std::mem::discriminant(&naive),
                std::mem::discriminant(&planned.unwrap_err()),
                "error mismatch for {e}"
            );
        }
    }

    #[test]
    fn persistent_cache_survives_across_executors_and_invalidates_externally() {
        let inst = instance();
        let registry = FunctionRegistry::standard_field();
        let e = Expr::var("G").t().mm(Expr::var("G")).add(Expr::var("H"));
        let mut inst = inst.with_matrix("H", Matrix::identity(4));
        let mut plan = Planner::new().plan_one(&e, &InstanceStats::from_instance(&inst));
        plan.mark_all_cacheable();
        let root = plan.roots()[0];

        // First execution: all misses; extract the warm cache.
        let mut exec = Executor::new(&plan, &inst, &registry, ExecOptions::default());
        let first = exec.run(root).unwrap();
        assert_eq!(exec.stats().cache_hits, 1, "only the shared Var(G) hits");
        let cache = exec.into_cache();

        // Second execution with the seeded cache: the root itself hits.
        let mut exec = Executor::with_cache(&plan, &inst, &registry, ExecOptions::default(), cache);
        assert_eq!(exec.run(root).unwrap(), first);
        assert_eq!(exec.stats().cache_misses, 0);
        assert_eq!(exec.stats().cache_hits, 1);
        let mut cache = exec.into_cache();

        // Mutate H and invalidate exactly its dependents: the Gram product
        // (independent of H) keeps its entry, the Add and Var(H) drop.
        let dropped = plan.invalidate_dependents_in(&mut cache, "H");
        assert!(dropped >= 2, "Var(H), Add and the root depend on H");
        inst.matrix_mut("H").unwrap().set(0, 0, Real(5.0)).unwrap();
        let mut exec = Executor::with_cache(&plan, &inst, &registry, ExecOptions::default(), cache);
        let updated = exec.run(root).unwrap();
        assert_eq!(
            updated,
            evaluate(&e, &inst, &registry).unwrap(),
            "post-update execution must see the new H"
        );
        let stats = exec.stats();
        assert!(
            stats.cache_hits >= 1,
            "the H-independent Gram product must still be warm: {stats}"
        );

        // A cache of the wrong length is discarded, not misused.
        let other_plan =
            Planner::new().plan_one(&Expr::var("G").t(), &InstanceStats::from_instance(&inst));
        let exec = Executor::with_cache(
            &other_plan,
            &inst,
            &registry,
            ExecOptions::default(),
            vec![None; 99],
        );
        assert_eq!(exec.cache.len(), other_plan.nodes().len());
    }

    #[test]
    fn stats_display_and_delta() {
        let a = ExecStats {
            cache_hits: 5,
            cache_misses: 3,
            invalidations: 2,
            parallel_products: 1,
            parallel_elementwise: 1,
            fused_products: 1,
            delta_patches: 4,
            trace_id: 7,
        };
        let b = a.since(&ExecStats::default());
        assert_eq!(a, b, "since() must carry the trace id, not subtract it");
        assert!(a.to_string().contains("5 hits"));
        assert!(a.to_string().contains("4 delta patches"));
    }

    #[test]
    fn executor_carries_the_active_trace_id() {
        let id = matlang_obs::trace::next_id();
        let inst = instance();
        let e = Expr::var("G").t();
        let stats = {
            let _t = matlang_obs::trace::begin(id, "engine test");
            let (out, stats) = run_one(&e, &inst);
            out.unwrap();
            stats
        };
        assert_eq!(stats.trace_id, id);
        // Outside a trace the id is the wire's "no trace" marker.
        let (_, stats) = run_one(&e, &inst);
        assert_eq!(stats.trace_id, 0);
    }

    #[test]
    fn observation_is_always_on_without_timing() {
        let gram = Expr::var("G").t().mm(Expr::var("G"));
        let e = gram.clone().add(gram);
        let inst = instance();
        let plan = Planner::new().plan_one(&e, &InstanceStats::from_instance(&inst));
        let registry = FunctionRegistry::standard_field();
        let mut exec = Executor::new(&plan, &inst, &registry, ExecOptions::default());
        let root = plan.roots()[0];
        exec.run(root).unwrap();
        assert!(
            exec.profile_samples().is_none(),
            "per-node timing stays opt-in"
        );
        let samples = exec.observed_samples();
        assert_eq!(samples.len(), plan.nodes().len());
        let root_sample = samples[root];
        assert_eq!(root_sample.computed, 1);
        assert_eq!((root_sample.rows, root_sample.cols), (4, 4));
        assert!(root_sample.nnz > 0, "observed output nnz must be recorded");
        assert_eq!(root_sample.total_ns, 0, "no clock reads without profile");
        assert!(samples.iter().any(|s| s.hits >= 1), "CSE reuse observed");
    }

    #[test]
    fn profiling_records_per_node_samples() {
        let gram = Expr::var("G").t().mm(Expr::var("G"));
        let e = gram.clone().add(gram);
        let inst = instance();
        let plan = Planner::new().plan_one(&e, &InstanceStats::from_instance(&inst));
        let registry = FunctionRegistry::standard_field();
        let options = ExecOptions {
            profile: true,
            ..ExecOptions::default()
        };
        let mut exec = Executor::new(&plan, &inst, &registry, options);
        let root = plan.roots()[0];
        exec.run(root).unwrap();
        let samples = exec.profile_samples().expect("profiling was requested");
        assert_eq!(samples.len(), plan.nodes().len());
        let root_sample = samples[root];
        assert_eq!(root_sample.computed, 1);
        assert_eq!((root_sample.rows, root_sample.cols), (4, 4));
        assert!(root_sample.nnz > 0);
        // The shared Gram subterm is evaluated twice: one miss, one hit.
        assert!(samples.iter().any(|s| s.hits >= 1), "CSE reuse must show");
        // Inclusive timing: the root's wall time dominates its children's.
        assert!(samples
            .iter()
            .all(|s| s.computed == 0 || s.total_ns <= root_sample.total_ns));
    }
}
