//! Acceptance tests for the cost-based rewrite layer: the rewrites must be
//! *visible* in the `PlanReport`, *correct* (identical results with and
//! without them), and *fast* — hard ≥2× wall-clock guards on the ISSUE's
//! two workloads (skewed matrix chain, diag pushdown), mirroring the
//! `rewrite_speedup` benchmark so CI pins the speedup, not just the
//! numbers' existence.

use matlang_core::{Expr, FunctionRegistry, Instance, SparseInstance};
use matlang_engine::Engine;
use matlang_matrix::{sparse_erdos_renyi, Matrix, MatrixRepr};
use matlang_semiring::{Boolean, Real};
use std::time::{Duration, Instant};

fn min_of(rounds: usize, f: &dyn Fn()) -> Duration {
    (0..rounds)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one round")
}

/// The skewed 4-factor chain of the ISSUE: `G·G·G·1(G)` at n = 2000,
/// average degree 8.  Left-associated this materializes G² and G³ (≈10⁶
/// multiply-adds); right-associated it is three O(nnz) matvecs.  The DP
/// must find the right association and win by far more than the required
/// 2× margin.
#[test]
fn timing_guard_chain_reorder_speedup() {
    let n = 2000;
    let inst: SparseInstance<Boolean> = Instance::new().with_dim("n", n).with_matrix(
        "G",
        MatrixRepr::from_sparse_auto(sparse_erdos_renyi(n, 8.0, 97)),
    );
    let registry = FunctionRegistry::<Boolean>::new();
    let g = || Expr::var("G");
    let chain = g().mm(g()).mm(g()).mm(g().ones());

    let rewriting = Engine::new();
    let baseline = Engine::builder().cost_rewrites(false).build();

    // The report must show the reorder before we time anything.
    let plan = rewriting.plan(std::slice::from_ref(&chain), &inst);
    assert!(
        plan.report
            .rewrites
            .iter()
            .any(|r| r.rule == "matrix-chain-reorder" && r.saving > 0.0),
        "chain reorder missing from report: {}",
        plan.report
    );

    // Correctness before speed.
    let fast = rewriting.evaluate(&chain, &inst, &registry).unwrap();
    let slow = baseline.evaluate(&chain, &inst, &registry).unwrap();
    assert_eq!(fast.to_dense(), slow.to_dense());

    let rewritten = min_of(3, &|| {
        rewriting.evaluate(&chain, &inst, &registry).unwrap();
    });
    let unrewritten = min_of(3, &|| {
        baseline.evaluate(&chain, &inst, &registry).unwrap();
    });
    assert!(
        rewritten * 2 < unrewritten,
        "chain reorder ({rewritten:?}) must beat the left association ({unrewritten:?}) by ≥2×"
    );
}

/// The diag-pushdown workload: `A · diag(v)` over the dense backend.  The
/// unfused dense product pays O(n³) — the kernel only skips zero *left*
/// entries — while the fused column scaling is O(n²).
#[test]
fn timing_guard_diag_pushdown_speedup() {
    let n = 256;
    let dense: Matrix<Real> = Matrix::from_vec(
        n,
        n,
        (0..n * n)
            .map(|k| Real(((k % 7) + 1) as f64))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let v: Matrix<Real> =
        Matrix::from_vec(n, 1, (0..n).map(|i| Real(((i % 5) + 1) as f64)).collect()).unwrap();
    let inst: Instance<Real> = Instance::new()
        .with_dim("n", n)
        .with_matrix("A", dense)
        .with_matrix("v", v);
    let registry = FunctionRegistry::standard_field();
    let expr = Expr::var("A").mm(Expr::var("v").diag());

    let fusing = Engine::new();
    let baseline = Engine::builder().cost_rewrites(false).build();

    let plan = fusing.plan(std::slice::from_ref(&expr), &inst);
    assert_eq!(plan.report.fused_products, 1, "report: {}", plan.report);
    assert!(plan
        .report
        .rewrites
        .iter()
        .any(|r| r.rule == "diag-pushdown"));

    let fast = fusing.evaluate(&expr, &inst, &registry).unwrap();
    let slow = baseline.evaluate(&expr, &inst, &registry).unwrap();
    assert_eq!(fast, slow, "fused kernel must agree with diag + matmul");

    let fused = min_of(3, &|| {
        fusing.evaluate(&expr, &inst, &registry).unwrap();
    });
    let unfused = min_of(3, &|| {
        baseline.evaluate(&expr, &inst, &registry).unwrap();
    });
    assert!(
        fused * 2 < unfused,
        "diag pushdown ({fused:?}) must beat the unfused product ({unfused:?}) by ≥2×"
    );
}

/// `1(G·G·G)` only needs G's row count: the ones-pushdown rule must drop
/// the whole product (visible as saving in the report and as a plan with
/// no product nodes at all).
#[test]
fn ones_pushdown_drops_the_product() {
    let n = 500;
    let inst: SparseInstance<Boolean> = Instance::new().with_dim("n", n).with_matrix(
        "G",
        MatrixRepr::from_sparse_auto(sparse_erdos_renyi(n, 8.0, 5)),
    );
    let registry = FunctionRegistry::<Boolean>::new();
    let g = || Expr::var("G");
    let expr = g().mm(g()).mm(g()).ones();

    let engine = Engine::new();
    let plan = engine.plan(std::slice::from_ref(&expr), &inst);
    assert!(plan
        .report
        .rewrites
        .iter()
        .any(|r| r.rule == "ones-pushdown" && r.saving > 0.0));
    assert!(
        !plan
            .nodes()
            .iter()
            .any(|node| matches!(node.op, matlang_engine::PlanOp::MatMul(_, _))),
        "the product must be gone from the DAG"
    );
    let fast = engine.evaluate(&expr, &inst, &registry).unwrap();
    let slow = matlang_core::evaluate(&expr, &inst, &registry).unwrap();
    assert_eq!(fast.to_dense(), slow.to_dense());
}

/// Transpose pushdown feeding the chain DP: `(G·G)ᵀ·1(G)` must end up as
/// two matvecs over the transposed factors, sharing results with the
/// engine's CSE as usual.
#[test]
fn transpose_pushdown_composes_with_reordering() {
    let n = 1000;
    let inst: SparseInstance<Boolean> = Instance::new().with_dim("n", n).with_matrix(
        "G",
        MatrixRepr::from_sparse_auto(sparse_erdos_renyi(n, 8.0, 11)),
    );
    let registry = FunctionRegistry::<Boolean>::new();
    let g = || Expr::var("G");
    let expr = g().mm(g()).t().mm(g().ones());

    let engine = Engine::new();
    let plan = engine.plan(std::slice::from_ref(&expr), &inst);
    let rules: Vec<&str> = plan.report.rewrites.iter().map(|r| r.rule).collect();
    assert!(rules.contains(&"transpose-pushdown"), "rules: {rules:?}");
    assert!(rules.contains(&"matrix-chain-reorder"), "rules: {rules:?}");

    let fast = engine.evaluate(&expr, &inst, &registry).unwrap();
    let slow = matlang_core::evaluate(&expr, &inst, &registry).unwrap();
    assert_eq!(fast.to_dense(), slow.to_dense());
}

/// The report's Display must surface the new sections (used by the demo
/// examples and the server logs).
#[test]
fn report_display_mentions_rewrites() {
    let n = 100;
    let inst: SparseInstance<Boolean> = Instance::new().with_dim("n", n).with_matrix(
        "G",
        MatrixRepr::from_sparse_auto(sparse_erdos_renyi(n, 4.0, 3)),
    );
    let g = || Expr::var("G");
    let expr = g().mm(g()).mm(g().ones());
    let plan = Engine::new().plan(std::slice::from_ref(&expr), &inst);
    let text = plan.report.to_string();
    assert!(text.contains("cost rewrites"), "display: {text}");
    assert!(text.contains("fused products"), "display: {text}");
}
