//! Acceptance tests for delta-driven view maintenance (`engine::delta`):
//! an UPDATE+EXEC loop over a standing query must be **exact** (the
//! delta-maintained cache answers bit-identically to a cold recompute)
//! and **fast** — the ISSUE's hard wall-clock guard pins delta
//! propagation at ≥100× over invalidate-and-recompute at n = 10 000 over
//! the Boolean semiring (release builds; debug keeps a 10× floor).

use matlang_core::{Expr, FunctionRegistry, Instance, SparseInstance};
use matlang_engine::delta::{propagate, DeltaOverlay};
use matlang_engine::{Engine, Executor, NodeCache, Plan};
use matlang_matrix::{sparse_erdos_renyi, MatrixRepr, SparseMatrix};
use matlang_semiring::{Boolean, Semiring};
use std::time::{Duration, Instant};

/// The standing query: total two-hop count `1ᵀ·((G·G)·1)`.  The root is a
/// scalar, but recomputing it pays the full G·G SpGEMM — exactly the
/// shape where patching the cached interior beats rebuilding it.  Cost
/// rewrites are disabled so the chain keeps this association and both
/// timed loops run the *same* plan.
fn standing_query() -> Expr {
    let g = || Expr::var("G");
    g().ones().t().mm(g().mm(g()).mm(g().ones()))
}

fn build(n: usize, degree: f64, seed: u64) -> (SparseInstance<Boolean>, Plan) {
    let inst: SparseInstance<Boolean> = Instance::new().with_dim("n", n).with_matrix(
        "G",
        MatrixRepr::from_sparse_auto(sparse_erdos_renyi(n, degree, seed)),
    );
    let engine = Engine::builder().cost_rewrites(false).build();
    let query = standing_query();
    let mut plan = engine.plan(std::slice::from_ref(&query), &inst);
    plan.mark_all_cacheable();
    (inst, plan)
}

/// One warm execution through the persistent cache; returns the root
/// value's dense form and hands the cache back.
fn exec_root(
    plan: &Plan,
    inst: &SparseInstance<Boolean>,
    registry: &FunctionRegistry<Boolean>,
    cache: NodeCache<MatrixRepr<Boolean>>,
) -> (MatrixRepr<Boolean>, NodeCache<MatrixRepr<Boolean>>) {
    let mut exec = Executor::with_cache(plan, inst, registry, Default::default(), cache);
    let value = exec.run_shared(plan.roots()[0]).expect("exec");
    let value = (*value).clone();
    (value, exec.into_cache())
}

/// The deterministic edge inserted at round `r` — shared by both loops so
/// the two instances stay identical.
fn round_edge(n: usize, r: usize) -> (usize, usize) {
    ((r * 13 + 1) % n, (r * 29 + 7) % n)
}

/// Exactness across a whole update sequence: after every round, the
/// delta-maintained root equals a cold evaluation of the mutated
/// instance, entry for entry.
#[test]
fn delta_maintained_root_is_bit_identical_to_cold_recompute() {
    let n = 400;
    let (mut inst, plan) = build(n, 6.0, 23);
    let registry = FunctionRegistry::<Boolean>::new();
    let mut cache: NodeCache<MatrixRepr<Boolean>> = vec![None; plan.nodes().len()];
    let mut overlay: DeltaOverlay<Boolean> = DeltaOverlay::new(plan.nodes().len());
    let (_, c) = exec_root(&plan, &inst, &registry, cache);
    cache = c;

    let query = standing_query();
    for r in 0..12 {
        let (i, j) = round_edge(n, r * 7 + 3);
        inst.matrix_mut("G")
            .unwrap()
            .set_entry(i, j, Boolean::one())
            .unwrap();
        let update = SparseMatrix::from_triplets(n, n, vec![(i, j, Boolean::one())]).unwrap();
        let report = propagate(&plan, &mut cache, &mut overlay, "G", &update);
        assert!(
            report.patched > 0,
            "round {r}: a Boolean insert must take the delta path"
        );
        overlay.flush_for_roots(&mut cache, plan.roots());
        let (warm, c) = exec_root(&plan, &inst, &registry, cache);
        cache = c;
        let cold = matlang_core::evaluate(&query, &inst, &registry).unwrap();
        assert_eq!(
            warm.to_dense(),
            cold.to_dense(),
            "round {r}: patched cache diverged from cold evaluation"
        );
    }
}

/// The ISSUE's acceptance guard: at n = 10 000 Boolean, an UPDATE+EXEC
/// loop propagating deltas must beat the same loop under
/// invalidate-and-recompute by ≥100× (release) / ≥10× (debug).
#[test]
fn timing_guard_delta_loop_beats_invalidation_100x() {
    let n = 10_000;
    let degree = 24.0;
    let seed = 4242;
    let registry = FunctionRegistry::<Boolean>::new();
    let factor: u32 = if cfg!(debug_assertions) { 10 } else { 100 };
    let rounds = if cfg!(debug_assertions) { 3 } else { 10 };
    let reps = if cfg!(debug_assertions) { 2 } else { 3 };

    // Delta loop: apply the edge, propagate, execute warm.
    let delta_loop = |rep: usize| -> Duration {
        let (mut inst, plan) = build(n, degree, seed);
        let mut cache: NodeCache<MatrixRepr<Boolean>> = vec![None; plan.nodes().len()];
        let mut overlay: DeltaOverlay<Boolean> = DeltaOverlay::new(plan.nodes().len());
        let (_, c) = exec_root(&plan, &inst, &registry, cache);
        cache = c;
        let start = Instant::now();
        for r in 0..rounds {
            let (i, j) = round_edge(n, rep * rounds + r);
            inst.matrix_mut("G")
                .unwrap()
                .set_entry(i, j, Boolean::one())
                .unwrap();
            let update = SparseMatrix::from_triplets(n, n, vec![(i, j, Boolean::one())]).unwrap();
            let report = propagate(&plan, &mut cache, &mut overlay, "G", &update);
            assert_eq!(report.invalidated, 0, "the whole DAG must patch");
            overlay.flush_for_roots(&mut cache, plan.roots());
            let (_, c) = exec_root(&plan, &inst, &registry, cache);
            cache = c;
        }
        start.elapsed()
    };

    // Baseline loop: apply the edge, drop every dependent node, recompute.
    let invalidate_loop = |rep: usize| -> Duration {
        let (mut inst, plan) = build(n, degree, seed);
        let mut cache: NodeCache<MatrixRepr<Boolean>> = vec![None; plan.nodes().len()];
        let (_, c) = exec_root(&plan, &inst, &registry, cache);
        cache = c;
        let start = Instant::now();
        for r in 0..rounds {
            let (i, j) = round_edge(n, rep * rounds + r);
            inst.matrix_mut("G")
                .unwrap()
                .set_entry(i, j, Boolean::one())
                .unwrap();
            plan.invalidate_dependents_in(&mut cache, "G");
            let (_, c) = exec_root(&plan, &inst, &registry, cache);
            cache = c;
        }
        start.elapsed()
    };

    let delta = (0..reps).map(delta_loop).min().expect("reps > 0");
    let invalidate = (0..reps).map(invalidate_loop).min().expect("reps > 0");
    eprintln!(
        "delta {delta:?} vs invalidate {invalidate:?} over {rounds} rounds \
         ({:.0}×)",
        invalidate.as_secs_f64() / delta.as_secs_f64()
    );
    assert!(
        delta * factor < invalidate,
        "delta loop ({delta:?}) must beat invalidate-and-recompute \
         ({invalidate:?}) by ≥{factor}× at n = {n}"
    );
}
