//! Planned/parallel execution must be result-identical to the tree-walking
//! evaluator: over the shared operator corpus (including error cases), the
//! paper's 4-clique query, and randomized expressions across the Boolean,
//! ℕ and tropical (min-plus) semirings — on both the dense and the
//! adaptive sparse backend, with and without threading.

use matlang_core::corpus::{four_clique_corpus_expr, operator_corpus};
use matlang_core::{evaluate, Expr, FunctionRegistry, Instance, MatrixType, SparseInstance};
use matlang_engine::Engine;
use matlang_matrix::{Matrix, MatrixRepr};
use matlang_semiring::{Boolean, MinPlus, Nat, Real, Semiring};
use proptest::prelude::*;

/// Builds the sparse twin of a dense instance: same dims, same matrices,
/// adaptive representation.
fn sparsify<K: Semiring>(dense: &Instance<K>) -> SparseInstance<K> {
    let mut out: SparseInstance<K> = Instance::new();
    for (sym, n) in dense.dims() {
        out.set_dim(sym.clone(), n);
    }
    for (var, m) in dense.matrices() {
        out.set_matrix(var.clone(), MatrixRepr::from_dense_auto(m.clone()));
    }
    out
}

/// Evaluates `expr` through the naive evaluator and through the engine (in
/// several configurations) over both backends, asserting identical values
/// or identical error discriminants everywhere.
fn assert_engine_parity<K: Semiring>(
    expr: &Expr,
    instance: &Instance<K>,
    registry: &FunctionRegistry<K>,
) {
    let naive = evaluate(expr, instance, registry);
    let engines = [
        Engine::new(),
        Engine::builder().threads(2).build(),
        Engine::builder().simplify(false).build(),
    ];
    for engine in &engines {
        let planned = engine.evaluate(expr, instance, registry);
        match (&naive, &planned) {
            (Ok(n), Ok(p)) => assert_eq!(n, p, "dense engine result differs for {expr}"),
            (Err(ne), Err(pe)) => assert_eq!(
                std::mem::discriminant(ne),
                std::mem::discriminant(pe),
                "dense engine error differs for {expr}: {ne} vs {pe}"
            ),
            (n, p) => panic!("engine/naive mismatch for {expr}: naive {n:?}, engine {p:?}"),
        }
    }
    let sparse_instance = sparsify(instance);
    let sparse_naive = evaluate(expr, &sparse_instance, registry);
    let sparse_planned = Engine::new().evaluate(expr, &sparse_instance, registry);
    match (&sparse_naive, &sparse_planned) {
        (Ok(n), Ok(p)) => {
            assert_eq!(
                n.to_dense(),
                p.to_dense(),
                "sparse engine result differs for {expr}"
            );
            if let Ok(dense) = &naive {
                assert_eq!(&n.to_dense(), dense, "backend mismatch for {expr}");
            }
        }
        (Err(ne), Err(pe)) => assert_eq!(
            std::mem::discriminant(ne),
            std::mem::discriminant(pe),
            "sparse engine error differs for {expr}: {ne} vs {pe}"
        ),
        (n, p) => panic!("sparse engine/naive mismatch for {expr}: naive {n:?}, engine {p:?}"),
    }
}

#[test]
fn operator_corpus_has_engine_parity() {
    let a = Matrix::from_f64_rows(&[&[1.0, 2.0, 0.0], &[0.0, 3.0, 4.0], &[5.0, 0.0, 6.0]]).unwrap();
    let inst: Instance<Real> = Instance::new().with_dim("a", 3).with_matrix("A", a);
    let reg = FunctionRegistry::standard_field();
    for expr in operator_corpus() {
        assert_engine_parity(&expr, &inst, &reg);
    }
}

#[test]
fn four_clique_has_engine_parity() {
    let mut k4: Matrix<Real> = Matrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            if i != j {
                k4.set(i, j, Real(1.0)).unwrap();
            }
        }
    }
    let inst: Instance<Real> = Instance::new().with_dim("a", 4).with_matrix("A", k4);
    assert_engine_parity(
        &four_clique_corpus_expr(),
        &inst,
        &FunctionRegistry::standard_field(),
    );
}

// ---------------------------------------------------------------------------
// Randomized expressions: a deterministic expression generator driven by a
// proptest-supplied word stream.  All generated expressions are square-typed
// over the variable `G` / size symbol `a`, are constant-free (so parity
// holds verbatim over the tropical semirings, where `rewrite`'s constant
// folding interprets literals through ℝ), and exercise sharing, nested
// loops, shadowed loop variables and `let` bindings.
// ---------------------------------------------------------------------------

/// Builds a random square-typed expression, consuming words from `words`.
fn square_expr(budget: usize, depth: usize, words: &mut impl Iterator<Item = u64>) -> Expr {
    let word = words.next().unwrap_or(0);
    if budget == 0 {
        return Expr::var("G");
    }
    // Reuse the name `v` at even depths to exercise binder shadowing.
    let v = if depth % 2 == 0 {
        "v".to_string()
    } else {
        format!("v{depth}")
    };
    let var_v = || Expr::var(v.as_str());
    match word % 10 {
        0 => Expr::var("G"),
        1 => square_expr(budget - 1, depth, words).t(),
        2 => square_expr(budget - 1, depth, words).add(square_expr(budget / 2, depth, words)),
        3 => square_expr(budget - 1, depth, words).mm(square_expr(budget / 2, depth, words)),
        4 => square_expr(budget - 1, depth, words).had(square_expr(budget / 2, depth, words)),
        5 => square_expr(budget - 1, depth, words).ones().diag(),
        // Σv. (v·vᵀ)·e — the body mentions both v and the subexpression.
        6 => Expr::sum(
            &v,
            "a",
            var_v()
                .mm(var_v().t())
                .mm(square_expr(budget - 1, depth + 1, words)),
        ),
        // Π∘v. e + v·vᵀ.
        7 => Expr::hprod(
            &v,
            "a",
            square_expr(budget - 1, depth + 1, words).add(var_v().mm(var_v().t())),
        ),
        // let T = e in T·T — genuine sharing through a binder.
        8 => Expr::let_in(
            "T",
            square_expr(budget - 1, depth, words),
            Expr::var("T").mm(Expr::var("T")),
        ),
        // for v, X. X + (vᵀ·e·v) × (v·vᵀ): loop with accumulator use and a
        // loop-invariant candidate inside.
        _ => Expr::for_loop(
            &v,
            "a",
            "X",
            MatrixType::square("a"),
            Expr::var("X").add(
                var_v()
                    .t()
                    .mm(square_expr(budget - 1, depth + 1, words))
                    .mm(var_v())
                    .smul(var_v().mm(var_v().t())),
            ),
        ),
    }
}

fn nat_matrix(n: usize) -> impl Strategy<Value = Matrix<Nat>> {
    proptest::collection::vec(0u64..8, n * n).prop_map(move |data| {
        Matrix::from_vec(
            n,
            n,
            data.into_iter()
                .map(|w| if w < 5 { Nat(0) } else { Nat(w) })
                .collect(),
        )
        .unwrap()
    })
}

fn bool_matrix(n: usize) -> impl Strategy<Value = Matrix<Boolean>> {
    proptest::collection::vec(0u64..4, n * n).prop_map(move |data| {
        Matrix::from_vec(n, n, data.into_iter().map(|w| Boolean(w == 0)).collect()).unwrap()
    })
}

fn tropical_matrix(n: usize) -> impl Strategy<Value = Matrix<MinPlus>> {
    proptest::collection::vec(0i64..10, n * n).prop_map(move |data| {
        Matrix::from_vec(
            n,
            n,
            data.into_iter()
                .map(|w| {
                    if w < 6 {
                        MinPlus::zero()
                    } else {
                        MinPlus(w as f64)
                    }
                })
                .collect(),
        )
        .unwrap()
    })
}

fn parity_case<K: Semiring>(matrix: Matrix<K>, words: Vec<u64>) {
    let n = matrix.rows();
    let inst: Instance<K> = Instance::new().with_dim("a", n).with_matrix("G", matrix);
    let reg: FunctionRegistry<K> = FunctionRegistry::new();
    let expr = square_expr(5, 0, &mut words.into_iter());
    assert_engine_parity(&expr, &inst, &reg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_nat_expressions_have_engine_parity(
        m in nat_matrix(4),
        words in proptest::collection::vec(0u64..1_000_000, 24),
    ) {
        parity_case(m, words);
    }

    #[test]
    fn random_boolean_expressions_have_engine_parity(
        m in bool_matrix(5),
        words in proptest::collection::vec(0u64..1_000_000, 24),
    ) {
        parity_case(m, words);
    }

    #[test]
    fn random_tropical_expressions_have_engine_parity(
        m in tropical_matrix(4),
        words in proptest::collection::vec(0u64..1_000_000, 24),
    ) {
        parity_case(m, words);
    }
}
