//! Property suite for the cost-based rewrite layer: every rule must
//! preserve semantics over random well-typed expressions — on the
//! Boolean, ℕ and tropical (min-plus) semirings, over both the dense and
//! the adaptive backend — both end-to-end (engine with rewrites vs. the
//! tree evaluator) and at the source level (the rewritten expression
//! evaluates to the same value as the original under `core::evaluate`).
//!
//! The generator is biased toward the shapes the rules fire on: product
//! chains, transposed products, diagonalized vectors on either side of a
//! product, `1(e)` of compound operands, and loops wrapping all of the
//! above.

use matlang_core::{evaluate, Expr, FunctionRegistry, Instance, SparseInstance};
use matlang_engine::{rewrite_with_stats, Engine, InstanceStats};
use matlang_matrix::{Matrix, MatrixRepr};
use matlang_semiring::{Boolean, MinPlus, Nat, Semiring};
use proptest::prelude::*;

/// Builds a random square-typed (`n × n`) expression over the square
/// matrix `G` and the vector `u`, consuming words from `words`.
fn square_expr(budget: usize, depth: usize, words: &mut impl Iterator<Item = u64>) -> Expr {
    let word = words.next().unwrap_or(0);
    if budget == 0 {
        return Expr::var("G");
    }
    let v = format!("v{depth}");
    match word % 12 {
        0 => Expr::var("G"),
        1 => square_expr(budget - 1, depth, words).t(),
        // Chains of 2–3 square factors (the DP's bread and butter).
        2 => square_expr(budget - 1, depth, words).mm(square_expr(budget / 2, depth, words)),
        3 => square_expr(budget - 1, depth, words)
            .mm(square_expr(budget / 2, depth, words))
            .mm(square_expr(budget / 3, depth, words)),
        // Transposed products (transpose pushdown).
        4 => square_expr(budget - 1, depth, words)
            .mm(square_expr(budget / 2, depth, words))
            .t(),
        // diag on either side of a product (diag fusion).
        5 => Expr::var("u")
            .diag()
            .mm(square_expr(budget - 1, depth, words)),
        6 => square_expr(budget - 1, depth, words).mm(Expr::var("u").diag()),
        // 1(e) of a compound operand (ones pushdown), re-squared via diag.
        7 => square_expr(budget - 1, depth, words).ones().diag(),
        8 => square_expr(budget - 1, depth, words).add(square_expr(budget / 2, depth, words)),
        9 => square_expr(budget - 1, depth, words).had(square_expr(budget / 2, depth, words)),
        // Σv. diag(v)·e — a fused product of the loop vector inside a loop.
        10 => Expr::sum(
            &v,
            "n",
            Expr::var(v.as_str())
                .diag()
                .mm(square_expr(budget - 1, depth + 1, words)),
        ),
        // Π∘v. e + v·vᵀ — loop body with an invariant chain candidate.
        _ => Expr::hprod(
            &v,
            "n",
            square_expr(budget - 1, depth + 1, words)
                .add(Expr::var(v.as_str()).mm(Expr::var(v.as_str()).t())),
        ),
    }
}

fn sparsify<K: Semiring>(dense: &Instance<K>) -> SparseInstance<K> {
    let mut out: SparseInstance<K> = Instance::new();
    for (sym, n) in dense.dims() {
        out.set_dim(sym.clone(), n);
    }
    for (var, m) in dense.matrices() {
        out.set_matrix(var.clone(), MatrixRepr::from_dense_auto(m.clone()));
    }
    out
}

/// The three agreement checks, on one backend pair.
fn assert_rewrite_parity<K: Semiring>(expr: &Expr, instance: &Instance<K>) {
    let registry: FunctionRegistry<K> = FunctionRegistry::new();
    let naive = evaluate(expr, instance, &registry);

    // (1) Source-level: the rewritten expression is equivalent under the
    // *tree evaluator* — no engine machinery involved, so this isolates
    // the expression rewrites from CSE/hoisting/fusion.
    let stats = InstanceStats::from_instance(instance);
    let rewritten = rewrite_with_stats(expr, &stats);
    let rewritten_naive = evaluate(&rewritten.expr, instance, &registry);
    match (&naive, &rewritten_naive) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "rewrite changed the value of {expr}"),
        (Err(a), Err(b)) => assert_eq!(
            std::mem::discriminant(a),
            std::mem::discriminant(b),
            "rewrite changed the error of {expr}: {a} vs {b}"
        ),
        (a, b) => panic!("rewrite changed the outcome of {expr}: {a:?} vs {b:?}"),
    }

    // (2) End-to-end dense: engine (rewrites + fusion on) vs. naive.
    for engine in [Engine::new(), Engine::builder().threads(2).build()] {
        let planned = engine.evaluate(expr, instance, &registry);
        match (&naive, &planned) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "dense engine result differs for {expr}"),
            (Err(a), Err(b)) => assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b),
                "dense engine error differs for {expr}: {a} vs {b}"
            ),
            (a, b) => panic!("dense engine/naive mismatch for {expr}: {a:?} vs {b:?}"),
        }
    }

    // (3) End-to-end adaptive: backend changes must not interact with the
    // rewrites.
    let sparse_instance = sparsify(instance);
    let sparse_naive = evaluate(expr, &sparse_instance, &registry);
    let sparse_planned = Engine::new().evaluate(expr, &sparse_instance, &registry);
    match (&sparse_naive, &sparse_planned) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.to_dense(),
                b.to_dense(),
                "adaptive engine result differs for {expr}"
            );
            if let Ok(dense) = &naive {
                assert_eq!(&a.to_dense(), dense, "backend mismatch for {expr}");
            }
        }
        (Err(a), Err(b)) => assert_eq!(
            std::mem::discriminant(a),
            std::mem::discriminant(b),
            "adaptive engine error differs for {expr}: {a} vs {b}"
        ),
        (a, b) => panic!("adaptive engine/naive mismatch for {expr}: {a:?} vs {b:?}"),
    }
}

fn parity_case<K: Semiring>(matrix: Matrix<K>, vector: Vec<K>, words: Vec<u64>) {
    let n = matrix.rows();
    let u = Matrix::from_vec(n, 1, vector).unwrap();
    let inst: Instance<K> = Instance::new()
        .with_dim("n", n)
        .with_matrix("G", matrix)
        .with_matrix("u", u);
    let expr = square_expr(4, 0, &mut words.into_iter());
    assert_rewrite_parity(&expr, &inst);
}

fn nat_matrix(n: usize) -> impl Strategy<Value = Matrix<Nat>> {
    proptest::collection::vec(0u64..8, n * n).prop_map(move |data| {
        Matrix::from_vec(
            n,
            n,
            data.into_iter()
                .map(|w| if w < 5 { Nat(0) } else { Nat(w) })
                .collect(),
        )
        .unwrap()
    })
}

fn nat_vector(n: usize) -> impl Strategy<Value = Vec<Nat>> {
    proptest::collection::vec(0u64..6, n)
        .prop_map(|data| data.into_iter().map(|w| Nat(w % 4)).collect())
}

fn bool_matrix(n: usize) -> impl Strategy<Value = Matrix<Boolean>> {
    proptest::collection::vec(0u64..4, n * n).prop_map(move |data| {
        Matrix::from_vec(n, n, data.into_iter().map(|w| Boolean(w == 0)).collect()).unwrap()
    })
}

fn bool_vector(n: usize) -> impl Strategy<Value = Vec<Boolean>> {
    proptest::collection::vec(0u64..3, n)
        .prop_map(|data| data.into_iter().map(|w| Boolean(w == 0)).collect())
}

fn tropical_matrix(n: usize) -> impl Strategy<Value = Matrix<MinPlus>> {
    proptest::collection::vec(0i64..10, n * n).prop_map(move |data| {
        Matrix::from_vec(
            n,
            n,
            data.into_iter()
                .map(|w| {
                    if w < 6 {
                        MinPlus::zero()
                    } else {
                        MinPlus(w as f64)
                    }
                })
                .collect(),
        )
        .unwrap()
    })
}

fn tropical_vector(n: usize) -> impl Strategy<Value = Vec<MinPlus>> {
    proptest::collection::vec(0i64..6, n).prop_map(|data| {
        data.into_iter()
            .map(|w| {
                if w < 2 {
                    MinPlus::zero()
                } else {
                    MinPlus(w as f64)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn rewrites_preserve_nat_semantics(
        m in nat_matrix(4),
        u in nat_vector(4),
        words in proptest::collection::vec(0u64..1_000_000, 24),
    ) {
        parity_case(m, u, words);
    }

    #[test]
    fn rewrites_preserve_boolean_semantics(
        m in bool_matrix(5),
        u in bool_vector(5),
        words in proptest::collection::vec(0u64..1_000_000, 24),
    ) {
        parity_case(m, u, words);
    }

    #[test]
    fn rewrites_preserve_tropical_semantics(
        m in tropical_matrix(4),
        u in tropical_vector(4),
        words in proptest::collection::vec(0u64..1_000_000, 24),
    ) {
        parity_case(m, u, words);
    }
}
