//! Plan-quality tests: the `rewrite::savings` wiring on the Fig. 1
//! corpus, CSE/hoisting on the paper's witnesses, and a coarse wall-clock
//! guard showing the engine beating naive evaluation on a hoisting-heavy
//! query.

use matlang_algorithms::graphs;
use matlang_core::{evaluate, rewrite, Expr, FunctionRegistry, Instance, SparseInstance};
use matlang_engine::{Engine, InstanceStats, Planner};
use matlang_matrix::{sparse_erdos_renyi, MatrixRepr};
use matlang_semiring::Nat;
use std::time::Instant;

/// The Figure 1 witness corpus: one query per language/fragment the figure
/// separates (MATLANG ⊂ sum ⊂ FO ⊂ prod ⊂ for-MATLANG).
fn fig1_corpus() -> Vec<Expr> {
    vec![
        Expr::var("G").t().mm(Expr::var("G")), // MATLANG: the Gram matrix
        graphs::trace("G", "n"),               // sum-MATLANG
        graphs::diagonal_product("G", "n"),    // FO-MATLANG
        graphs::transitive_closure_prod("G", "n"), // prod-MATLANG
        graphs::four_clique("G", "n"),         // sum-MATLANG, Example 3.3
    ]
}

#[test]
fn fig1_corpus_savings_value_is_wired_into_the_report() {
    let corpus = fig1_corpus();
    // The hand-written witnesses are already in simplest form: the
    // rewriter must find nothing to remove, and the planner must report
    // exactly that value.
    for e in &corpus {
        assert_eq!(
            rewrite::savings(e),
            0,
            "witness unexpectedly simplifiable: {e}"
        );
    }
    let stats = InstanceStats::empty();
    let plan = Planner::new().plan(&corpus, &stats);
    assert_eq!(plan.report.simplify_savings, 0);
    assert_eq!(plan.report.queries, 5);

    // A mechanically-noised variant (what the circuit decompiler and the
    // RA⁺_K/WL translations emit): `1 × (eᵀ)ᵀ` adds exactly 4 removable
    // nodes per query, and the report accounts for every one of them.
    let noised: Vec<Expr> = fig1_corpus()
        .into_iter()
        .map(|e| Expr::lit(1.0).smul(e.t().t()))
        .collect();
    let per_query: Vec<usize> = noised.iter().map(rewrite::savings).collect();
    assert_eq!(per_query, vec![4, 4, 4, 4, 4]);
    let plan = Planner::new().plan(&noised, &stats);
    assert_eq!(plan.report.simplify_savings, 20);
}

#[test]
fn four_clique_plan_shares_and_hoists() {
    // The 4-clique query re-uses each `vᵀ·G·w` edge probe's pieces and
    // nests 4 Σ-loops; the planner must find sharing and hoistable nodes.
    let plan = Planner::new().plan_one(&graphs::four_clique("G", "n"), &InstanceStats::empty());
    assert!(plan.report.dag_nodes < plan.report.tree_nodes);
    assert!(plan.report.shared_nodes > 0);
    assert!(plan.report.hoistable_nodes > 0);
}

/// The acceptance guard for the tentpole: on a CSE/hoisting-heavy query —
/// Σv. vᵀ·(GᵀG)·v over a sparse graph — the engine must beat naive
/// evaluation by a wide margin, because the naive evaluator recomputes the
/// loop-invariant Gram product on all `n` iterations while the engine
/// computes it once.
#[test]
fn timing_guard_engine_beats_naive_evaluation_on_hoisting_heavy_query() {
    let n = 300;
    let graph = sparse_erdos_renyi::<Nat>(n, 8.0, 21);
    let inst: SparseInstance<Nat> = Instance::new()
        .with_dim("n", n)
        .with_matrix("G", MatrixRepr::from_sparse_auto(graph));
    let registry = FunctionRegistry::<Nat>::new();
    let gram = Expr::var("G").t().mm(Expr::var("G"));
    let e = Expr::sum("v", "n", Expr::var("v").t().mm(gram).mm(Expr::var("v")));

    let engine = Engine::new();
    // Warm-up + correctness: both paths must agree before timing.
    let planned = engine.evaluate(&e, &inst, &registry).unwrap();
    let naive = evaluate(&e, &inst, &registry).unwrap();
    assert_eq!(planned.to_dense(), naive.to_dense());

    let time = |f: &dyn Fn()| {
        let start = Instant::now();
        f();
        start.elapsed()
    };
    let engine_elapsed = time(&|| {
        engine.evaluate(&e, &inst, &registry).unwrap();
    });
    let naive_elapsed = time(&|| {
        evaluate(&e, &inst, &registry).unwrap();
    });
    // The expected gap is ~n× (one Gram product instead of n); require a
    // conservative 3× so scheduler noise cannot flake the suite.
    assert!(
        engine_elapsed * 3 < naive_elapsed,
        "engine ({engine_elapsed:?}) should beat naive evaluation ({naive_elapsed:?}) by ≥3×"
    );
}
