//! Direct Rust implementations of the operations that the paper expresses in
//! for-MATLANG.  These serve two purposes:
//!
//! 1. ground truth in the test suites (the for-MATLANG expressions must agree
//!    with them), and
//! 2. the "native" side of the benchmark comparisons in EXPERIMENTS.md — the
//!    interpreter overhead of the query language is measured against these.

use matlang_matrix::{CsrBuilder, Matrix, MatrixError, SparseMatrix};
use matlang_semiring::{Field, Semiring};
use std::collections::VecDeque;

/// The transitive closure of a directed graph given by an adjacency matrix:
/// entry `(i, j)` is `1` iff `j` is reachable from `i` by a non-empty path
/// (or by a possibly-empty path when `reflexive` is true).
///
/// Classic Floyd–Warshall / Warshall algorithm over the reachability
/// interpretation: any non-zero entry counts as an edge.
pub fn transitive_closure<K: Semiring>(adjacency: &Matrix<K>, reflexive: bool) -> Matrix<K> {
    let n = adjacency.rows();
    let mut reach = vec![vec![false; n]; n];
    for (i, j, v) in adjacency.iter_entries() {
        if !v.is_zero() {
            reach[i][j] = true;
        }
    }
    if reflexive {
        for (i, row) in reach.iter_mut().enumerate() {
            row[i] = true;
        }
    }
    for k in 0..n {
        // Row k is read while other rows are written; with boolean closure
        // the k-th row is a fixed point of its own update, so a snapshot is
        // equivalent.
        let row_k = reach[k].clone();
        for row_i in reach.iter_mut() {
            if !row_i[k] {
                continue;
            }
            for (j, &via_k) in row_k.iter().enumerate() {
                if via_k {
                    row_i[j] = true;
                }
            }
        }
    }
    let mut out = Matrix::zeros(n, n);
    for (i, row) in reach.iter().enumerate() {
        for (j, &r) in row.iter().enumerate() {
            if r {
                out.set(i, j, K::one()).expect("in bounds");
            }
        }
    }
    out
}

/// Marks everything reachable from the already-`seen` vertices in `queue`
/// by breadth-first search straight over the CSR rows (which *are* the
/// out-neighbour lists — no adjacency-list copy is needed).
fn bfs_drain<K: Semiring>(
    adjacency: &SparseMatrix<K>,
    seen: &mut [bool],
    queue: &mut VecDeque<usize>,
) {
    while let Some(u) = queue.pop_front() {
        for &v in adjacency.row_entries(u).0 {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
}

/// The set of vertices reachable from `source` by a possibly-empty path,
/// computed by breadth-first search directly on the CSR adjacency structure:
/// `O(nnz + n)` time, independent of the dense `n²` bound.  Any non-zero
/// entry counts as an edge.
pub fn sparse_reachable_from<K: Semiring>(adjacency: &SparseMatrix<K>, source: usize) -> Vec<bool> {
    let n = adjacency.rows();
    let mut seen = vec![false; n];
    if source >= n {
        return seen;
    }
    seen[source] = true;
    bfs_drain(adjacency, &mut seen, &mut VecDeque::from([source]));
    seen
}

/// The transitive closure of a sparse adjacency matrix, one BFS per source
/// vertex: `O(n · (nnz + n))` traversal work, versus the dense Warshall
/// `O(n³)`.  Entry `(i, j)` of the result is `1` iff `j` is reachable from
/// `i` by a non-empty path (or a possibly-empty one when `reflexive` is
/// true).  Agrees exactly with [`transitive_closure`] on the dense form.
///
/// The result is built row by row with [`CsrBuilder`], so no triplet buffer
/// or sort is needed; note that on a strongly connected graph the closure
/// itself has `n²` entries — the output, not the algorithm, is the bound
/// then.
pub fn sparse_transitive_closure<K: Semiring>(
    adjacency: &SparseMatrix<K>,
    reflexive: bool,
) -> SparseMatrix<K> {
    let n = adjacency.rows();
    let mut out = CsrBuilder::new(n, n, adjacency.nnz());
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for source in 0..n {
        seen.iter_mut().for_each(|s| *s = false);
        // Seed with the out-neighbours so the diagonal is only reached via a
        // genuine cycle (the non-reflexive convention of the paper).
        for &v in adjacency.row_entries(source).0 {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
        bfs_drain(adjacency, &mut seen, &mut queue);
        if reflexive {
            seen[source] = true;
        }
        for (j, &reached) in seen.iter().enumerate() {
            if reached {
                out.push(j, K::one());
            }
        }
        out.finish_row();
    }
    out.build()
}

/// Whether the (symmetric, loop-free) graph has a 4-clique: four pairwise
/// distinct vertices that are pairwise adjacent.
pub fn has_four_clique<K: Semiring>(adjacency: &Matrix<K>) -> bool {
    let n = adjacency.rows();
    let adj = |i: usize, j: usize| !adjacency.get(i, j).expect("in bounds").is_zero();
    for a in 0..n {
        for b in (a + 1)..n {
            if !adj(a, b) {
                continue;
            }
            for c in (b + 1)..n {
                if !adj(a, c) || !adj(b, c) {
                    continue;
                }
                for d in (c + 1)..n {
                    if adj(a, d) && adj(b, d) && adj(c, d) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Number of labelled triangles, i.e. `tr(A³)` interpreted over the semiring.
pub fn triangle_trace<K: Semiring>(adjacency: &Matrix<K>) -> K {
    adjacency
        .pow(3)
        .and_then(|c| c.trace())
        .unwrap_or_else(|_| K::zero())
}

/// The `(P, L, U)` factors returned by [`plu_decompose`].
pub type PluFactors<K> = (Matrix<K>, Matrix<K>, Matrix<K>);

/// LU decomposition *without* pivoting by plain Gaussian elimination
/// (Section 4.1's textbook procedure).  Returns `(L, U)` with `A = L·U`,
/// `L` unit lower triangular and `U` upper triangular; fails when a pivot is
/// zero (the matrix is not LU-factorizable).
pub fn lu_decompose<K: Field>(a: &Matrix<K>) -> Result<(Matrix<K>, Matrix<K>), MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    let mut u = a.clone();
    let mut l: Matrix<K> = Matrix::identity(n);
    for k in 0..n {
        let pivot = u.get(k, k)?.clone();
        let pivot_inv = pivot.inv().ok_or_else(|| MatrixError::Singular {
            message: format!("zero pivot at column {k}: matrix is not LU-factorizable"),
        })?;
        for i in (k + 1)..n {
            let factor = u.get(i, k)?.mul(&pivot_inv);
            l.set(i, k, factor.clone())?;
            for j in (k + 1)..n {
                let value = u.get(i, j)?.sub(&factor.mul(u.get(k, j)?));
                u.set(i, j, value)?;
            }
            // The eliminated entry is exactly zero by construction; set it
            // explicitly so no floating-point residue survives.
            u.set(i, k, K::zero())?;
        }
    }
    Ok((l, u))
}

/// LU decomposition *with* partial (row) pivoting: returns `(P, L, U)` with
/// `P·A = L·U`, `P` a permutation matrix, `L` unit lower triangular and `U`
/// upper triangular.  Always succeeds on square input.
pub fn plu_decompose<K: Field>(a: &Matrix<K>) -> Result<PluFactors<K>, MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    let mut u = a.clone();
    let mut l: Matrix<K> = Matrix::identity(n);
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pick the first row at or below k with a non-zero entry in column k
        // (the paper's pivoting rule); skip the column if there is none.
        let pivot_row = (k..n).find(|&r| !u.get(r, k).expect("in bounds").is_zero());
        let pivot_row = match pivot_row {
            Some(r) => r,
            None => continue,
        };
        if pivot_row != k {
            u.swap_rows(pivot_row, k);
            perm.swap(pivot_row, k);
            // Swap the already-computed multipliers (columns < k) of L.
            for j in 0..k {
                let a_val = l.get(k, j)?.clone();
                let b_val = l.get(pivot_row, j)?.clone();
                l.set(k, j, b_val)?;
                l.set(pivot_row, j, a_val)?;
            }
        }
        let pivot = u.get(k, k)?.clone();
        let pivot_inv = match pivot.inv() {
            Some(p) => p,
            None => continue,
        };
        for i in (k + 1)..n {
            let factor = u.get(i, k)?.mul(&pivot_inv);
            l.set(i, k, factor.clone())?;
            for j in (k + 1)..n {
                let value = u.get(i, j)?.sub(&factor.mul(u.get(k, j)?));
                u.set(i, j, value)?;
            }
            u.set(i, k, K::zero())?;
        }
    }
    // P moves original row perm[i] into row i.
    let p = Matrix::permutation(&perm)?;
    Ok((p, l, u))
}

/// The coefficients `c₁, …, cₙ` of the characteristic polynomial
/// `det(λI − A) = λⁿ + c₁λⁿ⁻¹ + ⋯ + cₙ`, computed with Newton's identities
/// from the power sums `p_k = tr(Aᵏ)` — the reference implementation for
/// Csanky's algorithm (Section 4.2).
pub fn char_poly_coeffs<K: Field>(a: &Matrix<K>) -> Result<Vec<K>, MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    // Power sums p_1..p_n.
    let mut power = a.clone();
    let mut p = Vec::with_capacity(n);
    for k in 0..n {
        p.push(power.trace()?);
        if k + 1 < n {
            power = power.matmul(a)?;
        }
    }
    // Newton: k·c_k = −(p_k + Σ_{j=1}^{k−1} c_j·p_{k−j}).
    let mut c: Vec<K> = Vec::with_capacity(n);
    for k in 1..=n {
        let mut acc = p[k - 1].clone();
        for j in 1..k {
            acc = acc.add(&c[j - 1].mul(&p[k - j - 1]));
        }
        let k_inv = K::from_f64(k as f64)
            .inv()
            .ok_or_else(|| MatrixError::Singular {
                message: "characteristic of the field divides k".to_string(),
            })?;
        c.push(acc.mul(&k_inv).neg());
    }
    Ok(c)
}

/// Determinant via the characteristic polynomial: `det(A) = (−1)ⁿ·cₙ`.
pub fn determinant_via_char_poly<K: Field>(a: &Matrix<K>) -> Result<K, MatrixError> {
    let n = a.rows();
    let c = char_poly_coeffs(a)?;
    let sign = if n % 2 == 0 { K::one() } else { K::one().neg() };
    Ok(sign.mul(&c[n - 1]))
}

/// Inverse via Cayley–Hamilton:
/// `A⁻¹ = −(1/cₙ)·(Aⁿ⁻¹ + c₁Aⁿ⁻² + ⋯ + cₙ₋₁I)`.
pub fn inverse_via_char_poly<K: Field>(a: &Matrix<K>) -> Result<Matrix<K>, MatrixError> {
    let n = a.rows();
    let c = char_poly_coeffs(a)?;
    let cn_inv = c[n - 1].inv().ok_or_else(|| MatrixError::Singular {
        message: "matrix is singular (c_n = 0)".to_string(),
    })?;
    // Horner-style accumulation of A^{n-1} + c_1 A^{n-2} + ... + c_{n-1} I.
    let mut acc: Matrix<K> = Matrix::identity(n);
    for coeff in c.iter().take(n - 1) {
        acc = a.matmul(&acc)?;
        let diag = Matrix::identity(n).scalar_mul(coeff);
        acc = acc.add(&diag)?;
    }
    Ok(acc.scalar_mul(&cn_inv.neg()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_matrix::random_invertible;
    use matlang_semiring::{Boolean, Real};

    fn m(rows: &[&[f64]]) -> Matrix<Real> {
        Matrix::from_f64_rows(rows).unwrap()
    }

    #[test]
    fn transitive_closure_of_a_path() {
        let adj = m(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let tc = transitive_closure(&adj, false);
        assert_eq!(
            tc,
            m(&[&[0.0, 1.0, 1.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 0.0]])
        );
        let rtc = transitive_closure(&adj, true);
        assert_eq!(rtc.get(0, 0).unwrap().0, 1.0);
        assert_eq!(rtc.get(2, 2).unwrap().0, 1.0);
    }

    #[test]
    fn transitive_closure_of_a_cycle_is_complete() {
        let adj: Matrix<Boolean> =
            Matrix::from_f64_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0]]).unwrap();
        let tc = transitive_closure(&adj, false);
        assert!(tc.entries().iter().all(|v| v.0));
    }

    #[test]
    fn sparse_closure_agrees_with_dense_warshall() {
        use matlang_matrix::{random_adjacency, sparse_erdos_renyi};
        for seed in 0..4 {
            let dense: Matrix<Boolean> = random_adjacency(12, 0.2, seed);
            let sparse = SparseMatrix::from_dense(&dense);
            for reflexive in [false, true] {
                let expected = transitive_closure(&dense, reflexive);
                let got = sparse_transitive_closure(&sparse, reflexive);
                assert_eq!(got.to_dense(), expected, "seed {seed}");
            }
            let generated: SparseMatrix<Boolean> = sparse_erdos_renyi(20, 3.0, seed);
            let expected = transitive_closure(&generated.to_dense(), false);
            assert_eq!(
                sparse_transitive_closure(&generated, false).to_dense(),
                expected
            );
        }
    }

    #[test]
    fn sparse_reachability_matches_closure_row() {
        let adj: SparseMatrix<Boolean> = SparseMatrix::from_dense(
            &Matrix::from_f64_rows(&[
                &[0.0, 1.0, 0.0, 0.0],
                &[0.0, 0.0, 1.0, 0.0],
                &[0.0, 0.0, 0.0, 0.0],
                &[1.0, 0.0, 0.0, 0.0],
            ])
            .unwrap(),
        );
        let reach = sparse_reachable_from(&adj, 3);
        assert_eq!(reach, vec![true, true, true, true]);
        let reach = sparse_reachable_from(&adj, 2);
        assert_eq!(reach, vec![false, false, true, false]);
        // Out-of-range sources reach nothing.
        assert!(sparse_reachable_from(&adj, 9).iter().all(|r| !r));
    }

    #[test]
    fn four_clique_detection() {
        let mut k4: Matrix<Real> = Matrix::zeros(5, 5);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    k4.set(i, j, Real(1.0)).unwrap();
                }
            }
        }
        assert!(has_four_clique(&k4));
        let c5: Matrix<Real> = {
            let mut c = Matrix::zeros(5, 5);
            for i in 0..5 {
                c.set(i, (i + 1) % 5, Real(1.0)).unwrap();
                c.set((i + 1) % 5, i, Real(1.0)).unwrap();
            }
            c
        };
        assert!(!has_four_clique(&c5));
    }

    #[test]
    fn triangle_trace_counts_labelled_triangles() {
        // A directed 3-cycle has exactly 3 labelled closed walks of length 3
        // through distinct starts.
        let adj = m(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0]]);
        assert_eq!(triangle_trace(&adj).0, 3.0);
    }

    #[test]
    fn lu_decomposition_reconstructs_the_matrix() {
        for seed in 0..8 {
            let a: Matrix<Real> = random_invertible(6, seed);
            let (l, u) = lu_decompose(&a).unwrap();
            assert!(l.is_lower_triangular());
            assert!(u.is_upper_triangular());
            for i in 0..6 {
                assert_eq!(l.get(i, i).unwrap().0, 1.0);
            }
            assert!(l.matmul(&u).unwrap().approx_eq(&a, 1e-9));
        }
    }

    #[test]
    fn lu_decomposition_fails_on_zero_pivot() {
        let a = m(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(lu_decompose(&a).is_err());
        assert!(lu_decompose(&m(&[&[1.0, 2.0]])).is_err());
    }

    #[test]
    fn plu_decomposition_handles_zero_pivots() {
        let a = m(&[&[0.0, 1.0, 2.0], &[1.0, 0.0, 3.0], &[4.0, 5.0, 0.0]]);
        let (p, l, u) = plu_decompose(&a).unwrap();
        assert!(p.is_permutation());
        assert!(l.is_lower_triangular());
        assert!(u.is_upper_triangular());
        let pa = p.matmul(&a).unwrap();
        assert!(l.matmul(&u).unwrap().approx_eq(&pa, 1e-9));
    }

    #[test]
    fn plu_decomposition_handles_singular_matrices() {
        let a = m(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let (p, l, u) = plu_decompose(&a).unwrap();
        let pa = p.matmul(&a).unwrap();
        assert!(l.matmul(&u).unwrap().approx_eq(&pa, 1e-9));
    }

    #[test]
    fn plu_on_random_invertible_matrices() {
        for seed in 20..26 {
            let a: Matrix<Real> = random_invertible(5, seed);
            let (p, l, u) = plu_decompose(&a).unwrap();
            let pa = p.matmul(&a).unwrap();
            assert!(l.matmul(&u).unwrap().approx_eq(&pa, 1e-9));
        }
    }

    #[test]
    fn char_poly_of_a_diagonal_matrix() {
        // A = diag(1, 2): det(λI − A) = (λ−1)(λ−2) = λ² − 3λ + 2.
        let a = m(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let c = char_poly_coeffs(&a).unwrap();
        assert!((c[0].0 - (-3.0)).abs() < 1e-12);
        assert!((c[1].0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn char_poly_determinant_matches_gaussian_elimination() {
        for seed in 0..6 {
            let a: Matrix<Real> = random_invertible(5, seed);
            let d1 = determinant_via_char_poly(&a).unwrap().0;
            let d2 = a.determinant().unwrap().0;
            let scale = d1.abs().max(d2.abs()).max(1.0);
            assert!((d1 - d2).abs() / scale < 1e-8, "seed {seed}: {d1} vs {d2}");
        }
    }

    #[test]
    fn char_poly_inverse_matches_gauss_jordan() {
        for seed in 0..6 {
            let a: Matrix<Real> = random_invertible(5, seed);
            let inv1 = inverse_via_char_poly(&a).unwrap();
            let inv2 = a.inverse().unwrap();
            assert!(inv1.approx_eq(&inv2, 1e-7), "seed {seed}");
        }
    }

    #[test]
    fn inverse_via_char_poly_rejects_singular_input() {
        let a = m(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(inverse_via_char_poly(&a).is_err());
    }
}
