//! Schema, instance and registry helpers shared by examples, tests and
//! benchmarks.

use matlang_core::{FunctionRegistry, Instance, MatrixType, Schema};
use matlang_matrix::Matrix;
use matlang_semiring::{OrderedField, Semiring};

/// A schema with a single square matrix variable `var` of type `(dim, dim)`.
pub fn square_schema(var: &str, dim: &str) -> Schema {
    Schema::new().with_var(var, MatrixType::square(dim))
}

/// An instance assigning `matrix` (which must be `n × n`) to `var` and `n` to
/// the size symbol `dim`.
pub fn square_instance<K: Semiring>(var: &str, dim: &str, matrix: Matrix<K>) -> Instance<K> {
    let n = matrix.rows();
    Instance::new().with_dim(dim, n).with_matrix(var, matrix)
}

/// An instance assigning a graph adjacency matrix to `var`; synonym of
/// [`square_instance`] with a name matching the graph experiments.
pub fn adjacency_instance<K: Semiring>(var: &str, dim: &str, adjacency: Matrix<K>) -> Instance<K> {
    square_instance(var, dim, adjacency)
}

/// The function registry used by every Section 4 algorithm:
/// `{f_/, f_{>0}}` plus the generic pointwise sum/product.
pub fn standard_registry<K: OrderedField>() -> FunctionRegistry<K> {
    FunctionRegistry::standard_field()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::Real;

    #[test]
    fn square_schema_declares_the_variable() {
        let s = square_schema("A", "n");
        assert_eq!(s.var_type("A"), Some(&MatrixType::square("n")));
    }

    #[test]
    fn square_instance_assigns_dimension_and_matrix() {
        let inst: Instance<Real> = square_instance("A", "n", Matrix::identity(3));
        assert_eq!(inst.dim_value(&matlang_core::Dim::sym("n")), Some(3));
        assert_eq!(inst.matrix("A"), Some(&Matrix::identity(3)));
        let adj: Instance<Real> = adjacency_instance("G", "n", Matrix::zeros(2, 2));
        assert_eq!(adj.dim_value(&matlang_core::Dim::sym("n")), Some(2));
    }

    #[test]
    fn standard_registry_has_division() {
        let reg: FunctionRegistry<Real> = standard_registry();
        assert!(reg.contains("div"));
        assert!(reg.contains("gt0"));
    }
}
