//! Triangular-matrix machinery (Lemma C.1 of the paper): power sums,
//! diagonal extraction/inversion and the inversion of non-singular upper or
//! lower triangular matrices, all as for-MATLANG[f_/] expressions.
//!
//! Given an invertible upper-triangular `A = D + T` (diagonal `D`, strictly
//! upper `T`), `A⁻¹ = (Σᵢ (−D⁻¹T)ⁱ)·D⁻¹` and the sum is finite because
//! `D⁻¹T` is nilpotent; the finite geometric sum `I + M + ⋯ + Mⁿ` is the
//! paper's `e_ps`.

use crate::order;
use matlang_core::Expr;

/// `e_ps(M) := e_Id + Σv. Πw. (succ(w, v) × M + (1 − succ(w, v)) × e_Id)`,
/// i.e. `I + M + M² + ⋯ + Mⁿ` (Lemma C.1).
///
/// `matrix` is an arbitrary square expression; `dim` its size symbol.
pub fn power_sum(matrix: Expr, dim: &str) -> Expr {
    let m = "_tri_ps_m";
    let s = "_tri_ps_s";
    let id = "_tri_ps_id";
    let v = "_tri_ps_v";
    let w = "_tri_ps_w";
    let cond = order::succ_via(Expr::var(s), Expr::var(w), Expr::var(v));
    let factor = cond
        .clone()
        .smul(Expr::var(m))
        .add(Expr::lit(1.0).minus(cond).smul(Expr::var(id)));
    let powers = Expr::sum(v, dim, Expr::mprod(w, dim, factor));
    Expr::let_in(
        m,
        matrix,
        Expr::let_in(
            s,
            order::s_leq(dim),
            Expr::let_in(id, order::identity(dim), Expr::var(id).add(powers)),
        ),
    )
}

/// `e_getDiag(V) := Σv. (vᵀ·V·v) × v·vᵀ` — the diagonal part of a square
/// matrix (Lemma C.1).
pub fn diagonal_part(matrix: Expr, dim: &str) -> Expr {
    let v = "_tri_gd_v";
    let entry = Expr::var(v).t().mm(matrix).mm(Expr::var(v));
    Expr::sum(v, dim, entry.smul(Expr::var(v).mm(Expr::var(v).t())))
}

/// `e_diagInverse(V) := Σv. f_/(1, vᵀ·V·v) × v·vᵀ` — the diagonal matrix of
/// entrywise inverses of the diagonal of `V` (Lemma C.1).  Requires every
/// diagonal entry of `V` to be non-zero.
pub fn diagonal_inverse(matrix: Expr, dim: &str) -> Expr {
    let v = "_tri_di_v";
    let entry = Expr::var(v).t().mm(matrix).mm(Expr::var(v));
    let inv = Expr::apply("div", vec![Expr::lit(1.0), entry]);
    Expr::sum(v, dim, inv.smul(Expr::var(v).mm(Expr::var(v).t())))
}

/// Lemma C.1 — `e_upperDiagInv(V)`: the inverse of an invertible upper
/// triangular matrix,
/// `e_ps(−1 × D⁻¹·(V − D)) · D⁻¹` with `D = diag(V)`.
pub fn upper_triangular_inverse(matrix: Expr, dim: &str) -> Expr {
    let m = "_tri_ut_m";
    let dinv = "_tri_ut_dinv";
    let strict = Expr::var(m).minus(diagonal_part(Expr::var(m), dim));
    let nilpotent = Expr::lit(-1.0).smul(Expr::var(dinv).mm(strict));
    let body = power_sum(nilpotent, dim).mm(Expr::var(dinv));
    Expr::let_in(
        m,
        matrix,
        Expr::let_in(dinv, diagonal_inverse(Expr::var(m), dim), body),
    )
}

/// Lemma C.1 — `e_lowerDiagInv(V) := (e_upperDiagInv(Vᵀ))ᵀ`: the inverse of
/// an invertible lower triangular matrix.
pub fn lower_triangular_inverse(matrix: Expr, dim: &str) -> Expr {
    upper_triangular_inverse(matrix.t(), dim).t()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{square_instance, standard_registry};
    use matlang_core::{evaluate, fragment_of, Fragment};
    use matlang_matrix::Matrix;
    use matlang_semiring::Real;

    fn eval(e: &Expr, a: &Matrix<Real>) -> Matrix<Real> {
        let inst = square_instance("A", "n", a.clone());
        evaluate(e, &inst, &standard_registry()).unwrap()
    }

    fn m(rows: &[&[f64]]) -> Matrix<Real> {
        Matrix::from_f64_rows(rows).unwrap()
    }

    #[test]
    fn power_sum_of_nilpotent_matrix() {
        // N strictly upper triangular: I + N + N² (+ 0 + ...).
        let n = m(&[&[0.0, 1.0, 2.0], &[0.0, 0.0, 3.0], &[0.0, 0.0, 0.0]]);
        let expected = Matrix::identity(3)
            .add(&n)
            .unwrap()
            .add(&n.matmul(&n).unwrap())
            .unwrap();
        assert_eq!(eval(&power_sum(Expr::var("A"), "n"), &n), expected);
    }

    #[test]
    fn power_sum_of_identity_counts_terms() {
        // I + I + ... + I (n+1 terms).
        let id = Matrix::identity(3);
        let out = eval(&power_sum(Expr::var("A"), "n"), &id);
        assert_eq!(out, Matrix::identity(3).scalar_mul(&Real(4.0)));
    }

    #[test]
    fn diagonal_part_and_inverse() {
        let a = m(&[&[2.0, 5.0], &[7.0, 4.0]]);
        assert_eq!(
            eval(&diagonal_part(Expr::var("A"), "n"), &a),
            m(&[&[2.0, 0.0], &[0.0, 4.0]])
        );
        assert_eq!(
            eval(&diagonal_inverse(Expr::var("A"), "n"), &a),
            m(&[&[0.5, 0.0], &[0.0, 0.25]])
        );
    }

    #[test]
    fn upper_triangular_inverse_is_correct() {
        let u = m(&[&[2.0, 1.0, 3.0], &[0.0, 4.0, 5.0], &[0.0, 0.0, 8.0]]);
        let inv = eval(&upper_triangular_inverse(Expr::var("A"), "n"), &u);
        assert!(u
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-9));
        assert!(inv.is_upper_triangular());
    }

    #[test]
    fn lower_triangular_inverse_is_correct() {
        let l = m(&[&[1.0, 0.0, 0.0], &[2.0, 1.0, 0.0], &[4.0, 3.0, 1.0]]);
        let inv = eval(&lower_triangular_inverse(Expr::var("A"), "n"), &l);
        assert!(l
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-9));
        assert!(inv.is_lower_triangular());
        // Hand-checked inverse of that unit lower triangular matrix.
        let expected = m(&[&[1.0, 0.0, 0.0], &[-2.0, 1.0, 0.0], &[2.0, -3.0, 1.0]]);
        assert!(inv.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn triangular_inverse_expressions_stay_in_for_matlang() {
        // They only use Σ and Π (plus order matrices built with for), so the
        // full expression is classified as for-MATLANG because of the order
        // machinery, but never uses a general accumulator update beyond it.
        let e = upper_triangular_inverse(Expr::var("A"), "n");
        assert_eq!(fragment_of(&e), Fragment::ForMatlang);
    }
}
