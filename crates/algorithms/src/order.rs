//! Order machinery on canonical vectors (Section 3.2 and Appendix B.1).
//!
//! The `for` operator iterates over canonical vectors in a fixed order, which
//! makes an order relation definable *inside* the language.  This module
//! builds, as for-MATLANG expressions:
//!
//! * `e_Id` — the identity matrix (as `Σv. v·vᵀ`),
//! * `e_max` / `e_min` — the last / first canonical vector,
//! * `S≤` / `S<` — the order matrices with `bᵢᵀ·S≤·bⱼ = 1` iff `i ≤ j`,
//! * `succ` / `succ⁺` — the corresponding predicates on two vector
//!   expressions,
//! * `Prev` / `Next` — the shift matrices with `Prev·bᵢ = bᵢ₋₁`,
//! * `min(u)` / `max(u)` — first/last canonical vector tests, and
//! * `Nextʲ` ("get-next-matrix") used to shift vectors by a data-dependent
//!   amount in Csanky's algorithm.
//!
//! These constructions use the literal constants `1` and `−1` and therefore
//! require the annotation semiring to be (at least) a commutative ring; the
//! paper likewise defines them over the reals.

use matlang_core::{Expr, MatrixType};

/// Prefix used for the bound variables introduced by this module, chosen so
/// that they cannot collide with user variables in practice.
const P: &str = "_ord";

/// The identity matrix `e_Id := Σv. v·vᵀ` (a sum-MATLANG expression).
pub fn identity(dim: &str) -> Expr {
    let v = format!("{P}_id_v");
    Expr::sum(&v, dim, Expr::var(&v).mm(Expr::var(&v).t()))
}

/// The last canonical vector `e_max := for v, X. v` (Section 3.2).
pub fn e_max(dim: &str) -> Expr {
    let v = format!("{P}_mx_v");
    let x = format!("{P}_mx_x");
    Expr::for_loop(&v, dim, &x, MatrixType::vector(dim), Expr::var(&v))
}

/// The predicate `max(u) = uᵀ·e_max`: `1` iff `u` is the last canonical
/// vector.
pub fn max_pred(u: Expr, dim: &str) -> Expr {
    u.t().mm(e_max(dim))
}

/// The `Prev` shift matrix (Appendix B.1):
/// `Prev·bᵢ = bᵢ₋₁` for `i > 1` and `Prev·b₁ = 0`.
///
/// `e_Prev := for v, X. X + (1 − max(v))×v·e_maxᵀ − (X·e_max)·e_maxᵀ + (X·e_max)·vᵀ`.
pub fn prev_matrix(dim: &str) -> Expr {
    let em = format!("{P}_prev_emax");
    let v = format!("{P}_prev_v");
    let x = format!("{P}_prev_x");
    let max_v = Expr::var(&v).t().mm(Expr::var(&em));
    let scratch = Expr::var(&x).mm(Expr::var(&em));
    let body = Expr::var(&x)
        .add(
            Expr::lit(1.0)
                .minus(max_v)
                .smul(Expr::var(&v).mm(Expr::var(&em).t())),
        )
        .add(Expr::lit(-1.0).smul(scratch.clone().mm(Expr::var(&em).t())))
        .add(scratch.mm(Expr::var(&v).t()));
    Expr::let_in(
        &em,
        e_max(dim),
        Expr::for_loop(&v, dim, &x, MatrixType::square(dim), body),
    )
}

/// The `Next` shift matrix: `Next = Prevᵀ`, `Next·bᵢ = bᵢ₊₁` (0 for `i = n`).
pub fn next_matrix(dim: &str) -> Expr {
    prev_matrix(dim).t()
}

/// The predicate `min(u) := 1 − 1(u)ᵀ·Prev·u`: `1` iff `u` is the first
/// canonical vector (Appendix B.1).
pub fn min_pred(u: Expr, dim: &str) -> Expr {
    Expr::lit(1.0).minus(u.clone().ones().t().mm(prev_matrix(dim)).mm(u))
}

/// The first canonical vector
/// `e_min := for v, X. X + min(v) × v` (Appendix B.1).
pub fn e_min(dim: &str) -> Expr {
    let prev = format!("{P}_min_prev");
    let v = format!("{P}_min_v");
    let x = format!("{P}_min_x");
    let min_v = Expr::lit(1.0).minus(
        Expr::var(&v)
            .ones()
            .t()
            .mm(Expr::var(&prev))
            .mm(Expr::var(&v)),
    );
    let body = Expr::var(&x).add(min_v.smul(Expr::var(&v)));
    Expr::let_in(
        &prev,
        prev_matrix(dim),
        Expr::for_loop(&v, dim, &x, MatrixType::vector(dim), body),
    )
}

/// The order matrix `S≤` with `bᵢᵀ·S≤·bⱼ = 1` iff `i ≤ j` (Section 3.2).
///
/// The construction follows the paper's idea of keeping the running prefix
/// sum `b₁ + ⋯ + bᵢ` in the *last* column of the accumulator, with one
/// adjustment: in the final iteration the scratch column coincides with the
/// real last column of `S≤`, so the install step only adds the missing `bₙ`
/// (the paper's formula as printed would double-count that column).
pub fn s_leq(dim: &str) -> Expr {
    let em = format!("{P}_leq_emax");
    let v = format!("{P}_leq_v");
    let x = format!("{P}_leq_x");
    let is_last = Expr::var(&v).t().mm(Expr::var(&em));
    let not_last = Expr::lit(1.0).minus(is_last.clone());
    let scratch = Expr::var(&x).mm(Expr::var(&em));
    // Column to install at position v: the running prefix sum (scratch + v),
    // except in the last iteration where the prefix sum minus the leftover
    // scratch (= just v) is installed.
    let install = not_last
        .clone()
        .smul(scratch.clone().add(Expr::var(&v)))
        .add(is_last.smul(Expr::var(&v)));
    let body = Expr::var(&x)
        .add(install.mm(Expr::var(&v).t()))
        .add(not_last.smul(Expr::var(&v).mm(Expr::var(&em).t())));
    Expr::let_in(
        &em,
        e_max(dim),
        Expr::for_loop(&v, dim, &x, MatrixType::square(dim), body),
    )
}

/// The strict order matrix `S< = S≤ − I`.
pub fn s_lt(dim: &str) -> Expr {
    s_leq(dim).add(Expr::lit(-1.0).smul(identity(dim)))
}

/// `succ(u, v) := uᵀ·S≤·v`: `1` iff the index of `u` is ≤ the index of `v`.
pub fn succ(u: Expr, v: Expr, dim: &str) -> Expr {
    succ_via(s_leq(dim), u, v)
}

/// `succ⁺(u, v) := uᵀ·S<·v`: `1` iff the index of `u` is < the index of `v`.
pub fn succ_strict(u: Expr, v: Expr, dim: &str) -> Expr {
    succ_via(s_lt(dim), u, v)
}

/// `uᵀ·S·v` for an already-built (typically `let`-bound) order matrix `S`.
/// Using this avoids re-evaluating the `S≤` loop inside other loops.
pub fn succ_via(order_matrix: Expr, u: Expr, v: Expr) -> Expr {
    u.t().mm(order_matrix).mm(v)
}

/// `Nextʲ` where `j` is the index of the canonical vector denoted by `v`
/// (Appendix B.1's `e_getNextMatrix`):
/// `Πw. succ(w, v) × Next + (1 − succ(w, v)) × e_Id`.
pub fn next_matrix_pow(v: Expr, dim: &str) -> Expr {
    let s = format!("{P}_gnm_s");
    let nx = format!("{P}_gnm_next");
    let id = format!("{P}_gnm_id");
    let w = format!("{P}_gnm_w");
    let cond = succ_via(Expr::var(&s), Expr::var(&w), v);
    let body = cond
        .clone()
        .smul(Expr::var(&nx))
        .add(Expr::lit(1.0).minus(cond).smul(Expr::var(&id)));
    Expr::let_in(
        &s,
        s_leq(dim),
        Expr::let_in(
            &nx,
            next_matrix(dim),
            Expr::let_in(&id, identity(dim), Expr::mprod(&w, dim, body)),
        ),
    )
}

/// `Prevʲ` where `j` is the index of the canonical vector denoted by `v`
/// (Appendix B.1's `e_getPrevMatrix`).
pub fn prev_matrix_pow(v: Expr, dim: &str) -> Expr {
    let s = format!("{P}_gpm_s");
    let pv = format!("{P}_gpm_prev");
    let id = format!("{P}_gpm_id");
    let w = format!("{P}_gpm_w");
    let cond = succ_via(Expr::var(&s), Expr::var(&w), v);
    let body = cond
        .clone()
        .smul(Expr::var(&pv))
        .add(Expr::lit(1.0).minus(cond).smul(Expr::var(&id)));
    Expr::let_in(
        &s,
        s_leq(dim),
        Expr::let_in(
            &pv,
            prev_matrix(dim),
            Expr::let_in(&id, identity(dim), Expr::mprod(&w, dim, body)),
        ),
    )
}

/// Shift a vector expression `a` down by the index of the canonical vector
/// `v`: `Nextʲ·a`, i.e. `(a₁, …, aₙ) ↦ (0, …, 0, a₁, …, aₙ₋ⱼ)`.  This is the
/// paper's `e_shift` (Appendix C.3), simplified using
/// `Σw.(wᵀ·a)×(Nextʲ·w) = Nextʲ·a`.
pub fn shift_down(a: Expr, v: Expr, dim: &str) -> Expr {
    next_matrix_pow(v, dim).mm(a)
}

/// The `i`-th canonical vector (0-indexed) as the expression `Nextⁱ·e_min`
/// (Appendix B.1's `e_{min+i}`).
pub fn e_min_plus(i: usize, dim: &str) -> Expr {
    let mut e = e_min(dim);
    for _ in 0..i {
        e = next_matrix(dim).mm(e);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{square_instance, standard_registry};
    use matlang_core::evaluate;
    use matlang_matrix::Matrix;
    use matlang_semiring::Real;

    fn eval(e: &Expr, n: usize) -> Matrix<Real> {
        // The order expressions only need a dimension, but we also bind a
        // dummy square matrix so the same helper can be reused everywhere.
        let inst = square_instance("A", "n", Matrix::<Real>::zeros(n, n));
        evaluate(e, &inst, &standard_registry()).unwrap()
    }

    #[test]
    fn identity_expression_evaluates_to_identity() {
        for n in 1..=5 {
            assert_eq!(eval(&identity("n"), n), Matrix::identity(n));
        }
    }

    #[test]
    fn e_max_and_e_min_are_the_extremal_canonical_vectors() {
        for n in 1..=5 {
            assert_eq!(eval(&e_max("n"), n), Matrix::canonical(n, n - 1).unwrap());
            assert_eq!(eval(&e_min("n"), n), Matrix::canonical(n, 0).unwrap());
        }
    }

    #[test]
    fn prev_and_next_matrices_match_the_shift_matrices() {
        for n in 1..=5 {
            assert_eq!(eval(&prev_matrix("n"), n), Matrix::shift_prev(n));
            assert_eq!(eval(&next_matrix("n"), n), Matrix::shift_next(n));
        }
    }

    #[test]
    fn s_leq_and_s_lt_match_the_order_matrices() {
        for n in 1..=6 {
            assert_eq!(
                eval(&s_leq("n"), n),
                Matrix::order_leq(n),
                "S≤ failed for n={n}"
            );
            assert_eq!(
                eval(&s_lt("n"), n),
                Matrix::order_lt(n),
                "S< failed for n={n}"
            );
        }
    }

    #[test]
    fn succ_predicates_compare_canonical_vector_indices() {
        let n = 4;
        for i in 0..n {
            for j in 0..n {
                let u = Expr::var("u");
                let v = Expr::var("v");
                let inst = square_instance("A", "n", Matrix::<Real>::zeros(n, n))
                    .with_matrix("u", Matrix::canonical(n, i).unwrap())
                    .with_matrix("v", Matrix::canonical(n, j).unwrap());
                let leq = evaluate(
                    &succ(u.clone(), v.clone(), "n"),
                    &inst,
                    &standard_registry(),
                )
                .unwrap()
                .as_scalar()
                .unwrap();
                let lt = evaluate(&succ_strict(u, v, "n"), &inst, &standard_registry())
                    .unwrap()
                    .as_scalar()
                    .unwrap();
                assert_eq!(leq.0, if i <= j { 1.0 } else { 0.0 });
                assert_eq!(lt.0, if i < j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn min_and_max_predicates() {
        let n = 4;
        for i in 0..n {
            let inst = square_instance("A", "n", Matrix::<Real>::zeros(n, n))
                .with_matrix("u", Matrix::canonical(n, i).unwrap());
            let mx = evaluate(&max_pred(Expr::var("u"), "n"), &inst, &standard_registry())
                .unwrap()
                .as_scalar()
                .unwrap();
            let mn = evaluate(&min_pred(Expr::var("u"), "n"), &inst, &standard_registry())
                .unwrap()
                .as_scalar()
                .unwrap();
            assert_eq!(mx.0, if i == n - 1 { 1.0 } else { 0.0 });
            assert_eq!(mn.0, if i == 0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn next_matrix_pow_shifts_by_the_index() {
        let n = 4;
        for j in 0..n {
            let inst = square_instance("A", "n", Matrix::<Real>::zeros(n, n))
                .with_matrix("p", Matrix::canonical(n, j).unwrap());
            let out = evaluate(
                &next_matrix_pow(Expr::var("p"), "n"),
                &inst,
                &standard_registry(),
            )
            .unwrap();
            assert_eq!(
                out,
                Matrix::shift_next(n).pow(j + 1).unwrap(),
                "Next^{} failed",
                j + 1
            );
            let out_prev = evaluate(
                &prev_matrix_pow(Expr::var("p"), "n"),
                &inst,
                &standard_registry(),
            )
            .unwrap();
            assert_eq!(out_prev, Matrix::shift_prev(n).pow(j + 1).unwrap());
        }
    }

    #[test]
    fn shift_down_moves_vector_entries() {
        let n = 4;
        let a = Matrix::from_f64_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]).unwrap();
        // Shift by index(p) + 1 = 1 (p = b₁, 0-indexed 0 ⇒ Next¹).
        let inst = square_instance("A", "n", Matrix::<Real>::zeros(n, n))
            .with_matrix("a", a)
            .with_matrix("p", Matrix::canonical(n, 0).unwrap());
        let out = evaluate(
            &shift_down(Expr::var("a"), Expr::var("p"), "n"),
            &inst,
            &standard_registry(),
        )
        .unwrap();
        let expected = Matrix::from_f64_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn e_min_plus_enumerates_canonical_vectors() {
        let n = 5;
        for i in 0..n {
            assert_eq!(
                eval(&e_min_plus(i, "n"), n),
                Matrix::canonical(n, i).unwrap()
            );
        }
    }
}
