//! LU and PLU decomposition in for-MATLANG (Section 4.1, Propositions 4.1 and
//! 4.2, Appendix C.1/C.2).
//!
//! The construction reduces the columns of `A` one by one: iteration `i`
//! multiplies the current matrix by `Tᵢ = I + cᵢ·bᵢᵀ` where
//! `cᵢ = (0, …, 0, −A_{i+1,i}/A_{ii}, …, −A_{n,i}/A_{ii})ᵀ`, so that after
//! all iterations `Tₙ⋯T₁·A = U` is upper triangular and `L = (Tₙ⋯T₁)⁻¹` is
//! unit lower triangular.  With pivoting, a permutation `P = I − u·uᵀ`
//! (swapping the pivot row into place) is interleaved, giving
//! `L⁻¹·P·A = U`.
//!
//! All expressions require `MATLANG[f_/]` (and `f_{>0}` for pivoting) over an
//! ordered field, exactly as stated in the paper.

use crate::order;
use matlang_core::{Expr, MatrixType};

const SLT: &str = "_lu_Slt";
const SLEQ: &str = "_lu_Sleq";
const ID: &str = "_lu_Id";
const EMAX: &str = "_lu_emax";

/// Wraps `body` with `let`-bindings for the order matrices, the identity and
/// `e_max`, so that these loop-built helpers are evaluated once instead of
/// once per inner-loop iteration.
fn with_order_context(dim: &str, body: Expr) -> Expr {
    Expr::let_in(
        ID,
        order::identity(dim),
        Expr::let_in(
            SLT,
            order::s_lt(dim),
            Expr::let_in(
                SLEQ,
                order::s_leq(dim),
                Expr::let_in(EMAX, order::e_max(dim), body),
            ),
        ),
    )
}

/// `col(V, y)` — the `y`-th column of `target` with every entry at row index
/// ≤ index(y) zeroed out (Section 4.1):
/// `for v, X. succ⁺(y, v) × (vᵀ·V·y) × v + X`.
fn column_below(target: Expr, y: Expr, dim: &str) -> Expr {
    let v = "_lu_col_v";
    let x = "_lu_col_x";
    let cond = Expr::var(v).t().mm(Expr::var(SLT).t()).mm(y.clone());
    // succ⁺(y, v) = yᵀ·S<·v = (vᵀ·S<ᵀ·y); written with v on the left so the
    // result is 1×1 regardless of how `y` is parenthesised.
    let entry = Expr::var(v).t().mm(target).mm(y);
    let body = cond.smul(entry.smul(Expr::var(v))).add(Expr::var(x));
    Expr::for_loop(v, dim, x, MatrixType::vector(dim), body)
}

/// Like [`column_below`] but keeping entries at row index ≥ index(y)
/// (the pivot-search variant `coleq` of Appendix C.2).
fn column_at_or_below(target: Expr, y: Expr, dim: &str) -> Expr {
    let v = "_lu_ceq_v";
    let x = "_lu_ceq_x";
    let cond = Expr::var(v).t().mm(Expr::var(SLEQ).t()).mm(y.clone());
    let entry = Expr::var(v).t().mm(target).mm(y);
    let body = cond.smul(entry.smul(Expr::var(v))).add(Expr::var(x));
    Expr::for_loop(v, dim, x, MatrixType::vector(dim), body)
}

/// `reduce(V, y) := e_Id + f_/(col(V, y), −(yᵀ·V·y)·1(y)) · yᵀ` — the
/// elimination matrix `Tᵢ` for the column indicated by `y` (Section 4.1).
fn reduce(target: Expr, y: Expr, dim: &str) -> Expr {
    let pivot = y.clone().t().mm(target.clone()).mm(y.clone());
    let denominator = Expr::lit(-1.0).smul(pivot).smul(y.clone().ones());
    let c = Expr::apply(
        "div",
        vec![column_below(target, y.clone(), dim), denominator],
    );
    Expr::var(ID).add(c.mm(y.t()))
}

/// The pivoting variant of `reduce` (Appendix C.2): when the pivot
/// `yᵀ·V·y` is zero the elimination step is skipped (the identity is
/// returned), and the division is guarded so it never divides by zero.
fn reduce_with_guard(target: Expr, y: Expr, dim: &str) -> Expr {
    let pivot = y.clone().t().mm(target.clone()).mm(y.clone());
    let pivot_nonzero = Expr::apply("gt0", vec![pivot.clone().mm(pivot.clone())]);
    let guard_off = Expr::lit(1.0).minus(pivot_nonzero.clone());
    let denominator = Expr::lit(-1.0)
        .smul(pivot)
        .smul(y.clone().ones())
        .add(guard_off.smul(y.clone().ones()));
    let c = Expr::apply(
        "div",
        vec![column_below(target, y.clone(), dim), denominator],
    );
    Expr::var(ID).add(pivot_nonzero.smul(c.mm(y.t())))
}

/// `neq(a, u)` (Appendix C.2): the first canonical vector `b_j` such that
/// `a_j ≠ 0`, or `u` itself when `a` is the zero vector.
fn first_nonzero_or(a: Expr, u: Expr, dim: &str) -> Expr {
    let v = "_lu_neq_v";
    let x = "_lu_neq_x";
    let not_found = Expr::lit(1.0).minus(Expr::var(v).ones().t().mm(Expr::var(x)));
    let entry = Expr::var(v).t().mm(a);
    let hit = Expr::apply("gt0", vec![entry.clone().mm(entry)]);
    let miss = Expr::lit(1.0).minus(hit.clone());
    let is_last = Expr::var(v).t().mm(Expr::var(EMAX));
    let body = Expr::var(x)
        .add(not_found.clone().smul(hit.smul(Expr::var(v))))
        .add(is_last.smul(not_found.smul(miss.smul(u))));
    Expr::for_loop(v, dim, x, MatrixType::vector(dim), body)
}

/// `e_P(V, u)` (Appendix C.2): the row-interchange permutation
/// `P = I − d·dᵀ` with `d = u − neq(coleq(V, u), u)`, i.e. the permutation
/// that swaps the row of `u` with the first row at-or-below it holding a
/// non-zero entry of column `u` (the identity when no pivot is needed or none
/// exists).
fn pivot_permutation(target: Expr, u: Expr, dim: &str) -> Expr {
    let found = first_nonzero_or(column_at_or_below(target, u.clone(), dim), u.clone(), dim);
    let d = "_lu_piv_d";
    Expr::let_in(
        d,
        u.minus(found),
        Expr::var(ID).add(Expr::lit(-1.0).smul(Expr::var(d).mm(Expr::var(d).t()))),
    )
}

/// Proposition 4.1 — `e_{L⁻¹}(V)`: the product `Tₙ⋯T₁ = L⁻¹` for an
/// LU-factorizable matrix bound to the variable `matrix`.
pub fn l_inverse(matrix: &str, dim: &str) -> Expr {
    let y = "_lu_y";
    let x = "_lu_X";
    let body = reduce(Expr::var(x).mm(Expr::var(matrix)), Expr::var(y), dim).mm(Expr::var(x));
    with_order_context(
        dim,
        Expr::for_init(y, dim, x, MatrixType::square(dim), Expr::var(ID), body),
    )
}

/// Proposition 4.1 — `e_U(V) = e_{L⁻¹}(V)·V`: the upper-triangular factor.
pub fn upper_factor(matrix: &str, dim: &str) -> Expr {
    l_inverse(matrix, dim).mm(Expr::var(matrix))
}

/// Proposition 4.1 — `e_L(V)`: the unit lower-triangular factor, obtained by
/// inverting `e_{L⁻¹}(V)` with the triangular inversion of Lemma C.1.
///
/// Note: Appendix C.1 of the paper suggests the shortcut
/// `L = −1 × L⁻¹ + 2 × e_Id`, but that identity only holds when the
/// elimination matrices commute (it fails already for generic 3×3 inputs
/// because `L⁻¹ = Tₙ⋯T₁` picks up cross terms); inverting the unit
/// lower-triangular `L⁻¹` is both correct and still inside for-MATLANG[f_/].
pub fn lower_factor(matrix: &str, dim: &str) -> Expr {
    crate::triangular::lower_triangular_inverse(l_inverse(matrix, dim), dim)
}

/// Proposition 4.2 — `e_{L⁻¹P}(V)`: the accumulated `L⁻¹·P` of
/// LU-decomposition *with* row pivoting; works on any square matrix.
pub fn l_inverse_pivoted(matrix: &str, dim: &str) -> Expr {
    let y = "_lu_py";
    let x = "_lu_pX";
    let p = "_lu_P";
    let body = Expr::let_in(
        p,
        pivot_permutation(Expr::var(x).mm(Expr::var(matrix)), Expr::var(y), dim),
        reduce_with_guard(
            Expr::var(p).mm(Expr::var(x)).mm(Expr::var(matrix)),
            Expr::var(y),
            dim,
        )
        .mm(Expr::var(p))
        .mm(Expr::var(x)),
    );
    with_order_context(
        dim,
        Expr::for_init(y, dim, x, MatrixType::square(dim), Expr::var(ID), body),
    )
}

/// Proposition 4.2 — `e_U(V) = e_{L⁻¹P}(V)·V`: the upper-triangular factor of
/// the pivoted decomposition, satisfying `L⁻¹·P·A = U`.
pub fn upper_factor_pivoted(matrix: &str, dim: &str) -> Expr {
    l_inverse_pivoted(matrix, dim).mm(Expr::var(matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::helpers::{square_instance, standard_registry};
    use matlang_core::{evaluate, fragment_of, typecheck, Fragment, MatrixType as MT, Schema};
    use matlang_matrix::{random_invertible, Matrix};
    use matlang_semiring::Real;

    fn eval(e: &Expr, a: &Matrix<Real>) -> Matrix<Real> {
        let inst = square_instance("A", "n", a.clone());
        evaluate(e, &inst, &standard_registry()).unwrap()
    }

    /// Upper-triangularity up to floating-point residue from the eliminations.
    fn approx_upper(m: &Matrix<Real>) -> bool {
        m.iter_entries().all(|(i, j, v)| j >= i || v.0.abs() < 1e-8)
    }

    /// Lower-triangularity up to floating-point residue.
    fn approx_lower(m: &Matrix<Real>) -> bool {
        m.iter_entries().all(|(i, j, v)| j <= i || v.0.abs() < 1e-8)
    }

    #[test]
    fn lu_expressions_typecheck_and_are_for_matlang() {
        let schema = Schema::new().with_var("A", MT::square("n"));
        for e in [
            l_inverse("A", "n"),
            upper_factor("A", "n"),
            lower_factor("A", "n"),
            l_inverse_pivoted("A", "n"),
            upper_factor_pivoted("A", "n"),
        ] {
            assert_eq!(typecheck(&e, &schema).unwrap(), MT::square("n"));
            assert_eq!(fragment_of(&e), Fragment::ForMatlang);
        }
    }

    #[test]
    fn lu_decomposition_matches_baseline_on_factorizable_matrices() {
        for seed in 0..4 {
            let a: Matrix<Real> = random_invertible(5, seed);
            let l = eval(&lower_factor("A", "n"), &a);
            let u = eval(&upper_factor("A", "n"), &a);
            assert!(approx_lower(&l), "L not lower triangular (seed {seed})");
            assert!(approx_upper(&u), "U not upper triangular (seed {seed})");
            assert!(
                l.matmul(&u).unwrap().approx_eq(&a, 1e-6),
                "L·U ≠ A for seed {seed}"
            );
            let (bl, bu) = baseline::lu_decompose(&a).unwrap();
            assert!(
                l.approx_eq(&bl, 1e-6),
                "L differs from baseline (seed {seed})"
            );
            assert!(
                u.approx_eq(&bu, 1e-6),
                "U differs from baseline (seed {seed})"
            );
        }
    }

    #[test]
    fn l_inverse_times_l_is_identity() {
        let a: Matrix<Real> = random_invertible(4, 99);
        let l = eval(&lower_factor("A", "n"), &a);
        let l_inv = eval(&l_inverse("A", "n"), &a);
        assert!(l_inv
            .matmul(&l)
            .unwrap()
            .approx_eq(&Matrix::identity(4), 1e-6));
    }

    #[test]
    fn pivoted_lu_handles_zero_pivots() {
        let a: Matrix<Real> =
            Matrix::from_f64_rows(&[&[0.0, 1.0, 2.0], &[1.0, 0.0, 3.0], &[4.0, 5.0, 0.0]]).unwrap();
        let m = eval(&l_inverse_pivoted("A", "n"), &a);
        let u = eval(&upper_factor_pivoted("A", "n"), &a);
        assert!(approx_upper(&u), "U not upper triangular: {u:?}");
        assert!(m.matmul(&a).unwrap().approx_eq(&u, 1e-9));
        // |det(L⁻¹·P)| = 1, so |det U| = |det A|.
        let det_a = a.determinant().unwrap().0.abs();
        let det_u = u.determinant().unwrap().0.abs();
        assert!((det_a - det_u).abs() < 1e-6);
    }

    #[test]
    fn pivoted_lu_reduces_to_plain_lu_when_no_pivoting_is_needed() {
        let a: Matrix<Real> = random_invertible(4, 7);
        let m_plain = eval(&l_inverse("A", "n"), &a);
        let m_pivot = eval(&l_inverse_pivoted("A", "n"), &a);
        assert!(m_plain.approx_eq(&m_pivot, 1e-9));
    }

    #[test]
    fn pivoted_lu_handles_singular_matrices() {
        let a: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let u = eval(&upper_factor_pivoted("A", "n"), &a);
        assert!(approx_upper(&u));
        let m = eval(&l_inverse_pivoted("A", "n"), &a);
        assert!(m.matmul(&a).unwrap().approx_eq(&u, 1e-9));
    }
}
