//! Csanky's algorithm for the determinant and the matrix inverse as
//! for-MATLANG[f_/] expressions (Section 4.2, Proposition 4.3, Appendix C.3).
//!
//! The construction:
//!
//! 1. compute the power sums `p_k = tr(Aᵏ)` for `k = 1..n`,
//! 2. assemble the lower-triangular Newton system `M·c = −p` whose solution
//!    is the vector of characteristic-polynomial coefficients
//!    (`det(λI − A) = λⁿ + c₁λⁿ⁻¹ + ⋯ + cₙ`),
//! 3. invert the triangular `M` with Lemma C.1 ([`crate::triangular`]),
//! 4. read off `det(A) = (−1)ⁿ·cₙ` and, via Cayley–Hamilton,
//!    `A⁻¹ = −(1/cₙ)·(Aⁿ⁻¹ + c₁Aⁿ⁻² + ⋯ + cₙ₋₁I)`.
//!
//! The signs and indexing here follow Newton's identities directly (the
//! paper's Appendix C.3 uses an equivalent but differently-normalised
//! system).

use crate::order;
use crate::triangular;
use matlang_core::Expr;

const S: &str = "_cs_S";
const ID: &str = "_cs_Id";
const EMAX: &str = "_cs_emax";
const COEFFS: &str = "_cs_c";

/// Wraps `body` with `let`-bindings for the order matrix `S≤`, the identity
/// and `e_max` so they are evaluated only once.
fn with_context(dim: &str, body: Expr) -> Expr {
    Expr::let_in(
        S,
        order::s_leq(dim),
        Expr::let_in(
            ID,
            order::identity(dim),
            Expr::let_in(EMAX, order::e_max(dim), body),
        ),
    )
}

/// `e_pow(V, v) = V^{index(v)}` (1-based index):
/// `Πw. succ(w, v) × V + (1 − succ(w, v)) × e_Id`.
fn power_of(matrix: Expr, v: Expr, dim: &str) -> Expr {
    let w = "_cs_pow_w";
    let cond = order::succ_via(Expr::var(S), Expr::var(w), v);
    let body = cond
        .clone()
        .smul(matrix)
        .add(Expr::lit(1.0).minus(cond).smul(Expr::var(ID)));
    Expr::mprod(w, dim, body)
}

/// `tr(V^{index(v)})` — the power-sum entry for the canonical vector `v`.
fn power_trace(matrix: Expr, v: Expr, dim: &str) -> Expr {
    let p = "_cs_ptr_P";
    let w = "_cs_ptr_w";
    Expr::let_in(
        p,
        power_of(matrix, v, dim),
        Expr::sum(w, dim, Expr::var(w).t().mm(Expr::var(p)).mm(Expr::var(w))),
    )
}

/// The power-sum vector `p = (tr(A¹), …, tr(Aⁿ))ᵀ`.
fn power_sums(matrix: &str, dim: &str) -> Expr {
    let v = "_cs_ps_v";
    Expr::sum(
        v,
        dim,
        power_trace(Expr::var(matrix), Expr::var(v), dim).smul(Expr::var(v)),
    )
}

/// The index of a canonical vector as a scalar: `idx(v) = Σw. succ(w, v)`
/// (1-based).
fn index_of(v: Expr, dim: &str) -> Expr {
    let w = "_cs_idx_w";
    Expr::sum(w, dim, order::succ_via(Expr::var(S), Expr::var(w), v))
}

/// The Newton-identity matrix `M` with `M[k][k] = k` and `M[k][j] = p_{k−j}`
/// for `j < k`, built as `Σv. idx(v)×v·vᵀ + Σv. (Next^{idx(v)}·p)·vᵀ`.
fn newton_matrix(matrix: &str, dim: &str) -> Expr {
    let p = "_cs_nm_p";
    let v = "_cs_nm_v";
    let diagonal = Expr::sum(
        v,
        dim,
        index_of(Expr::var(v), dim).smul(Expr::var(v).mm(Expr::var(v).t())),
    );
    let shifted = Expr::sum(
        v,
        dim,
        order::shift_down(Expr::var(p), Expr::var(v), dim).mm(Expr::var(v).t()),
    );
    Expr::let_in(p, power_sums(matrix, dim), diagonal.add(shifted))
}

/// Proposition 4.3 (step) — the coefficients `c = (c₁, …, cₙ)ᵀ` of the
/// characteristic polynomial `det(λI − A) = λⁿ + c₁λⁿ⁻¹ + ⋯ + cₙ`,
/// computed as `c = −M⁻¹·p` using the triangular inversion of Lemma C.1.
pub fn char_poly_coeffs(matrix: &str, dim: &str) -> Expr {
    with_context(dim, char_poly_coeffs_inner(matrix, dim))
}

fn char_poly_coeffs_inner(matrix: &str, dim: &str) -> Expr {
    let m = "_cs_cc_M";
    Expr::let_in(
        m,
        newton_matrix(matrix, dim),
        Expr::lit(-1.0).smul(
            triangular::lower_triangular_inverse(Expr::var(m), dim).mm(power_sums(matrix, dim)),
        ),
    )
}

/// Proposition 4.3 — `e_det(V)`: the determinant `det(A) = (−1)ⁿ·cₙ`.
pub fn determinant(matrix: &str, dim: &str) -> Expr {
    let sign = Expr::mprod("_cs_det_w", dim, Expr::lit(-1.0));
    let body = Expr::let_in(
        COEFFS,
        char_poly_coeffs_inner(matrix, dim),
        sign.smul(Expr::var(EMAX).t().mm(Expr::var(COEFFS))),
    );
    with_context(dim, body)
}

/// `A^{n−1−index(v)}` (Appendix C.3's `e_invPow`):
/// `Πw. (1 − max(w)) × ((1 − succ(w, v)) × V + succ(w, v) × e_Id) + max(w) × e_Id`.
fn complement_power(matrix: Expr, v: Expr, dim: &str) -> Expr {
    let w = "_cs_ip_w";
    let is_last = Expr::var(w).t().mm(Expr::var(EMAX));
    let cond = order::succ_via(Expr::var(S), Expr::var(w), v);
    let inner = Expr::lit(1.0)
        .minus(cond.clone())
        .smul(matrix)
        .add(cond.smul(Expr::var(ID)));
    let body = Expr::lit(1.0)
        .minus(is_last.clone())
        .smul(inner)
        .add(is_last.smul(Expr::var(ID)));
    Expr::mprod(w, dim, body)
}

/// `Aⁿ⁻¹`: `Πw. (1 − max(w)) × V + max(w) × e_Id`.
fn power_n_minus_one(matrix: Expr, dim: &str) -> Expr {
    let w = "_cs_pn_w";
    let is_last = Expr::var(w).t().mm(Expr::var(EMAX));
    let body = Expr::lit(1.0)
        .minus(is_last.clone())
        .smul(matrix)
        .add(is_last.smul(Expr::var(ID)));
    Expr::mprod(w, dim, body)
}

/// Proposition 4.3 — `e_inv(V)`: the inverse of an invertible matrix via
/// Cayley–Hamilton, `A⁻¹ = −(1/cₙ)·(Aⁿ⁻¹ + Σ_{i=1}^{n−1} cᵢ·Aⁿ⁻¹⁻ⁱ)`.
pub fn inverse(matrix: &str, dim: &str) -> Expr {
    let v = "_cs_inv_v";
    let c_n = Expr::var(EMAX).t().mm(Expr::var(COEFFS));
    let not_last = Expr::lit(1.0).minus(Expr::var(v).t().mm(Expr::var(EMAX)));
    let coeff = Expr::var(v).t().mm(Expr::var(COEFFS));
    let summand = not_last.smul(coeff.smul(complement_power(Expr::var(matrix), Expr::var(v), dim)));
    let series = power_n_minus_one(Expr::var(matrix), dim).add(Expr::sum(v, dim, summand));
    let scale = Expr::lit(-1.0).smul(Expr::apply("div", vec![Expr::lit(1.0), c_n]));
    let body = Expr::let_in(
        COEFFS,
        char_poly_coeffs_inner(matrix, dim),
        scale.smul(series),
    );
    with_context(dim, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::helpers::{square_instance, standard_registry};
    use matlang_core::{evaluate, fragment_of, typecheck, Fragment, MatrixType, Schema};
    use matlang_matrix::{random_invertible, Matrix};
    use matlang_semiring::Real;

    fn eval(e: &Expr, a: &Matrix<Real>) -> Matrix<Real> {
        let inst = square_instance("A", "n", a.clone());
        evaluate(e, &inst, &standard_registry()).unwrap()
    }

    fn m(rows: &[&[f64]]) -> Matrix<Real> {
        Matrix::from_f64_rows(rows).unwrap()
    }

    #[test]
    fn expressions_typecheck() {
        let schema = Schema::new().with_var("A", MatrixType::square("n"));
        assert_eq!(
            typecheck(&char_poly_coeffs("A", "n"), &schema).unwrap(),
            MatrixType::vector("n")
        );
        assert_eq!(
            typecheck(&determinant("A", "n"), &schema).unwrap(),
            MatrixType::scalar()
        );
        assert_eq!(
            typecheck(&inverse("A", "n"), &schema).unwrap(),
            MatrixType::square("n")
        );
        assert_eq!(fragment_of(&inverse("A", "n")), Fragment::ForMatlang);
    }

    #[test]
    fn char_poly_coefficients_of_a_diagonal_matrix() {
        // det(λI − diag(1,2)) = λ² − 3λ + 2 ⇒ c = (−3, 2).
        let a = m(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let c = eval(&char_poly_coeffs("A", "n"), &a);
        assert!(c.approx_eq(&m(&[&[-3.0], &[2.0]]), 1e-9));
    }

    #[test]
    fn char_poly_matches_baseline_on_random_matrices() {
        for seed in 0..3 {
            let a: Matrix<Real> = random_invertible(4, seed);
            let expr_c = eval(&char_poly_coeffs("A", "n"), &a);
            let base_c = baseline::char_poly_coeffs(&a).unwrap();
            for (i, expected) in base_c.iter().enumerate() {
                let got = expr_c.get(i, 0).unwrap().0;
                assert!(
                    (got - expected.0).abs() < 1e-6,
                    "coefficient {i} differs: {got} vs {} (seed {seed})",
                    expected.0
                );
            }
        }
    }

    #[test]
    fn determinant_matches_gaussian_elimination() {
        let a = m(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let d = eval(&determinant("A", "n"), &a).as_scalar().unwrap().0;
        assert!((d - 5.0).abs() < 1e-9);

        for seed in 10..13 {
            let a: Matrix<Real> = random_invertible(4, seed);
            let d_expr = eval(&determinant("A", "n"), &a).as_scalar().unwrap().0;
            let d_base = a.determinant().unwrap().0;
            let scale = d_expr.abs().max(d_base.abs()).max(1.0);
            assert!((d_expr - d_base).abs() / scale < 1e-6, "seed {seed}");
        }
    }

    #[test]
    fn determinant_of_singular_matrix_is_zero() {
        let a = m(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let d = eval(&determinant("A", "n"), &a).as_scalar().unwrap().0;
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn inverse_matches_gauss_jordan() {
        for seed in 0..3 {
            let a: Matrix<Real> = random_invertible(4, seed);
            let inv_expr = eval(&inverse("A", "n"), &a);
            let inv_base = a.inverse().unwrap();
            assert!(inv_expr.approx_eq(&inv_base, 1e-6), "seed {seed}");
            assert!(a
                .matmul(&inv_expr)
                .unwrap()
                .approx_eq(&Matrix::identity(4), 1e-6));
        }
    }

    #[test]
    fn inverse_of_a_two_by_two_is_exact() {
        let a = m(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = eval(&inverse("A", "n"), &a);
        let expected = m(&[&[0.6, -0.7], &[-0.2, 0.4]]);
        assert!(inv.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn inverse_of_one_by_one_matrix() {
        let a = m(&[&[5.0]]);
        let inv = eval(&inverse("A", "n"), &a);
        assert!(inv.approx_eq(&m(&[&[0.2]]), 1e-12));
        let d = eval(&determinant("A", "n"), &a).as_scalar().unwrap().0;
        assert!((d - 5.0).abs() < 1e-12);
    }
}
