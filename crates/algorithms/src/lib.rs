//! The paper's worked algorithms as for-MATLANG expressions, together with
//! direct Rust baselines.
//!
//! * [`order`] — the order machinery of Section 3.2 / Appendix B.1:
//!   `e_max`, `e_min`, the order matrices `S≤`/`S<`, the `succ` predicates,
//!   the shift matrices `Prev`/`Next` and friends.
//! * [`graphs`] — Example 3.3 (4-clique), Example 3.5 (Floyd–Warshall
//!   transitive closure), the prod-MATLANG transitive closure of Section 6.3,
//!   the trace and the diagonal product of Example 6.6.
//! * [`lu`] — LU and PLU decomposition (Section 4.1, Propositions 4.1/4.2).
//! * [`csanky`] — triangular inversion (Lemma C.1) and Csanky's algorithm for
//!   the determinant and the inverse (Section 4.2, Proposition 4.3).
//! * [`baseline`] — straightforward Rust implementations of the same
//!   operations, used as ground truth in tests and as the comparison point in
//!   the benchmark harness.
//! * [`helpers`] — schema/instance builders shared by examples, tests and
//!   benches.

pub mod baseline;
pub mod csanky;
pub mod graphs;
pub mod helpers;
pub mod lu;
pub mod order;
pub mod triangular;

pub use helpers::{adjacency_instance, square_instance, square_schema, standard_registry};
