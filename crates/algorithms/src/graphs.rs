//! Graph queries from the paper: 4-clique (Example 3.3), transitive closure
//! (Example 3.5 and Section 6.3), the trace and the diagonal product
//! (Example 6.6).

use crate::order;
use matlang_core::{Expr, MatrixType};

/// Example 3.3 — the 4-clique query.
///
/// A sum-MATLANG expression over the adjacency-matrix variable `graph` that
/// evaluates to a non-zero scalar iff the (undirected, loop-free) graph
/// contains a 4-clique.  The pointwise function `f(u, v) = 1 − uᵀ·v` of the
/// paper is inlined using constants.
pub fn four_clique(graph: &str, dim: &str) -> Expr {
    let distinct = |a: &str, b: &str| Expr::lit(1.0).minus(Expr::var(a).t().mm(Expr::var(b)));
    let edge = |a: &str, b: &str| Expr::var(a).t().mm(Expr::var(graph)).mm(Expr::var(b));
    let all_distinct = distinct("_c4_u", "_c4_v")
        .mm(distinct("_c4_u", "_c4_w"))
        .mm(distinct("_c4_u", "_c4_x"))
        .mm(distinct("_c4_v", "_c4_w"))
        .mm(distinct("_c4_v", "_c4_x"))
        .mm(distinct("_c4_w", "_c4_x"));
    let all_edges = edge("_c4_u", "_c4_v")
        .mm(edge("_c4_u", "_c4_w"))
        .mm(edge("_c4_u", "_c4_x"))
        .mm(edge("_c4_v", "_c4_w"))
        .mm(edge("_c4_v", "_c4_x"))
        .mm(edge("_c4_w", "_c4_x"));
    Expr::sum(
        "_c4_u",
        dim,
        Expr::sum(
            "_c4_v",
            dim,
            Expr::sum(
                "_c4_w",
                dim,
                Expr::sum("_c4_x", dim, all_edges.mm(all_distinct)),
            ),
        ),
    )
}

/// Example 3.5 — the Floyd–Warshall-style transitive closure.
///
/// ```text
/// e_FW := for v_k, X₁ = A. X₁ + for v_i, X₂. X₂ + for v_j, X₃. X₃ +
///             (v_iᵀ·X₁·v_k · v_kᵀ·X₁·v_j) × v_i·v_jᵀ
/// ```
///
/// On an adjacency matrix the result has a non-zero entry `(i, j)` iff `j` is
/// reachable from `i` by a non-empty path.
pub fn transitive_closure_fw(graph: &str, dim: &str) -> Expr {
    let sq = MatrixType::square(dim);
    let vi_x1_vk = Expr::var("_fw_vi")
        .t()
        .mm(Expr::var("_fw_X1"))
        .mm(Expr::var("_fw_vk"));
    let vk_x1_vj = Expr::var("_fw_vk")
        .t()
        .mm(Expr::var("_fw_X1"))
        .mm(Expr::var("_fw_vj"));
    let update = vi_x1_vk
        .mm(vk_x1_vj)
        .smul(Expr::var("_fw_vi").mm(Expr::var("_fw_vj").t()));
    let inner_j = Expr::for_loop(
        "_fw_vj",
        dim,
        "_fw_X3",
        sq.clone(),
        Expr::var("_fw_X3").add(update),
    );
    let inner_i = Expr::for_loop(
        "_fw_vi",
        dim,
        "_fw_X2",
        sq.clone(),
        Expr::var("_fw_X2").add(inner_j),
    );
    Expr::for_init(
        "_fw_vk",
        dim,
        "_fw_X1",
        sq,
        Expr::var(graph),
        Expr::var("_fw_X1").add(inner_i),
    )
}

/// The thresholded Floyd–Warshall transitive closure: the 0/1 matrix whose
/// `(i, j)` entry is 1 iff `j` is reachable from `i`.  Requires `f_{>0}`; the
/// Floyd–Warshall accumulation over ℝ counts path decompositions, so entries
/// are squashed back to booleans with `f_{>0}(x²)`... over the reals a plain
/// `gt0` suffices because all accumulated values are non-negative.
pub fn transitive_closure_fw_bool(graph: &str, dim: &str) -> Expr {
    Expr::apply("gt0", vec![transitive_closure_fw(graph, dim)])
}

/// Section 6.3 — the prod-MATLANG transitive closure
/// `e_TC(V) := f_{>0}(Πv. (e_Id + V))`, using that non-zero entries of
/// `(I + A)ⁿ` coincide with the reflexive-transitive closure of `A`.
///
/// Note this computes the *reflexive* transitive closure (the diagonal is
/// always reachable); the paper uses the same convention.
pub fn transitive_closure_prod(graph: &str, dim: &str) -> Expr {
    let body = order::identity(dim).add(Expr::var(graph));
    Expr::apply("gt0", vec![Expr::mprod("_tc_v", dim, body)])
}

/// The trace `tr(A) = Σv. vᵀ·A·v` (a sum-MATLANG expression).
pub fn trace(matrix: &str, dim: &str) -> Expr {
    Expr::sum(
        "_tr_v",
        dim,
        Expr::var("_tr_v")
            .t()
            .mm(Expr::var(matrix))
            .mm(Expr::var("_tr_v")),
    )
}

/// Example 6.6 — the diagonal product `Π∘v. vᵀ·A·v`, an FO-MATLANG expression
/// whose value can be exponential in the dimension (hence not expressible in
/// sum-MATLANG).
pub fn diagonal_product(matrix: &str, dim: &str) -> Expr {
    Expr::hprod(
        "_dp_v",
        dim,
        Expr::var("_dp_v")
            .t()
            .mm(Expr::var(matrix))
            .mm(Expr::var("_dp_v")),
    )
}

/// The number of (directed) triangles times 6... more precisely
/// `Σu Σv Σw A[u,v]·A[v,w]·A[w,u]` = `tr(A³)`, a sum-MATLANG expression used
/// as an extra workload in the benchmarks.
pub fn triangle_count(graph: &str, dim: &str) -> Expr {
    let edge = |a: &str, b: &str| Expr::var(a).t().mm(Expr::var(graph)).mm(Expr::var(b));
    Expr::sum(
        "_t3_u",
        dim,
        Expr::sum(
            "_t3_v",
            dim,
            Expr::sum(
                "_t3_w",
                dim,
                edge("_t3_u", "_t3_v")
                    .mm(edge("_t3_v", "_t3_w"))
                    .mm(edge("_t3_w", "_t3_u")),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::helpers::{adjacency_instance, standard_registry};
    use matlang_core::{evaluate, fragment_of, Fragment};
    use matlang_matrix::{random_adjacency, Matrix};
    use matlang_semiring::Real;

    fn eval_scalar(e: &Expr, adj: &Matrix<Real>) -> f64 {
        let inst = adjacency_instance("G", "n", adj.clone());
        evaluate(e, &inst, &standard_registry())
            .unwrap()
            .as_scalar()
            .unwrap()
            .0
    }

    #[test]
    fn four_clique_is_sum_matlang() {
        assert_eq!(fragment_of(&four_clique("G", "n")), Fragment::SumMatlang);
    }

    #[test]
    fn four_clique_detects_k4_and_rejects_c4() {
        let mut k4: Matrix<Real> = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    k4.set(i, j, Real(1.0)).unwrap();
                }
            }
        }
        assert!(eval_scalar(&four_clique("G", "n"), &k4) > 0.0);

        let c4: Matrix<Real> = Matrix::from_f64_rows(&[
            &[0.0, 1.0, 0.0, 1.0],
            &[1.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 1.0],
            &[1.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        assert_eq!(eval_scalar(&four_clique("G", "n"), &c4), 0.0);
    }

    #[test]
    fn four_clique_agrees_with_brute_force_on_random_graphs() {
        for seed in 0..6 {
            let adj: Matrix<Real> = random_adjacency(6, 0.5, seed);
            // Make the graph undirected for the clique semantics.
            let sym = adj.add(&adj.transpose()).unwrap().map(|v| {
                if v.0 > 0.0 {
                    Real(1.0)
                } else {
                    Real(0.0)
                }
            });
            let expr_says = eval_scalar(&four_clique("G", "n"), &sym) > 0.0;
            let brute_says = baseline::has_four_clique(&sym);
            assert_eq!(expr_says, brute_says, "disagreement for seed {seed}");
        }
    }

    #[test]
    fn floyd_warshall_expression_matches_baseline_reachability() {
        for seed in 0..6 {
            let adj: Matrix<Real> = random_adjacency(6, 0.3, seed);
            let inst = adjacency_instance("G", "n", adj.clone());
            let out = evaluate(
                &transitive_closure_fw_bool("G", "n"),
                &inst,
                &standard_registry(),
            )
            .unwrap();
            let expected = baseline::transitive_closure(&adj, false);
            assert_eq!(out, expected, "TC mismatch for seed {seed}");
        }
    }

    #[test]
    fn floyd_warshall_is_for_matlang() {
        assert_eq!(
            fragment_of(&transitive_closure_fw("G", "n")),
            Fragment::ForMatlang
        );
    }

    #[test]
    fn prod_tc_matches_reflexive_reachability() {
        for seed in 0..6 {
            let adj: Matrix<Real> = random_adjacency(5, 0.3, seed);
            let inst = adjacency_instance("G", "n", adj.clone());
            let out = evaluate(
                &transitive_closure_prod("G", "n"),
                &inst,
                &standard_registry(),
            )
            .unwrap();
            let expected = baseline::transitive_closure(&adj, true);
            assert_eq!(out, expected, "prod TC mismatch for seed {seed}");
        }
    }

    #[test]
    fn prod_tc_is_prod_matlang() {
        assert_eq!(
            fragment_of(&transitive_closure_prod("G", "n")),
            Fragment::ProdMatlang
        );
    }

    #[test]
    fn trace_and_diagonal_product() {
        let a: Matrix<Real> =
            Matrix::from_f64_rows(&[&[2.0, 9.0, 9.0], &[9.0, 3.0, 9.0], &[9.0, 9.0, 4.0]]).unwrap();
        assert_eq!(eval_scalar(&trace("G", "n"), &a), 9.0);
        assert_eq!(eval_scalar(&diagonal_product("G", "n"), &a), 24.0);
        assert_eq!(fragment_of(&trace("G", "n")), Fragment::SumMatlang);
        assert_eq!(
            fragment_of(&diagonal_product("G", "n")),
            Fragment::FoMatlang
        );
    }

    #[test]
    fn triangle_count_matches_trace_of_cube() {
        for seed in 0..4 {
            let adj: Matrix<Real> = random_adjacency(6, 0.4, seed);
            let cube = adj.pow(3).unwrap();
            let expected = cube.trace().unwrap().0;
            assert!((eval_scalar(&triangle_count("G", "n"), &adj) - expected).abs() < 1e-9);
        }
    }
}
