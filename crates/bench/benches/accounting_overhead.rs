//! Resource-accounting overhead on the server's hot path.
//!
//! Every executing request refreshes the instance's `ResourceAccount`
//! (heap-byte walk over its variables, memo-cache residency, last-active
//! stamp) and publishes the deltas as gauges — all gated on the same
//! [`matlang_obs::set_enabled`] flag as tracing.  Three views:
//!
//! 1. **warm-exec-accounting-on / warm-exec-accounting-off** — the
//!    load-bearing pair: a warm prepared `EXEC` against an account-heavy
//!    instance (four variables, multi-node plan) with the instrumented
//!    layer on versus off.  The release guard test
//!    (`crates/server/tests/accounting_overhead_guard.rs`) pins the
//!    ratio at ≤5 %; the bench records the absolute numbers over time.
//! 2. **health-report** — one `HEALTH` round trip: per-instance account
//!    refresh plus counter reads, the capacity probe's steady-state cost.
//! 3. **top-listing** — one `TOP` round trip: refresh, residency
//!    columns, sort, render.

use criterion::{criterion_group, criterion_main, Criterion};
use matlang_bench::quick_criterion;
use matlang_server::{Client, Server, ServerConfig};

fn bench_accounting_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("accounting_overhead");

    let handle = Server::spawn(ServerConfig::default()).expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", 64).unwrap();
    for (var, seed) in [("G", 7), ("H", 11), ("K", 13), ("L", 17)] {
        client.gen_erdos_renyi("g", var, "n", 4.0, seed).unwrap();
    }
    let qid = client
        .prepare("g", "(transpose(ones(G)) * ((G + H) * ones(K)))")
        .unwrap();
    client.exec("g", qid).unwrap(); // warm the root

    matlang_obs::set_enabled(true);
    group.bench_function("warm-exec-accounting-on", |b| {
        b.iter(|| client.exec("g", qid).unwrap().entries.len())
    });
    matlang_obs::set_enabled(false);
    group.bench_function("warm-exec-accounting-off", |b| {
        b.iter(|| client.exec("g", qid).unwrap().entries.len())
    });
    matlang_obs::set_enabled(true);

    group.bench_function("health-report", |b| {
        b.iter(|| client.health().unwrap().len())
    });
    group.bench_function("top-listing", |b| {
        b.iter(|| client.top(None).unwrap().len())
    });
    handle.shutdown();
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_accounting_overhead
}
criterion_main!(benches);
