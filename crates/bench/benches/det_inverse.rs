//! Experiment E6 — determinant and inverse via Csanky's algorithm
//! (Proposition 4.3).
//!
//! Series: per matrix size, time for the for-MATLANG Csanky determinant and
//! inverse versus (a) the Newton-identity baseline and (b) Gaussian
//! elimination / Gauss–Jordan.  Expected shape: the expression is orders of
//! magnitude slower (it re-derives matrix powers through Π-loops) but scales
//! polynomially, matching Corollary 5.4's polynomial-degree bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_algorithms::{baseline, csanky, standard_registry};
use matlang_bench::quick_criterion;
use matlang_core::{evaluate, Instance};
use matlang_matrix::{random_invertible, Matrix};
use matlang_semiring::Real;

fn bench_det_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_determinant_inverse");
    let registry = standard_registry::<Real>();
    let det = csanky::determinant("A", "n");
    let inv = csanky::inverse("A", "n");

    for &n in &[3usize, 5] {
        let a: Matrix<Real> = random_invertible(n, 41 + n as u64);
        let instance = Instance::new().with_dim("n", n).with_matrix("A", a.clone());

        group.bench_with_input(BenchmarkId::new("for-matlang-csanky-det", n), &n, |b, _| {
            b.iter(|| evaluate(&det, &instance, &registry).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("for-matlang-csanky-inverse", n),
            &n,
            |b, _| b.iter(|| evaluate(&inv, &instance, &registry).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("baseline-newton-det", n), &n, |b, _| {
            b.iter(|| baseline::determinant_via_char_poly(&a).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline-gaussian-det", n), &n, |b, _| {
            b.iter(|| a.determinant().unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("baseline-gauss-jordan-inverse", n),
            &n,
            |b, _| b.iter(|| a.inverse().unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_det_inverse
}
criterion_main!(benches);
