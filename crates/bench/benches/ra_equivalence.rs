//! Experiment E2 — sum-MATLANG ≡ RA⁺_K (Corollary 6.5).
//!
//! Series: per size, the time to answer the same query (a) with the
//! sum-MATLANG interpreter over matrices, (b) with the RA⁺_K engine over the
//! relational encoding `Rel(I)`, and (c) the time to perform the translation
//! itself.  Expected shape: the relational engine wins on sparse inputs
//! (support-proportional work) and loses on dense ones; the translation is
//! negligible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_bench::{quick_criterion, SMALL_SIZES};
use matlang_core::{evaluate, Expr, FunctionRegistry, Instance, MatrixType, Schema};
use matlang_matrix::{random_matrix, RandomMatrixConfig};
use matlang_ra::{encode_instance, matlang_to_ra};
use matlang_semiring::Nat;

fn query() -> Expr {
    // Two-hop counting query: A·A followed by a trace-style contraction.
    Expr::sum(
        "v",
        "n",
        Expr::var("v")
            .t()
            .mm(Expr::var("A"))
            .mm(Expr::var("A"))
            .mm(Expr::var("v")),
    )
}

fn bench_ra_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_sum_matlang_vs_ra");
    let schema = Schema::new().with_var("A", MatrixType::square("n"));
    let registry = FunctionRegistry::<Nat>::new().with_semiring_ops();
    let expr = query();

    for &n in SMALL_SIZES {
        for (density_name, zero_probability) in [("dense", 0.0), ("sparse", 0.8)] {
            let cfg = RandomMatrixConfig {
                seed: 17 + n as u64,
                min_value: 0.0,
                max_value: 3.0,
                integer_entries: true,
                zero_probability,
            };
            let instance: Instance<Nat> = Instance::new()
                .with_dim("n", n)
                .with_matrix("A", random_matrix(n, n, &cfg));
            let database = encode_instance(&schema, &instance).unwrap();
            let ra_query = matlang_to_ra(&expr, &schema).unwrap();

            let label = format!("{density_name}-n{n}");
            group.bench_with_input(
                BenchmarkId::new("sum-matlang-interpreter", &label),
                &n,
                |b, _| b.iter(|| evaluate(&expr, &instance, &registry).unwrap()),
            );
            group.bench_with_input(BenchmarkId::new("ra-plus-k-engine", &label), &n, |b, _| {
                b.iter(|| ra_query.evaluate(&database).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("translation-phi", &label), &n, |b, _| {
                b.iter(|| matlang_to_ra(&expr, &schema).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_ra_equivalence
}
criterion_main!(benches);
