//! Experiment E11 — the query planning + parallel execution engine versus
//! naive tree-walking evaluation.
//!
//! Three series:
//!
//! 1. **Hoisting/CSE** — the Gram-trace query `Σv. vᵀ·(GᵀG)·v` over a
//!    sparse average-degree-8 graph.  The naive evaluator recomputes the
//!    loop-invariant Gram product on all `n` iterations; the engine
//!    computes it once and serves the remaining `n − 1` iterations from
//!    its memo cache.  Expected gap: roughly `n×` on the invariant part.
//! 2. **Batching** — four analytics queries sharing powers of one
//!    adjacency matrix, evaluated naively one-by-one versus through the
//!    engine's shared batch cache.
//! 3. **Parallel SpMM** — squaring the n = 2000, average-degree-8 Boolean
//!    adjacency matrix (the sparse subsystem's acceptance point) with the
//!    serial Gustavson kernel versus the row-partitioned threaded kernel
//!    at 2, 4 and `configured_threads()` workers.  The win requires ≥ 2
//!    hardware threads; on a single-core host the threaded kernel
//!    degrades gracefully to near-serial cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_bench::sparse_criterion;
use matlang_core::{evaluate, Expr, FunctionRegistry, Instance, SparseInstance};
use matlang_engine::Engine;
use matlang_matrix::{configured_threads, sparse_erdos_renyi, MatrixRepr, SparseMatrix};
use matlang_semiring::{Boolean, Nat};

const AVG_DEGREE: f64 = 8.0;

fn gram_trace() -> Expr {
    let gram = Expr::var("G").t().mm(Expr::var("G"));
    Expr::sum("v", "n", Expr::var("v").t().mm(gram).mm(Expr::var("v")))
}

fn sparse_instance(n: usize, seed: u64) -> SparseInstance<Nat> {
    Instance::new().with_dim("n", n).with_matrix(
        "G",
        MatrixRepr::from_sparse_auto(sparse_erdos_renyi::<Nat>(n, AVG_DEGREE, seed)),
    )
}

fn bench_hoisting(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_hoisting_gram_trace");
    let registry = FunctionRegistry::<Nat>::new();
    let expr = gram_trace();
    for &n in &[200usize, 400, 800] {
        let inst = sparse_instance(n, 23 + n as u64);
        let engine = Engine::new();
        group.bench_with_input(BenchmarkId::new("engine-planned", n), &n, |b, _| {
            b.iter(|| engine.evaluate(&expr, &inst, &registry).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive-tree-walk", n), &n, |b, _| {
            b.iter(|| evaluate(&expr, &inst, &registry).unwrap())
        });
    }
    group.finish();
}

fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_batched_analytics");
    let registry = FunctionRegistry::<Nat>::new();
    // Four queries sharing G·G and (G·G)·G.
    let g = || Expr::var("G");
    let g2 = || g().mm(g());
    let g3 = || g2().mm(g());
    let ones_t = || g().ones().t();
    let queries = vec![
        ones_t().mm(g2()).mm(g().ones()), // 2-hop path count
        ones_t().mm(g3()).mm(g().ones()), // 3-hop path count
        Expr::sum("v", "n", Expr::var("v").t().mm(g3()).mm(Expr::var("v"))), // tr(G³) = 6·triangles
        ones_t().mm(g2().add(g3())).mm(g().ones()), // mixed-length paths
    ];
    let n = 400;
    let inst = sparse_instance(n, 77);
    let engine = Engine::new();
    group.bench_with_input(BenchmarkId::new("engine-batched", n), &n, |b, _| {
        b.iter(|| {
            let outcome = engine.evaluate_batch(&queries, &inst, &registry);
            assert!(outcome.results.iter().all(Result::is_ok));
            outcome
        })
    });
    group.bench_with_input(BenchmarkId::new("naive-sequential", n), &n, |b, _| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| evaluate(q, &inst, &registry).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_parallel_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_parallel_spmm");
    let n = 2000;
    let sparse: SparseMatrix<Boolean> = sparse_erdos_renyi(n, AVG_DEGREE, 7 + n as u64);
    group.bench_with_input(BenchmarkId::new("serial-gustavson", n), &n, |b, _| {
        b.iter(|| sparse.matmul(&sparse).unwrap())
    });
    let mut thread_counts = vec![2usize, 4];
    let configured = configured_threads();
    if !thread_counts.contains(&configured) {
        thread_counts.push(configured);
    }
    for threads in thread_counts {
        let label = format!("threads-{threads}");
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| sparse.matmul_threaded(&sparse, threads).unwrap())
        });
    }
    group.finish();
}

fn run(c: &mut Criterion) {
    bench_hoisting(c);
    bench_batching(c);
    bench_parallel_spmm(c);
}

criterion_group! {
    name = benches;
    config = sparse_criterion();
    targets = run
}
criterion_main!(benches);
