//! Observed-statistics feedback: the payoff of drift-triggered re-planning.
//!
//! The scenario the `replan_guard` release test pins at ≥2×, measured as
//! absolute medians over time: a standing chain query `((A * B) * v)` is
//! planned while `A` is ~empty (the cost-based chain rewrite keeps the
//! left association), then `A` is flooded dense.
//!
//! - **stale-plan-recompute** — executing the association chosen for the
//!   sparse regime (dense·dense prefix) after every cache invalidation.
//! - **replanned-recompute** — the same recompute after the drift
//!   feedback re-planned against current + observed statistics
//!   (matrix×vector association throughout).
//! - **replan-cost** — the re-plan itself (statistics snapshot, drift
//!   check, plan build, cache reset), measured by forcing the threshold
//!   to its floor so every EXEC re-plans.

use criterion::{criterion_group, criterion_main, Criterion};
use matlang_bench::quick_criterion;
use matlang_server::{set_replan_drift, Store};

const N: usize = 192;

fn seeded(name: &str) -> Store {
    let store = Store::new();
    store.create_instance(name, true).unwrap();
    store.set_dim(name, "n", N).unwrap();
    store
        .load_matrix(name, "A", N, N, vec![(0, 0, 1.0)])
        .unwrap();
    let mut b = Vec::with_capacity(N * N);
    for i in 0..N {
        for j in 0..N {
            b.push((i, j, ((i + 2 * j) % 7 + 1) as f64));
        }
    }
    store.load_matrix(name, "B", N, N, b).unwrap();
    let v: Vec<(usize, usize, f64)> = (0..N).map(|i| (i, 0, (i % 5 + 1) as f64)).collect();
    store.load_matrix(name, "v", N, 1, v).unwrap();
    store
}

fn flood() -> Vec<(usize, usize, f64)> {
    let mut entries = Vec::with_capacity(N * N);
    for i in 0..N {
        for j in 0..N {
            entries.push((i, j, ((i * 31 + j) % 11 + 1) as f64));
        }
    }
    entries
}

fn bench_feedback_replan(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback_replan");
    let text = "((A * B) * v)";

    // Stale side: plan while A is ~empty, freeze re-planning, flood A.
    let stale = seeded("s");
    let stale_qid = stale.prepare("s", text).unwrap().qid;
    stale.exec("s", &[stale_qid]).unwrap();
    set_replan_drift(Some(f64::MAX));
    stale.update("s", "A", &flood()).unwrap();
    let mut toggle = 0u64;
    group.bench_function("stale-plan-recompute", |b| {
        b.iter(|| {
            toggle += 1;
            let v = if toggle % 2 == 0 { 2.0 } else { 3.0 };
            stale.update("s", "A", &[(0, 0, v)]).unwrap();
            stale.exec("s", &[stale_qid]).unwrap()[0].entries.len()
        })
    });

    // Fresh side: same history, but one EXEC at the default threshold
    // lets the drift feedback re-plan before measuring.
    let fresh = seeded("f");
    let fresh_qid = fresh.prepare("f", text).unwrap().qid;
    fresh.exec("f", &[fresh_qid]).unwrap();
    fresh.update("f", "A", &flood()).unwrap();
    set_replan_drift(None);
    fresh.exec("f", &[fresh_qid]).unwrap();
    set_replan_drift(Some(f64::MAX));
    group.bench_function("replanned-recompute", |b| {
        b.iter(|| {
            toggle += 1;
            let v = if toggle % 2 == 0 { 2.0 } else { 3.0 };
            fresh.update("f", "A", &[(0, 0, v)]).unwrap();
            fresh.exec("f", &[fresh_qid]).unwrap()[0].entries.len()
        })
    });

    // The re-plan itself: floor threshold + alternating nnz makes every
    // EXEC cross the drift check and rebuild the plan.
    set_replan_drift(Some(1.0));
    group.bench_function("replan-cost", |b| {
        b.iter(|| {
            toggle += 1;
            // Alternate one entry between zero and non-zero so the nnz
            // ratio stays above the floor on every EXEC.
            let v = if toggle % 2 == 0 { 0.0 } else { 3.0 };
            fresh.update("f", "A", &[(1, 1, v)]).unwrap();
            fresh.exec("f", &[fresh_qid]).unwrap()[0].entries.len()
        })
    });
    set_replan_drift(None);
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_feedback_replan
}
criterion_main!(benches);
