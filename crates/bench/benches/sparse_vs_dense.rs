//! Experiment E10 — the sparse matrix subsystem versus dense storage.
//!
//! Three series over random Boolean/Nat adjacency matrices of growing size:
//!
//! 1. **SpMM** — squaring an average-degree-8 adjacency matrix: CSR
//!    Gustavson SpMM (`Θ(n·d²)`) against the dense kernel (`Θ(n³)` worst
//!    case; the dense kernel's zero-skip makes it `Θ(n²·(1 + d))` on sparse
//!    inputs, still quadratic).  The 2000-node point is the subsystem's
//!    acceptance criterion.
//! 2. **Transitive closure** — per-source BFS on CSR (`O(n·(nnz + n))`)
//!    against the dense Warshall baseline (`Θ(n³)`).
//! 3. **WL workload** — the weighted-logic benchmark queries (trace and
//!    diagonal product, Section 6.2) interpreted over the dense backend
//!    versus the adaptive sparse backend ([`matlang_core::SparseInstance`]):
//!    canonical vectors are 1-nnz CSR vectors, so each loop iteration costs
//!    `O(d)` instead of `O(n²)`.
//!
//! Expected shape: sparse wins every series, and the gap widens with `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_algorithms::{baseline, graphs};
use matlang_bench::{sparse_criterion, CLOSURE_SIZES, EVAL_SIZES, SPARSE_SIZES};
use matlang_core::{evaluate, FunctionRegistry, Instance, SparseInstance};
use matlang_matrix::{sparse_erdos_renyi, MatrixRepr, SparseMatrix};
use matlang_semiring::{Boolean, Nat};

const AVG_DEGREE: f64 = 8.0;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_spmm");
    for &n in SPARSE_SIZES {
        let sparse: SparseMatrix<Boolean> = sparse_erdos_renyi(n, AVG_DEGREE, 7 + n as u64);
        let dense = sparse.to_dense();
        group.bench_with_input(BenchmarkId::new("sparse-csr-spmm", n), &n, |b, _| {
            b.iter(|| sparse.matmul(&sparse).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dense-matmul", n), &n, |b, _| {
            b.iter(|| dense.matmul(&dense).unwrap())
        });
    }
    group.finish();
}

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_transitive_closure");
    for &n in CLOSURE_SIZES {
        let sparse: SparseMatrix<Boolean> = sparse_erdos_renyi(n, 4.0, 11 + n as u64);
        let dense = sparse.to_dense();
        group.bench_with_input(BenchmarkId::new("sparse-bfs-closure", n), &n, |b, _| {
            b.iter(|| baseline::sparse_transitive_closure(&sparse, false))
        });
        group.bench_with_input(BenchmarkId::new("dense-warshall", n), &n, |b, _| {
            b.iter(|| baseline::transitive_closure(&dense, false))
        });
    }
    group.finish();
}

fn bench_wl_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_wl_workload");
    let registry = FunctionRegistry::<Nat>::new();
    let queries = [
        ("trace", graphs::trace("G", "n")),
        ("diag-product", graphs::diagonal_product("G", "n")),
    ];
    for &n in EVAL_SIZES {
        let sparse: SparseMatrix<Nat> = sparse_erdos_renyi(n, 4.0, 17 + n as u64);
        let dense_inst: Instance<Nat> = Instance::new()
            .with_dim("n", n)
            .with_matrix("G", sparse.to_dense());
        let sparse_inst: SparseInstance<Nat> = Instance::new()
            .with_dim("n", n)
            .with_matrix("G", MatrixRepr::from_sparse_auto(sparse));
        for (name, expr) in &queries {
            let label = format!("{name}-n{n}");
            group.bench_with_input(BenchmarkId::new("dense-backend", &label), &n, |b, _| {
                b.iter(|| evaluate(expr, &dense_inst, &registry).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("sparse-backend", &label), &n, |b, _| {
                b.iter(|| evaluate(expr, &sparse_inst, &registry).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sparse_criterion();
    targets = bench_spmm, bench_transitive_closure, bench_wl_workload
}
criterion_main!(benches);
