//! Experiment E9 — interpreter micro-benchmarks: the cost of the individual
//! MATLANG operators and of the loop constructs as the dimension grows.
//!
//! Series: per size, evaluation time of a single matrix product, addition,
//! transpose, pointwise function application, Σ-loop and for-loop, plus the
//! same matrix product performed directly on `Matrix` values (the
//! interpretation overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_algorithms::standard_registry;
use matlang_bench::{quick_criterion, MICRO_SIZES};
use matlang_core::{evaluate, Expr, Instance, MatrixType};
use matlang_matrix::{random_matrix, Matrix, RandomMatrixConfig};
use matlang_semiring::Real;

fn bench_interpreter_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_interpreter_ops");
    let registry = standard_registry::<Real>();

    for &n in MICRO_SIZES {
        let a: Matrix<Real> = random_matrix(n, n, &RandomMatrixConfig::seeded(3 + n as u64));
        let b: Matrix<Real> = random_matrix(n, n, &RandomMatrixConfig::seeded(4 + n as u64));
        let instance = Instance::new()
            .with_dim("n", n)
            .with_matrix("A", a.clone())
            .with_matrix("B", b.clone());

        let cases = [
            ("matmul", Expr::var("A").mm(Expr::var("B"))),
            ("add", Expr::var("A").add(Expr::var("B"))),
            ("transpose", Expr::var("A").t()),
            (
                "pointwise-div",
                Expr::apply("div", vec![Expr::var("A"), Expr::var("B")]),
            ),
            (
                "sigma-trace",
                Expr::sum(
                    "v",
                    "n",
                    Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
                ),
            ),
            (
                "for-ones-vector",
                Expr::for_loop(
                    "v",
                    "n",
                    "X",
                    MatrixType::vector("n"),
                    Expr::var("X").add(Expr::var("v")),
                ),
            ),
        ];
        for (name, expr) in cases {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
                bench.iter(|| evaluate(&expr, &instance, &registry).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("native-matmul", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_interpreter_ops
}
criterion_main!(benches);
