//! Durability costs and the recovery payoff, as absolute medians:
//!
//! - **snapshot-write** — `SAVE` of a dense 128×128 instance (encode +
//!   atomic write + fsync).
//! - **snapshot-load** — decoding that snapshot back into a fresh
//!   instance (`RESTORE`), no WAL involved.
//! - **wal-append** — one fsync'd single-entry `UPDATE` on a persisted
//!   instance (the write-path durability tax the overhead guard bounds).
//! - **cold-boot-replay** — `Store::open` over a snapshot plus a
//!   1 000-record WAL.
//! - **fresh-load** — reaching the same durable state without recovery:
//!   re-ingesting the base `LOAD` plus the same 1 000 updates on a
//!   durable store.  The `persist_replay_guard` release test pins
//!   cold-boot-replay ≥2× ahead of this.

use criterion::{criterion_group, criterion_main, Criterion};
use matlang_bench::quick_criterion;
use matlang_server::{Store, StoreConfig};
use std::fs;
use std::path::PathBuf;

const N: usize = 128;
const UPDATES: usize = 1_000;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "matlang-bench-persist-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable(dir: &PathBuf) -> Store {
    Store::with_config(
        StoreConfig::builder()
            .data_dir(dir)
            .wal_compact(1 << 30)
            .build(),
    )
}

fn base_entries() -> Vec<(usize, usize, f64)> {
    let mut entries = Vec::with_capacity(N * N / 2);
    for i in 0..N {
        for j in 0..N {
            if (i + j) % 2 == 0 {
                entries.push((i, j, ((i * 31 + j) % 13 + 1) as f64));
            }
        }
    }
    entries
}

fn update_stream() -> Vec<(usize, usize, f64)> {
    (0..UPDATES)
        .map(|k| ((k * 7) % N, (k * 13 + 1) % N, (k % 97) as f64 + 0.5))
        .collect()
}

fn seed(store: &Store, name: &str) {
    store.create_instance(name, false).unwrap();
    store.set_dim(name, "n", N).unwrap();
    store.load_matrix(name, "G", N, N, base_entries()).unwrap();
}

fn bench_persistence(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistence");

    // Snapshot write: SAVE to an explicit path, fresh file every time.
    let dir = scratch("snapshot");
    let store = durable(&dir);
    seed(&store, "g");
    let export = dir.join("g.export");
    group.bench_function("snapshot-write", |b| {
        b.iter(|| {
            let _ = fs::remove_file(&export);
            store.save("g", Some(export.as_path())).unwrap().0
        })
    });

    // Snapshot load: RESTORE from that file into a throwaway name.
    store.save("g", Some(export.as_path())).unwrap();
    let mut round = 0usize;
    group.bench_function("snapshot-load", |b| {
        b.iter(|| {
            round += 1;
            let name = format!("r{round}");
            let out = store.restore(&name, &export).unwrap();
            store.drop_instance(&name).unwrap();
            out
        })
    });

    // WAL append: one durable single-entry UPDATE (fsync included).
    store.set_persist("g", true).unwrap();
    let mut k = 0usize;
    group.bench_function("wal-append", |b| {
        b.iter(|| {
            k += 1;
            let entry = ((k * 7) % N, (k * 13 + 1) % N, (k % 97) as f64 + 0.5);
            store.update("g", "G", &[entry]).unwrap().applied
        })
    });
    drop(store);
    let _ = fs::remove_dir_all(&dir);

    // Cold-boot replay vs fresh durable load over the same 1 000 updates.
    let boot_dir = scratch("boot");
    {
        let store = durable(&boot_dir);
        seed(&store, "g");
        store.set_persist("g", true).unwrap();
        for &entry in &update_stream() {
            store.update("g", "G", &[entry]).unwrap();
        }
    }
    group.bench_function("cold-boot-replay", |b| {
        b.iter(|| {
            let store = durable(&boot_dir);
            store.list_instances().len()
        })
    });

    let fresh_dir = scratch("fresh");
    group.bench_function("fresh-load", |b| {
        b.iter(|| {
            let _ = fs::remove_dir_all(&fresh_dir);
            let store = durable(&fresh_dir);
            seed(&store, "g");
            store.set_persist("g", true).unwrap();
            for &entry in &update_stream() {
                store.update("g", "G", &[entry]).unwrap();
            }
            store.list_instances().len()
        })
    });
    let _ = fs::remove_dir_all(&boot_dir);
    let _ = fs::remove_dir_all(&fresh_dir);

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_persistence
}
criterion_main!(benches);
