//! Experiment E8 — degree growth across fragments (Proposition 6.1 and the
//! `e_exp` example of Section 5.2).
//!
//! Before timing, the harness prints the degree table that reproduces the
//! paper's qualitative claim: sum-MATLANG expressions compile to circuits of
//! constant/linear degree, the FO-MATLANG diagonal product to linear degree,
//! and the repeated-squaring for-MATLANG expression to exponential degree.
//! The timed series measures the cost of the degree analysis (compilation +
//! degree computation) per fragment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_algorithms::graphs;
use matlang_bench::quick_criterion;
use matlang_circuits::{expr_to_circuit, CircuitFamily};
use matlang_core::{Expr, MatrixType, Schema};

fn witness_expressions() -> Vec<(&'static str, Expr)> {
    vec![
        ("sum-matlang-trace", graphs::trace("G", "n")),
        ("sum-matlang-triangles", graphs::triangle_count("G", "n")),
        (
            "fo-matlang-diag-product",
            graphs::diagonal_product("G", "n"),
        ),
        (
            "for-matlang-repeated-squaring",
            Expr::for_init(
                "v",
                "n",
                "X",
                MatrixType::square("n"),
                Expr::var("G"),
                Expr::var("X").mm(Expr::var("X")),
            ),
        ),
    ]
}

fn print_degree_table() {
    let schema = Schema::new().with_var("G", MatrixType::square("n"));
    println!("\nE8 degree profile (max output degree of the compiled circuit):");
    println!(
        "{:<34} {:>6} {:>6} {:>6} {:>6}",
        "expression", "n=2", "n=3", "n=4", "n=5"
    );
    for (name, expr) in witness_expressions() {
        let degrees: Vec<String> = (2..=5)
            .map(|n| {
                expr_to_circuit(&expr, &schema, n)
                    .map(|c| c.max_output_degree().to_string())
                    .unwrap_or_else(|_| "-".to_string())
            })
            .collect();
        println!(
            "{:<34} {:>6} {:>6} {:>6} {:>6}",
            name, degrees[0], degrees[1], degrees[2], degrees[3]
        );
    }
    println!(
        "reference circuit families        : product-of-inputs degree(n)={:?}, repeated-squaring degree(n)={:?}\n",
        CircuitFamily::product_of_inputs().degree_profile(5),
        CircuitFamily::repeated_squaring().degree_profile(5),
    );
}

fn bench_degree_analysis(c: &mut Criterion) {
    print_degree_table();
    let schema = Schema::new().with_var("G", MatrixType::square("n"));
    let mut group = c.benchmark_group("E8_degree_analysis");
    for (name, expr) in witness_expressions() {
        group.bench_with_input(
            BenchmarkId::new("compile-and-measure", name),
            &expr,
            |b, e| b.iter(|| expr_to_circuit(e, &schema, 4).unwrap().max_output_degree()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_degree_analysis
}
criterion_main!(benches);
