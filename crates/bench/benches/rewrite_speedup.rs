//! Experiment E12 — the cost-based rewrite layer versus plain planning.
//!
//! Three series, each comparing `Engine::new()` (rewrites on) against
//! `Engine::builder().cost_rewrites(false)` (the PR-3 planner: CSE, hoisting and
//! representation choice, but no reordering/fusion):
//!
//! 1. **Matrix-chain reordering** — the skewed 4-factor chain
//!    `G·G·G·1(G)` over sparse average-degree-8 graphs up to n = 2000.
//!    Left-associated this materializes G² and G³; the DP right-associates
//!    it into three O(nnz) matvecs.  Acceptance: ≥2× at n = 2000 (the
//!    margin is enforced by `timing_guard_chain_reorder_speedup`).
//! 2. **Diag pushdown** — `A · diag(v)` over the dense backend.  The
//!    unfused dense kernel pays O(n³) because only zero *left* entries
//!    short-circuit; the fused column scaling is O(n²).  Acceptance: ≥2×
//!    (enforced by `timing_guard_diag_pushdown_speedup`).
//! 3. **Ones pushdown** — `1(G·G·G)`: the rewritten plan never computes
//!    the product at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_bench::sparse_criterion;
use matlang_core::{Expr, FunctionRegistry, Instance, SparseInstance};
use matlang_engine::Engine;
use matlang_matrix::{sparse_erdos_renyi, Matrix, MatrixRepr};
use matlang_semiring::{Boolean, Real};

const AVG_DEGREE: f64 = 8.0;

fn sparse_instance(n: usize, seed: u64) -> SparseInstance<Boolean> {
    Instance::new().with_dim("n", n).with_matrix(
        "G",
        MatrixRepr::from_sparse_auto(sparse_erdos_renyi::<Boolean>(n, AVG_DEGREE, seed)),
    )
}

fn bench_chain_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_chain_reorder");
    let registry = FunctionRegistry::<Boolean>::new();
    let g = || Expr::var("G");
    let chain = g().mm(g()).mm(g()).mm(g().ones());
    let rewriting = Engine::new();
    let baseline = Engine::builder().cost_rewrites(false).build();
    for &n in &[500usize, 1000, 2000] {
        let inst = sparse_instance(n, 31 + n as u64);
        group.bench_with_input(BenchmarkId::new("reordered", n), &n, |b, _| {
            b.iter(|| rewriting.evaluate(&chain, &inst, &registry).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("left-assoc", n), &n, |b, _| {
            b.iter(|| baseline.evaluate(&chain, &inst, &registry).unwrap())
        });
    }
    group.finish();
}

fn bench_diag_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_diag_pushdown");
    let registry = FunctionRegistry::standard_field();
    let expr = Expr::var("A").mm(Expr::var("v").diag());
    let rewriting = Engine::new();
    let baseline = Engine::builder().cost_rewrites(false).build();
    for &n in &[160usize, 320, 640] {
        let dense: Matrix<Real> = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|k| Real(((k % 7) + 1) as f64)).collect(),
        )
        .unwrap();
        let v: Matrix<Real> =
            Matrix::from_vec(n, 1, (0..n).map(|i| Real(((i % 5) + 1) as f64)).collect()).unwrap();
        let inst: Instance<Real> = Instance::new()
            .with_dim("n", n)
            .with_matrix("A", dense)
            .with_matrix("v", v);
        group.bench_with_input(BenchmarkId::new("fused-scaling", n), &n, |b, _| {
            b.iter(|| rewriting.evaluate(&expr, &inst, &registry).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("materialized-diag", n), &n, |b, _| {
            b.iter(|| baseline.evaluate(&expr, &inst, &registry).unwrap())
        });
    }
    group.finish();
}

fn bench_ones_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_ones_pushdown");
    let registry = FunctionRegistry::<Boolean>::new();
    let g = || Expr::var("G");
    let expr = g().mm(g()).mm(g()).ones();
    let rewriting = Engine::new();
    let baseline = Engine::builder().cost_rewrites(false).build();
    let n = 2000;
    let inst = sparse_instance(n, 77);
    group.bench_with_input(BenchmarkId::new("row-source", n), &n, |b, _| {
        b.iter(|| rewriting.evaluate(&expr, &inst, &registry).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("full-product", n), &n, |b, _| {
        b.iter(|| baseline.evaluate(&expr, &inst, &registry).unwrap())
    });
    group.finish();
}

fn run(c: &mut Criterion) {
    bench_chain_reorder(c);
    bench_diag_pushdown(c);
    bench_ones_pushdown(c);
}

criterion_group! {
    name = benches;
    config = sparse_criterion();
    targets = run
}
criterion_main!(benches);
