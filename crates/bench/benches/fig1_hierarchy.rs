//! Experiments E1 / E10 — Figure 1 witnesses: the 4-clique query
//! (Example 3.3) in sum-MATLANG versus the brute-force baseline, and the
//! trace / diagonal-product queries that separate sum-MATLANG from
//! FO-MATLANG.
//!
//! Series: per graph size, evaluation time of the sum-MATLANG 4-clique
//! expression (O(n⁴) loop iterations in the interpreter) versus the native
//! enumeration.  Expected shape: both grow polynomially; the interpreter pays
//! a constant-factor overhead per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_algorithms::{baseline, graphs, standard_registry};
use matlang_bench::quick_criterion;
use matlang_core::{evaluate, Instance};
use matlang_matrix::{random_adjacency, Matrix};
use matlang_semiring::Real;

fn symmetric_graph(n: usize, seed: u64) -> Matrix<Real> {
    let adjacency: Matrix<Real> = random_adjacency(n, 0.5, seed);
    adjacency.add(&adjacency.transpose()).unwrap().map(|v| {
        if v.0 > 0.0 {
            Real(1.0)
        } else {
            Real(0.0)
        }
    })
}

fn bench_four_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_four_clique");
    let registry = standard_registry::<Real>();
    let expr = graphs::four_clique("G", "n");
    for &n in &[5usize, 7] {
        let graph = symmetric_graph(n, 13 + n as u64);
        let instance = Instance::new()
            .with_dim("n", n)
            .with_matrix("G", graph.clone());
        group.bench_with_input(BenchmarkId::new("sum-matlang-expression", n), &n, |b, _| {
            b.iter(|| evaluate(&expr, &instance, &registry).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline-enumeration", n), &n, |b, _| {
            b.iter(|| baseline::has_four_clique(&graph))
        });
    }
    group.finish();
}

fn bench_fragment_witnesses(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_fragment_witnesses");
    let registry = standard_registry::<Real>();
    let n = 12;
    let graph: Matrix<Real> = random_adjacency(n, 0.4, 99);
    let instance = Instance::new().with_dim("n", n).with_matrix("G", graph);
    let witnesses = [
        ("matlang-gram", Expr::var("G").t().mm(Expr::var("G"))),
        ("sum-matlang-trace", graphs::trace("G", "n")),
        (
            "fo-matlang-diag-product",
            graphs::diagonal_product("G", "n"),
        ),
        ("prod-matlang-power", Expr::mprod("v", "n", Expr::var("G"))),
    ];
    for (name, expr) in witnesses {
        group.bench_function(name, |b| {
            b.iter(|| evaluate(&expr, &instance, &registry).unwrap())
        });
    }
    group.finish();
}

use matlang_core::Expr;

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_four_clique, bench_fragment_witnesses
}
criterion_main!(benches);
