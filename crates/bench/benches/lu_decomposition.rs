//! Experiment E5 — LU and PLU decomposition (Propositions 4.1 and 4.2).
//!
//! Series: per matrix size, time to produce the `L`/`U` factors with the
//! for-MATLANG expressions versus Gaussian elimination in plain Rust.
//! Expected shape: both polynomial; the expression pays the interpreter
//! overhead of re-evaluating the order machinery and the column loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_algorithms::{baseline, lu, standard_registry};
use matlang_bench::{quick_criterion, SMALL_SIZES};
use matlang_core::{evaluate, Instance};
use matlang_matrix::{random_invertible, Matrix};
use matlang_semiring::Real;

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_lu_decomposition");
    let registry = standard_registry::<Real>();
    let upper = lu::upper_factor("A", "n");
    let upper_pivoted = lu::upper_factor_pivoted("A", "n");

    for &n in SMALL_SIZES {
        let a: Matrix<Real> = random_invertible(n, 31 + n as u64);
        let instance = Instance::new().with_dim("n", n).with_matrix("A", a.clone());

        group.bench_with_input(BenchmarkId::new("for-matlang-lu", n), &n, |b, _| {
            b.iter(|| evaluate(&upper, &instance, &registry).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("for-matlang-plu", n), &n, |b, _| {
            b.iter(|| evaluate(&upper_pivoted, &instance, &registry).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline-gaussian", n), &n, |b, _| {
            b.iter(|| baseline::lu_decompose(&a).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline-plu", n), &n, |b, _| {
            b.iter(|| baseline::plu_decompose(&a).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_lu
}
criterion_main!(benches);
