//! Experiment E13 — delta-driven view maintenance versus
//! invalidate-and-recompute on an UPDATE+EXEC loop.
//!
//! The workload is the acceptance point of ISSUE 6: a standing two-hop
//! aggregate `1ᵀ·((G·G)·1)` over an n = 10 000, average-degree-24 Boolean
//! adjacency matrix, updated one inserted edge at a time.  Two series:
//!
//! 1. **engine-level** — the raw `engine::delta` machinery: apply the
//!    edge, `propagate` through the plan DAG (or invalidate the
//!    dependents), re-execute through the persistent cache.  The delta
//!    side patches the cached G·G instead of re-running the SpGEMM; the
//!    release-mode gap is pinned ≥100× by the `timing_guard` test in
//!    `crates/engine/tests/delta_quality.rs`.
//! 2. **store-level** — the same loop through the server's `Store`
//!    (UPDATE + EXEC as the wire handlers run them, without socket I/O),
//!    on a Boolean instance versus a Real one.  Boolean takes the delta
//!    path; ℝ's non-idempotent ⊕ forces the invalidation fallback, so the
//!    pair shows what the exactness gate is worth end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use matlang_bench::sparse_criterion;
use matlang_core::{Expr, FunctionRegistry, Instance, SparseInstance};
use matlang_engine::delta::{propagate, DeltaOverlay};
use matlang_engine::{Engine, Executor, NodeCache, Plan};
use matlang_matrix::{sparse_erdos_renyi, MatrixRepr, SparseMatrix};
use matlang_semiring::{Boolean, Semiring};
use matlang_server::{SemiringKind, Store};

const N: usize = 10_000;
const AVG_DEGREE: f64 = 24.0;

fn standing_query() -> Expr {
    let g = || Expr::var("G");
    g().ones().t().mm(g().mm(g()).mm(g().ones()))
}

fn build() -> (SparseInstance<Boolean>, Plan) {
    let inst: SparseInstance<Boolean> = Instance::new().with_dim("n", N).with_matrix(
        "G",
        MatrixRepr::from_sparse_auto(sparse_erdos_renyi(N, AVG_DEGREE, 4242)),
    );
    let engine = Engine::builder().cost_rewrites(false).build();
    let query = standing_query();
    let mut plan = engine.plan(std::slice::from_ref(&query), &inst);
    plan.mark_all_cacheable();
    (inst, plan)
}

fn exec_root(
    plan: &Plan,
    inst: &SparseInstance<Boolean>,
    registry: &FunctionRegistry<Boolean>,
    cache: NodeCache<MatrixRepr<Boolean>>,
) -> NodeCache<MatrixRepr<Boolean>> {
    let mut exec = Executor::with_cache(plan, inst, registry, Default::default(), cache);
    exec.run_shared(plan.roots()[0]).expect("exec");
    exec.into_cache()
}

fn fresh_edge(round: usize) -> (usize, usize) {
    ((round * 13 + 1) % N, (round * 29 + 7) % N)
}

fn bench_engine_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("E13_delta_vs_invalidate");
    let registry = FunctionRegistry::<Boolean>::new();

    {
        let (mut inst, plan) = build();
        let mut cache: NodeCache<MatrixRepr<Boolean>> = vec![None; plan.nodes().len()];
        let mut overlay: DeltaOverlay<Boolean> = DeltaOverlay::new(plan.nodes().len());
        cache = exec_root(&plan, &inst, &registry, cache);
        let mut round = 0usize;
        group.bench_function("delta-propagate", |b| {
            b.iter(|| {
                let (i, j) = fresh_edge(round);
                round += 1;
                inst.matrix_mut("G")
                    .unwrap()
                    .set_entry(i, j, Boolean::one())
                    .unwrap();
                let update =
                    SparseMatrix::from_triplets(N, N, vec![(i, j, Boolean::one())]).unwrap();
                propagate(&plan, &mut cache, &mut overlay, "G", &update);
                overlay.flush_for_roots(&mut cache, plan.roots());
                cache = exec_root(&plan, &inst, &registry, std::mem::take(&mut cache));
            })
        });
    }

    {
        let (mut inst, plan) = build();
        let mut cache: NodeCache<MatrixRepr<Boolean>> = vec![None; plan.nodes().len()];
        cache = exec_root(&plan, &inst, &registry, cache);
        let mut round = 0usize;
        group.bench_function("invalidate-recompute", |b| {
            b.iter(|| {
                let (i, j) = fresh_edge(round);
                round += 1;
                inst.matrix_mut("G")
                    .unwrap()
                    .set_entry(i, j, Boolean::one())
                    .unwrap();
                plan.invalidate_dependents_in(&mut cache, "G");
                cache = exec_root(&plan, &inst, &registry, std::mem::take(&mut cache));
            })
        });
    }

    group.finish();
}

fn bench_store_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("E13_store_update_exec");
    for (label, kind) in [
        ("boolean-delta", SemiringKind::Boolean),
        ("real-fallback", SemiringKind::Real),
    ] {
        let store = Store::new();
        store.create_instance_with("g", true, kind).unwrap();
        store.set_dim("g", "n", N).unwrap();
        let edges: Vec<(usize, usize, f64)> = sparse_erdos_renyi::<Boolean>(N, AVG_DEGREE, 4242)
            .iter_entries()
            .map(|(i, j, _)| (i, j, 1.0))
            .collect();
        store.load_matrix("g", "G", N, N, edges).unwrap();
        let qid = store
            .prepare("g", "(transpose(ones(G)) * ((G * G) * ones(G)))")
            .unwrap()
            .qid;
        store.exec("g", &[qid]).unwrap();
        let mut round = 0usize;
        group.bench_function(label, |b| {
            b.iter(|| {
                let (i, j) = fresh_edge(round);
                round += 1;
                store.update("g", "G", &[(i, j, 1.0)]).unwrap();
                store.exec("g", &[qid]).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sparse_criterion();
    targets = bench_engine_delta, bench_store_delta
}
criterion_main!(benches);
