//! Experiment E3 — FO-MATLANG ≡ weighted logics (Proposition 6.7).
//!
//! Series: per size, the time to evaluate the same query (a) as an
//! FO-MATLANG expression over matrices and (b) as the translated weighted
//! logic formula over `WL(I)`.  Expected shape: both are Θ(n²)–Θ(n³) for the
//! queries below; the logic evaluator pays the per-assignment interpretation
//! overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_algorithms::graphs;
use matlang_bench::{quick_criterion, SMALL_SIZES};
use matlang_core::{evaluate, FunctionRegistry, Instance, MatrixType, Schema};
use matlang_matrix::{random_matrix, RandomMatrixConfig};
use matlang_semiring::Nat;
use matlang_wl::{encode_instance_as_structure, matlang_to_wl};
use std::collections::HashMap;

fn bench_wl_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_fo_matlang_vs_wl");
    let schema = Schema::new().with_var("G", MatrixType::square("n"));
    let registry = FunctionRegistry::<Nat>::new().with_semiring_ops();
    let queries = [
        ("diag-product", graphs::diagonal_product("G", "n")),
        ("trace", graphs::trace("G", "n")),
    ];

    for &n in SMALL_SIZES {
        let cfg = RandomMatrixConfig {
            seed: 23 + n as u64,
            min_value: 0.0,
            max_value: 3.0,
            integer_entries: true,
            ..Default::default()
        };
        let instance: Instance<Nat> = Instance::new()
            .with_dim("n", n)
            .with_matrix("G", random_matrix(n, n, &cfg));
        let structure = encode_instance_as_structure(&schema, &instance).unwrap();

        for (name, expr) in &queries {
            let formula = matlang_to_wl(expr, &schema).unwrap();
            let label = format!("{name}-n{n}");
            group.bench_with_input(
                BenchmarkId::new("fo-matlang-interpreter", &label),
                &n,
                |b, _| b.iter(|| evaluate(expr, &instance, &registry).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new("weighted-logic-evaluator", &label),
                &n,
                |b, _| b.iter(|| formula.evaluate(&structure, &HashMap::new()).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_wl_equivalence
}
criterion_main!(benches);
