//! Observability overhead on the server's hot path.
//!
//! Three views of the cost of the `matlang_obs` layer:
//!
//! 1. **warm-exec-obs-on / warm-exec-obs-off** — the load-bearing pair: a
//!    warm prepared `EXEC` over real TCP with the obs layer enabled versus
//!    disabled ([`matlang_obs::set_enabled`]).  The release guard test
//!    (`crates/server/tests/obs_overhead_guard.rs`) pins the ratio of
//!    these at ≤5 %; the bench records the absolute numbers over time.
//! 2. **trace-begin-drop** — one full per-request trace cycle in
//!    isolation: id allocation, inline-label copy, clock reads, ring
//!    bookkeeping.
//! 3. **counter-inc / histogram-observe** — the registry primitives the
//!    instrumented kernels and verbs lean on.

use criterion::{criterion_group, criterion_main, Criterion};
use matlang_bench::quick_criterion;
use matlang_server::{Client, Server, ServerConfig};

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    let handle = Server::spawn(ServerConfig::default()).expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", 64).unwrap();
    client.gen_erdos_renyi("g", "G", "n", 4.0, 7).unwrap();
    let qid = client
        .prepare("g", "(transpose(ones(G)) * (G * ones(G)))")
        .unwrap();
    client.exec("g", qid).unwrap(); // warm the root

    matlang_obs::set_enabled(true);
    group.bench_function("warm-exec-obs-on", |b| {
        b.iter(|| client.exec("g", qid).unwrap().entries.len())
    });
    matlang_obs::set_enabled(false);
    group.bench_function("warm-exec-obs-off", |b| {
        b.iter(|| client.exec("g", qid).unwrap().entries.len())
    });
    matlang_obs::set_enabled(true);
    handle.shutdown();

    group.bench_function("trace-begin-drop", |b| {
        b.iter(|| {
            let _t = matlang_obs::trace::begin(matlang_obs::trace::next_id(), "EXEC g 0");
        })
    });
    group.bench_function("counter-inc", |b| {
        b.iter(|| matlang_obs::counter!("bench_obs_counter").inc())
    });
    group.bench_function("histogram-observe", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(97);
            matlang_obs::histogram!("bench_obs_histogram_us").observe(v & 0xffff)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_obs_overhead
}
criterion_main!(benches);
