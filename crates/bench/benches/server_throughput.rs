//! Server throughput: prepared `EXEC` versus per-request parse+plan+eval.
//!
//! An in-process server holds a 1 000-node average-degree-8 random graph
//! and a repeated-query workload runs against it over real TCP
//! connections:
//!
//! 1. **prepared-exec** — the query is `PREPARE`d once; each request is an
//!    `EXEC` answered through the instance's persistent memo cache (a
//!    single root cache hit once warm).
//! 2. **oneshot-query** — each request is a `QUERY` carrying the full
//!    query text: parse, typecheck, plan and evaluate per request, no
//!    cross-request cache.
//! 3. **exec-after-update** — each request is one incremental `UPDATE` of
//!    a `G` edge followed by an `EXEC`: the dependent plan subgraph
//!    recomputes, everything else stays warm — the steady state of a
//!    standing query over a mutating graph.
//!
//! The acceptance bar for the subsystem is prepared-exec beating
//! oneshot-query by ≥3× on this repeated-query workload; the integration
//! suite (`crates/server/tests/server_integration.rs`) enforces the same
//! bound as a hard test, so regressions fail `cargo test`, not just the
//! bench report.

use criterion::{criterion_group, criterion_main, Criterion};
use matlang_bench::sparse_criterion;
use matlang_server::{Client, Server, ServerConfig};

const N: usize = 1_000;
const QUERY: &str = "(transpose(ones(G)) * (((G * G) * (G * G)) * ones(G)))";

fn with_server(run: impl FnOnce(&mut Client)) {
    let handle = Server::spawn(ServerConfig::default()).expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", N).unwrap();
    client.gen_erdos_renyi("g", "G", "n", 8.0, 42).unwrap();
    run(&mut client);
    handle.shutdown();
}

fn bench_prepared_vs_oneshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    with_server(|client| {
        let qid = client.prepare("g", QUERY).unwrap();
        let warm = client.exec("g", qid).unwrap();
        let oneshot = client.query("g", QUERY).unwrap();
        assert_eq!(warm.entries, oneshot.entries, "paths must agree");

        group.bench_function("prepared-exec", |b| {
            b.iter(|| {
                let result = client.exec("g", qid).unwrap();
                assert_eq!(result.stats.cache_misses, 0, "must stay warm");
                result.entries.len()
            })
        });
        group.bench_function("oneshot-query", |b| {
            b.iter(|| client.query("g", QUERY).unwrap().entries.len())
        });
    });
    group.finish();
}

fn bench_exec_after_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_incremental_update");
    with_server(|client| {
        let qid = client.prepare("g", QUERY).unwrap();
        client.exec("g", qid).unwrap();
        let mut round = 0usize;
        group.bench_function("update-then-exec", |b| {
            b.iter(|| {
                round += 1;
                let node = round % N;
                client
                    .update("g", "G", &[(node, (node * 13 + 1) % N, 1.0)])
                    .unwrap();
                let result = client.exec("g", qid).unwrap();
                assert!(result.stats.cache_misses > 0, "G subgraph recomputes");
                result.entries.len()
            })
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = sparse_criterion();
    targets = bench_prepared_vs_oneshot, bench_exec_after_update
}
criterion_main!(benches);
