//! Experiment E7 — the for-MATLANG ↔ arithmetic-circuit correspondence
//! (Theorems 5.1 / 5.3).
//!
//! Series: per size, (a) time to *compile* a for-MATLANG expression to a
//! circuit, (b) time to evaluate the compiled circuit, (c) time to evaluate
//! the original expression with the interpreter, and (d) time to evaluate a
//! decompiled reference circuit through the interpreter.  Expected shape:
//! compiled-circuit evaluation beats the interpreter (loops are unrolled away)
//! at the cost of a one-off compilation that grows with the unrolling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_algorithms::{graphs, standard_registry};
use matlang_bench::quick_criterion;
use matlang_circuits::{circuit_to_expr, expr_to_circuit, CircuitFamily};
use matlang_core::{evaluate, Instance, MatrixType, Schema};
use matlang_matrix::{random_matrix, Matrix, RandomMatrixConfig};
use matlang_semiring::Real;

fn bench_compile_and_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_circuits");
    let registry = standard_registry::<Real>();
    let schema = Schema::new().with_var("G", MatrixType::square("n"));
    let trace = graphs::trace("G", "n");
    let fw = graphs::transitive_closure_fw("G", "n");

    for &n in &[3usize, 5] {
        let g: Matrix<Real> = random_matrix(n, n, &RandomMatrixConfig::seeded(5 + n as u64));
        let instance = Instance::new().with_dim("n", n).with_matrix("G", g);

        group.bench_with_input(BenchmarkId::new("compile-trace", n), &n, |b, _| {
            b.iter(|| expr_to_circuit(&trace, &schema, n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("compile-floyd-warshall", n), &n, |b, _| {
            b.iter(|| expr_to_circuit(&fw, &schema, n).unwrap())
        });

        let trace_circuit = expr_to_circuit(&trace, &schema, n).unwrap();
        let fw_circuit = expr_to_circuit(&fw, &schema, n).unwrap();
        group.bench_with_input(BenchmarkId::new("evaluate-circuit-trace", n), &n, |b, _| {
            b.iter(|| trace_circuit.evaluate(&instance).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("evaluate-circuit-floyd-warshall", n),
            &n,
            |b, _| b.iter(|| fw_circuit.evaluate(&instance).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("evaluate-interpreter-trace", n),
            &n,
            |b, _| b.iter(|| evaluate(&trace, &instance, &registry).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("evaluate-interpreter-floyd-warshall", n),
            &n,
            |b, _| b.iter(|| evaluate(&fw, &instance, &registry).unwrap()),
        );
    }
    group.finish();
}

fn bench_decompiled_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_decompiled_circuits");
    let registry = standard_registry::<Real>();
    for &n in &[4usize, 8] {
        let circuit = CircuitFamily::sum_of_squares().member(n);
        let expr = circuit_to_expr(&circuit, "n");
        let inputs: Vec<Real> = (0..n).map(|i| Real(i as f64 + 1.0)).collect();
        let instance: Instance<Real> = Instance::new()
            .with_dim("n", n)
            .with_matrix("v", Matrix::from_vec(n, 1, inputs.clone()).unwrap());

        group.bench_with_input(BenchmarkId::new("direct-circuit", n), &n, |b, _| {
            b.iter(|| circuit.evaluate(&inputs).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("two-stack-circuit", n), &n, |b, _| {
            b.iter(|| circuit.evaluate_two_stack(&inputs).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("decompiled-expression", n), &n, |b, _| {
            b.iter(|| evaluate(&expr, &instance, &registry).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_compile_and_evaluate, bench_decompiled_circuits
}
criterion_main!(benches);
