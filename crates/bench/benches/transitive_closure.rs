//! Experiment E4 — transitive closure (Example 3.5 and Section 6.3).
//!
//! Series: for each graph size `n`, the time to compute the transitive
//! closure with (a) the for-MATLANG Floyd–Warshall expression, (b) the
//! prod-MATLANG `(I+A)ⁿ` expression and (c) the native Rust Warshall
//! baseline.  Expected shape: baseline ≪ prod-MATLANG < Floyd–Warshall
//! expression, with the interpreter gap growing polynomially in `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matlang_algorithms::{baseline, graphs, standard_registry};
use matlang_bench::{quick_criterion, SMALL_SIZES};
use matlang_core::{evaluate, Instance};
use matlang_matrix::{random_adjacency, Matrix};
use matlang_semiring::Real;

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_transitive_closure");
    let registry = standard_registry::<Real>();
    let fw = graphs::transitive_closure_fw_bool("G", "n");
    let prod = graphs::transitive_closure_prod("G", "n");

    for &n in SMALL_SIZES {
        let adjacency: Matrix<Real> = random_adjacency(n, 0.3, 7 + n as u64);
        let instance = Instance::new()
            .with_dim("n", n)
            .with_matrix("G", adjacency.clone());

        group.bench_with_input(
            BenchmarkId::new("for-matlang-floyd-warshall", n),
            &n,
            |b, _| b.iter(|| evaluate(&fw, &instance, &registry).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("prod-matlang-power", n), &n, |b, _| {
            b.iter(|| evaluate(&prod, &instance, &registry).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline-warshall", n), &n, |b, _| {
            b.iter(|| baseline::transitive_closure(&adjacency, false))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_transitive_closure
}
criterion_main!(benches);
