//! Shared configuration for the benchmark harness.
//!
//! Every bench target in `benches/` corresponds to one experiment of
//! `EXPERIMENTS.md`.  The benchmarks compare the for-MATLANG interpreter (and
//! its translations into circuits / RA⁺_K / WL) against the native Rust
//! baselines on the same workloads; the point is the *shape* of the
//! comparison — who wins, by what factor, and how the gap scales with the
//! matrix dimension — not absolute numbers.

use criterion::Criterion;
use std::time::Duration;

/// A Criterion configuration tuned for short, repeatable runs of the whole
/// suite (`cargo bench --workspace` finishes in a few minutes).
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(700))
        .configure_from_args()
}

/// A Criterion configuration for the large sparse-vs-dense experiments,
/// where a single dense iteration can take hundreds of milliseconds:
/// minimal warm-up and a small measurement budget, so the suite still
/// finishes quickly.  (`sample_size` stays at 10, the minimum the real
/// criterion crate accepts, so swapping the vendored stand-in back keeps
/// working.)
pub fn sparse_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(30))
        .measurement_time(Duration::from_millis(300))
        .configure_from_args()
}

/// The matrix dimensions swept by the scaling experiments.
pub const SMALL_SIZES: &[usize] = &[4, 6, 8];

/// Dimensions for the cheaper interpreter micro-benchmarks.
pub const MICRO_SIZES: &[usize] = &[8, 16, 32];

/// Graph sizes for the sparse-vs-dense experiments (E10); the last entry is
/// the acceptance point of the sparse subsystem (2000 nodes, average degree
/// 8).
pub const SPARSE_SIZES: &[usize] = &[500, 1000, 2000];

/// Graph sizes for the sparse-vs-dense transitive-closure sweep.
pub const CLOSURE_SIZES: &[usize] = &[200, 400, 800];

/// Graph sizes for the backend-aware evaluator (WL workload) sweep.
pub const EVAL_SIZES: &[usize] = &[64, 128, 256];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_criterion_builds() {
        let _ = quick_criterion();
        let _ = sparse_criterion();
        assert!(SMALL_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(MICRO_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(SPARSE_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(CLOSURE_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(EVAL_SIZES.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn timing_guard_sparse_spmm_beats_dense_matmul() {
        // A coarse wall-clock guard for the sparse subsystem's acceptance
        // point: squaring a 2000-node, average-degree-8 Boolean adjacency
        // matrix must be faster in CSR than dense.  The release-mode margin
        // is ~3–4× (the dense kernel's zero-skip already removes most of the
        // Θ(n³) work) and grows with n, so we compare the *minimum* of three
        // timed rounds per kernel to shield against scheduler noise.
        use matlang_matrix::{sparse_erdos_renyi, SparseMatrix};
        use matlang_semiring::Boolean;
        use std::time::Instant;

        let n = 2000;
        let sparse: SparseMatrix<Boolean> = sparse_erdos_renyi(n, 8.0, 42);
        let dense = sparse.to_dense();

        let min_of = |rounds: usize, f: &dyn Fn()| {
            (0..rounds)
                .map(|_| {
                    let start = Instant::now();
                    f();
                    start.elapsed()
                })
                .min()
                .expect("at least one round")
        };

        // One untimed round each to warm caches, then min-of-3.
        let s = sparse.matmul(&sparse).unwrap();
        let d = dense.matmul(&dense).unwrap();
        assert_eq!(s.to_dense(), d, "kernels must agree before comparing speed");
        let sparse_elapsed = min_of(3, &|| {
            sparse.matmul(&sparse).unwrap();
        });
        let dense_elapsed = min_of(3, &|| {
            dense.matmul(&dense).unwrap();
        });

        assert!(
            sparse_elapsed < dense_elapsed,
            "sparse SpMM ({sparse_elapsed:?}) should beat dense matmul ({dense_elapsed:?})"
        );
    }
}
