//! Shared configuration for the benchmark harness.
//!
//! Every bench target in `benches/` corresponds to one experiment of
//! `EXPERIMENTS.md`.  The benchmarks compare the for-MATLANG interpreter (and
//! its translations into circuits / RA⁺_K / WL) against the native Rust
//! baselines on the same workloads; the point is the *shape* of the
//! comparison — who wins, by what factor, and how the gap scales with the
//! matrix dimension — not absolute numbers.

use criterion::Criterion;
use std::time::Duration;

/// A Criterion configuration tuned for short, repeatable runs of the whole
/// suite (`cargo bench --workspace` finishes in a few minutes).
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(700))
        .configure_from_args()
}

/// The matrix dimensions swept by the scaling experiments.
pub const SMALL_SIZES: &[usize] = &[4, 6, 8];

/// Dimensions for the cheaper interpreter micro-benchmarks.
pub const MICRO_SIZES: &[usize] = &[8, 16, 32];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_criterion_builds() {
        let _ = quick_criterion();
        assert!(SMALL_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(MICRO_SIZES.windows(2).all(|w| w[0] < w[1]));
    }
}
