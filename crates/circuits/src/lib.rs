//! Arithmetic circuits and their correspondence with for-MATLANG (Section 5).
//!
//! * [`circuit`] — the circuit data structure: sum/product gates with
//!   unbounded fan-in, inputs and constants, plus size / depth / degree.
//! * [`eval`] — two evaluators: a straightforward memoized one and the
//!   two-stack, depth-first evaluator that mirrors the paper's Algorithms
//!   1–3 (the machine that Theorem 5.1 simulates inside for-MATLANG).
//! * [`family`] — circuit *families* `{Φₙ}` given by a generator function of
//!   `n`, the operational counterpart of the paper's LOGSPACE-uniform
//!   families, together with degree/size growth probes.
//! * [`compile`] — `expr_to_circuit` (Theorem 5.3): compile a for-MATLANG
//!   expression and an input size `n` into an arithmetic circuit over
//!   matrices.
//! * [`decompile`] — `circuit_to_expr` (the content of Theorem 5.1 for a
//!   fixed size): translate a circuit `Φₙ` into a for-MATLANG expression
//!   over a single input-vector variable.

pub mod circuit;
pub mod compile;
pub mod decompile;
pub mod eval;
pub mod family;

pub use circuit::{Circuit, CircuitError, Gate, GateId};
pub use compile::{expr_to_circuit, CompileError, MatrixCircuit};
pub use decompile::circuit_to_expr;
pub use family::CircuitFamily;
