//! `circuit_to_expr` — the content of Theorem 5.1 for a fixed input size:
//! every arithmetic circuit `Φₙ` over inputs `x₁, …, xₙ` translates into a
//! for-MATLANG expression over a single vector variable `v` (of type
//! `(α, 1)`) such that evaluating the expression on an instance with
//! `D(α) = n` and `mat(v) = (a₁, …, aₙ)ᵀ` yields `Φₙ(a₁, …, aₙ)`.
//!
//! The paper's proof simulates the two-stack evaluation algorithm with a
//! Turing-machine encoding in order to obtain a *single* expression that is
//! uniform in `n`.  As documented in DESIGN.md, we instead compile each
//! circuit size directly: every gate becomes a `let`-bound scalar
//! subexpression (input gates select their entry of `v` through the order
//! machinery `Nextⁱ·e_min` of Appendix B.1), which preserves exactly the
//! semantic content that can be tested — `⟦e_Φ⟧(I) = Φₙ(a₁, …, aₙ)`.

use crate::circuit::{Circuit, Gate};
use matlang_algorithms::order;
use matlang_core::Expr;

/// The name given to the input-vector variable of the generated expression.
pub const INPUT_VECTOR: &str = "v";

/// Translates a single-output circuit into a for-MATLANG expression over the
/// vector variable [`INPUT_VECTOR`] with size symbol `dim`.
///
/// Every gate `gᵢ` becomes a `let`-bound scalar `_gᵢ`; input gate `x_j`
/// becomes `(Nextʲ·e_min)ᵀ · v`; sum/product gates combine their children
/// with `+` / `·` on `1 × 1` matrices.  The resulting expression has size
/// linear in the circuit size.
pub fn circuit_to_expr(circuit: &Circuit, dim: &str) -> Expr {
    let gate_name = |i: usize| format!("_g{i}");
    let output = circuit
        .single_output()
        .or_else(|| circuit.outputs().first().copied())
        .unwrap_or(circuit.num_gates().saturating_sub(1));

    // Build from the innermost body (the output reference) outwards, wrapping
    // one `let` per gate in reverse topological (insertion) order.
    let mut body = Expr::var(gate_name(output));
    for (i, gate) in circuit.gates().iter().enumerate().rev() {
        let value = match gate {
            Gate::Input(j) => order::e_min_plus(*j, dim).t().mm(Expr::var(INPUT_VECTOR)),
            Gate::Const(c) => Expr::lit(*c),
            Gate::Add(children) => children
                .iter()
                .map(|&c| Expr::var(gate_name(c)))
                .reduce(|a, b| a.add(b))
                .unwrap_or_else(|| Expr::lit(0.0)),
            Gate::Mul(children) => children
                .iter()
                .map(|&c| Expr::var(gate_name(c)))
                .reduce(|a, b| a.mm(b))
                .unwrap_or_else(|| Expr::lit(1.0)),
        };
        body = Expr::let_in(gate_name(i), value, body);
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::expr_to_circuit;
    use crate::family::CircuitFamily;
    use matlang_algorithms::standard_registry;
    use matlang_core::{evaluate, typecheck, Instance, MatrixType, Schema};
    use matlang_matrix::Matrix;
    use matlang_semiring::Real;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vector_schema() -> Schema {
        Schema::new().with_var(INPUT_VECTOR, MatrixType::vector("n"))
    }

    fn eval_expr(expr: &Expr, inputs: &[f64]) -> f64 {
        let n = inputs.len();
        let data: Vec<Real> = inputs.iter().map(|&v| Real(v)).collect();
        let inst: Instance<Real> = Instance::new()
            .with_dim("n", n)
            .with_matrix(INPUT_VECTOR, Matrix::from_vec(n, 1, data).unwrap());
        evaluate(expr, &inst, &standard_registry())
            .unwrap()
            .as_scalar()
            .unwrap()
            .0
    }

    #[test]
    fn generated_expressions_typecheck_as_scalars() {
        let circuit = CircuitFamily::sum_of_squares().member(3);
        let expr = circuit_to_expr(&circuit, "n");
        assert_eq!(
            typecheck(&expr, &vector_schema()).unwrap(),
            MatrixType::scalar()
        );
    }

    #[test]
    fn reference_families_decompile_correctly() {
        let inputs = [2.0, 3.0, 4.0, 5.0];
        let cases: Vec<(CircuitFamily, f64)> = vec![
            (CircuitFamily::sum_of_inputs(), 14.0),
            (CircuitFamily::product_of_inputs(), 120.0),
            (CircuitFamily::sum_of_squares(), 54.0),
            (CircuitFamily::balanced_product(), 120.0),
        ];
        for (family, expected) in cases {
            let circuit = family.member(4);
            let expr = circuit_to_expr(&circuit, "n");
            let got = eval_expr(&expr, &inputs);
            assert!(
                (got - expected).abs() < 1e-9,
                "{}: got {got}, expected {expected}",
                family.name()
            );
        }
    }

    #[test]
    fn decompiled_circuit_agrees_with_circuit_evaluation_on_random_circuits() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            // Random DAG over 4 inputs.
            let n = 4usize;
            let mut circuit = Circuit::new();
            let mut gates: Vec<usize> = (0..n).map(|i| circuit.input(i)).collect();
            gates.push(circuit.constant(1.0));
            for _ in 0..8 {
                let a = gates[rng.gen_range(0..gates.len())];
                let b = gates[rng.gen_range(0..gates.len())];
                let g = if rng.gen_bool(0.5) {
                    circuit.add(vec![a, b]).unwrap()
                } else {
                    circuit.mul(vec![a, b]).unwrap()
                };
                gates.push(g);
            }
            circuit.mark_output(*gates.last().unwrap()).unwrap();

            let inputs: Vec<f64> = (0..n).map(|_| rng.gen_range(-3..4) as f64).collect();
            let reals: Vec<Real> = inputs.iter().map(|&v| Real(v)).collect();
            let direct = circuit.evaluate(&reals).unwrap()[0].0;
            let expr = circuit_to_expr(&circuit, "n");
            let via_expr = eval_expr(&expr, &inputs);
            assert!(
                (direct - via_expr).abs() < 1e-6,
                "direct {direct} vs expression {via_expr}"
            );
        }
    }

    #[test]
    fn roundtrip_expression_to_circuit_and_back() {
        // Start from a MATLANG expression over a vector, compile it to a
        // circuit (Thm 5.3), decompile the circuit back to an expression
        // (Thm 5.1) and check all three agree.
        let original = Expr::var(INPUT_VECTOR)
            .t()
            .mm(Expr::var(INPUT_VECTOR))
            .add(Expr::lit(2.0));
        let schema = vector_schema();
        let n = 3;
        let circuit = expr_to_circuit(&original, &schema, n).unwrap();
        let back = circuit_to_expr(circuit.circuit(), "n");

        let inputs = [1.0, -2.0, 3.0];
        let original_value = eval_expr(&original, &inputs);
        let back_value = eval_expr(&back, &inputs);
        assert!((original_value - back_value).abs() < 1e-9);
        assert!((original_value - 16.0).abs() < 1e-9);
    }

    #[test]
    fn empty_gate_lists_become_constants() {
        let mut c = Circuit::new();
        let s = c.add(vec![]).unwrap();
        let m = c.mul(vec![]).unwrap();
        let total = c.add(vec![s, m]).unwrap();
        c.mark_output(total).unwrap();
        let expr = circuit_to_expr(&c, "n");
        // The expression never touches v's entries, but still needs the
        // instance to size the (unused) order machinery.
        assert_eq!(eval_expr(&expr, &[0.0, 0.0]), 1.0);
    }
}
