//! `expr_to_circuit` — Theorem 5.3: every for-MATLANG expression (over the
//! square-matrix schema convention of Section 5) translates, for each input
//! size `n`, into an arithmetic circuit over matrices computing the same
//! function.
//!
//! The compilation follows the paper's inductive construction: each
//! (sub)expression becomes a block of gates computing every entry of its
//! value; for-loops are unrolled over the `n` canonical vectors, whose
//! entries become constant gates.  The generator `n ↦ expr_to_circuit(e, n)`
//! is the operational form of the uniform circuit family of Theorem 5.3 (see
//! DESIGN.md for the uniformity substitution).

use crate::circuit::{Circuit, CircuitError, GateId};
use matlang_core::{Dim, Expr, Instance, MatrixType, Schema};
use matlang_matrix::Matrix;
use matlang_semiring::Semiring;
use std::collections::HashMap;
use std::fmt;

/// Errors raised during compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A free variable of the expression is not declared in the schema.
    UnknownVariable {
        /// The undeclared variable.
        name: String,
    },
    /// Pointwise function applications have no circuit counterpart
    /// (Section 5 works with for-MATLANG[∅]; Section 5.3 discusses division,
    /// which is eliminated rather than compiled).
    UnsupportedFunction {
        /// The function name that was encountered.
        name: String,
    },
    /// The expression mixes more than one non-unit size symbol; Section 5
    /// restricts attention to square schemas over a single symbol.
    MixedDimensions {
        /// The offending symbol.
        symbol: String,
    },
    /// Shapes disagreed during compilation (the expression does not
    /// type check).
    ShapeMismatch {
        /// Description of the mismatch.
        message: String,
    },
    /// An underlying circuit construction error.
    Circuit(CircuitError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownVariable { name } => {
                write!(f, "variable `{name}` is not declared in the schema")
            }
            CompileError::UnsupportedFunction { name } => {
                write!(
                    f,
                    "pointwise function `{name}` cannot be compiled to a {{+, ×}} circuit"
                )
            }
            CompileError::MixedDimensions { symbol } => {
                write!(
                    f,
                    "size symbol `{symbol}` differs from the circuit dimension symbol"
                )
            }
            CompileError::ShapeMismatch { message } => write!(f, "shape mismatch: {message}"),
            CompileError::Circuit(e) => write!(f, "circuit construction failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<CircuitError> for CompileError {
    fn from(e: CircuitError) -> Self {
        CompileError::Circuit(e)
    }
}

/// A matrix of gate ids: the symbolic value of a subexpression.
#[derive(Debug, Clone)]
struct SymMatrix {
    rows: usize,
    cols: usize,
    gates: Vec<GateId>,
}

impl SymMatrix {
    fn get(&self, i: usize, j: usize) -> GateId {
        self.gates[i * self.cols + j]
    }
}

/// An arithmetic circuit over matrices (Section 5.2): a circuit whose inputs
/// are the flattened entries of named input matrices and whose outputs are
/// the entries of a single output matrix.
#[derive(Debug, Clone)]
pub struct MatrixCircuit {
    circuit: Circuit,
    /// The input matrices in order: `(variable name, shape)`.
    inputs: Vec<(String, (usize, usize))>,
    /// The shape of the output matrix.
    output_shape: (usize, usize),
}

impl MatrixCircuit {
    /// The underlying gate-level circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The ordered input matrices `(name, shape)`.
    pub fn inputs(&self) -> &[(String, (usize, usize))] {
        &self.inputs
    }

    /// The output matrix shape.
    pub fn output_shape(&self) -> (usize, usize) {
        self.output_shape
    }

    /// The degree of the circuit (sum over output gates, Section 5.2).
    pub fn degree(&self) -> u128 {
        self.circuit.degree()
    }

    /// The maximum degree over the output gates — the natural measure of the
    /// polynomial degree of the compiled expression's entries.
    pub fn max_output_degree(&self) -> u128 {
        let degrees = self.circuit.gate_degrees();
        self.circuit
            .outputs()
            .iter()
            .map(|&o| degrees[o])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the circuit on matrices taken (by input name) from a MATLANG
    /// instance, returning the output matrix.  This is `Φₙ(A₁, …, A_k)`.
    pub fn evaluate<K: Semiring>(&self, instance: &Instance<K>) -> Result<Matrix<K>, CompileError> {
        let mut flat: Vec<K> = Vec::new();
        for (name, shape) in &self.inputs {
            let m = instance
                .matrix(name)
                .ok_or_else(|| CompileError::UnknownVariable { name: name.clone() })?;
            if m.shape() != *shape {
                return Err(CompileError::ShapeMismatch {
                    message: format!(
                        "input {name} has shape {:?}, circuit expects {:?}",
                        m.shape(),
                        shape
                    ),
                });
            }
            flat.extend(m.entries().iter().cloned());
        }
        let outputs = self.circuit.evaluate(&flat)?;
        Matrix::from_vec(self.output_shape.0, self.output_shape.1, outputs).map_err(|e| {
            CompileError::ShapeMismatch {
                message: format!("output reshape failed: {e}"),
            }
        })
    }
}

struct Compiler {
    circuit: Circuit,
    n: usize,
    dim_symbol: Option<String>,
    zero: Option<GateId>,
    one: Option<GateId>,
}

impl Compiler {
    fn zero(&mut self) -> GateId {
        if let Some(g) = self.zero {
            g
        } else {
            let g = self.circuit.constant(0.0);
            self.zero = Some(g);
            g
        }
    }

    fn one(&mut self) -> GateId {
        if let Some(g) = self.one {
            g
        } else {
            let g = self.circuit.constant(1.0);
            self.one = Some(g);
            g
        }
    }

    fn resolve_dim(&mut self, dim: &Dim) -> Result<usize, CompileError> {
        match dim {
            Dim::One => Ok(1),
            Dim::Sym(s) => {
                match &self.dim_symbol {
                    Some(existing) if existing != s => {
                        return Err(CompileError::MixedDimensions { symbol: s.clone() })
                    }
                    None => self.dim_symbol = Some(s.clone()),
                    _ => {}
                }
                Ok(self.n)
            }
        }
    }

    fn resolve_type(&mut self, ty: &MatrixType) -> Result<(usize, usize), CompileError> {
        Ok((self.resolve_dim(&ty.rows)?, self.resolve_dim(&ty.cols)?))
    }

    fn zeros(&mut self, rows: usize, cols: usize) -> SymMatrix {
        let zero = self.zero();
        SymMatrix {
            rows,
            cols,
            gates: vec![zero; rows * cols],
        }
    }

    fn canonical(&mut self, n: usize, i: usize) -> SymMatrix {
        let zero = self.zero();
        let one = self.one();
        let mut gates = vec![zero; n];
        gates[i] = one;
        SymMatrix {
            rows: n,
            cols: 1,
            gates,
        }
    }

    fn compile(
        &mut self,
        expr: &Expr,
        env: &mut HashMap<String, SymMatrix>,
    ) -> Result<SymMatrix, CompileError> {
        match expr {
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| CompileError::UnknownVariable { name: name.clone() }),
            Expr::Const(c) => {
                let g = self.circuit.constant(*c);
                Ok(SymMatrix {
                    rows: 1,
                    cols: 1,
                    gates: vec![g],
                })
            }
            Expr::Transpose(e) => {
                let inner = self.compile(e, env)?;
                let mut gates = vec![0; inner.gates.len()];
                for i in 0..inner.rows {
                    for j in 0..inner.cols {
                        gates[j * inner.rows + i] = inner.get(i, j);
                    }
                }
                Ok(SymMatrix {
                    rows: inner.cols,
                    cols: inner.rows,
                    gates,
                })
            }
            Expr::Ones(e) => {
                let inner = self.compile(e, env)?;
                let one = self.one();
                Ok(SymMatrix {
                    rows: inner.rows,
                    cols: 1,
                    gates: vec![one; inner.rows],
                })
            }
            Expr::Diag(e) => {
                let inner = self.compile(e, env)?;
                if inner.cols != 1 {
                    return Err(CompileError::ShapeMismatch {
                        message: "diag expects a column vector".to_string(),
                    });
                }
                let zero = self.zero();
                let n = inner.rows;
                let mut gates = vec![zero; n * n];
                for i in 0..n {
                    gates[i * n + i] = inner.get(i, 0);
                }
                Ok(SymMatrix {
                    rows: n,
                    cols: n,
                    gates,
                })
            }
            Expr::MatMul(a, b) => {
                let left = self.compile(a, env)?;
                let right = self.compile(b, env)?;
                if left.cols != right.rows {
                    return Err(CompileError::ShapeMismatch {
                        message: format!(
                            "cannot multiply {}x{} by {}x{}",
                            left.rows, left.cols, right.rows, right.cols
                        ),
                    });
                }
                let mut gates = Vec::with_capacity(left.rows * right.cols);
                for i in 0..left.rows {
                    for j in 0..right.cols {
                        let mut terms = Vec::with_capacity(left.cols);
                        for k in 0..left.cols {
                            terms.push(self.circuit.mul(vec![left.get(i, k), right.get(k, j)])?);
                        }
                        gates.push(self.circuit.add(terms)?);
                    }
                }
                Ok(SymMatrix {
                    rows: left.rows,
                    cols: right.cols,
                    gates,
                })
            }
            Expr::Add(a, b) => {
                let left = self.compile(a, env)?;
                let right = self.compile(b, env)?;
                self.pointwise(left, right, "addition", |c, x, y| c.add(vec![x, y]))
            }
            Expr::Hadamard(a, b) => {
                let left = self.compile(a, env)?;
                let right = self.compile(b, env)?;
                self.pointwise(left, right, "Hadamard product", |c, x, y| c.mul(vec![x, y]))
            }
            Expr::ScalarMul(a, b) => {
                let scalar = self.compile(a, env)?;
                if scalar.rows != 1 || scalar.cols != 1 {
                    return Err(CompileError::ShapeMismatch {
                        message: "scalar multiplication expects a 1x1 left operand".to_string(),
                    });
                }
                let s = scalar.get(0, 0);
                let target = self.compile(b, env)?;
                let mut gates = Vec::with_capacity(target.gates.len());
                for &g in &target.gates {
                    gates.push(self.circuit.mul(vec![s, g])?);
                }
                Ok(SymMatrix {
                    rows: target.rows,
                    cols: target.cols,
                    gates,
                })
            }
            Expr::Apply(name, _) => Err(CompileError::UnsupportedFunction { name: name.clone() }),
            Expr::Let { var, value, body } => {
                let bound = self.compile(value, env)?;
                let saved = env.insert(var.clone(), bound);
                let result = self.compile(body, env);
                match saved {
                    Some(old) => {
                        env.insert(var.clone(), old);
                    }
                    None => {
                        env.remove(var);
                    }
                }
                result
            }
            Expr::For {
                var,
                var_dim,
                acc,
                acc_type,
                init,
                body,
            } => {
                let iterations = self.resolve_dim(&Dim::Sym(var_dim.clone()))?;
                let (rows, cols) = self.resolve_type(acc_type)?;
                let mut accumulator = match init {
                    Some(init) => self.compile(init, env)?,
                    None => self.zeros(rows, cols),
                };
                let saved_var = env.remove(var);
                let saved_acc = env.remove(acc);
                for i in 0..iterations {
                    let canonical = self.canonical(iterations, i);
                    env.insert(var.clone(), canonical);
                    env.insert(acc.clone(), accumulator.clone());
                    accumulator = self.compile(body, env)?;
                }
                restore(env, var, saved_var);
                restore(env, acc, saved_acc);
                Ok(accumulator)
            }
            Expr::Sum { var, var_dim, body } => {
                self.fold_loop(var, var_dim, body, env, |c, acc, value| match acc {
                    None => Ok(value),
                    Some(acc) => c.pointwise(acc, value, "Σ", |circ, x, y| circ.add(vec![x, y])),
                })
            }
            Expr::HProd { var, var_dim, body } => {
                self.fold_loop(var, var_dim, body, env, |c, acc, value| match acc {
                    None => Ok(value),
                    Some(acc) => {
                        c.pointwise(acc, value, "Π∘", |circ, x, y| circ.mul(vec![x, y]))
                    }
                })
            }
            Expr::MProd { var, var_dim, body } => {
                self.fold_loop(var, var_dim, body, env, |c, acc, value| match acc {
                    None => Ok(value),
                    Some(acc) => c.matmul_sym(acc, value),
                })
            }
        }
    }

    fn matmul_sym(&mut self, left: SymMatrix, right: SymMatrix) -> Result<SymMatrix, CompileError> {
        if left.cols != right.rows {
            return Err(CompileError::ShapeMismatch {
                message: "Π body shapes do not compose".to_string(),
            });
        }
        let mut gates = Vec::with_capacity(left.rows * right.cols);
        for i in 0..left.rows {
            for j in 0..right.cols {
                let mut terms = Vec::with_capacity(left.cols);
                for k in 0..left.cols {
                    terms.push(self.circuit.mul(vec![left.get(i, k), right.get(k, j)])?);
                }
                gates.push(self.circuit.add(terms)?);
            }
        }
        Ok(SymMatrix {
            rows: left.rows,
            cols: right.cols,
            gates,
        })
    }

    fn pointwise(
        &mut self,
        left: SymMatrix,
        right: SymMatrix,
        op: &str,
        combine: impl Fn(&mut Circuit, GateId, GateId) -> Result<GateId, CircuitError>,
    ) -> Result<SymMatrix, CompileError> {
        if left.rows != right.rows || left.cols != right.cols {
            return Err(CompileError::ShapeMismatch {
                message: format!("{op} operands have different shapes"),
            });
        }
        let mut gates = Vec::with_capacity(left.gates.len());
        for (&x, &y) in left.gates.iter().zip(&right.gates) {
            gates.push(combine(&mut self.circuit, x, y)?);
        }
        Ok(SymMatrix {
            rows: left.rows,
            cols: left.cols,
            gates,
        })
    }

    fn fold_loop(
        &mut self,
        var: &str,
        var_dim: &str,
        body: &Expr,
        env: &mut HashMap<String, SymMatrix>,
        combine: impl Fn(&mut Self, Option<SymMatrix>, SymMatrix) -> Result<SymMatrix, CompileError>,
    ) -> Result<SymMatrix, CompileError> {
        let iterations = self.resolve_dim(&Dim::Sym(var_dim.to_string()))?;
        let saved = env.remove(var);
        let mut acc: Option<SymMatrix> = None;
        for i in 0..iterations {
            let canonical = self.canonical(iterations, i);
            env.insert(var.to_string(), canonical);
            let value = self.compile(body, env)?;
            acc = Some(combine(self, acc.take(), value)?);
        }
        restore(env, var, saved);
        acc.ok_or(CompileError::ShapeMismatch {
            message: "loop over an empty dimension".to_string(),
        })
    }
}

fn restore(env: &mut HashMap<String, SymMatrix>, name: &str, saved: Option<SymMatrix>) {
    match saved {
        Some(m) => {
            env.insert(name.to_string(), m);
        }
        None => {
            env.remove(name);
        }
    }
}

/// Theorem 5.3 — compiles `expr` (over `schema`, which must follow the
/// square-matrix convention of Section 5: every variable of type
/// `(α,α)`, `(α,1)`, `(1,α)` or `(1,1)` for a single symbol `α`) into an
/// arithmetic circuit over matrices for the concrete size `n`.
pub fn expr_to_circuit(
    expr: &Expr,
    schema: &Schema,
    n: usize,
) -> Result<MatrixCircuit, CompileError> {
    let mut compiler = Compiler {
        circuit: Circuit::new(),
        n,
        dim_symbol: None,
        zero: None,
        one: None,
    };
    let mut env: HashMap<String, SymMatrix> = HashMap::new();
    let mut inputs: Vec<(String, (usize, usize))> = Vec::new();
    let mut next_input = 0usize;
    for name in expr.free_vars() {
        let ty = schema
            .var_type(&name)
            .ok_or_else(|| CompileError::UnknownVariable { name: name.clone() })?;
        let (rows, cols) = compiler.resolve_type(ty)?;
        let mut gates = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            gates.push(compiler.circuit.input(next_input));
            next_input += 1;
        }
        env.insert(name.clone(), SymMatrix { rows, cols, gates });
        inputs.push((name, (rows, cols)));
    }
    let output = compiler.compile(expr, &mut env)?;
    for &gate in &output.gates {
        compiler.circuit.mark_output(gate)?;
    }
    Ok(MatrixCircuit {
        circuit: compiler.circuit,
        inputs,
        output_shape: (output.rows, output.cols),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_algorithms::{graphs, square_instance, standard_registry};
    use matlang_core::evaluate;
    use matlang_matrix::{random_matrix, RandomMatrixConfig};
    use matlang_semiring::Real;

    fn schema() -> Schema {
        Schema::new()
            .with_var("A", MatrixType::square("n"))
            .with_var("B", MatrixType::square("n"))
            .with_var("u", MatrixType::vector("n"))
    }

    fn check_against_interpreter(expr: &Expr, n: usize, seed: u64) {
        let circuit = expr_to_circuit(expr, &schema(), n).unwrap();
        let cfg = RandomMatrixConfig {
            seed,
            integer_entries: true,
            min_value: -3.0,
            max_value: 3.0,
            ..Default::default()
        };
        let inst: Instance<Real> = Instance::new()
            .with_dim("n", n)
            .with_matrix("A", random_matrix(n, n, &cfg))
            .with_matrix(
                "B",
                random_matrix(
                    n,
                    n,
                    &RandomMatrixConfig {
                        seed: seed + 1,
                        ..cfg.clone()
                    },
                ),
            )
            .with_matrix(
                "u",
                random_matrix(
                    n,
                    1,
                    &RandomMatrixConfig {
                        seed: seed + 2,
                        ..cfg
                    },
                ),
            );
        let from_circuit = circuit.evaluate(&inst).unwrap();
        let from_interpreter = evaluate(expr, &inst, &standard_registry()).unwrap();
        assert!(
            from_circuit.approx_eq(&from_interpreter, 1e-9),
            "circuit and interpreter disagree for {expr} at n={n}"
        );
    }

    #[test]
    fn matlang_operators_compile_correctly() {
        let exprs = vec![
            Expr::var("A").t(),
            Expr::var("A").mm(Expr::var("B")),
            Expr::var("A").add(Expr::var("B")),
            Expr::var("A").had(Expr::var("B")),
            Expr::lit(3.0).smul(Expr::var("A")),
            Expr::var("A").ones(),
            Expr::var("u").diag(),
            Expr::var("u").t().mm(Expr::var("A")).mm(Expr::var("u")),
        ];
        for e in exprs {
            for n in [1, 2, 4] {
                check_against_interpreter(&e, n, 7);
            }
        }
    }

    #[test]
    fn loops_compile_by_unrolling() {
        let exprs = vec![
            Expr::sum("v", "n", Expr::var("v").mm(Expr::var("v").t())),
            Expr::sum(
                "v",
                "n",
                Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
            ),
            Expr::hprod(
                "v",
                "n",
                Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
            ),
            Expr::mprod("v", "n", Expr::var("A").add(Expr::var("B"))),
            Expr::for_loop(
                "v",
                "n",
                "X",
                MatrixType::vector("n"),
                Expr::var("X").add(Expr::var("v")),
            ),
            Expr::let_in(
                "T",
                Expr::var("A").mm(Expr::var("A")),
                Expr::var("T").add(Expr::var("T")),
            ),
        ];
        for e in exprs {
            for n in [2, 3] {
                check_against_interpreter(&e, n, 11);
            }
        }
    }

    #[test]
    fn graph_queries_compile_and_agree() {
        for n in [3, 4] {
            check_against_interpreter(&graphs::trace("A", "n"), n, 3);
            check_against_interpreter(&graphs::diagonal_product("A", "n"), n, 3);
            check_against_interpreter(&graphs::transitive_closure_fw("A", "n"), n, 3);
        }
    }

    #[test]
    fn four_clique_circuit_detects_cliques() {
        let expr = graphs::four_clique("A", "n");
        let circuit = expr_to_circuit(&expr, &schema(), 4).unwrap();
        let mut k4: Matrix<Real> = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    k4.set(i, j, Real(1.0)).unwrap();
                }
            }
        }
        let inst = square_instance("A", "n", k4);
        let out = circuit.evaluate(&inst).unwrap().as_scalar().unwrap();
        assert!(out.0 > 0.0);
    }

    #[test]
    fn degrees_of_compiled_fragments_match_proposition_6_1() {
        // sum-MATLANG expressions have polynomial (here: small constant in n)
        // degree; the diagonal product has linear degree; repeated squaring
        // via `for` has exponential degree.
        let schema = schema();
        let trace = graphs::trace("A", "n");
        let dp = graphs::diagonal_product("A", "n");
        let exp = Expr::for_init(
            "v",
            "n",
            "X",
            MatrixType::square("n"),
            Expr::var("A"),
            Expr::var("X").mm(Expr::var("X")),
        );
        for n in [2usize, 3, 4, 5] {
            let trace_deg = expr_to_circuit(&trace, &schema, n)
                .unwrap()
                .max_output_degree();
            let dp_deg = expr_to_circuit(&dp, &schema, n)
                .unwrap()
                .max_output_degree();
            let exp_deg = expr_to_circuit(&exp, &schema, n)
                .unwrap()
                .max_output_degree();
            assert_eq!(trace_deg, 1);
            assert_eq!(dp_deg, n as u128);
            assert_eq!(exp_deg, 1u128 << n);
        }
    }

    #[test]
    fn pointwise_functions_are_rejected() {
        let e = Expr::apply("div", vec![Expr::var("A"), Expr::var("B")]);
        assert!(matches!(
            expr_to_circuit(&e, &schema(), 3),
            Err(CompileError::UnsupportedFunction { .. })
        ));
    }

    #[test]
    fn unknown_variables_and_mixed_dimensions_are_rejected() {
        let e = Expr::var("Z");
        assert!(matches!(
            expr_to_circuit(&e, &schema(), 3),
            Err(CompileError::UnknownVariable { .. })
        ));
        let schema2 = Schema::new()
            .with_var("A", MatrixType::square("n"))
            .with_var("C", MatrixType::square("m"));
        let e = Expr::var("A").add(Expr::var("C"));
        assert!(matches!(
            expr_to_circuit(&e, &schema2, 3),
            Err(CompileError::MixedDimensions { .. })
        ));
    }

    #[test]
    fn compiled_circuit_reports_shapes_and_inputs() {
        let e = Expr::var("A").mm(Expr::var("u"));
        let c = expr_to_circuit(&e, &schema(), 3).unwrap();
        assert_eq!(c.output_shape(), (3, 1));
        assert_eq!(c.inputs().len(), 2);
        assert!(c.circuit().num_gates() > 0);
        assert!(c.degree() >= c.max_output_degree());
    }

    #[test]
    fn evaluation_rejects_wrongly_shaped_inputs() {
        let e = Expr::var("A");
        let c = expr_to_circuit(&e, &schema(), 3).unwrap();
        let inst: Instance<Real> = Instance::new()
            .with_dim("n", 3)
            .with_matrix("A", Matrix::identity(2));
        assert!(matches!(
            c.evaluate(&inst),
            Err(CompileError::ShapeMismatch { .. })
        ));
        let missing: Instance<Real> = Instance::new().with_dim("n", 3);
        assert!(matches!(
            c.evaluate(&missing),
            Err(CompileError::UnknownVariable { .. })
        ));
    }
}
