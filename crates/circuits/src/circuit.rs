//! The arithmetic-circuit data structure (Section 5.1).
//!
//! A circuit is a directed acyclic graph of gates.  Input gates are labelled
//! by an input position or a constant; internal gates are labelled `+` or `×`
//! and have unbounded fan-in.  Gates are stored in a vector and may only
//! reference previously inserted gates, which guarantees acyclicity by
//! construction and gives a topological order for free.

use std::fmt;

/// Identifier of a gate inside a [`Circuit`] (its index in insertion order).
pub type GateId = usize;

/// A single gate.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// An input gate labelled by the position of the input variable
    /// (0-indexed `x_i`).
    Input(usize),
    /// An input gate labelled by a constant.  The paper allows the constants
    /// 0 and 1; we allow arbitrary reals so that compiled MATLANG constants
    /// fit without an encoding detour.
    Const(f64),
    /// A sum gate with unbounded fan-in.
    Add(Vec<GateId>),
    /// A product gate with unbounded fan-in.
    Mul(Vec<GateId>),
}

/// Errors raised while constructing or querying circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a child that does not exist yet.
    ForwardReference {
        /// The offending child id.
        child: GateId,
        /// The number of gates currently in the circuit.
        len: usize,
    },
    /// An evaluation was attempted with too few inputs.
    MissingInput {
        /// The requested input position.
        index: usize,
        /// The number of provided inputs.
        provided: usize,
    },
    /// The circuit has no output gate / the requested output is out of range.
    NoSuchOutput {
        /// The requested output position.
        index: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::ForwardReference { child, len } => {
                write!(
                    f,
                    "gate references child {child} but only {len} gates exist"
                )
            }
            CircuitError::MissingInput { index, provided } => {
                write!(
                    f,
                    "circuit reads input x_{index} but only {provided} inputs were provided"
                )
            }
            CircuitError::NoSuchOutput { index } => write!(f, "circuit has no output {index}"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// An arithmetic circuit with (possibly) multiple output gates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    gates: Vec<Gate>,
    outputs: Vec<GateId>,
    num_inputs: usize,
}

impl Circuit {
    /// An empty circuit.
    pub fn new() -> Circuit {
        Circuit::default()
    }

    /// Adds a gate, returning its id.  Children must already exist.
    pub fn push(&mut self, gate: Gate) -> Result<GateId, CircuitError> {
        match &gate {
            Gate::Add(children) | Gate::Mul(children) => {
                for &c in children {
                    if c >= self.gates.len() {
                        return Err(CircuitError::ForwardReference {
                            child: c,
                            len: self.gates.len(),
                        });
                    }
                }
            }
            Gate::Input(i) => {
                self.num_inputs = self.num_inputs.max(i + 1);
            }
            Gate::Const(_) => {}
        }
        self.gates.push(gate);
        Ok(self.gates.len() - 1)
    }

    /// Convenience: push an input gate.
    pub fn input(&mut self, index: usize) -> GateId {
        self.push(Gate::Input(index))
            .expect("input gates have no children")
    }

    /// Convenience: push a constant gate.
    pub fn constant(&mut self, value: f64) -> GateId {
        self.push(Gate::Const(value))
            .expect("constant gates have no children")
    }

    /// Convenience: push a sum gate.
    pub fn add(&mut self, children: Vec<GateId>) -> Result<GateId, CircuitError> {
        self.push(Gate::Add(children))
    }

    /// Convenience: push a product gate.
    pub fn mul(&mut self, children: Vec<GateId>) -> Result<GateId, CircuitError> {
        self.push(Gate::Mul(children))
    }

    /// Marks a gate as an output gate (outputs are ordered).
    pub fn mark_output(&mut self, gate: GateId) -> Result<(), CircuitError> {
        if gate >= self.gates.len() {
            return Err(CircuitError::ForwardReference {
                child: gate,
                len: self.gates.len(),
            });
        }
        self.outputs.push(gate);
        Ok(())
    }

    /// The gates in insertion (topological) order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The output gate ids, in order.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// The single output gate, if the circuit has exactly one.
    pub fn single_output(&self) -> Option<GateId> {
        if self.outputs.len() == 1 {
            Some(self.outputs[0])
        } else {
            None
        }
    }

    /// The number of distinct input positions read by the circuit
    /// (`max index + 1`).
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of wires (edges).
    pub fn num_wires(&self) -> usize {
        self.gates
            .iter()
            .map(|g| match g {
                Gate::Add(c) | Gate::Mul(c) => c.len(),
                _ => 0,
            })
            .sum()
    }

    /// The paper's size measure `|Φ|`: gates plus wires.
    pub fn size(&self) -> usize {
        self.num_gates() + self.num_wires()
    }

    /// Depth: the length of the longest path from an output gate to an input
    /// gate.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            depth[i] = match gate {
                Gate::Input(_) | Gate::Const(_) => 0,
                Gate::Add(children) | Gate::Mul(children) => {
                    1 + children.iter().map(|&c| depth[c]).max().unwrap_or(0)
                }
            };
        }
        self.outputs.iter().map(|&o| depth[o]).max().unwrap_or(0)
    }

    /// Per-gate degree (Section 5.1): input gates have degree 1, constants
    /// degree 0, sum gates the maximum of their children and product gates
    /// the sum of their children.
    pub fn gate_degrees(&self) -> Vec<u128> {
        let mut degree = vec![0u128; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            degree[i] = match gate {
                Gate::Input(_) => 1,
                Gate::Const(_) => 0,
                Gate::Add(children) => children.iter().map(|&c| degree[c]).max().unwrap_or(0),
                Gate::Mul(children) => children
                    .iter()
                    .map(|&c| degree[c])
                    .fold(0u128, |a, b| a.saturating_add(b)),
            };
        }
        degree
    }

    /// The degree of the circuit: the degree of its single output gate, or
    /// (following the paper's convention for circuits over matrices) the sum
    /// of the degrees of all output gates.
    pub fn degree(&self) -> u128 {
        let degrees = self.gate_degrees();
        if let Some(single) = self.single_output() {
            degrees[single]
        } else {
            self.outputs
                .iter()
                .map(|&o| degrees[o])
                .fold(0u128, |a, b| a.saturating_add(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the circuit for x₀·x₁ + x₂·x₃ used throughout the paper's
    /// Section 5 examples.
    fn sum_of_products() -> Circuit {
        let mut c = Circuit::new();
        let x0 = c.input(0);
        let x1 = c.input(1);
        let x2 = c.input(2);
        let x3 = c.input(3);
        let m1 = c.mul(vec![x0, x1]).unwrap();
        let m2 = c.mul(vec![x2, x3]).unwrap();
        let s = c.add(vec![m1, m2]).unwrap();
        c.mark_output(s).unwrap();
        c
    }

    #[test]
    fn construction_and_counters() {
        let c = sum_of_products();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_gates(), 7);
        assert_eq!(c.num_wires(), 6);
        assert_eq!(c.size(), 13);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.single_output(), Some(6));
        assert_eq!(c.outputs(), &[6]);
        assert_eq!(c.gates().len(), 7);
    }

    #[test]
    fn degree_of_sum_and_product_gates() {
        let c = sum_of_products();
        // Each product gate has degree 2; the sum gate keeps the max.
        assert_eq!(c.degree(), 2);
    }

    #[test]
    fn degree_of_repeated_squaring_is_exponential() {
        // (((x²)²)²)… doubling the degree each time.
        let mut c = Circuit::new();
        let mut g = c.input(0);
        for _ in 0..10 {
            g = c.mul(vec![g, g]).unwrap();
        }
        c.mark_output(g).unwrap();
        assert_eq!(c.degree(), 1 << 10);
        assert_eq!(c.depth(), 10);
    }

    #[test]
    fn constants_have_degree_zero() {
        let mut c = Circuit::new();
        let one = c.constant(1.0);
        let x = c.input(0);
        let m = c.mul(vec![one, x]).unwrap();
        c.mark_output(m).unwrap();
        assert_eq!(c.degree(), 1);
    }

    #[test]
    fn forward_references_are_rejected() {
        let mut c = Circuit::new();
        assert!(matches!(
            c.add(vec![3]),
            Err(CircuitError::ForwardReference { .. })
        ));
        assert!(c.mark_output(5).is_err());
    }

    #[test]
    fn multi_output_degree_is_the_sum() {
        let mut c = Circuit::new();
        let x = c.input(0);
        let m = c.mul(vec![x, x]).unwrap();
        c.mark_output(x).unwrap();
        c.mark_output(m).unwrap();
        assert_eq!(c.single_output(), None);
        assert_eq!(c.degree(), 3);
    }

    #[test]
    fn errors_display() {
        assert!(!CircuitError::ForwardReference { child: 3, len: 1 }
            .to_string()
            .is_empty());
        assert!(!CircuitError::MissingInput {
            index: 2,
            provided: 1
        }
        .to_string()
        .is_empty());
        assert!(!CircuitError::NoSuchOutput { index: 0 }
            .to_string()
            .is_empty());
    }
}
