//! Circuit evaluation.
//!
//! Two evaluators are provided:
//!
//! * [`Circuit::evaluate`] — a linear pass in topological order (the obvious
//!   reference implementation);
//! * [`Circuit::evaluate_two_stack`] — the depth-first evaluator with an
//!   explicit gates-stack and values-stack, mirroring Algorithms 1–3 of the
//!   paper's Appendix D.2.  Theorem 5.1 simulates exactly this machine inside
//!   for-MATLANG; implementing it directly both documents the construction
//!   and provides a differential-testing oracle for the topological
//!   evaluator.

use crate::circuit::{Circuit, CircuitError, Gate, GateId};
use matlang_semiring::Semiring;

impl Circuit {
    /// Evaluates every gate in topological order and returns the values of
    /// the output gates.
    pub fn evaluate<K: Semiring>(&self, inputs: &[K]) -> Result<Vec<K>, CircuitError> {
        let mut values: Vec<K> = Vec::with_capacity(self.num_gates());
        for gate in self.gates() {
            let value = match gate {
                Gate::Input(i) => inputs.get(*i).cloned().ok_or(CircuitError::MissingInput {
                    index: *i,
                    provided: inputs.len(),
                })?,
                Gate::Const(c) => K::from_f64(*c),
                Gate::Add(children) => K::sum(children.iter().map(|&c| values[c].clone())),
                Gate::Mul(children) => K::product(children.iter().map(|&c| values[c].clone())),
            };
            values.push(value);
        }
        self.outputs()
            .iter()
            .map(|&o| {
                values
                    .get(o)
                    .cloned()
                    .ok_or(CircuitError::NoSuchOutput { index: o })
            })
            .collect()
    }

    /// Evaluates the single output gate of the circuit with the explicit
    /// two-stack, depth-first procedure of the paper (Appendix D.2,
    /// Algorithms 1–3): a *gates stack* of gates being visited and a *values
    /// stack* of partially aggregated results.
    ///
    /// Unlike [`Circuit::evaluate`] this re-expands shared sub-circuits (it
    /// treats the DAG as a tree), exactly as the paper's algorithm does, so
    /// it can be exponentially slower on deeply shared circuits — it exists
    /// to document and cross-check the construction, not to be fast.
    pub fn evaluate_two_stack<K: Semiring>(&self, inputs: &[K]) -> Result<K, CircuitError> {
        let root = self
            .single_output()
            .ok_or(CircuitError::NoSuchOutput { index: 0 })?;
        let gates = self.gates();

        // The pair of stacks.  `gate_stack[i]` is a (gate, next-child-index)
        // pair; `value_stack` holds the partial aggregate for each open gate.
        let mut gate_stack: Vec<GateId> = vec![root];
        let mut value_stack: Vec<K> = Vec::new();
        // For each open gate, which child to visit next (parallel to
        // gate_stack; the paper recovers this via the `next_gate` LOGSPACE
        // transducer, we keep it explicitly).
        let mut child_cursor: Vec<usize> = vec![0];

        loop {
            if gate_stack.len() == 1 && value_stack.len() == 1 {
                return Ok(value_stack.pop().expect("just checked"));
            }
            if gate_stack.len() == value_stack.len() + 1 {
                // Initialize: we are visiting the top gate for the first time.
                let top = *gate_stack.last().expect("non-empty");
                match &gates[top] {
                    Gate::Input(i) => {
                        let v = inputs.get(*i).cloned().ok_or(CircuitError::MissingInput {
                            index: *i,
                            provided: inputs.len(),
                        })?;
                        value_stack.push(v);
                    }
                    Gate::Const(c) => value_stack.push(K::from_f64(*c)),
                    Gate::Add(children) => {
                        value_stack.push(K::zero());
                        if let Some(&first) = children.first() {
                            gate_stack.push(first);
                            child_cursor.push(0);
                        }
                    }
                    Gate::Mul(children) => {
                        value_stack.push(K::one());
                        if let Some(&first) = children.first() {
                            gate_stack.push(first);
                            child_cursor.push(0);
                        }
                    }
                }
            } else {
                // Aggregate: the top gate is fully evaluated; fold its value
                // into its parent and advance to the parent's next child.
                let finished_gate = gate_stack.pop().expect("non-empty");
                let finished_value = value_stack.pop().expect("non-empty");
                child_cursor.pop();
                let parent = *gate_stack.last().expect("root never aggregates here");
                let cursor = child_cursor.last_mut().expect("non-empty");
                let parent_value = value_stack.last_mut().expect("non-empty");
                let children = match &gates[parent] {
                    Gate::Add(children) => {
                        *parent_value = parent_value.add(&finished_value);
                        children
                    }
                    Gate::Mul(children) => {
                        *parent_value = parent_value.mul(&finished_value);
                        children
                    }
                    _ => unreachable!("only internal gates have children on the stack"),
                };
                debug_assert_eq!(children[*cursor], finished_gate);
                *cursor += 1;
                if *cursor < children.len() {
                    gate_stack.push(children[*cursor]);
                    child_cursor.push(0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Boolean, Nat, Real};

    fn example() -> Circuit {
        // x0·x1 + x2·x3 + 1
        let mut c = Circuit::new();
        let x0 = c.input(0);
        let x1 = c.input(1);
        let x2 = c.input(2);
        let x3 = c.input(3);
        let one = c.constant(1.0);
        let m1 = c.mul(vec![x0, x1]).unwrap();
        let m2 = c.mul(vec![x2, x3]).unwrap();
        let s = c.add(vec![m1, m2, one]).unwrap();
        c.mark_output(s).unwrap();
        c
    }

    #[test]
    fn topological_evaluation_over_the_reals() {
        let c = example();
        let out = c
            .evaluate(&[Real(2.0), Real(3.0), Real(4.0), Real(5.0)])
            .unwrap();
        assert_eq!(out, vec![Real(27.0)]);
    }

    #[test]
    fn evaluation_over_other_semirings() {
        let c = example();
        let nat = c.evaluate(&[Nat(2), Nat(3), Nat(4), Nat(5)]).unwrap();
        assert_eq!(nat, vec![Nat(27)]);
        let boolean = c
            .evaluate(&[Boolean(true), Boolean(false), Boolean(false), Boolean(true)])
            .unwrap();
        // (t∧f) ∨ (f∧t) ∨ 1 = 1.
        assert_eq!(boolean, vec![Boolean(true)]);
    }

    #[test]
    fn two_stack_evaluator_agrees_with_topological_one() {
        let c = example();
        for inputs in [
            [0.0, 0.0, 0.0, 0.0],
            [1.0, 2.0, 3.0, 4.0],
            [-1.0, 5.0, 2.0, -2.0],
        ] {
            let reals: Vec<Real> = inputs.iter().map(|&v| Real(v)).collect();
            let a = c.evaluate(&reals).unwrap()[0];
            let b = c.evaluate_two_stack(&reals).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn two_stack_evaluator_handles_nested_structure() {
        // ((x0 + 1) · (x0 + x1)) + x1
        let mut c = Circuit::new();
        let x0 = c.input(0);
        let x1 = c.input(1);
        let one = c.constant(1.0);
        let a = c.add(vec![x0, one]).unwrap();
        let b = c.add(vec![x0, x1]).unwrap();
        let m = c.mul(vec![a, b]).unwrap();
        let s = c.add(vec![m, x1]).unwrap();
        c.mark_output(s).unwrap();
        let inputs = [Real(3.0), Real(4.0)];
        assert_eq!(c.evaluate(&inputs).unwrap()[0], Real(32.0));
        assert_eq!(c.evaluate_two_stack(&inputs).unwrap(), Real(32.0));
    }

    #[test]
    fn empty_sum_and_product_gates_use_identities() {
        let mut c = Circuit::new();
        let s = c.add(vec![]).unwrap();
        let m = c.mul(vec![]).unwrap();
        let total = c.add(vec![s, m]).unwrap();
        c.mark_output(total).unwrap();
        assert_eq!(c.evaluate::<Real>(&[]).unwrap(), vec![Real(1.0)]);
        assert_eq!(c.evaluate_two_stack::<Real>(&[]).unwrap(), Real(1.0));
    }

    #[test]
    fn missing_inputs_are_reported() {
        let c = example();
        assert!(matches!(
            c.evaluate(&[Real(1.0)]),
            Err(CircuitError::MissingInput { .. })
        ));
        assert!(matches!(
            c.evaluate_two_stack(&[Real(1.0)]),
            Err(CircuitError::MissingInput { .. })
        ));
    }

    #[test]
    fn two_stack_requires_a_single_output() {
        let mut c = Circuit::new();
        let x = c.input(0);
        c.mark_output(x).unwrap();
        c.mark_output(x).unwrap();
        assert!(matches!(
            c.evaluate_two_stack(&[Real(1.0)]),
            Err(CircuitError::NoSuchOutput { .. })
        ));
    }

    #[test]
    fn multiple_outputs_evaluate_in_order() {
        let mut c = Circuit::new();
        let x = c.input(0);
        let sq = c.mul(vec![x, x]).unwrap();
        c.mark_output(x).unwrap();
        c.mark_output(sq).unwrap();
        assert_eq!(
            c.evaluate(&[Real(3.0)]).unwrap(),
            vec![Real(3.0), Real(9.0)]
        );
    }
}
