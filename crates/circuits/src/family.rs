//! Circuit families: the operational counterpart of the paper's uniform
//! families `{Φₙ | n = 1, 2, …}`.
//!
//! In the paper, uniformity means a LOGSPACE Turing machine produces the
//! description of `Φₙ` from `1ⁿ`.  Here a family is a single Rust function
//! from `n` to a circuit — one finite program generating every member, which
//! is the property all experiments rely on (see the substitution table in
//! DESIGN.md).  The module also ships a few reference families used by the
//! benchmarks and by the degree-growth experiment (E8).

use crate::circuit::Circuit;
use std::sync::Arc;

/// A family `{Φₙ}` of arithmetic circuits given by a generator.
#[derive(Clone)]
pub struct CircuitFamily {
    name: String,
    generator: Arc<dyn Fn(usize) -> Circuit + Send + Sync>,
}

impl std::fmt::Debug for CircuitFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitFamily")
            .field("name", &self.name)
            .finish()
    }
}

impl CircuitFamily {
    /// Creates a family from a generator function.
    pub fn new(
        name: impl Into<String>,
        generator: impl Fn(usize) -> Circuit + Send + Sync + 'static,
    ) -> Self {
        CircuitFamily {
            name: name.into(),
            generator: Arc::new(generator),
        }
    }

    /// The family's name (used in benchmark reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member `Φₙ`.
    pub fn member(&self, n: usize) -> Circuit {
        (self.generator)(n)
    }

    /// The degrees of `Φ₁ … Φ_max_n`, used to probe whether the family is of
    /// polynomial degree (Section 5.2).
    pub fn degree_profile(&self, max_n: usize) -> Vec<u128> {
        (1..=max_n).map(|n| self.member(n).degree()).collect()
    }

    /// The sizes of `Φ₁ … Φ_max_n`.
    pub fn size_profile(&self, max_n: usize) -> Vec<usize> {
        (1..=max_n).map(|n| self.member(n).size()).collect()
    }

    /// A crude polynomial-degree check: reports whether every observed degree
    /// is bounded by `4·n^max_exponent`.  (A heuristic probe, not a proof —
    /// families like `2ⁿ` fail it immediately, which is all experiment E8
    /// needs; the constant 4 absorbs small-n offsets.)
    pub fn looks_polynomial_degree(&self, max_n: usize, max_exponent: u32) -> bool {
        self.degree_profile(max_n)
            .iter()
            .enumerate()
            .all(|(i, &d)| {
                let n = (i + 1) as u128;
                d <= 4u128.saturating_mul(n.saturating_pow(max_exponent)).max(1)
            })
    }

    /// The family `Φₙ = x₁ + ⋯ + xₙ` (degree 1).
    pub fn sum_of_inputs() -> CircuitFamily {
        CircuitFamily::new("sum-of-inputs", |n| {
            let mut c = Circuit::new();
            let inputs: Vec<_> = (0..n).map(|i| c.input(i)).collect();
            let s = c.add(inputs).expect("children exist");
            c.mark_output(s).expect("gate exists");
            c
        })
    }

    /// The family `Φₙ = x₁·x₂·⋯·xₙ` (degree n).
    pub fn product_of_inputs() -> CircuitFamily {
        CircuitFamily::new("product-of-inputs", |n| {
            let mut c = Circuit::new();
            let inputs: Vec<_> = (0..n).map(|i| c.input(i)).collect();
            let m = c.mul(inputs).expect("children exist");
            c.mark_output(m).expect("gate exists");
            c
        })
    }

    /// The family `Φₙ = Σᵢ xᵢ²` (degree 2), a typical "polynomial degree"
    /// example.
    pub fn sum_of_squares() -> CircuitFamily {
        CircuitFamily::new("sum-of-squares", |n| {
            let mut c = Circuit::new();
            let mut squares = Vec::with_capacity(n);
            for i in 0..n {
                let x = c.input(i);
                squares.push(c.mul(vec![x, x]).expect("children exist"));
            }
            let s = c.add(squares).expect("children exist");
            c.mark_output(s).expect("gate exists");
            c
        })
    }

    /// The family obtained by repeated squaring of a single input,
    /// `Φₙ = x₁^(2ⁿ)` — polynomial *size* but **exponential degree**, the
    /// canonical witness separating polynomial-size from polynomial-degree
    /// families (Section 5.2, the `e_exp` example).
    pub fn repeated_squaring() -> CircuitFamily {
        CircuitFamily::new("repeated-squaring", |n| {
            let mut c = Circuit::new();
            let mut g = c.input(0);
            for _ in 0..n {
                g = c.mul(vec![g, g]).expect("children exist");
            }
            c.mark_output(g).expect("gate exists");
            c
        })
    }

    /// The balanced binary product tree over `n` inputs (degree `n`,
    /// logarithmic depth) — the shape produced by the depth-reduction results
    /// of Valiant–Skyum and Allender et al. that Corollary 5.2 relies on.
    pub fn balanced_product() -> CircuitFamily {
        CircuitFamily::new("balanced-product", |n| {
            let mut c = Circuit::new();
            let mut layer: Vec<_> = (0..n.max(1)).map(|i| c.input(i)).collect();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    if pair.len() == 2 {
                        next.push(c.mul(vec![pair[0], pair[1]]).expect("children exist"));
                    } else {
                        next.push(pair[0]);
                    }
                }
                layer = next;
            }
            c.mark_output(layer[0]).expect("gate exists");
            c
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::Real;

    #[test]
    fn sum_and_product_families_evaluate_correctly() {
        let sum = CircuitFamily::sum_of_inputs();
        let product = CircuitFamily::product_of_inputs();
        let inputs: Vec<Real> = (1..=5).map(|v| Real(v as f64)).collect();
        assert_eq!(sum.member(5).evaluate(&inputs).unwrap(), vec![Real(15.0)]);
        assert_eq!(
            product.member(5).evaluate(&inputs).unwrap(),
            vec![Real(120.0)]
        );
        assert_eq!(sum.name(), "sum-of-inputs");
    }

    #[test]
    fn degree_profiles_match_theory() {
        assert_eq!(
            CircuitFamily::sum_of_inputs().degree_profile(5),
            vec![1, 1, 1, 1, 1]
        );
        assert_eq!(
            CircuitFamily::product_of_inputs().degree_profile(5),
            vec![1, 2, 3, 4, 5]
        );
        assert_eq!(
            CircuitFamily::sum_of_squares().degree_profile(4),
            vec![2, 2, 2, 2]
        );
        assert_eq!(
            CircuitFamily::repeated_squaring().degree_profile(5),
            vec![2, 4, 8, 16, 32]
        );
    }

    #[test]
    fn polynomial_degree_probe_separates_the_families() {
        assert!(CircuitFamily::sum_of_inputs().looks_polynomial_degree(16, 1));
        assert!(CircuitFamily::product_of_inputs().looks_polynomial_degree(16, 1));
        assert!(CircuitFamily::sum_of_squares().looks_polynomial_degree(16, 2));
        assert!(!CircuitFamily::repeated_squaring().looks_polynomial_degree(16, 3));
    }

    #[test]
    fn balanced_product_has_logarithmic_depth_and_linear_degree() {
        let family = CircuitFamily::balanced_product();
        let c = family.member(16);
        assert_eq!(c.degree(), 16);
        assert_eq!(c.depth(), 4);
        let inputs: Vec<Real> = (0..16).map(|_| Real(2.0)).collect();
        assert_eq!(c.evaluate(&inputs).unwrap(), vec![Real(65536.0)]);
        // Agrees with the flat product family semantically.
        let flat = CircuitFamily::product_of_inputs().member(16);
        assert_eq!(flat.evaluate(&inputs).unwrap(), vec![Real(65536.0)]);
    }

    #[test]
    fn size_profile_grows_with_n() {
        let sizes = CircuitFamily::sum_of_squares().size_profile(6);
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn debug_prints_the_name() {
        let dbg = format!("{:?}", CircuitFamily::sum_of_inputs());
        assert!(dbg.contains("sum-of-inputs"));
    }
}
