//! `K`-weighted structures (Section 6.2).
//!
//! A weighted structure `A = (A, {Rᴬ})` has a finite domain and, for each
//! relation symbol `R` of arity `k`, a weight function `Rᴬ : Aᵏ → K`.  The
//! domain is represented as `{0, 1, …, n−1}`.

use matlang_semiring::Semiring;
use std::collections::{BTreeMap, HashMap};

/// A single weighted relation: a total function from tuples to weights,
/// stored sparsely (absent tuples have weight `0`).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedRelation<K> {
    arity: usize,
    weights: HashMap<Vec<usize>, K>,
}

impl<K: Semiring> WeightedRelation<K> {
    /// A relation of the given arity with all weights zero.
    pub fn new(arity: usize) -> Self {
        WeightedRelation {
            arity,
            weights: HashMap::new(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Sets the weight of a tuple.
    pub fn set(&mut self, tuple: Vec<usize>, weight: K) -> Result<(), String> {
        if tuple.len() != self.arity {
            return Err(format!(
                "tuple of length {} for relation of arity {}",
                tuple.len(),
                self.arity
            ));
        }
        if weight.is_zero() {
            self.weights.remove(&tuple);
        } else {
            self.weights.insert(tuple, weight);
        }
        Ok(())
    }

    /// The weight of a tuple (zero when unset).
    pub fn weight(&self, tuple: &[usize]) -> K {
        self.weights.get(tuple).cloned().unwrap_or_else(K::zero)
    }

    /// Iterate over the non-zero weighted tuples.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<usize>, &K)> {
        self.weights.iter()
    }
}

/// A `K`-weighted structure over a finite domain `{0, …, n−1}`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedStructure<K> {
    domain_size: usize,
    relations: BTreeMap<String, WeightedRelation<K>>,
}

impl<K: Semiring> WeightedStructure<K> {
    /// A structure with the given domain size and no relations.
    pub fn new(domain_size: usize) -> Self {
        WeightedStructure {
            domain_size,
            relations: BTreeMap::new(),
        }
    }

    /// The domain size `|A|`.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// The domain `0 … n−1`.
    pub fn domain(&self) -> impl Iterator<Item = usize> {
        0..self.domain_size
    }

    /// Adds (or replaces) a relation.
    pub fn add_relation(&mut self, name: impl Into<String>, relation: WeightedRelation<K>) {
        self.relations.insert(name.into(), relation);
    }

    /// Builder-style [`WeightedStructure::add_relation`].
    pub fn with_relation(mut self, name: impl Into<String>, relation: WeightedRelation<K>) -> Self {
        self.add_relation(name, relation);
        self
    }

    /// Looks up a relation.
    pub fn relation(&self, name: &str) -> Option<&WeightedRelation<K>> {
        self.relations.get(name)
    }

    /// Iterates over all relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&String, &WeightedRelation<K>)> {
        self.relations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Nat, Real};

    #[test]
    fn relation_weights_default_to_zero() {
        let mut r: WeightedRelation<Real> = WeightedRelation::new(2);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.weight(&[0, 1]), Real(0.0));
        r.set(vec![0, 1], Real(2.5)).unwrap();
        assert_eq!(r.weight(&[0, 1]), Real(2.5));
        r.set(vec![0, 1], Real(0.0)).unwrap();
        assert_eq!(r.weight(&[0, 1]), Real(0.0));
        assert_eq!(r.iter().count(), 0);
        assert!(r.set(vec![0], Real(1.0)).is_err());
    }

    #[test]
    fn structure_holds_relations_of_various_arities() {
        let mut edges: WeightedRelation<Nat> = WeightedRelation::new(2);
        edges.set(vec![0, 1], Nat(3)).unwrap();
        let mut labels: WeightedRelation<Nat> = WeightedRelation::new(1);
        labels.set(vec![2], Nat(1)).unwrap();
        let mut flag: WeightedRelation<Nat> = WeightedRelation::new(0);
        flag.set(vec![], Nat(7)).unwrap();

        let s = WeightedStructure::new(3)
            .with_relation("E", edges)
            .with_relation("L", labels)
            .with_relation("F", flag);
        assert_eq!(s.domain_size(), 3);
        assert_eq!(s.domain().count(), 3);
        assert_eq!(s.relation("E").unwrap().weight(&[0, 1]), Nat(3));
        assert_eq!(s.relation("F").unwrap().weight(&[]), Nat(7));
        assert!(s.relation("missing").is_none());
        assert_eq!(s.relations().count(), 3);
    }
}
