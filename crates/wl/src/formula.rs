//! Weighted first-order logic formulas and their semantics (Section 6.2).
//!
//! `φ ::= x = y | R(x̄) | φ ⊕ φ | φ ⊙ φ | Σx.φ | Πx.φ`

use crate::structure::WeightedStructure;
use matlang_semiring::Semiring;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A weighted-logic formula.
#[derive(Debug, Clone, PartialEq)]
pub enum WlFormula {
    /// The equality test `x = y` (weight 1 when equal, 0 otherwise).
    Eq(String, String),
    /// A relational atom `R(x₁, …, x_k)` whose weight is `Rᴬ(σ(x₁), …)`.
    Atom(String, Vec<String>),
    /// Semiring addition `φ₁ ⊕ φ₂`.
    Plus(Box<WlFormula>, Box<WlFormula>),
    /// Semiring multiplication `φ₁ ⊙ φ₂`.
    Times(Box<WlFormula>, Box<WlFormula>),
    /// The sum quantifier `Σx. φ`.
    SumQ(String, Box<WlFormula>),
    /// The product quantifier `Πx. φ`.
    ProdQ(String, Box<WlFormula>),
}

/// Errors raised while evaluating a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WlError {
    /// A variable is neither quantified nor assigned.
    UnboundVariable {
        /// The variable name.
        name: String,
    },
    /// An atom refers to a relation symbol that is not in the structure.
    UnknownRelation {
        /// The relation symbol.
        name: String,
    },
    /// An atom has the wrong number of arguments for its relation.
    ArityMismatch {
        /// The relation symbol.
        name: String,
        /// Expected arity.
        expected: usize,
        /// Provided arity.
        found: usize,
    },
}

impl fmt::Display for WlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WlError::UnboundVariable { name } => write!(f, "unbound first-order variable `{name}`"),
            WlError::UnknownRelation { name } => write!(f, "unknown relation symbol `{name}`"),
            WlError::ArityMismatch {
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "relation `{name}` expects {expected} arguments, got {found}"
                )
            }
        }
    }
}

impl std::error::Error for WlError {}

impl WlFormula {
    /// The equality atom.
    pub fn eq(x: impl Into<String>, y: impl Into<String>) -> WlFormula {
        WlFormula::Eq(x.into(), y.into())
    }

    /// A relational atom.
    pub fn atom(rel: impl Into<String>, vars: Vec<&str>) -> WlFormula {
        WlFormula::Atom(rel.into(), vars.into_iter().map(str::to_string).collect())
    }

    /// `self ⊕ other`.
    pub fn plus(self, other: WlFormula) -> WlFormula {
        WlFormula::Plus(Box::new(self), Box::new(other))
    }

    /// `self ⊙ other`.
    pub fn times(self, other: WlFormula) -> WlFormula {
        WlFormula::Times(Box::new(self), Box::new(other))
    }

    /// `Σx. self`.
    pub fn sum(x: impl Into<String>, body: WlFormula) -> WlFormula {
        WlFormula::SumQ(x.into(), Box::new(body))
    }

    /// `Πx. self`.
    pub fn prod(x: impl Into<String>, body: WlFormula) -> WlFormula {
        WlFormula::ProdQ(x.into(), Box::new(body))
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match self {
            WlFormula::Eq(x, y) => {
                for v in [x, y] {
                    if !bound.iter().any(|b| b == v) {
                        out.insert(v.clone());
                    }
                }
            }
            WlFormula::Atom(_, vars) => {
                for v in vars {
                    if !bound.iter().any(|b| b == v) {
                        out.insert(v.clone());
                    }
                }
            }
            WlFormula::Plus(a, b) | WlFormula::Times(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            WlFormula::SumQ(x, body) | WlFormula::ProdQ(x, body) => {
                bound.push(x.clone());
                body.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// Renames every *free* occurrence of the variable `old` to `new`
    /// (binder-aware, used by the FO-MATLANG translation for transposes and
    /// matrix products).
    pub fn rename_free(&self, old: &str, new: &str) -> WlFormula {
        match self {
            WlFormula::Eq(x, y) => WlFormula::Eq(
                if x == old { new.to_string() } else { x.clone() },
                if y == old { new.to_string() } else { y.clone() },
            ),
            WlFormula::Atom(rel, vars) => WlFormula::Atom(
                rel.clone(),
                vars.iter()
                    .map(|v| if v == old { new.to_string() } else { v.clone() })
                    .collect(),
            ),
            WlFormula::Plus(a, b) => WlFormula::Plus(
                Box::new(a.rename_free(old, new)),
                Box::new(b.rename_free(old, new)),
            ),
            WlFormula::Times(a, b) => WlFormula::Times(
                Box::new(a.rename_free(old, new)),
                Box::new(b.rename_free(old, new)),
            ),
            WlFormula::SumQ(x, body) => {
                if x == old {
                    self.clone()
                } else {
                    WlFormula::SumQ(x.clone(), Box::new(body.rename_free(old, new)))
                }
            }
            WlFormula::ProdQ(x, body) => {
                if x == old {
                    self.clone()
                } else {
                    WlFormula::ProdQ(x.clone(), Box::new(body.rename_free(old, new)))
                }
            }
        }
    }

    /// Evaluates the formula over a structure under an assignment of its free
    /// variables.  This is `⟦φ⟧ᴬ(σ)`.
    pub fn evaluate<K: Semiring>(
        &self,
        structure: &WeightedStructure<K>,
        assignment: &HashMap<String, usize>,
    ) -> Result<K, WlError> {
        match self {
            WlFormula::Eq(x, y) => {
                let vx = lookup(assignment, x)?;
                let vy = lookup(assignment, y)?;
                Ok(if vx == vy { K::one() } else { K::zero() })
            }
            WlFormula::Atom(rel, vars) => {
                let relation = structure
                    .relation(rel)
                    .ok_or_else(|| WlError::UnknownRelation { name: rel.clone() })?;
                if relation.arity() != vars.len() {
                    return Err(WlError::ArityMismatch {
                        name: rel.clone(),
                        expected: relation.arity(),
                        found: vars.len(),
                    });
                }
                let tuple: Vec<usize> = vars
                    .iter()
                    .map(|v| lookup(assignment, v))
                    .collect::<Result<_, _>>()?;
                Ok(relation.weight(&tuple))
            }
            WlFormula::Plus(a, b) => Ok(a
                .evaluate(structure, assignment)?
                .add(&b.evaluate(structure, assignment)?)),
            WlFormula::Times(a, b) => Ok(a
                .evaluate(structure, assignment)?
                .mul(&b.evaluate(structure, assignment)?)),
            WlFormula::SumQ(x, body) => {
                let mut acc = K::zero();
                let mut local = assignment.clone();
                for a in structure.domain() {
                    local.insert(x.clone(), a);
                    acc = acc.add(&body.evaluate(structure, &local)?);
                }
                Ok(acc)
            }
            WlFormula::ProdQ(x, body) => {
                let mut acc = K::one();
                let mut local = assignment.clone();
                for a in structure.domain() {
                    local.insert(x.clone(), a);
                    acc = acc.mul(&body.evaluate(structure, &local)?);
                }
                Ok(acc)
            }
        }
    }

    /// Evaluates a closed formula (no free variables).
    pub fn evaluate_closed<K: Semiring>(
        &self,
        structure: &WeightedStructure<K>,
    ) -> Result<K, WlError> {
        self.evaluate(structure, &HashMap::new())
    }
}

fn lookup(assignment: &HashMap<String, usize>, var: &str) -> Result<usize, WlError> {
    assignment
        .get(var)
        .copied()
        .ok_or_else(|| WlError::UnboundVariable {
            name: var.to_string(),
        })
}

impl fmt::Display for WlFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WlFormula::Eq(x, y) => write!(f, "({x} = {y})"),
            WlFormula::Atom(rel, vars) => write!(f, "{rel}({})", vars.join(", ")),
            WlFormula::Plus(a, b) => write!(f, "({a} ⊕ {b})"),
            WlFormula::Times(a, b) => write!(f, "({a} ⊙ {b})"),
            WlFormula::SumQ(x, body) => write!(f, "Σ{x}.{body}"),
            WlFormula::ProdQ(x, body) => write!(f, "Π{x}.{body}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::WeightedRelation;
    use matlang_semiring::{Nat, Real};

    fn path_structure() -> WeightedStructure<Nat> {
        // Edges 0→1 (weight 2) and 1→2 (weight 3).
        let mut edges: WeightedRelation<Nat> = WeightedRelation::new(2);
        edges.set(vec![0, 1], Nat(2)).unwrap();
        edges.set(vec![1, 2], Nat(3)).unwrap();
        WeightedStructure::new(3).with_relation("E", edges)
    }

    #[test]
    fn equality_and_atoms() {
        let s = path_structure();
        let mut sigma = HashMap::new();
        sigma.insert("x".to_string(), 0);
        sigma.insert("y".to_string(), 1);
        assert_eq!(
            WlFormula::eq("x", "x").evaluate(&s, &sigma).unwrap(),
            Nat(1)
        );
        assert_eq!(
            WlFormula::eq("x", "y").evaluate(&s, &sigma).unwrap(),
            Nat(0)
        );
        assert_eq!(
            WlFormula::atom("E", vec!["x", "y"])
                .evaluate(&s, &sigma)
                .unwrap(),
            Nat(2)
        );
        assert_eq!(
            WlFormula::atom("E", vec!["y", "x"])
                .evaluate(&s, &sigma)
                .unwrap(),
            Nat(0)
        );
    }

    #[test]
    fn quantifiers_sum_and_multiply_over_the_domain() {
        let s = path_structure();
        // Σx Σy E(x, y) = total edge weight = 5.
        let total = WlFormula::sum(
            "x",
            WlFormula::sum("y", WlFormula::atom("E", vec!["x", "y"])),
        );
        assert_eq!(total.evaluate_closed(&s).unwrap(), Nat(5));
        // Two-hop weighted paths: Σx Σy Σz E(x,y) ⊙ E(y,z) = 2·3 = 6.
        let two_hop = WlFormula::sum(
            "x",
            WlFormula::sum(
                "y",
                WlFormula::sum(
                    "z",
                    WlFormula::atom("E", vec!["x", "y"])
                        .times(WlFormula::atom("E", vec!["y", "z"])),
                ),
            ),
        );
        assert_eq!(two_hop.evaluate_closed(&s).unwrap(), Nat(6));
        // Πx. (x = x) = 1.
        let ones = WlFormula::prod("x", WlFormula::eq("x", "x"));
        assert_eq!(ones.evaluate_closed(&s).unwrap(), Nat(1));
    }

    #[test]
    fn free_variables_and_renaming() {
        let phi = WlFormula::sum("y", WlFormula::atom("E", vec!["x", "y"]));
        assert_eq!(
            phi.free_vars().into_iter().collect::<Vec<_>>(),
            vec!["x".to_string()]
        );
        let renamed = phi.rename_free("x", "z");
        assert!(renamed.free_vars().contains("z"));
        // Bound variables are untouched.
        let same = phi.rename_free("y", "w");
        assert_eq!(same, phi);
    }

    #[test]
    fn errors_for_unbound_unknown_and_arity() {
        let s = path_structure();
        assert!(matches!(
            WlFormula::eq("x", "y").evaluate_closed(&s),
            Err(WlError::UnboundVariable { .. })
        ));
        assert!(matches!(
            WlFormula::sum("x", WlFormula::atom("Z", vec!["x"])).evaluate_closed(&s),
            Err(WlError::UnknownRelation { .. })
        ));
        assert!(matches!(
            WlFormula::sum("x", WlFormula::atom("E", vec!["x"])).evaluate_closed(&s),
            Err(WlError::ArityMismatch { .. })
        ));
        assert!(!WlError::UnboundVariable { name: "x".into() }
            .to_string()
            .is_empty());
    }

    #[test]
    fn display_is_readable() {
        let phi = WlFormula::sum(
            "x",
            WlFormula::atom("E", vec!["x", "y"]).plus(WlFormula::eq("x", "y")),
        );
        let shown = format!("{phi}");
        assert!(shown.contains("Σx"));
        assert!(shown.contains("E(x, y)"));
    }

    #[test]
    fn semantics_over_the_reals() {
        let mut weights: WeightedRelation<Real> = WeightedRelation::new(1);
        weights.set(vec![0], Real(0.5)).unwrap();
        weights.set(vec![1], Real(1.5)).unwrap();
        let s = WeightedStructure::new(2).with_relation("W", weights);
        let sum = WlFormula::sum("x", WlFormula::atom("W", vec!["x"]));
        assert_eq!(sum.evaluate_closed(&s).unwrap(), Real(2.0));
        let prod = WlFormula::prod("x", WlFormula::atom("W", vec!["x"]));
        assert_eq!(prod.evaluate_closed(&s).unwrap(), Real(0.75));
    }
}
