//! Proposition 6.7: the translations between FO-MATLANG and weighted logics,
//! together with the instance/structure encodings `WL(I)` and `Mat(A)`.

use crate::formula::WlFormula;
use crate::structure::{WeightedRelation, WeightedStructure};
use matlang_core::{typecheck, Dim, Expr, Instance, MatrixType, Schema, TypeError};
use matlang_matrix::{Matrix, MatrixStorage};
use matlang_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// The first-order variable standing for the row index of the translated
/// expression.
pub const ROW_VAR: &str = "row";
/// The first-order variable standing for the column index.
pub const COL_VAR: &str = "col";

/// The relation symbol used by `WL(S)` for a matrix variable.
pub fn relation_symbol(var: &str) -> String {
    format!("R_{var}")
}

/// The matrix variable used by `Mat(Γ)` for a relation symbol.
pub fn matrix_symbol(rel: &str) -> String {
    format!("M_{rel}")
}

/// The FO variable associated with an iterator (vector) variable of the
/// MATLANG expression.
pub fn iterator_variable(var: &str) -> String {
    format!("x_{var}")
}

/// The vector variable associated with a first-order variable of a WL
/// formula (the Ψ direction).
pub fn fo_vector_variable(var: &str) -> String {
    format!("v_{var}")
}

/// `WL(I)` — encodes a matrix instance over a square schema (every variable
/// of type `(α,α)`, `(α,1)`, `(1,α)` or `(1,1)`) as a weighted structure with
/// domain `{0, …, D(α)−1}`.
///
/// Generic over the matrix representation: a dense `Instance<K>` and a
/// sparse/adaptive `Instance<K, MatrixRepr<K>>` encode to the same weighted
/// structure (the encoding only ever consumes non-zero entries, which is
/// exactly what sparse storage enumerates).
pub fn encode_instance_as_structure<K: Semiring, M: MatrixStorage<Elem = K>>(
    schema: &Schema,
    instance: &Instance<K, M>,
) -> Result<WeightedStructure<K>, String> {
    let mut domain_size = 1;
    for (_, ty) in schema.iter() {
        for dim in [&ty.rows, &ty.cols] {
            if let Dim::Sym(_) = dim {
                domain_size = instance
                    .dim_value(dim)
                    .ok_or_else(|| format!("size symbol {dim} has no value"))?;
            }
        }
    }
    let mut structure = WeightedStructure::new(domain_size);
    for (name, ty) in schema.iter() {
        let matrix = instance
            .matrix(name)
            .ok_or_else(|| format!("variable {name} has no matrix"))?;
        let arity = match (&ty.rows, &ty.cols) {
            (Dim::Sym(_), Dim::Sym(_)) => 2,
            (Dim::Sym(_), Dim::One) | (Dim::One, Dim::Sym(_)) => 1,
            (Dim::One, Dim::One) => 0,
        };
        let mut relation = WeightedRelation::new(arity);
        for (i, j, value) in matrix.nonzero_entries() {
            let tuple = match arity {
                2 => vec![i, j],
                1 => vec![i.max(j)],
                _ => vec![],
            };
            relation.set(tuple, value)?;
        }
        structure.add_relation(relation_symbol(name), relation);
    }
    Ok(structure)
}

/// `Mat(A)` — encodes a weighted structure whose relations have arity ≤ 2 as
/// a matrix instance over the size symbol `dim`: binary relations become
/// `n × n` matrices, unary ones `n × 1` vectors and nullary ones `1 × 1`
/// scalars (Section 6.2).
pub fn encode_structure_as_instance<K: Semiring>(
    structure: &WeightedStructure<K>,
    dim: &str,
) -> Result<(Instance<K>, Schema), String> {
    let n = structure.domain_size().max(1);
    let mut instance: Instance<K> = Instance::new().with_dim(dim, n);
    let mut schema = Schema::new();
    for (name, relation) in structure.relations() {
        let var = matrix_symbol(name);
        let (matrix, ty) = match relation.arity() {
            2 => {
                let mut m = Matrix::zeros(n, n);
                for (tuple, weight) in relation.iter() {
                    m.set(tuple[0], tuple[1], weight.clone())
                        .map_err(|e| e.to_string())?;
                }
                (m, MatrixType::square(dim))
            }
            1 => {
                let mut m = Matrix::zeros(n, 1);
                for (tuple, weight) in relation.iter() {
                    m.set(tuple[0], 0, weight.clone())
                        .map_err(|e| e.to_string())?;
                }
                (m, MatrixType::vector(dim))
            }
            0 => {
                let value = relation.weight(&[]);
                (Matrix::scalar(value), MatrixType::scalar())
            }
            arity => return Err(format!("relation {name} has arity {arity} > 2")),
        };
        instance.set_matrix(var.clone(), matrix);
        schema.declare(var, ty);
    }
    Ok((instance, schema))
}

/// Errors raised by the FO-MATLANG → WL translation.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWlError {
    /// The expression uses an operator outside FO-MATLANG (`for` or `Π`).
    NotFoMatlang {
        /// The offending operator.
        operator: &'static str,
    },
    /// The expression uses a pointwise function other than `mul`.
    UnsupportedFunction {
        /// The function name.
        name: String,
    },
    /// Only the constant 1 has a WL counterpart (as `Πz.(z = z)`).
    UnsupportedConstant {
        /// The constant value.
        value: f64,
    },
    /// The expression is not over a square schema or does not type check.
    Type(TypeError),
}

impl fmt::Display for ToWlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToWlError::NotFoMatlang { operator } => {
                write!(f, "operator {operator} is outside FO-MATLANG")
            }
            ToWlError::UnsupportedFunction { name } => {
                write!(
                    f,
                    "pointwise function `{name}` has no weighted-logic counterpart"
                )
            }
            ToWlError::UnsupportedConstant { value } => {
                write!(
                    f,
                    "constant {value} has no weighted-logic counterpart (only 1 does)"
                )
            }
            ToWlError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for ToWlError {}

impl From<TypeError> for ToWlError {
    fn from(e: TypeError) -> Self {
        ToWlError::Type(e)
    }
}

struct ToWl {
    /// Iterator (vector) variables in scope, mapped to their FO variable.
    bound: BTreeMap<String, String>,
    counter: usize,
}

struct TranslatedWl {
    formula: WlFormula,
    ty: MatrixType,
}

impl ToWl {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("y{}", self.counter)
    }

    fn translate(&mut self, expr: &Expr, schema: &Schema) -> Result<TranslatedWl, ToWlError> {
        match expr {
            Expr::Var(name) => {
                let ty = self.typecheck(expr, schema)?;
                if let Some(fo_var) = self.bound.get(name) {
                    // A canonical-vector variable: bᵢ has a 1 exactly at its
                    // own index, i.e. `row = x_v`.
                    return Ok(TranslatedWl {
                        formula: WlFormula::eq(ROW_VAR, fo_var.clone()),
                        ty,
                    });
                }
                let rel = relation_symbol(name);
                let formula = match (&ty.rows, &ty.cols) {
                    (Dim::Sym(_), Dim::Sym(_)) => WlFormula::atom(rel, vec![ROW_VAR, COL_VAR]),
                    (Dim::Sym(_), Dim::One) => WlFormula::atom(rel, vec![ROW_VAR]),
                    (Dim::One, Dim::Sym(_)) => WlFormula::atom(rel, vec![COL_VAR]),
                    (Dim::One, Dim::One) => WlFormula::Atom(rel, vec![]),
                };
                Ok(TranslatedWl { formula, ty })
            }
            Expr::Const(value) => {
                if (*value - 1.0).abs() < f64::EPSILON {
                    // 1 = Πz.(z = z).
                    let z = self.fresh();
                    Ok(TranslatedWl {
                        formula: WlFormula::prod(z.clone(), WlFormula::eq(z.clone(), z)),
                        ty: MatrixType::scalar(),
                    })
                } else {
                    Err(ToWlError::UnsupportedConstant { value: *value })
                }
            }
            Expr::Transpose(inner) => {
                let t = self.translate(inner, schema)?;
                let tmp = self.fresh();
                let formula = t
                    .formula
                    .rename_free(ROW_VAR, &tmp)
                    .rename_free(COL_VAR, ROW_VAR)
                    .rename_free(&tmp, COL_VAR);
                Ok(TranslatedWl {
                    formula,
                    ty: t.ty.transposed(),
                })
            }
            Expr::Ones(inner) => {
                let inner_ty = self.typecheck(inner, schema)?;
                // 1(e) has every entry 1 regardless of e: `row = row`.
                Ok(TranslatedWl {
                    formula: WlFormula::eq(ROW_VAR, ROW_VAR),
                    ty: MatrixType::new(inner_ty.rows, Dim::One),
                })
            }
            Expr::Diag(inner) => {
                let t = self.translate(inner, schema)?;
                let ty = MatrixType::new(t.ty.rows.clone(), t.ty.rows.clone());
                Ok(TranslatedWl {
                    formula: t.formula.times(WlFormula::eq(ROW_VAR, COL_VAR)),
                    ty,
                })
            }
            Expr::Add(a, b) => {
                let ta = self.translate(a, schema)?;
                let tb = self.translate(b, schema)?;
                Ok(TranslatedWl {
                    formula: ta.formula.plus(tb.formula),
                    ty: ta.ty,
                })
            }
            Expr::Hadamard(a, b) | Expr::ScalarMul(a, b) => {
                let ta = self.translate(a, schema)?;
                let tb = self.translate(b, schema)?;
                Ok(TranslatedWl {
                    formula: ta.formula.times(tb.formula),
                    ty: tb.ty,
                })
            }
            Expr::Apply(name, args) => {
                if name != "mul" || args.is_empty() {
                    return Err(ToWlError::UnsupportedFunction { name: name.clone() });
                }
                let mut ty = None;
                let mut formula: Option<WlFormula> = None;
                for arg in args {
                    let t = self.translate(arg, schema)?;
                    ty.get_or_insert(t.ty);
                    formula = Some(match formula {
                        None => t.formula,
                        Some(prev) => prev.times(t.formula),
                    });
                }
                Ok(TranslatedWl {
                    formula: formula.expect("non-empty"),
                    ty: ty.expect("non-empty"),
                })
            }
            Expr::MatMul(a, b) => {
                let ta = self.translate(a, schema)?;
                let tb = self.translate(b, schema)?;
                let result_ty = MatrixType::new(ta.ty.rows.clone(), tb.ty.cols.clone());
                match &ta.ty.cols {
                    Dim::One => Ok(TranslatedWl {
                        formula: ta.formula.times(tb.formula),
                        ty: result_ty,
                    }),
                    Dim::Sym(_) => {
                        let y = self.fresh();
                        let left = ta.formula.rename_free(COL_VAR, &y);
                        let right = tb.formula.rename_free(ROW_VAR, &y);
                        Ok(TranslatedWl {
                            formula: WlFormula::sum(y, left.times(right)),
                            ty: result_ty,
                        })
                    }
                }
            }
            Expr::Let { var, value, body } => {
                let inlined = body.substitute(var, value);
                self.translate(&inlined, schema)
            }
            Expr::Sum { var, var_dim, body } => {
                self.quantifier(var, var_dim, body, schema, WlFormula::sum)
            }
            Expr::HProd { var, var_dim, body } => {
                self.quantifier(var, var_dim, body, schema, WlFormula::prod)
            }
            Expr::MProd { .. } => Err(ToWlError::NotFoMatlang {
                operator: "Π (matrix product)",
            }),
            Expr::For { .. } => Err(ToWlError::NotFoMatlang { operator: "for" }),
        }
    }

    fn quantifier(
        &mut self,
        var: &str,
        var_dim: &str,
        body: &Expr,
        schema: &Schema,
        build: impl Fn(String, WlFormula) -> WlFormula,
    ) -> Result<TranslatedWl, ToWlError> {
        let fo_var = iterator_variable(var);
        let previous = self.bound.insert(var.to_string(), fo_var.clone());
        let mut extended = schema.clone();
        extended.declare(var, MatrixType::new(Dim::sym(var_dim), Dim::One));
        let result = self.translate(body, &extended);
        match previous {
            Some(p) => {
                self.bound.insert(var.to_string(), p);
            }
            None => {
                self.bound.remove(var);
            }
        }
        let t = result?;
        Ok(TranslatedWl {
            formula: build(fo_var, t.formula),
            ty: t.ty,
        })
    }

    fn typecheck(&self, expr: &Expr, schema: &Schema) -> Result<MatrixType, ToWlError> {
        let mut extended = schema.clone();
        for var in self.bound.keys() {
            // All iterator variables range over the single square dimension.
            if extended.var_type(var).is_none() {
                extended.declare(var.clone(), MatrixType::vector("α"));
            }
        }
        Ok(typecheck(expr, &extended)?)
    }
}

/// Proposition 6.7 (⇒) — translates a *closed, scalar-typed* FO-MATLANG
/// expression over a square schema into a closed WL formula such that
/// `⟦e⟧(I) = ⟦Φ(e)⟧_{WL(I)}`.
///
/// Open (matrix-typed) expressions are also supported: the resulting formula
/// then has the free variables [`ROW_VAR`] / [`COL_VAR`] indexing the output
/// entry, which is how the round-trip tests check every entry.
pub fn matlang_to_wl(expr: &Expr, schema: &Schema) -> Result<WlFormula, ToWlError> {
    let mut translator = ToWl {
        bound: BTreeMap::new(),
        counter: 0,
    };
    Ok(translator.translate(expr, schema)?.formula)
}

/// Proposition 6.7 (⇐) — translates a WL formula over a vocabulary of arity
/// ≤ 2 into an FO-MATLANG expression over the matrix encoding `Mat(A)`
/// (see [`encode_structure_as_instance`]); free first-order variables become
/// free vector variables `v_x`.
pub fn wl_to_matlang(formula: &WlFormula, dim: &str) -> Expr {
    match formula {
        WlFormula::Eq(x, y) => Expr::var(fo_vector_variable(x))
            .t()
            .mm(Expr::var(fo_vector_variable(y))),
        WlFormula::Atom(rel, vars) => {
            let matrix = Expr::var(matrix_symbol(rel));
            match vars.len() {
                0 => matrix,
                1 => matrix.t().mm(Expr::var(fo_vector_variable(&vars[0]))),
                _ => Expr::var(fo_vector_variable(&vars[0]))
                    .t()
                    .mm(matrix)
                    .mm(Expr::var(fo_vector_variable(&vars[1]))),
            }
        }
        WlFormula::Plus(a, b) => wl_to_matlang(a, dim).add(wl_to_matlang(b, dim)),
        WlFormula::Times(a, b) => wl_to_matlang(a, dim).mm(wl_to_matlang(b, dim)),
        WlFormula::SumQ(x, body) => Expr::sum(fo_vector_variable(x), dim, wl_to_matlang(body, dim)),
        WlFormula::ProdQ(x, body) => {
            Expr::hprod(fo_vector_variable(x), dim, wl_to_matlang(body, dim))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_core::{evaluate, evaluate_with_env, fragment_of, Fragment, FunctionRegistry};
    use matlang_matrix::{random_matrix, RandomMatrixConfig};
    use matlang_semiring::Nat;
    use std::collections::HashMap;

    fn schema() -> Schema {
        Schema::new()
            .with_var("A", MatrixType::square("α"))
            .with_var("B", MatrixType::square("α"))
            .with_var("u", MatrixType::vector("α"))
            .with_var("c", MatrixType::scalar())
    }

    fn instance(n: usize, seed: u64) -> Instance<Nat> {
        let cfg = |s| RandomMatrixConfig {
            seed: s,
            min_value: 0.0,
            max_value: 3.0,
            integer_entries: true,
            zero_probability: 0.25,
        };
        Instance::new()
            .with_dim("α", n)
            .with_matrix("A", random_matrix(n, n, &cfg(seed)))
            .with_matrix("B", random_matrix(n, n, &cfg(seed + 1)))
            .with_matrix("u", random_matrix(n, 1, &cfg(seed + 2)))
            .with_matrix("c", Matrix::scalar(Nat(3)))
    }

    #[test]
    fn sparse_and_dense_instances_encode_to_the_same_structure() {
        use matlang_matrix::MatrixRepr;
        let schema = schema();
        let dense_inst = instance(5, 9);
        let mut sparse_inst: Instance<Nat, MatrixRepr<Nat>> = Instance::new().with_dim("α", 5);
        for (name, m) in dense_inst.matrices() {
            sparse_inst.set_matrix(name.clone(), MatrixRepr::from_dense_auto(m.clone()));
        }
        let via_dense = encode_instance_as_structure(&schema, &dense_inst).unwrap();
        let via_sparse = encode_instance_as_structure(&schema, &sparse_inst).unwrap();
        assert_eq!(via_dense, via_sparse);
    }

    /// Checks the Proposition 6.7 (⇒) invariant entry by entry.
    fn assert_matlang_to_wl(expr: &Expr, n: usize, seed: u64) {
        let schema = schema();
        let inst = instance(n, seed);
        let registry = FunctionRegistry::<Nat>::new().with_semiring_ops();
        let matrix = evaluate(expr, &inst, &registry).unwrap();
        let structure = encode_instance_as_structure(&schema, &inst).unwrap();
        let formula = matlang_to_wl(expr, &schema).unwrap();

        for i in 0..matrix.rows() {
            for j in 0..matrix.cols() {
                // Bind both index variables unconditionally; formulas only
                // look up the ones they mention.
                let mut sigma = HashMap::new();
                sigma.insert(ROW_VAR.to_string(), i);
                sigma.insert(COL_VAR.to_string(), j);
                let via_wl = formula.evaluate(&structure, &sigma).unwrap();
                assert_eq!(
                    &via_wl,
                    matrix.get(i, j).unwrap(),
                    "mismatch at ({i},{j}) for {expr}, n={n}, seed={seed}"
                );
            }
        }
    }

    #[test]
    fn scalars_vectors_and_matrices_translate() {
        for n in [2, 4] {
            assert_matlang_to_wl(&Expr::var("A"), n, 1);
            assert_matlang_to_wl(&Expr::var("A").t(), n, 2);
            assert_matlang_to_wl(&Expr::var("u"), n, 3);
            assert_matlang_to_wl(&Expr::var("u").t(), n, 4);
            assert_matlang_to_wl(&Expr::var("c"), n, 5);
            assert_matlang_to_wl(&Expr::var("A").add(Expr::var("B")), n, 6);
            assert_matlang_to_wl(&Expr::var("A").had(Expr::var("B")), n, 7);
            assert_matlang_to_wl(&Expr::var("A").mm(Expr::var("B")), n, 8);
            assert_matlang_to_wl(&Expr::var("A").mm(Expr::var("u")), n, 9);
            assert_matlang_to_wl(
                &Expr::var("u").t().mm(Expr::var("A")).mm(Expr::var("u")),
                n,
                10,
            );
            assert_matlang_to_wl(&Expr::var("u").diag(), n, 11);
            assert_matlang_to_wl(&Expr::var("A").ones(), n, 12);
            assert_matlang_to_wl(&Expr::var("c").smul(Expr::var("A")), n, 13);
        }
    }

    #[test]
    fn quantified_expressions_translate() {
        for n in [2, 3] {
            // Trace.
            assert_matlang_to_wl(
                &Expr::sum(
                    "v",
                    "α",
                    Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
                ),
                n,
                14,
            );
            // Diagonal product (Example 6.6).
            assert_matlang_to_wl(
                &Expr::hprod(
                    "v",
                    "α",
                    Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
                ),
                n,
                15,
            );
            // Identity matrix.
            assert_matlang_to_wl(
                &Expr::sum("v", "α", Expr::var("v").mm(Expr::var("v").t())),
                n,
                16,
            );
            // Nested Σ/Π∘ mixing.
            assert_matlang_to_wl(
                &Expr::sum(
                    "v",
                    "α",
                    Expr::hprod(
                        "w",
                        "α",
                        Expr::var("v")
                            .t()
                            .mm(Expr::var("A"))
                            .mm(Expr::var("w"))
                            .add(Expr::lit(1.0)),
                    ),
                ),
                n,
                17,
            );
        }
    }

    #[test]
    fn rejects_constructs_outside_fo_matlang() {
        let schema = schema();
        assert!(matches!(
            matlang_to_wl(&Expr::mprod("v", "α", Expr::var("A")), &schema),
            Err(ToWlError::NotFoMatlang { .. })
        ));
        assert!(matches!(
            matlang_to_wl(
                &Expr::for_loop("v", "α", "X", MatrixType::square("α"), Expr::var("X")),
                &schema
            ),
            Err(ToWlError::NotFoMatlang { .. })
        ));
        assert!(matches!(
            matlang_to_wl(&Expr::lit(2.0), &schema),
            Err(ToWlError::UnsupportedConstant { .. })
        ));
        assert!(matches!(
            matlang_to_wl(
                &Expr::apply("div", vec![Expr::var("A"), Expr::var("B")]),
                &schema
            ),
            Err(ToWlError::UnsupportedFunction { .. })
        ));
        for e in [
            ToWlError::NotFoMatlang { operator: "for" }.to_string(),
            ToWlError::UnsupportedConstant { value: 2.0 }.to_string(),
        ] {
            assert!(!e.is_empty());
        }
    }

    /// Checks the Proposition 6.7 (⇐) invariant on closed formulas and on
    /// formulas with free variables (via explicit assignments).
    fn assert_wl_to_matlang(formula: &WlFormula, structure: &WeightedStructure<Nat>) {
        let (instance, _) = encode_structure_as_instance(structure, "α").unwrap();
        let expr = wl_to_matlang(formula, "α");
        let registry = FunctionRegistry::<Nat>::new();
        let free: Vec<String> = formula.free_vars().into_iter().collect();
        let n = structure.domain_size();

        // Enumerate all assignments of the free variables.
        let mut assignments = vec![HashMap::new()];
        for var in &free {
            let mut next = Vec::new();
            for sigma in &assignments {
                for value in 0..n {
                    let mut s = sigma.clone();
                    s.insert(var.clone(), value);
                    next.push(s);
                }
            }
            assignments = next;
        }
        for sigma in assignments {
            let direct = formula.evaluate(structure, &sigma).unwrap();
            let mut env = HashMap::new();
            for (var, &value) in &sigma {
                env.insert(
                    fo_vector_variable(var),
                    Matrix::<Nat>::canonical(n, value).unwrap(),
                );
            }
            let via_ml = evaluate_with_env(&expr, &instance, &registry, &env)
                .unwrap()
                .as_scalar()
                .unwrap();
            assert_eq!(via_ml, direct, "mismatch for {formula} under {sigma:?}");
        }
    }

    fn example_structure() -> WeightedStructure<Nat> {
        let mut edges: WeightedRelation<Nat> = WeightedRelation::new(2);
        edges.set(vec![0, 1], Nat(2)).unwrap();
        edges.set(vec![1, 2], Nat(3)).unwrap();
        edges.set(vec![2, 0], Nat(1)).unwrap();
        let mut labels: WeightedRelation<Nat> = WeightedRelation::new(1);
        labels.set(vec![1], Nat(4)).unwrap();
        let mut flag: WeightedRelation<Nat> = WeightedRelation::new(0);
        flag.set(vec![], Nat(5)).unwrap();
        WeightedStructure::new(3)
            .with_relation("E", edges)
            .with_relation("L", labels)
            .with_relation("F", flag)
    }

    #[test]
    fn wl_formulas_translate_to_fo_matlang() {
        let s = example_structure();
        let cases = vec![
            WlFormula::sum(
                "x",
                WlFormula::sum("y", WlFormula::atom("E", vec!["x", "y"])),
            ),
            WlFormula::sum(
                "x",
                WlFormula::atom("L", vec!["x"])
                    .times(WlFormula::sum("y", WlFormula::atom("E", vec!["x", "y"]))),
            ),
            WlFormula::prod(
                "x",
                WlFormula::sum(
                    "y",
                    WlFormula::atom("E", vec!["x", "y"]).plus(WlFormula::eq("x", "y")),
                ),
            ),
            WlFormula::atom("F", vec![])
                .times(WlFormula::sum("x", WlFormula::atom("L", vec!["x"]))),
            // Formula with a free variable.
            WlFormula::sum("y", WlFormula::atom("E", vec!["x", "y"])),
            WlFormula::eq("x", "z"),
        ];
        for formula in cases {
            assert_wl_to_matlang(&formula, &s);
        }
    }

    #[test]
    fn wl_translations_land_in_fo_matlang() {
        let formula = WlFormula::prod(
            "x",
            WlFormula::sum("y", WlFormula::atom("E", vec!["x", "y"])),
        );
        let expr = wl_to_matlang(&formula, "α");
        assert_eq!(fragment_of(&expr), Fragment::FoMatlang);
    }

    #[test]
    fn structure_instance_encodings_roundtrip() {
        let s = example_structure();
        let (instance, schema) = encode_structure_as_instance(&s, "α").unwrap();
        assert_eq!(instance.dim_value(&Dim::sym("α")), Some(3));
        assert_eq!(
            schema.var_type(&matrix_symbol("E")),
            Some(&MatrixType::square("α"))
        );
        let back = encode_instance_as_structure(&schema, &instance).unwrap();
        // Relation names gain the R_/M_ prefixes but the weights must agree.
        assert_eq!(
            back.relation(&relation_symbol(&matrix_symbol("E")))
                .unwrap()
                .weight(&[0, 1]),
            Nat(2)
        );
        assert_eq!(
            back.relation(&relation_symbol(&matrix_symbol("L")))
                .unwrap()
                .weight(&[1]),
            Nat(4)
        );
        assert_eq!(
            back.relation(&relation_symbol(&matrix_symbol("F")))
                .unwrap()
                .weight(&[]),
            Nat(5)
        );
    }

    #[test]
    fn wide_relations_are_rejected_by_the_matrix_encoding() {
        let wide: WeightedRelation<Nat> = WeightedRelation::new(3);
        let s = WeightedStructure::new(2).with_relation("T", wide);
        assert!(encode_structure_as_instance(&s, "α").is_err());
    }
}
