//! K-weighted structures, weighted first-order logic (WL) and the
//! equivalence with FO-MATLANG (Section 6.2 of the paper).
//!
//! * [`structure`] — `K`-weighted structures: finite domains with weighted
//!   relations `Rᴬ : A^arity → K`.
//! * [`formula`] — the weighted-logic formulas
//!   `φ ::= x = y | R(x̄) | φ ⊕ φ | φ ⊙ φ | Σx.φ | Πx.φ` and their semantics.
//! * [`translate`] — the encodings `WL(S)` / `WL(I)` and `Mat(Γ)` / `Mat(A)`
//!   plus both directions of Proposition 6.7:
//!   `Φ : FO-MATLANG → WL` and `Ψ : WL → FO-MATLANG`.

pub mod formula;
pub mod structure;
pub mod translate;

pub use formula::WlFormula;
pub use structure::{WeightedRelation, WeightedStructure};
pub use translate::{
    encode_instance_as_structure, encode_structure_as_instance, matlang_to_wl, wl_to_matlang,
    ToWlError, COL_VAR, ROW_VAR,
};
