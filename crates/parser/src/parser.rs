//! Recursive-descent parser for the for-MATLANG surface syntax.

use crate::lexer::{tokenize, LexError, Token};
use matlang_core::{Dim, Expr, MatrixType};
use std::fmt;

/// Errors produced while parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// The input ended unexpectedly.
    UnexpectedEnd,
    /// An unexpected token was encountered.
    UnexpectedToken {
        /// The token found.
        found: String,
        /// What the parser expected.
        expected: &'static str,
    },
    /// Trailing tokens remained after a complete expression.
    TrailingInput {
        /// The first trailing token.
        found: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lexical error: {e}"),
            ParseError::UnexpectedEnd => write!(f, "unexpected end of input"),
            ParseError::UnexpectedToken { found, expected } => {
                write!(f, "unexpected token `{found}`, expected {expected}")
            }
            ParseError::TrailingInput { found } => {
                write!(f, "trailing input starting at `{found}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses a complete for-MATLANG expression.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        position: 0,
    };
    let expr = parser.expression()?;
    if parser.position < parser.tokens.len() {
        return Err(ParseError::TrailingInput {
            found: parser.tokens[parser.position].to_string(),
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    position: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let token = self
            .tokens
            .get(self.position)
            .cloned()
            .ok_or(ParseError::UnexpectedEnd)?;
        self.position += 1;
        Ok(token)
    }

    fn expect(&mut self, token: Token, expected: &'static str) -> Result<(), ParseError> {
        let found = self.next()?;
        if found == token {
            Ok(())
        } else {
            Err(ParseError::UnexpectedToken {
                found: found.to_string(),
                expected,
            })
        }
    }

    fn ident(&mut self, expected: &'static str) -> Result<String, ParseError> {
        match self.next()? {
            Token::Ident(name) => Ok(name),
            other => Err(ParseError::UnexpectedToken {
                found: other.to_string(),
                expected,
            }),
        }
    }

    fn expression(&mut self) -> Result<Expr, ParseError> {
        match self.next()? {
            Token::Ident(name) => self.ident_expression(name),
            Token::LParen => self.parenthesised(),
            other => Err(ParseError::UnexpectedToken {
                found: other.to_string(),
                expected: "an identifier or `(`",
            }),
        }
    }

    fn ident_expression(&mut self, name: String) -> Result<Expr, ParseError> {
        match name.as_str() {
            "transpose" | "ones" | "diag" => {
                self.expect(Token::LParen, "`(`")?;
                let inner = self.expression()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(match name.as_str() {
                    "transpose" => inner.t(),
                    "ones" => inner.ones(),
                    _ => inner.diag(),
                })
            }
            "apply" => {
                self.expect(Token::LBracket, "`[`")?;
                let function = self.ident("a function name")?;
                self.expect(Token::RBracket, "`]`")?;
                self.expect(Token::LParen, "`(`")?;
                let mut args = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    loop {
                        args.push(self.expression()?);
                        match self.next()? {
                            Token::Comma => continue,
                            Token::RParen => break,
                            other => {
                                return Err(ParseError::UnexpectedToken {
                                    found: other.to_string(),
                                    expected: "`,` or `)`",
                                })
                            }
                        }
                    }
                } else {
                    self.expect(Token::RParen, "`)`")?;
                }
                Ok(Expr::Apply(function, args))
            }
            _ => Ok(Expr::var(name)),
        }
    }

    fn parenthesised(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Ident(keyword)) if keyword == "const" => {
                self.next()?;
                let value = match self.next()? {
                    Token::Number(v) => v,
                    other => {
                        return Err(ParseError::UnexpectedToken {
                            found: other.to_string(),
                            expected: "a number",
                        })
                    }
                };
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::lit(value))
            }
            Some(Token::Ident(keyword)) if keyword == "let" => {
                self.next()?;
                let var = self.ident("a variable name")?;
                self.expect(Token::Equals, "`=`")?;
                let value = self.expression()?;
                match self.next()? {
                    Token::Ident(kw) if kw == "in" => {}
                    other => {
                        return Err(ParseError::UnexpectedToken {
                            found: other.to_string(),
                            expected: "`in`",
                        })
                    }
                }
                let body = self.expression()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::let_in(var, value, body))
            }
            Some(Token::Ident(keyword)) if keyword == "for" => {
                self.next()?;
                let var = self.ident("the loop vector variable")?;
                self.expect(Token::Colon, "`:`")?;
                let var_dim = self.ident("the loop dimension symbol")?;
                self.expect(Token::Comma, "`,`")?;
                let acc = self.ident("the accumulator variable")?;
                self.expect(Token::Colon, "`:`")?;
                self.expect(Token::LBracket, "`[`")?;
                let rows = self.dimension()?;
                self.expect(Token::Comma, "`,`")?;
                let cols = self.dimension()?;
                self.expect(Token::RBracket, "`]`")?;
                let init = if self.peek() == Some(&Token::Equals) {
                    self.next()?;
                    Some(self.expression()?)
                } else {
                    None
                };
                self.expect(Token::Dot, "`.`")?;
                let body = self.expression()?;
                self.expect(Token::RParen, "`)`")?;
                let acc_type = MatrixType::new(rows, cols);
                Ok(match init {
                    Some(init) => Expr::for_init(var, var_dim, acc, acc_type, init, body),
                    None => Expr::for_loop(var, var_dim, acc, acc_type, body),
                })
            }
            Some(Token::Ident(keyword))
                if keyword == "sum" || keyword == "hprod" || keyword == "mprod" =>
            {
                self.next()?;
                let var = self.ident("the loop vector variable")?;
                self.expect(Token::Colon, "`:`")?;
                let var_dim = self.ident("the loop dimension symbol")?;
                self.expect(Token::Dot, "`.`")?;
                let body = self.expression()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(match keyword.as_str() {
                    "sum" => Expr::sum(var, var_dim, body),
                    "hprod" => Expr::hprod(var, var_dim, body),
                    _ => Expr::mprod(var, var_dim, body),
                })
            }
            _ => {
                // A parenthesised binary operation.
                let left = self.expression()?;
                let op = self.next()?;
                let right = self.expression()?;
                self.expect(Token::RParen, "`)`")?;
                match op {
                    Token::Star => Ok(left.mm(right)),
                    Token::Plus => Ok(left.add(right)),
                    Token::DotStar => Ok(left.smul(right)),
                    Token::StarStar => Ok(left.had(right)),
                    other => Err(ParseError::UnexpectedToken {
                        found: other.to_string(),
                        expected: "a binary operator (`*`, `+`, `.*`, `**`)",
                    }),
                }
            }
        }
    }

    // The `v == 1.0` guard stays a guard: clippy's suggested float-literal
    // pattern is itself linted (illegal_floating_point_literal_pattern).
    #[allow(clippy::redundant_guards)]
    fn dimension(&mut self) -> Result<Dim, ParseError> {
        match self.next()? {
            Token::Number(v) if v == 1.0 => Ok(Dim::One),
            Token::Ident(name) => Ok(Dim::sym(name)),
            other => Err(ParseError::UnexpectedToken {
                found: other.to_string(),
                expected: "a size symbol or `1`",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_variables_and_literals() {
        assert_eq!(parse("A").unwrap(), Expr::var("A"));
        assert_eq!(parse("(const 3)").unwrap(), Expr::lit(3.0));
        assert_eq!(parse("(const -1.5)").unwrap(), Expr::lit(-1.5));
    }

    #[test]
    fn parses_unary_and_binary_operators() {
        assert_eq!(parse("transpose(A)").unwrap(), Expr::var("A").t());
        assert_eq!(parse("ones(A)").unwrap(), Expr::var("A").ones());
        assert_eq!(parse("diag(u)").unwrap(), Expr::var("u").diag());
        assert_eq!(parse("(A * B)").unwrap(), Expr::var("A").mm(Expr::var("B")));
        assert_eq!(
            parse("(A + B)").unwrap(),
            Expr::var("A").add(Expr::var("B"))
        );
        assert_eq!(
            parse("(s .* B)").unwrap(),
            Expr::var("s").smul(Expr::var("B"))
        );
        assert_eq!(
            parse("(A ** B)").unwrap(),
            Expr::var("A").had(Expr::var("B"))
        );
    }

    #[test]
    fn parses_apply_let_and_loops() {
        assert_eq!(
            parse("apply[div](A, B)").unwrap(),
            Expr::apply("div", vec![Expr::var("A"), Expr::var("B")])
        );
        assert_eq!(parse("apply[f]()").unwrap(), Expr::apply("f", vec![]));
        assert_eq!(
            parse("(let T = (A * A) in (T + T))").unwrap(),
            Expr::let_in(
                "T",
                Expr::var("A").mm(Expr::var("A")),
                Expr::var("T").add(Expr::var("T"))
            )
        );
        assert_eq!(
            parse("(sum v:n . (v * transpose(v)))").unwrap(),
            Expr::sum("v", "n", Expr::var("v").mm(Expr::var("v").t()))
        );
        assert_eq!(
            parse("(for v:n, X:[n,1] . (X + v))").unwrap(),
            Expr::for_loop(
                "v",
                "n",
                "X",
                MatrixType::vector("n"),
                Expr::var("X").add(Expr::var("v"))
            )
        );
        assert_eq!(
            parse("(for v:n, X:[n,n] = A . (X * A))").unwrap(),
            Expr::for_init(
                "v",
                "n",
                "X",
                MatrixType::square("n"),
                Expr::var("A"),
                Expr::var("X").mm(Expr::var("A"))
            )
        );
    }

    #[test]
    fn reports_useful_errors() {
        assert!(matches!(parse(""), Err(ParseError::UnexpectedEnd)));
        assert!(matches!(
            parse("A B"),
            Err(ParseError::TrailingInput { .. })
        ));
        assert!(matches!(parse("(A ?"), Err(ParseError::Lex(_))));
        assert!(matches!(
            parse("(A - B)"),
            Err(ParseError::Lex(_) | ParseError::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse("(const x)"),
            Err(ParseError::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse("(for v:n, X:[n,2] . X)"),
            Err(ParseError::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse("(let T = A by T)"),
            Err(ParseError::UnexpectedToken { .. })
        ));
        for e in [
            ParseError::UnexpectedEnd.to_string(),
            ParseError::TrailingInput { found: "x".into() }.to_string(),
            ParseError::UnexpectedToken {
                found: "x".into(),
                expected: "y",
            }
            .to_string(),
            ParseError::Lex(LexError::BadNumber { text: "-".into() }).to_string(),
        ] {
            assert!(!e.is_empty());
        }
    }

    #[test]
    fn nested_expressions_parse() {
        let text = "((transpose(A) * B) + ((const 2) .* diag(ones(A))))";
        let expected = Expr::var("A")
            .t()
            .mm(Expr::var("B"))
            .add(Expr::lit(2.0).smul(Expr::var("A").ones().diag()));
        assert_eq!(parse(text).unwrap(), expected);
    }
}
