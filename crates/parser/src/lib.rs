//! A textual surface syntax for for-MATLANG.
//!
//! The grammar accepted here is exactly the fully parenthesised syntax
//! produced by the `Display` implementation of [`matlang_core::Expr`], so
//! that `parse(expr.to_string()) == expr` for every expression (round-trip
//! property, tested below and in the workspace integration tests):
//!
//! ```text
//! e ::= IDENT                         (matrix variable)
//!     | (const NUMBER)                (scalar literal)
//!     | transpose(e) | ones(e) | diag(e)
//!     | (e * e) | (e + e) | (e .* e) | (e ** e)
//!     | apply[IDENT](e, …, e)
//!     | (let IDENT = e in e)
//!     | (for IDENT:IDENT, IDENT:[dim,dim] (= e)? . e)
//!     | (sum IDENT:IDENT . e) | (hprod IDENT:IDENT . e) | (mprod IDENT:IDENT . e)
//! dim ::= 1 | IDENT
//! ```

pub mod lexer;
pub mod parser;

pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse, ParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_core::{Expr, MatrixType};

    fn roundtrip(expr: &Expr) {
        let text = expr.to_string();
        let parsed = parse(&text).unwrap_or_else(|e| panic!("failed to parse `{text}`: {e}"));
        assert_eq!(&parsed, expr, "round trip failed for `{text}`");
    }

    #[test]
    fn roundtrips_core_operators() {
        roundtrip(&Expr::var("A"));
        roundtrip(&Expr::lit(2.5));
        roundtrip(&Expr::lit(-3.0));
        roundtrip(&Expr::var("A").t());
        roundtrip(&Expr::var("A").ones());
        roundtrip(&Expr::var("u").diag());
        roundtrip(&Expr::var("A").mm(Expr::var("B")));
        roundtrip(&Expr::var("A").add(Expr::var("B")));
        roundtrip(&Expr::lit(2.0).smul(Expr::var("A")));
        roundtrip(&Expr::var("A").had(Expr::var("B")));
        roundtrip(&Expr::apply("div", vec![Expr::var("A"), Expr::var("B")]));
        roundtrip(&Expr::let_in("T", Expr::var("A"), Expr::var("T")));
    }

    #[test]
    fn roundtrips_loops_and_quantifiers() {
        roundtrip(&Expr::sum("v", "n", Expr::var("v").mm(Expr::var("v").t())));
        roundtrip(&Expr::hprod(
            "v",
            "n",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        ));
        roundtrip(&Expr::mprod("v", "n", Expr::var("A")));
        roundtrip(&Expr::for_loop(
            "v",
            "n",
            "X",
            MatrixType::vector("n"),
            Expr::var("X").add(Expr::var("v")),
        ));
        roundtrip(&Expr::for_init(
            "v",
            "n",
            "X",
            MatrixType::square("n"),
            Expr::var("A"),
            Expr::var("X").mm(Expr::var("A")),
        ));
        roundtrip(&Expr::for_loop(
            "v",
            "n",
            "X",
            MatrixType::scalar(),
            Expr::var("X").add(Expr::lit(1.0)),
        ));
    }

    #[test]
    fn roundtrips_paper_algorithms() {
        // The larger generated expressions from the algorithms crate exercise
        // deep nesting; a couple of representative ones are rebuilt here by
        // hand to keep this crate's dependencies minimal.
        let trace = Expr::sum(
            "v",
            "n",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        );
        let nested = Expr::sum(
            "u",
            "n",
            Expr::sum(
                "w",
                "n",
                Expr::var("u")
                    .t()
                    .mm(Expr::var("A"))
                    .mm(Expr::var("w"))
                    .smul(Expr::var("u").mm(Expr::var("w").t())),
            ),
        );
        roundtrip(&trace);
        roundtrip(&nested);
        roundtrip(&trace.add(nested).had(Expr::var("A").ones().diag()));
    }
}
