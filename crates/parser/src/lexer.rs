//! Tokenizer for the for-MATLANG surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.` (the loop-body separator)
    Dot,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `*` (matrix product)
    Star,
    /// `.*` (scalar product)
    DotStar,
    /// `**` (Hadamard product)
    StarStar,
    /// An identifier or keyword.
    Ident(String),
    /// A numeric literal.
    Number(f64),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::Dot => write!(f, "."),
            Token::Equals => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Star => write!(f, "*"),
            Token::DotStar => write!(f, ".*"),
            Token::StarStar => write!(f, "**"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
        }
    }
}

/// Errors produced by the tokenizer.
#[derive(Debug, Clone, PartialEq)]
pub enum LexError {
    /// An unexpected character was encountered.
    UnexpectedChar {
        /// The character.
        found: char,
        /// Byte offset in the input.
        position: usize,
    },
    /// A numeric literal could not be parsed.
    BadNumber {
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar { found, position } => {
                write!(f, "unexpected character `{found}` at byte {position}")
            }
            LexError::BadNumber { text } => write!(f, "malformed number `{text}`"),
        }
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes an input string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '*' => {
                if chars.get(i + 1) == Some(&'*') {
                    tokens.push(Token::StarStar);
                    i += 2;
                } else {
                    tokens.push(Token::Star);
                    i += 1;
                }
            }
            '.' => {
                if chars.get(i + 1) == Some(&'*') {
                    tokens.push(Token::DotStar);
                    i += 2;
                } else {
                    tokens.push(Token::Dot);
                    i += 1;
                }
            }
            '-' => {
                // Negative numeric literal (only appears after `const`).
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text
                    .parse::<f64>()
                    .map_err(|_| LexError::BadNumber { text })?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    // Don't swallow the loop-body dot: a trailing `.` followed
                    // by whitespace or a non-digit is a separator.
                    if chars[i] == '.'
                        && !chars
                            .get(i + 1)
                            .map(|c| c.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        break;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text
                    .parse::<f64>()
                    .map_err(|_| LexError::BadNumber { text })?;
                tokens.push(Token::Number(value));
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(LexError::UnexpectedChar {
                    found: other,
                    position: i,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_operators_and_identifiers() {
        let tokens = tokenize("(transpose(A) * B_1) + (const -2.5)").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::LParen,
                Token::Ident("transpose".into()),
                Token::LParen,
                Token::Ident("A".into()),
                Token::RParen,
                Token::Star,
                Token::Ident("B_1".into()),
                Token::RParen,
                Token::Plus,
                Token::LParen,
                Token::Ident("const".into()),
                Token::Number(-2.5),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn distinguishes_star_variants_and_dots() {
        let tokens = tokenize("a ** b .* c * d . e").unwrap();
        assert!(tokens.contains(&Token::StarStar));
        assert!(tokens.contains(&Token::DotStar));
        assert!(tokens.contains(&Token::Star));
        assert!(tokens.contains(&Token::Dot));
    }

    #[test]
    fn numbers_with_decimals_and_loop_dots() {
        let tokens = tokenize("(const 1) . 2.5").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::LParen,
                Token::Ident("const".into()),
                Token::Number(1.0),
                Token::RParen,
                Token::Dot,
                Token::Number(2.5),
            ]
        );
        // The integer before the loop dot keeps the dot as a separator.
        let tokens = tokenize("1 . v").unwrap();
        assert_eq!(tokens[0], Token::Number(1.0));
        assert_eq!(tokens[1], Token::Dot);
    }

    #[test]
    fn brackets_colons_commas_equals() {
        let tokens = tokenize("X:[a,1] = A").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("X".into()),
                Token::Colon,
                Token::LBracket,
                Token::Ident("a".into()),
                Token::Comma,
                Token::Number(1.0),
                Token::RBracket,
                Token::Equals,
                Token::Ident("A".into()),
            ]
        );
    }

    #[test]
    fn rejects_unknown_characters_and_bad_numbers() {
        assert!(matches!(
            tokenize("A ? B"),
            Err(LexError::UnexpectedChar { found: '?', .. })
        ));
        assert!(matches!(tokenize("-"), Err(LexError::BadNumber { .. })));
        assert!(!LexError::BadNumber { text: "x".into() }
            .to_string()
            .is_empty());
        assert!(!LexError::UnexpectedChar {
            found: '?',
            position: 0
        }
        .to_string()
        .is_empty());
    }

    #[test]
    fn tokens_display() {
        for t in [
            Token::LParen,
            Token::RParen,
            Token::LBracket,
            Token::RBracket,
            Token::Comma,
            Token::Colon,
            Token::Dot,
            Token::Equals,
            Token::Plus,
            Token::Star,
            Token::DotStar,
            Token::StarStar,
            Token::Ident("x".into()),
            Token::Number(1.5),
        ] {
            assert!(!t.to_string().is_empty());
        }
    }
}
