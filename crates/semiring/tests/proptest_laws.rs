//! Property-based verification of the semiring/ring/field laws for every
//! concrete annotation domain shipped by `matlang-semiring`.

use matlang_semiring::{
    laws, Boolean, Field, IntRing, MaxPlus, MinPlus, Nat, Real, Ring, Semiring,
};
use proptest::prelude::*;

/// Small bounded floats keep the `Real` law checks exact: associativity and
/// distributivity of IEEE-754 floats only hold exactly on values whose
/// products/sums are exactly representable, so we draw from a modest integer
/// grid scaled by a power of two.
fn grid_real() -> impl Strategy<Value = Real> {
    (-64i32..=64).prop_map(|v| Real(v as f64 * 0.25))
}

fn grid_minplus() -> impl Strategy<Value = MinPlus> {
    prop_oneof![
        Just(MinPlus::infinity()),
        (-32i32..=32).prop_map(|v| MinPlus(v as f64)),
    ]
}

fn grid_maxplus() -> impl Strategy<Value = MaxPlus> {
    prop_oneof![
        Just(MaxPlus::neg_infinity()),
        (-32i32..=32).prop_map(|v| MaxPlus(v as f64)),
    ]
}

proptest! {
    #[test]
    fn real_laws(a in grid_real(), b in grid_real(), c in grid_real()) {
        prop_assert!(laws::add_associative(&a, &b, &c));
        prop_assert!(laws::add_commutative(&a, &b));
        prop_assert!(laws::add_identity(&a));
        prop_assert!(laws::mul_associative(&a, &b, &c));
        prop_assert!(laws::mul_commutative(&a, &b));
        prop_assert!(laws::mul_identity(&a));
        prop_assert!(laws::distributive(&a, &b, &c));
        prop_assert!(laws::zero_annihilates(&a));
    }

    #[test]
    fn nat_laws(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
        prop_assert!(laws::all_laws(&Nat(a), &Nat(b), &Nat(c)));
    }

    #[test]
    fn int_laws(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
        prop_assert!(laws::all_laws(&IntRing(a), &IntRing(b), &IntRing(c)));
    }

    #[test]
    fn boolean_laws(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        prop_assert!(laws::all_laws(&Boolean(a), &Boolean(b), &Boolean(c)));
    }

    #[test]
    fn minplus_laws(a in grid_minplus(), b in grid_minplus(), c in grid_minplus()) {
        prop_assert!(laws::all_laws(&a, &b, &c));
    }

    #[test]
    fn maxplus_laws(a in grid_maxplus(), b in grid_maxplus(), c in grid_maxplus()) {
        prop_assert!(laws::all_laws(&a, &b, &c));
    }

    #[test]
    fn ring_subtraction_inverts_addition(a in -1000i64..1000, b in -1000i64..1000) {
        let sum = Semiring::add(&IntRing(a), &IntRing(b));
        prop_assert_eq!(Ring::sub(&sum, &IntRing(b)), IntRing(a));
    }

    #[test]
    fn field_division_inverts_multiplication(a in grid_real(), b in grid_real()) {
        prop_assume!(!b.is_zero());
        let prod = Semiring::mul(&a, &b);
        let back = prod.div(&b).unwrap();
        prop_assert!((back.0 - a.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_from_to_f64_real(v in -1e6f64..1e6) {
        prop_assert_eq!(Real::from_f64(v).to_f64(), v);
    }
}
