//! Commutative semirings, rings and fields used as annotation domains `K`.
//!
//! Section 6 of the paper generalizes the semantics of MATLANG and its
//! fragments from the reals `(R, +, ×, 0, 1)` to an arbitrary commutative
//! semiring `(K, ⊕, ⊙, 0, 1)`.  Everything in this workspace that only needs
//! `⊕`/`⊙` is generic over the [`Semiring`] trait defined here; the
//! constructions of Sections 4 and 5 (LU decomposition, Csanky's algorithm,
//! division removal) additionally require subtraction and division and are
//! bounded by the [`Ring`] / [`Field`] traits.
//!
//! Provided instances:
//!
//! * [`Real`] — the field of 64-bit floats, the paper's default domain.
//! * [`Nat`] — the natural-number semiring `(ℕ, +, ×, 0, 1)`.
//! * [`Boolean`] — the boolean semiring `({0,1}, ∨, ∧, 0, 1)`.
//! * [`IntRing`] — the ring of integers `(ℤ, +, ×, 0, 1)`.
//! * [`MinPlus`] / [`MaxPlus`] — tropical semirings used for shortest/longest
//!   path style provenance.

pub mod boolean;
pub mod int;
pub mod nat;
pub mod real;
pub mod tropical;

pub use boolean::Boolean;
pub use int::IntRing;
pub use nat::Nat;
pub use real::Real;
pub use tropical::{MaxPlus, MinPlus};

use std::fmt::Debug;

/// A commutative semiring `(K, ⊕, ⊙, 0, 1)`.
///
/// Laws (checked by the property-test helpers in [`laws`]):
///
/// * `(K, ⊕, 0)` is a commutative monoid,
/// * `(K, ⊙, 1)` is a commutative monoid,
/// * `⊙` distributes over `⊕`,
/// * `0` annihilates: `0 ⊙ k = k ⊙ 0 = 0`.
pub trait Semiring: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// The additive identity `0`.
    fn zero() -> Self;
    /// The multiplicative identity `1`.
    fn one() -> Self;
    /// Semiring addition `⊕`.
    fn add(&self, other: &Self) -> Self;
    /// Semiring multiplication `⊙`.
    fn mul(&self, other: &Self) -> Self;

    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Whether this element is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// Injects a small machine float into the semiring.
    ///
    /// MATLANG expressions occasionally mention literal constants such as `1`,
    /// `2` or `1/2` (e.g. in the Turing-machine simulation of Appendix D).
    /// Each semiring interprets such literals in a sensible, documented way;
    /// for the canonical 0/1 constants this always coincides with
    /// [`Semiring::zero`] / [`Semiring::one`].
    fn from_f64(value: f64) -> Self;

    /// Best-effort projection back into a float, used for reporting and for
    /// cross-semiring comparisons in tests and benchmarks.
    fn to_f64(&self) -> f64;

    /// Sums an iterator of elements (`⊕` over the sequence, `0` if empty).
    fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::zero(), |acc, x| acc.add(&x))
    }

    /// Multiplies an iterator of elements (`⊙` over the sequence, `1` if empty).
    fn product<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::one(), |acc, x| acc.mul(&x))
    }
}

/// A commutative ring: a semiring with additive inverses.
pub trait Ring: Semiring {
    /// Additive inverse.
    fn neg(&self) -> Self;

    /// Subtraction `a ⊕ (−b)`.
    fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }
}

/// A field: a ring in which every non-zero element has a multiplicative
/// inverse.  Needed for the division function `f_/` of Sections 4 and 5.3.
pub trait Field: Ring {
    /// Multiplicative inverse.  Implementations may return `None` for zero.
    fn inv(&self) -> Option<Self>;

    /// Division `a ⊙ b⁻¹`; `None` when `b` has no inverse.
    fn div(&self, other: &Self) -> Option<Self> {
        other.inv().map(|i| self.mul(&i))
    }
}

/// A field with a decidable order, enough to define the paper's `f_{>0}`
/// pointwise function (used for pivot search in PLU decomposition and for
/// thresholding the prod-MATLANG transitive closure).
pub trait OrderedField: Field {
    /// Returns `1` when the element is strictly positive and `0` otherwise.
    fn gt_zero(&self) -> Self {
        if self.to_f64() > 0.0 {
            Self::one()
        } else {
            Self::zero()
        }
    }

    /// Total-order comparison used by pivot selection.
    fn cmp_value(&self, other: &Self) -> std::cmp::Ordering {
        self.to_f64()
            .partial_cmp(&other.to_f64())
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Approximate equality, used to compare `Real` results of numerically
/// different but mathematically equivalent computations (e.g. Csanky's
/// inverse versus Gauss–Jordan).
pub trait ApproxEq {
    /// True when `self` and `other` differ by at most `tol` (absolute or
    /// relative, whichever is more permissive).
    fn approx_eq(&self, other: &Self, tol: f64) -> bool;
}

impl<T: Semiring> ApproxEq for T {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        if self == other {
            return true;
        }
        let a = self.to_f64();
        let b = other.to_f64();
        if a.is_nan() || b.is_nan() {
            return false;
        }
        let diff = (a - b).abs();
        let scale = a.abs().max(b.abs()).max(1.0);
        diff <= tol * scale
    }
}

/// Helpers for asserting the semiring laws on concrete triples of elements.
///
/// These are deliberately plain functions over values (rather than macros) so
/// that both unit tests and proptest harnesses across the workspace can reuse
/// them.
pub mod laws {
    use super::Semiring;

    /// `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`
    pub fn add_associative<K: Semiring>(a: &K, b: &K, c: &K) -> bool {
        a.add(b).add(c) == a.add(&b.add(c))
    }

    /// `a ⊕ b = b ⊕ a`
    pub fn add_commutative<K: Semiring>(a: &K, b: &K) -> bool {
        a.add(b) == b.add(a)
    }

    /// `a ⊕ 0 = a`
    pub fn add_identity<K: Semiring>(a: &K) -> bool {
        a.add(&K::zero()) == *a && K::zero().add(a) == *a
    }

    /// `(a ⊙ b) ⊙ c = a ⊙ (b ⊙ c)`
    pub fn mul_associative<K: Semiring>(a: &K, b: &K, c: &K) -> bool {
        a.mul(b).mul(c) == a.mul(&b.mul(c))
    }

    /// `a ⊙ b = b ⊙ a`
    pub fn mul_commutative<K: Semiring>(a: &K, b: &K) -> bool {
        a.mul(b) == b.mul(a)
    }

    /// `a ⊙ 1 = a`
    pub fn mul_identity<K: Semiring>(a: &K) -> bool {
        a.mul(&K::one()) == *a && K::one().mul(a) == *a
    }

    /// `a ⊙ (b ⊕ c) = (a ⊙ b) ⊕ (a ⊙ c)`
    pub fn distributive<K: Semiring>(a: &K, b: &K, c: &K) -> bool {
        a.mul(&b.add(c)) == a.mul(b).add(&a.mul(c))
    }

    /// `0 ⊙ a = a ⊙ 0 = 0`
    pub fn zero_annihilates<K: Semiring>(a: &K) -> bool {
        K::zero().mul(a) == K::zero() && a.mul(&K::zero()) == K::zero()
    }

    /// Convenience bundle: all semiring laws on a triple.
    pub fn all_laws<K: Semiring>(a: &K, b: &K, c: &K) -> bool {
        add_associative(a, b, c)
            && add_commutative(a, b)
            && add_identity(a)
            && mul_associative(a, b, c)
            && mul_commutative(a, b)
            && mul_identity(a)
            && distributive(a, b, c)
            && zero_annihilates(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_product_fold_correctly() {
        let xs = vec![
            Real::from_f64(1.0),
            Real::from_f64(2.0),
            Real::from_f64(3.0),
        ];
        assert_eq!(Real::sum(xs.clone()), Real::from_f64(6.0));
        assert_eq!(Real::product(xs), Real::from_f64(6.0));
    }

    #[test]
    fn empty_sum_is_zero_and_empty_product_is_one() {
        let empty: Vec<Nat> = vec![];
        assert_eq!(Nat::sum(empty.clone()), Nat::zero());
        assert_eq!(Nat::product(empty), Nat::one());
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = Real::from_f64(1.0);
        let b = Real::from_f64(1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Real::from_f64(2.0), 1e-9));
    }

    #[test]
    fn approx_eq_rejects_nan() {
        let nan = Real::from_f64(f64::NAN);
        assert!(!nan.approx_eq(&Real::one(), 1e-9));
    }

    #[test]
    fn is_zero_and_is_one_defaults() {
        assert!(Boolean::zero().is_zero());
        assert!(Boolean::one().is_one());
        assert!(!Boolean::one().is_zero());
    }
}
