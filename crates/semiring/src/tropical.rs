//! Tropical semirings: min-plus and max-plus.
//!
//! `MinPlus = (ℝ ∪ {∞}, min, +, ∞, 0)` annotates shortest paths;
//! `MaxPlus = (ℝ ∪ {−∞}, max, +, −∞, 0)` annotates critical paths.
//! Both are commutative semirings, so every §6 construction (sum-MATLANG,
//! RA⁺_K, FO-MATLANG, WL) is exercised over them in the test suites.

use crate::Semiring;
use std::fmt;

/// Min-plus (shortest-path) annotation.  `∞` is the additive identity.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MinPlus(pub f64);

/// Max-plus (longest-path) annotation.  `−∞` is the additive identity.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MaxPlus(pub f64);

impl MinPlus {
    /// Creates a min-plus weight.
    pub fn new(value: f64) -> Self {
        MinPlus(value)
    }

    /// The additive identity `∞`.
    pub fn infinity() -> Self {
        MinPlus(f64::INFINITY)
    }
}

impl MaxPlus {
    /// Creates a max-plus weight.
    pub fn new(value: f64) -> Self {
        MaxPlus(value)
    }

    /// The additive identity `−∞`.
    pub fn neg_infinity() -> Self {
        MaxPlus(f64::NEG_INFINITY)
    }
}

impl fmt::Debug for MinPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for MaxPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Semiring for MinPlus {
    fn zero() -> Self {
        MinPlus(f64::INFINITY)
    }

    fn one() -> Self {
        MinPlus(0.0)
    }

    fn add(&self, other: &Self) -> Self {
        MinPlus(self.0.min(other.0))
    }

    fn mul(&self, other: &Self) -> Self {
        MinPlus(self.0 + other.0)
    }

    fn from_f64(value: f64) -> Self {
        MinPlus(value)
    }

    fn to_f64(&self) -> f64 {
        self.0
    }
}

impl Semiring for MaxPlus {
    fn zero() -> Self {
        MaxPlus(f64::NEG_INFINITY)
    }

    fn one() -> Self {
        MaxPlus(0.0)
    }

    fn add(&self, other: &Self) -> Self {
        MaxPlus(self.0.max(other.0))
    }

    fn mul(&self, other: &Self) -> Self {
        MaxPlus(self.0 + other.0)
    }

    fn from_f64(value: f64) -> Self {
        MaxPlus(value)
    }

    fn to_f64(&self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn min_plus_semiring_laws_hold_on_samples() {
        let samples = [f64::INFINITY, 0.0, 1.0, 2.5, 10.0];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    assert!(laws::all_laws(&MinPlus(a), &MinPlus(b), &MinPlus(c)));
                }
            }
        }
    }

    #[test]
    fn max_plus_semiring_laws_hold_on_samples() {
        let samples = [f64::NEG_INFINITY, -1.0, 0.0, 3.0, 8.0];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    assert!(laws::all_laws(&MaxPlus(a), &MaxPlus(b), &MaxPlus(c)));
                }
            }
        }
    }

    #[test]
    fn min_plus_models_shortest_paths() {
        // "addition" chooses the cheaper route, "multiplication" concatenates.
        let via_a = MinPlus(2.0).mul(&MinPlus(3.0)); // cost 5
        let via_b = MinPlus(1.0).mul(&MinPlus(7.0)); // cost 8
        assert_eq!(Semiring::add(&via_a, &via_b), MinPlus(5.0));
    }

    #[test]
    fn identities() {
        assert_eq!(MinPlus::zero(), MinPlus::infinity());
        assert_eq!(MinPlus::one(), MinPlus(0.0));
        assert_eq!(MaxPlus::zero(), MaxPlus::neg_infinity());
        assert_eq!(MaxPlus::one(), MaxPlus(0.0));
    }

    #[test]
    fn idempotent_addition() {
        for v in [0.0, 1.5, 4.0] {
            assert_eq!(Semiring::add(&MinPlus(v), &MinPlus(v)), MinPlus(v));
            assert_eq!(Semiring::add(&MaxPlus(v), &MaxPlus(v)), MaxPlus(v));
        }
    }
}
