//! The boolean semiring `({0,1}, ∨, ∧, 0, 1)`.
//!
//! Under this semiring RA⁺_K degenerates to the usual positive relational
//! algebra and MATLANG matrices become adjacency/reachability matrices; it is
//! the semiring under which the transitive-closure and 4-clique experiments
//! have their classical set-based meaning.

use crate::Semiring;
use std::fmt;

/// A boolean annotation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Boolean(pub bool);

impl Boolean {
    /// The truth value `true` / `1`.
    pub fn tt() -> Self {
        Boolean(true)
    }

    /// The truth value `false` / `0`.
    pub fn ff() -> Self {
        Boolean(false)
    }

    /// The underlying bool.
    pub fn value(&self) -> bool {
        self.0
    }
}

impl fmt::Debug for Boolean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.0 { 1 } else { 0 })
    }
}

impl fmt::Display for Boolean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.0 { 1 } else { 0 })
    }
}

impl From<bool> for Boolean {
    fn from(value: bool) -> Self {
        Boolean(value)
    }
}

impl Semiring for Boolean {
    fn zero() -> Self {
        Boolean(false)
    }

    fn one() -> Self {
        Boolean(true)
    }

    fn add(&self, other: &Self) -> Self {
        Boolean(self.0 || other.0)
    }

    fn mul(&self, other: &Self) -> Self {
        Boolean(self.0 && other.0)
    }

    fn from_f64(value: f64) -> Self {
        Boolean(value != 0.0 && !value.is_nan())
    }

    fn to_f64(&self) -> f64 {
        if self.0 {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn boolean_semiring_laws_hold_exhaustively() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assert!(laws::all_laws(&Boolean(a), &Boolean(b), &Boolean(c)));
                }
            }
        }
    }

    #[test]
    fn disjunction_and_conjunction() {
        assert_eq!(Semiring::add(&Boolean::tt(), &Boolean::ff()), Boolean::tt());
        assert_eq!(Semiring::mul(&Boolean::tt(), &Boolean::ff()), Boolean::ff());
        assert_eq!(Semiring::mul(&Boolean::tt(), &Boolean::tt()), Boolean::tt());
    }

    #[test]
    fn idempotent_addition() {
        // The boolean semiring is idempotent: a ∨ a = a.
        for a in [Boolean::ff(), Boolean::tt()] {
            assert_eq!(Semiring::add(&a, &a), a);
        }
    }

    #[test]
    fn from_f64_thresholds_nonzero() {
        assert_eq!(Boolean::from_f64(0.0), Boolean::ff());
        assert_eq!(Boolean::from_f64(3.0), Boolean::tt());
        assert_eq!(Boolean::from_f64(-1.0), Boolean::tt());
        assert_eq!(Boolean::from_f64(f64::NAN), Boolean::ff());
    }
}
