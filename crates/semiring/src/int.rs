//! The ring of integers `(ℤ, +, ×, 0, 1)`.
//!
//! A commutative ring (so subtraction is available) but not a field; useful
//! for exercising the ring-but-not-field code paths and for exact arithmetic
//! in small determinant tests.

use crate::{Ring, Semiring};
use std::fmt;

/// An integer annotation.  Arithmetic saturates at the `i64` range to keep
//  adversarial proptest inputs panic-free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IntRing(pub i64);

impl IntRing {
    /// Creates an integer annotation.
    pub fn new(value: i64) -> Self {
        IntRing(value)
    }

    /// The underlying integer.
    pub fn value(&self) -> i64 {
        self.0
    }
}

impl fmt::Debug for IntRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for IntRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for IntRing {
    fn from(value: i64) -> Self {
        IntRing(value)
    }
}

impl Semiring for IntRing {
    fn zero() -> Self {
        IntRing(0)
    }

    fn one() -> Self {
        IntRing(1)
    }

    fn add(&self, other: &Self) -> Self {
        IntRing(self.0.saturating_add(other.0))
    }

    fn mul(&self, other: &Self) -> Self {
        IntRing(self.0.saturating_mul(other.0))
    }

    fn from_f64(value: f64) -> Self {
        if value.is_nan() {
            IntRing(0)
        } else {
            IntRing(value.round() as i64)
        }
    }

    fn to_f64(&self) -> f64 {
        self.0 as f64
    }
}

impl Ring for IntRing {
    fn neg(&self) -> Self {
        IntRing(self.0.saturating_neg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn integer_ring_laws_hold_on_samples() {
        let samples = [-5i64, -1, 0, 1, 2, 9];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    assert!(laws::all_laws(&IntRing(a), &IntRing(b), &IntRing(c)));
                }
            }
        }
    }

    #[test]
    fn subtraction_uses_additive_inverse() {
        assert_eq!(Ring::sub(&IntRing(5), &IntRing(7)), IntRing(-2));
        assert_eq!(Ring::neg(&IntRing(-3)), IntRing(3));
    }

    #[test]
    fn from_f64_rounds() {
        assert_eq!(IntRing::from_f64(-2.4), IntRing(-2));
        assert_eq!(IntRing::from_f64(2.6), IntRing(3));
        assert_eq!(IntRing::from_f64(f64::NAN), IntRing(0));
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(
            Semiring::add(&IntRing(i64::MAX), &IntRing(1)),
            IntRing(i64::MAX)
        );
        assert_eq!(Ring::neg(&IntRing(i64::MIN)), IntRing(i64::MAX));
    }
}
