//! The natural-number semiring `(ℕ, +, ×, 0, 1)`.
//!
//! Used in Section 6 as one of the "typical examples of semirings"; it is the
//! provenance semiring counting derivations in RA⁺_K.  Arithmetic saturates at
//! `u64::MAX` so that the counting semantics never panics on adversarial
//! property-test inputs (saturation only matters for astronomically large
//! counts which no experiment in this repository reaches).

use crate::Semiring;
use std::fmt;

/// A natural number annotation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nat(pub u64);

impl Nat {
    /// Creates a natural-number annotation.
    pub fn new(value: u64) -> Self {
        Nat(value)
    }

    /// The underlying count.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Nat {
    fn from(value: u64) -> Self {
        Nat(value)
    }
}

impl Semiring for Nat {
    fn zero() -> Self {
        Nat(0)
    }

    fn one() -> Self {
        Nat(1)
    }

    fn add(&self, other: &Self) -> Self {
        Nat(self.0.saturating_add(other.0))
    }

    fn mul(&self, other: &Self) -> Self {
        Nat(self.0.saturating_mul(other.0))
    }

    fn from_f64(value: f64) -> Self {
        if value <= 0.0 || value.is_nan() {
            Nat(0)
        } else {
            Nat(value.round() as u64)
        }
    }

    fn to_f64(&self) -> f64 {
        self.0 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn nat_semiring_laws_hold_on_samples() {
        let samples = [0u64, 1, 2, 3, 7, 100];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    assert!(laws::all_laws(&Nat(a), &Nat(b), &Nat(c)));
                }
            }
        }
    }

    #[test]
    fn saturating_arithmetic_never_overflows() {
        let big = Nat(u64::MAX);
        assert_eq!(Semiring::add(&big, &Nat(1)), big);
        assert_eq!(Semiring::mul(&big, &Nat(2)), big);
    }

    #[test]
    fn from_f64_rounds_and_clamps() {
        assert_eq!(Nat::from_f64(2.6), Nat(3));
        assert_eq!(Nat::from_f64(-1.0), Nat(0));
        assert_eq!(Nat::from_f64(f64::NAN), Nat(0));
    }

    #[test]
    fn display_and_accessors() {
        assert_eq!(Nat::new(5).value(), 5);
        assert_eq!(format!("{}", Nat(7)), "7");
        let n: Nat = 4u64.into();
        assert_eq!(n, Nat(4));
    }
}
