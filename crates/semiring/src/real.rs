//! The field of real numbers represented by `f64`, the paper's default
//! annotation domain (Sections 2–5).

use crate::{Field, OrderedField, Ring, Semiring};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A real number.  Thin newtype over `f64` so that the semiring trait family
/// can be implemented without orphan-rule friction and so that equality used
/// by the evaluator is explicit.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Real(pub f64);

impl Real {
    /// Creates a real from a float.
    pub fn new(value: f64) -> Self {
        Real(value)
    }

    /// The underlying float.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Absolute value.
    pub fn abs(&self) -> Real {
        Real(self.0.abs())
    }
}

impl fmt::Debug for Real {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Real {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for Real {
    fn from(value: f64) -> Self {
        Real(value)
    }
}

impl From<Real> for f64 {
    fn from(value: Real) -> Self {
        value.0
    }
}

impl Add for Real {
    type Output = Real;
    fn add(self, rhs: Real) -> Real {
        Real(self.0 + rhs.0)
    }
}

impl Sub for Real {
    type Output = Real;
    fn sub(self, rhs: Real) -> Real {
        Real(self.0 - rhs.0)
    }
}

impl Mul for Real {
    type Output = Real;
    fn mul(self, rhs: Real) -> Real {
        Real(self.0 * rhs.0)
    }
}

impl Neg for Real {
    type Output = Real;
    fn neg(self) -> Real {
        Real(-self.0)
    }
}

impl Semiring for Real {
    fn zero() -> Self {
        Real(0.0)
    }

    fn one() -> Self {
        Real(1.0)
    }

    fn add(&self, other: &Self) -> Self {
        Real(self.0 + other.0)
    }

    fn mul(&self, other: &Self) -> Self {
        Real(self.0 * other.0)
    }

    fn from_f64(value: f64) -> Self {
        Real(value)
    }

    fn to_f64(&self) -> f64 {
        self.0
    }
}

impl Ring for Real {
    fn neg(&self) -> Self {
        Real(-self.0)
    }
}

impl Field for Real {
    fn inv(&self) -> Option<Self> {
        if self.0 == 0.0 {
            None
        } else {
            Some(Real(1.0 / self.0))
        }
    }
}

impl OrderedField for Real {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn real_semiring_laws_hold_on_samples() {
        let samples = [-3.5, -1.0, 0.0, 0.5, 1.0, 2.0, 7.25];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    assert!(laws::all_laws(&Real(a), &Real(b), &Real(c)));
                }
            }
        }
    }

    #[test]
    fn division_and_inverse() {
        assert_eq!(Real(6.0).div(&Real(3.0)), Some(Real(2.0)));
        assert_eq!(Real(1.0).div(&Real(0.0)), None);
        assert_eq!(Real(4.0).inv(), Some(Real(0.25)));
        assert_eq!(Real(0.0).inv(), None);
    }

    #[test]
    fn subtraction_and_negation() {
        assert_eq!(Ring::sub(&Real(5.0), &Real(2.0)), Real(3.0));
        assert_eq!(Ring::neg(&Real(2.0)), Real(-2.0));
    }

    #[test]
    fn gt_zero_thresholds() {
        assert_eq!(Real(0.5).gt_zero(), Real(1.0));
        assert_eq!(Real(0.0).gt_zero(), Real(0.0));
        assert_eq!(Real(-2.0).gt_zero(), Real(0.0));
    }

    #[test]
    fn operator_overloads_match_trait_methods() {
        assert_eq!(Real(1.0) + Real(2.0), Semiring::add(&Real(1.0), &Real(2.0)));
        assert_eq!(Real(3.0) * Real(2.0), Semiring::mul(&Real(3.0), &Real(2.0)));
        assert_eq!(-Real(3.0), Ring::neg(&Real(3.0)));
        assert_eq!(Real(3.0) - Real(2.0), Ring::sub(&Real(3.0), &Real(2.0)));
    }

    #[test]
    fn conversions() {
        let r: Real = 2.5.into();
        let f: f64 = r.into();
        assert_eq!(f, 2.5);
        assert_eq!(Real::new(1.5).value(), 1.5);
        assert_eq!(Real(-2.0).abs(), Real(2.0));
    }
}
