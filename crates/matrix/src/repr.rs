//! Adaptive matrix representation: dense or CSR, selected per result by a
//! density threshold.
//!
//! [`MatrixRepr`] is the unified value representation the backend-aware
//! evaluator runs on.  Each operation dispatches to the kernels of whichever
//! representations the operands are in (promoting a sparse operand to dense
//! when the other operand is dense) and then **normalizes** the result:
//!
//! * a sparse result denser than [`DENSIFY_THRESHOLD`] is converted to
//!   dense storage — beyond that point CSR's index overhead outweighs the
//!   skipped zeros;
//! * a dense result with at most [`SPARSIFY_THRESHOLD`] density is
//!   compressed to CSR;
//! * matrices with fewer than [`MIN_ADAPTIVE_ENTRIES`] total entries always
//!   stay dense — at that size the representation switch costs more than it
//!   saves.
//!
//! The two thresholds are deliberately apart (hysteresis) so a value whose
//! density hovers near the boundary does not flip representation on every
//! operation.  Equality is semantic: a dense and a sparse `MatrixRepr`
//! holding the same entries compare equal.

use crate::sparse::SparseMatrix;
use crate::{Matrix, Result};
use matlang_semiring::{Ring, Semiring};
use std::fmt;

/// Sparse results denser than this are converted to dense storage.
pub const DENSIFY_THRESHOLD: f64 = 0.5;

/// Dense results at most this dense are compressed to CSR.
pub const SPARSIFY_THRESHOLD: f64 = 0.25;

/// Matrices with fewer total entries than this always stay dense.
pub const MIN_ADAPTIVE_ENTRIES: usize = 64;

/// A matrix held in either dense row-major or CSR storage.
#[derive(Clone)]
pub enum MatrixRepr<K> {
    /// Dense row-major storage.
    Dense(Matrix<K>),
    /// Compressed sparse row storage.
    Sparse(SparseMatrix<K>),
}

impl<K: Semiring> MatrixRepr<K> {
    /// Wraps a dense matrix and lets the density heuristic pick the storage.
    pub fn from_dense_auto(dense: Matrix<K>) -> Self {
        MatrixRepr::Dense(dense).normalized()
    }

    /// Wraps a sparse matrix and lets the density heuristic pick the storage.
    pub fn from_sparse_auto(sparse: SparseMatrix<K>) -> Self {
        MatrixRepr::Sparse(sparse).normalized()
    }

    /// Whether the current storage is CSR.
    pub fn is_sparse(&self) -> bool {
        matches!(self, MatrixRepr::Sparse(_))
    }

    /// A short name of the current storage backend, for logs and reports.
    pub fn backend_name(&self) -> &'static str {
        match self {
            MatrixRepr::Dense(_) => "dense",
            MatrixRepr::Sparse(_) => "sparse",
        }
    }

    /// Exact conversion to dense storage.
    pub fn to_dense(&self) -> Matrix<K> {
        match self {
            MatrixRepr::Dense(d) => d.clone(),
            MatrixRepr::Sparse(s) => s.to_dense(),
        }
    }

    /// Exact conversion to CSR storage.
    pub fn to_sparse(&self) -> SparseMatrix<K> {
        match self {
            MatrixRepr::Dense(d) => SparseMatrix::from_dense(d),
            MatrixRepr::Sparse(s) => s.clone(),
        }
    }

    /// Applies the density heuristic, converting the representation when the
    /// current one is a poor fit.  Every operation below normalizes its
    /// result, so evaluation automatically tracks the density of
    /// intermediate values (e.g. powers of an adjacency matrix densify as
    /// paths multiply).
    pub fn normalized(self) -> Self {
        let (rows, cols) = self.shape();
        if rows * cols < MIN_ADAPTIVE_ENTRIES {
            return MatrixRepr::Dense(self.to_dense());
        }
        match self {
            MatrixRepr::Sparse(s) if s.density() > DENSIFY_THRESHOLD => {
                MatrixRepr::Dense(s.to_dense())
            }
            MatrixRepr::Dense(ref d) if d.density() <= SPARSIFY_THRESHOLD => {
                MatrixRepr::Sparse(SparseMatrix::from_dense(d))
            }
            other => other,
        }
    }

    /// Steers the storage towards a caller-chosen representation (the
    /// query planner's per-node cost-model choice).  `sparse = false`
    /// always densifies; `sparse = true` compresses to CSR unless the value
    /// is denser than [`DENSIFY_THRESHOLD`] — an estimate must not force a
    /// pathological CSR of a near-full matrix.  The stored entries are
    /// unchanged either way.
    pub fn prefer(self, sparse: bool) -> Self {
        match (sparse, self) {
            (true, MatrixRepr::Dense(d)) if d.density() <= DENSIFY_THRESHOLD => {
                MatrixRepr::Sparse(SparseMatrix::from_dense(&d))
            }
            (false, MatrixRepr::Sparse(s)) => MatrixRepr::Dense(s.to_dense()),
            (_, other) => other,
        }
    }

    /// The shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            MatrixRepr::Dense(d) => d.shape(),
            MatrixRepr::Sparse(s) => s.shape(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.shape().0
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.shape().1
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        match self {
            MatrixRepr::Dense(d) => d.nnz(),
            MatrixRepr::Sparse(s) => s.nnz(),
        }
    }

    /// Fraction of entries that are non-zero (0 for an empty shape).
    pub fn density(&self) -> f64 {
        match self {
            MatrixRepr::Dense(d) => d.density(),
            MatrixRepr::Sparse(s) => s.density(),
        }
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        match self {
            MatrixRepr::Dense(d) => d.is_zero(),
            MatrixRepr::Sparse(s) => s.is_zero(),
        }
    }

    /// Heap bytes held by the active variant (dense entry buffer or CSR
    /// arrays).  O(1) — delegates to the variant's own accounting.
    pub fn heap_bytes(&self) -> usize {
        match self {
            MatrixRepr::Dense(d) => d.heap_bytes(),
            MatrixRepr::Sparse(s) => s.heap_bytes(),
        }
    }

    /// The entry at `(row, col)`, by value.
    pub fn get(&self, row: usize, col: usize) -> Result<K> {
        match self {
            MatrixRepr::Dense(d) => d.get(row, col).cloned(),
            MatrixRepr::Sparse(s) => s.get(row, col),
        }
    }

    /// The value of a `1 × 1` matrix.
    pub fn as_scalar(&self) -> Result<K> {
        match self {
            MatrixRepr::Dense(d) => d.as_scalar(),
            MatrixRepr::Sparse(s) => s.as_scalar(),
        }
    }

    /// Sets one entry **in place**, keeping the current representation —
    /// a stream of point updates must not trigger a dense↔CSR conversion
    /// per call.  Callers applying large update batches can re-run the
    /// density heuristic afterwards via [`MatrixRepr::normalized`].
    pub fn set_entry(&mut self, row: usize, col: usize, value: K) -> Result<()> {
        match self {
            MatrixRepr::Dense(d) => d.set(row, col, value),
            MatrixRepr::Sparse(s) => s.set_entry(row, col, value),
        }
    }

    /// Matrix transpose `eᵀ` (keeps the current representation).
    pub fn transpose(&self) -> Self {
        match self {
            MatrixRepr::Dense(d) => MatrixRepr::Dense(d.transpose()),
            MatrixRepr::Sparse(s) => MatrixRepr::Sparse(s.transpose()),
        }
    }

    /// Matrix addition `e₁ + e₂`.
    pub fn add(&self, other: &Self) -> Result<Self> {
        use MatrixRepr::{Dense, Sparse};
        let out = match (self, other) {
            (Sparse(a), Sparse(b)) => Sparse(a.add(b)?),
            (a, b) => Dense(a.to_dense().add(&b.to_dense())?),
        };
        Ok(out.normalized())
    }

    /// Matrix product `e₁ · e₂`, dispatched by operand representation:
    /// Gustavson SpMM for sparse·sparse, the dense kernel for dense·dense,
    /// and the `O(nnz)`-aware mixed kernels (see [`crate::mixed`]) for
    /// sparse·dense / dense·sparse — the sparse operand is never promoted.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        use MatrixRepr::{Dense, Sparse};
        let out = match (self, other) {
            (Sparse(a), Sparse(b)) => Sparse(a.matmul(b)?),
            (Sparse(a), Dense(b)) => Dense(a.matmul_dense(b)?),
            (Dense(a), Sparse(b)) => Dense(a.matmul_sparse(b)?),
            (Dense(a), Dense(b)) => Dense(a.matmul(b)?),
        };
        Ok(out.normalized())
    }

    /// [`MatrixRepr::matmul`] with up to `threads` worker threads for the
    /// same-representation pairs (see [`crate::parallel`]).  The mixed
    /// pairs run the serial mixed kernels — their cost is already dominated
    /// by the sparse operand's `nnz`.  Bit-identical to
    /// [`MatrixRepr::matmul`] for every operand pair.
    pub fn matmul_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        use MatrixRepr::{Dense, Sparse};
        let out = match (self, other) {
            (Sparse(a), Sparse(b)) => Sparse(a.matmul_threaded(b, threads)?),
            (Sparse(a), Dense(b)) => Dense(a.matmul_dense(b)?),
            (Dense(a), Sparse(b)) => Dense(a.matmul_sparse(b)?),
            (Dense(a), Dense(b)) => Dense(a.matmul_threaded(b, threads)?),
        };
        Ok(out.normalized())
    }

    /// Hadamard (pointwise) product `e₁ ∘ e₂`.  A sparse operand bounds the
    /// result's support, so one sparse side is enough to use the sparse
    /// kernel.
    pub fn hadamard(&self, other: &Self) -> Result<Self> {
        use MatrixRepr::{Dense, Sparse};
        let out = match (self, other) {
            (Dense(a), Dense(b)) => Dense(a.hadamard(b)?),
            (a, b) => Sparse(a.to_sparse().hadamard(&b.to_sparse())?),
        };
        Ok(out.normalized())
    }

    /// [`MatrixRepr::add`] with up to `threads` pooled workers for the
    /// dense·dense pair (the sparse kernels are `O(nnz)` merges, already
    /// cheap).  Bit-identical to [`MatrixRepr::add`] — the dispatch mirrors
    /// the serial one exactly.
    pub fn add_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        use MatrixRepr::{Dense, Sparse};
        let out = match (self, other) {
            (Sparse(a), Sparse(b)) => Sparse(a.add(b)?),
            (Dense(a), Dense(b)) => Dense(a.add_threaded(b, threads)?),
            (a, b) => Dense(a.to_dense().add(&b.to_dense())?),
        };
        Ok(out.normalized())
    }

    /// [`MatrixRepr::hadamard`] with up to `threads` pooled workers for the
    /// dense·dense pair.  Bit-identical to [`MatrixRepr::hadamard`].
    pub fn hadamard_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        use MatrixRepr::Dense;
        match (self, other) {
            (Dense(a), Dense(b)) => {
                Ok(MatrixRepr::Dense(a.hadamard_threaded(b, threads)?).normalized())
            }
            (a, b) => a.hadamard(b),
        }
    }

    /// Scalar multiplication: every entry multiplied by `scalar`.
    pub fn scalar_mul(&self, scalar: &K) -> Self {
        match self {
            MatrixRepr::Dense(d) => MatrixRepr::Dense(d.scalar_mul(scalar)),
            MatrixRepr::Sparse(s) => MatrixRepr::Sparse(s.scalar_mul(scalar)),
        }
        .normalized()
    }

    /// The paper's `diag(e)`: a diagonal matrix is the canonical sparse
    /// value (`nnz ≤ n` of `n²` entries), so the result is always built in
    /// CSR before normalization.
    pub fn diag(&self) -> Result<Self> {
        Ok(MatrixRepr::Sparse(self.to_sparse().diag()?).normalized())
    }

    /// Fused `diag(scale) · self`, dispatched to the matching
    /// representation's fused kernel; the `n × 1` scale vector is converted
    /// (an `O(n)` copy) when its representation differs from the matrix's.
    /// Values agree exactly with `scale.diag()?.matmul(self)` — both
    /// kernels compute the lawful `s ⊙ a` per entry.
    pub fn scale_rows(&self, scale: &Self) -> Result<Self> {
        use MatrixRepr::{Dense, Sparse};
        let out = match (self, scale) {
            (Dense(m), Dense(v)) => Dense(m.scale_rows(v)?),
            (Dense(m), Sparse(v)) => Dense(m.scale_rows(&v.to_dense())?),
            (Sparse(m), Sparse(v)) => Sparse(m.scale_rows(v)?),
            (Sparse(m), Dense(v)) => Sparse(m.scale_rows(&SparseMatrix::from_dense(v))?),
        };
        Ok(out.normalized())
    }

    /// Fused `self · diag(scale)`; see [`MatrixRepr::scale_rows`].
    pub fn scale_cols(&self, scale: &Self) -> Result<Self> {
        use MatrixRepr::{Dense, Sparse};
        let out = match (self, scale) {
            (Dense(m), Dense(v)) => Dense(m.scale_cols(v)?),
            (Dense(m), Sparse(v)) => Dense(m.scale_cols(&v.to_dense())?),
            (Sparse(m), Sparse(v)) => Sparse(m.scale_cols(v)?),
            (Sparse(m), Dense(v)) => Sparse(m.scale_cols(&SparseMatrix::from_dense(v))?),
        };
        Ok(out.normalized())
    }

    /// The trace of a square matrix.
    pub fn trace(&self) -> Result<K> {
        match self {
            MatrixRepr::Dense(d) => d.trace(),
            MatrixRepr::Sparse(s) => s.trace(),
        }
    }

    /// `Aᵏ` for a square matrix, re-selecting the representation after every
    /// multiplication (powers of sparse matrices densify as paths multiply).
    pub fn pow(&self, k: usize) -> Result<Self> {
        let (rows, cols) = self.shape();
        if rows != cols {
            return Err(crate::MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut acc = MatrixRepr::Sparse(SparseMatrix::identity(rows)).normalized();
        for _ in 0..k {
            acc = acc.matmul(self)?;
        }
        Ok(acc)
    }

    /// Pointwise combination of `k ≥ 1` same-shaped matrices via `f`.
    /// Arbitrary pointwise functions need not preserve zeros, so this
    /// evaluates densely and re-normalizes.
    pub fn zip_with<F: Fn(&[K]) -> K>(matrices: &[&Self], f: F) -> Result<Self> {
        let dense: Vec<Matrix<K>> = matrices.iter().map(|m| m.to_dense()).collect();
        let refs: Vec<&Matrix<K>> = dense.iter().collect();
        Ok(MatrixRepr::Dense(Matrix::zip_with(&refs, f)?).normalized())
    }
}

impl<K: Ring> MatrixRepr<K> {
    /// Entrywise negation.
    pub fn neg(&self) -> Self {
        match self {
            MatrixRepr::Dense(d) => MatrixRepr::Dense(d.neg()),
            MatrixRepr::Sparse(s) => MatrixRepr::Sparse(s.neg()),
        }
    }

    /// Matrix subtraction.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.add(&other.neg())
    }
}

impl<K: Semiring> PartialEq for MatrixRepr<K> {
    fn eq(&self, other: &Self) -> bool {
        use MatrixRepr::{Dense, Sparse};
        match (self, other) {
            (Dense(a), Dense(b)) => a == b,
            (Sparse(a), Sparse(b)) => a == b,
            // Mixed representations compare semantically.
            (a, b) => a.shape() == b.shape() && a.to_dense() == b.to_dense(),
        }
    }
}

impl<K: Semiring> fmt::Debug for MatrixRepr<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixRepr::Dense(d) => write!(f, "[dense] {d:?}"),
            MatrixRepr::Sparse(s) => write!(f, "[sparse] {s:?}"),
        }
    }
}

impl<K: Semiring> fmt::Display for MatrixRepr<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixRepr::Dense(d) => write!(f, "[dense] {}x{} nnz={}", d.rows(), d.cols(), d.nnz()),
            MatrixRepr::Sparse(s) => write!(f, "[sparse] {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Boolean, Real};

    fn dense(rows: &[&[f64]]) -> Matrix<Real> {
        Matrix::from_f64_rows(rows).unwrap()
    }

    #[test]
    fn small_matrices_stay_dense() {
        let id = MatrixRepr::<Real>::from_sparse_auto(SparseMatrix::identity(4));
        assert!(!id.is_sparse(), "4x4 identity is below the adaptive floor");
        assert_eq!(id.backend_name(), "dense");
    }

    #[test]
    fn sparse_values_above_the_floor_stay_sparse() {
        let id = MatrixRepr::<Real>::from_sparse_auto(SparseMatrix::identity(32));
        assert!(id.is_sparse());
        assert_eq!(id.backend_name(), "sparse");
        let dense_all = MatrixRepr::from_dense_auto(Matrix::<Real>::all_ones(32, 32));
        assert!(!dense_all.is_sparse());
    }

    #[test]
    fn dense_results_sparsify_below_threshold() {
        let mut m: Matrix<Real> = Matrix::zeros(16, 16);
        m.set(3, 4, Real(1.0)).unwrap();
        let repr = MatrixRepr::from_dense_auto(m);
        assert!(repr.is_sparse());
        assert_eq!(repr.nnz(), 1);
    }

    #[test]
    fn sparse_results_densify_above_threshold() {
        let dense_block = Matrix::<Real>::all_ones(16, 16);
        let repr = MatrixRepr::from_sparse_auto(SparseMatrix::from_dense(&dense_block));
        assert!(!repr.is_sparse());
    }

    #[test]
    fn mixed_representation_equality_is_semantic() {
        let d = dense(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let a = MatrixRepr::Dense(d.clone());
        let b = MatrixRepr::Sparse(SparseMatrix::from_dense(&d));
        assert_eq!(a, b);
        assert_eq!(b, a);
        let c = MatrixRepr::Dense(dense(&[&[1.0, 0.0], &[0.0, 3.0]]));
        assert_ne!(a, c);
    }

    #[test]
    fn ops_agree_with_dense_backend() {
        let a = dense(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]);
        let b = dense(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        for (ra, rb) in [
            (MatrixRepr::Dense(a.clone()), MatrixRepr::Dense(b.clone())),
            (
                MatrixRepr::Sparse(SparseMatrix::from_dense(&a)),
                MatrixRepr::Dense(b.clone()),
            ),
            (
                MatrixRepr::Dense(a.clone()),
                MatrixRepr::Sparse(SparseMatrix::from_dense(&b)),
            ),
            (
                MatrixRepr::Sparse(SparseMatrix::from_dense(&a)),
                MatrixRepr::Sparse(SparseMatrix::from_dense(&b)),
            ),
        ] {
            assert_eq!(ra.add(&rb).unwrap().to_dense(), a.add(&b).unwrap());
            assert_eq!(ra.matmul(&rb).unwrap().to_dense(), a.matmul(&b).unwrap());
            assert_eq!(
                ra.hadamard(&rb).unwrap().to_dense(),
                a.hadamard(&b).unwrap()
            );
        }
        let repr = MatrixRepr::Sparse(SparseMatrix::from_dense(&a));
        assert_eq!(repr.transpose().to_dense(), a.transpose());
        assert_eq!(repr.trace().unwrap(), a.trace().unwrap());
        assert_eq!(repr.pow(2).unwrap().to_dense(), a.pow(2).unwrap());
        assert_eq!(repr.get(0, 2).unwrap(), Real(2.0));
        assert!(!repr.is_zero());
    }

    #[test]
    fn diag_is_built_sparse() {
        let v = MatrixRepr::Dense(Matrix::<Real>::ones_vector(32));
        let d = v.diag().unwrap();
        assert!(d.is_sparse());
        assert_eq!(d.to_dense(), Matrix::identity(32));
    }

    #[test]
    fn boolean_power_densifies_as_reachability_saturates() {
        // A directed cycle: A^k stays a permutation (sparse); but
        // (I + A)^k saturates towards all-ones and must flip to dense.
        let n = 16;
        let mut cycle: Matrix<Boolean> = Matrix::zeros(n, n);
        for i in 0..n {
            cycle.set(i, (i + 1) % n, Boolean(true)).unwrap();
        }
        let a = MatrixRepr::from_dense_auto(cycle);
        assert!(a.is_sparse());
        let closure_arg = a
            .add(&MatrixRepr::from_sparse_auto(SparseMatrix::identity(n)))
            .unwrap();
        let saturated = closure_arg.pow(n).unwrap();
        assert!(!saturated.is_sparse(), "saturated reachability is dense");
        assert_eq!(saturated.nnz(), n * n);
    }

    #[test]
    fn subtraction_over_a_ring() {
        use matlang_semiring::IntRing;
        let a = MatrixRepr::Dense(Matrix::from_rows(vec![vec![IntRing(3), IntRing(1)]]).unwrap());
        let diff = a.sub(&a).unwrap();
        assert!(diff.is_zero());
    }

    #[test]
    fn set_entry_keeps_representation_and_threaded_elementwise_agree() {
        let mut d = MatrixRepr::Dense(dense(&[&[1.0, 0.0], &[0.0, 2.0]]));
        d.set_entry(0, 1, Real(3.0)).unwrap();
        assert!(!d.is_sparse(), "point updates must not flip representation");
        assert_eq!(d.get(0, 1).unwrap(), Real(3.0));
        let mut s = MatrixRepr::<Real>::Sparse(SparseMatrix::identity(16));
        s.set_entry(3, 4, Real(5.0)).unwrap();
        assert!(s.is_sparse());
        assert_eq!(s.nnz(), 17);

        let a = MatrixRepr::Dense(Matrix::<Real>::all_ones(12, 12));
        let b = MatrixRepr::Dense(
            Matrix::from_rows((0..12).map(|i| vec![Real(i as f64 + 1.0); 12]).collect()).unwrap(),
        );
        assert_eq!(a.add_threaded(&b, 4).unwrap(), a.add(&b).unwrap());
        assert_eq!(a.hadamard_threaded(&b, 4).unwrap(), a.hadamard(&b).unwrap());
        // Mixed pairs fall back to the serial dispatch.
        let sp = MatrixRepr::<Real>::Sparse(SparseMatrix::identity(12));
        assert_eq!(a.add_threaded(&sp, 4).unwrap(), a.add(&sp).unwrap());
        assert_eq!(
            a.hadamard_threaded(&sp, 4).unwrap(),
            a.hadamard(&sp).unwrap()
        );
    }

    #[test]
    fn display_and_debug_mention_backend() {
        let d = MatrixRepr::Dense(dense(&[&[1.0]]));
        assert!(format!("{d}").contains("[dense]"));
        let s = MatrixRepr::<Real>::Sparse(SparseMatrix::identity(2));
        assert!(format!("{s:?}").contains("[sparse]"));
    }
}
