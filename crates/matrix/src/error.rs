//! Error type for matrix construction and arithmetic.

use std::fmt;

/// Errors raised by matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The two operands of an elementwise operation have different shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
        /// Name of the offending operation.
        op: &'static str,
    },
    /// The inner dimensions of a matrix product disagree.
    InnerDimensionMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The requested row.
        row: usize,
        /// The requested column.
        col: usize,
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// An operation requiring a vector received a non-vector.
    NotAVector {
        /// The offending shape.
        shape: (usize, usize),
    },
    /// An operation requiring a square matrix received a non-square one.
    NotSquare {
        /// The offending shape.
        shape: (usize, usize),
    },
    /// An operation requiring a 1×1 matrix (a scalar) received something else.
    NotAScalar {
        /// The offending shape.
        shape: (usize, usize),
    },
    /// Construction data did not match the requested shape.
    BadConstruction {
        /// Human-readable description.
        message: String,
    },
    /// A numeric operation (division, inversion) was impossible.
    Singular {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::InnerDimensionMismatch { left, right } => write!(
                f,
                "inner dimension mismatch in matrix product: {}x{} times {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            MatrixError::NotAVector { shape } => {
                write!(
                    f,
                    "expected a column vector, got shape {}x{}",
                    shape.0, shape.1
                )
            }
            MatrixError::NotSquare { shape } => {
                write!(
                    f,
                    "expected a square matrix, got shape {}x{}",
                    shape.0, shape.1
                )
            }
            MatrixError::NotAScalar { shape } => {
                write!(
                    f,
                    "expected a 1x1 matrix, got shape {}x{}",
                    shape.0, shape.1
                )
            }
            MatrixError::BadConstruction { message } => write!(f, "bad construction: {message}"),
            MatrixError::Singular { message } => write!(f, "singular: {message}"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_messages() {
        let e = MatrixError::ShapeMismatch {
            left: (2, 3),
            right: (3, 2),
            op: "add",
        };
        assert!(e.to_string().contains("add"));
        let e = MatrixError::InnerDimensionMismatch {
            left: (2, 3),
            right: (2, 3),
        };
        assert!(e.to_string().contains("inner dimension"));
        let e = MatrixError::IndexOutOfBounds {
            row: 5,
            col: 0,
            shape: (2, 2),
        };
        assert!(e.to_string().contains("out of bounds"));
        let e = MatrixError::NotAVector { shape: (2, 2) };
        assert!(e.to_string().contains("column vector"));
        let e = MatrixError::NotSquare { shape: (2, 3) };
        assert!(e.to_string().contains("square"));
        let e = MatrixError::NotAScalar { shape: (2, 3) };
        assert!(e.to_string().contains("1x1"));
        let e = MatrixError::BadConstruction {
            message: "nope".into(),
        };
        assert!(e.to_string().contains("nope"));
        let e = MatrixError::Singular {
            message: "det is 0".into(),
        };
        assert!(e.to_string().contains("det is 0"));
    }
}
