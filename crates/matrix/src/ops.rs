//! Matrix arithmetic: the operations underlying the MATLANG operators of
//! Section 2 (transpose, product, addition, scalar multiplication, pointwise
//! application) and the Hadamard product of Section 6.2.

use crate::{Matrix, MatrixError, Result};
use matlang_semiring::{Field, Ring, Semiring};

impl<K: Semiring> Matrix<K> {
    /// Matrix transpose `eᵀ`.
    pub fn transpose(&self) -> Matrix<K> {
        let (rows, cols) = self.shape();
        let mut out = Matrix::zeros(cols, rows);
        for (i, j, v) in self.iter_entries() {
            out.set(j, i, v.clone()).expect("transpose index in bounds");
        }
        out
    }

    /// Matrix addition `e₁ + e₂` (entrywise `⊕`).
    pub fn add(&self, other: &Matrix<K>) -> Result<Matrix<K>> {
        if self.shape() != other.shape() {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "add",
            });
        }
        let data = self
            .entries()
            .iter()
            .zip(other.entries())
            .map(|(a, b)| a.add(b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Matrix product `e₁ · e₂` (sum of products over the shared dimension).
    ///
    /// Implemented as a cache-friendly i-k-j loop over row slices: the inner
    /// loop walks both the output row and a row of `other` contiguously, and
    /// zero entries of `self` skip their whole inner loop.  The skip is
    /// justified by the semiring laws alone (`0 ⊙ b = 0` and `a ⊕ 0 = a`),
    /// so it is exact for every `K` — including the tropical semirings,
    /// whose zero is ±∞.
    pub fn matmul(&self, other: &Matrix<K>) -> Result<Matrix<K>> {
        if self.cols() != other.rows() {
            return Err(MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let (n, m) = (self.rows(), other.cols());
        let timer = matlang_obs::enabled().then(std::time::Instant::now);
        let mut out = vec![K::zero(); n * m];
        self.matmul_into_rows(other, 0..n, &mut out);
        if let Some(t) = timer {
            matlang_obs::histogram!("kernel_dense_matmul_us")
                .observe(t.elapsed().as_micros() as u64);
        }
        Matrix::from_vec(n, m, out)
    }

    /// The i-k-j kernel restricted to the output rows in `rows`, writing
    /// into `out` (the row-major buffer for exactly those rows).  This is
    /// the single implementation behind both [`Matrix::matmul`] and the
    /// row-partitioned [`Matrix::matmul_threaded`] — sharing it is what
    /// keeps serial and threaded products bit-identical by construction.
    ///
    /// Callers must have checked `self.cols() == other.rows()`, that
    /// `rows` lies within `0..self.rows()`, and that
    /// `out.len() == rows.len() * other.cols()`.
    pub(crate) fn matmul_into_rows(
        &self,
        other: &Matrix<K>,
        rows: std::ops::Range<usize>,
        out: &mut [K],
    ) {
        let m = other.cols();
        let inner = self.cols();
        let lhs = self.entries();
        let rhs = other.entries();
        for (r, out_row) in out.chunks_mut(m.max(1)).enumerate().take(rows.len()) {
            let i = rows.start + r;
            let a_row = &lhs[i * inner..(i + 1) * inner];
            for (k, a) in a_row.iter().enumerate() {
                if a.is_zero() {
                    continue;
                }
                let b_row = &rhs[k * m..(k + 1) * m];
                for (acc, b) in out_row.iter_mut().zip(b_row) {
                    *acc = acc.add(&a.mul(b));
                }
            }
        }
    }

    /// Fused `diag(scale) · self` for an `n × 1` vector `scale`: row `i` of
    /// the result is row `i` of `self` scaled by `scale[i]`.  Semantically
    /// identical to materializing the diagonal matrix and multiplying, but
    /// `O(rows × cols)` instead of the product's inner loop — and without
    /// the `O(rows²)` intermediate.  The accumulation replays exactly what
    /// [`Matrix::matmul`] would do for a diagonal left operand (zero rows
    /// skip, every output entry is `0 ⊕ (s ⊙ a)`), so the result is
    /// bit-identical to the unfused product.
    pub fn scale_rows(&self, scale: &Matrix<K>) -> Result<Matrix<K>> {
        if !scale.is_vector() {
            return Err(MatrixError::NotAVector {
                shape: scale.shape(),
            });
        }
        if scale.rows() != self.rows() {
            return Err(MatrixError::InnerDimensionMismatch {
                left: (scale.rows(), scale.rows()),
                right: self.shape(),
            });
        }
        let (n, m) = self.shape();
        let lhs = self.entries();
        let mut out = vec![K::zero(); n * m];
        for i in 0..n {
            let s = scale.get(i, 0)?;
            if s.is_zero() {
                continue;
            }
            let src = &lhs[i * m..(i + 1) * m];
            for (acc, a) in out[i * m..(i + 1) * m].iter_mut().zip(src) {
                *acc = acc.add(&s.mul(a));
            }
        }
        Matrix::from_vec(n, m, out)
    }

    /// Fused `self · diag(scale)` for an `m × 1` vector `scale`: column `j`
    /// of the result is column `j` of `self` scaled by `scale[j]`.  The
    /// fused counterpart of [`Matrix::scale_rows`] on the right — the
    /// unfused dense product costs `O(rows × cols²)` because the kernel
    /// only skips zero *left* entries; this is `O(rows × cols)`.
    pub fn scale_cols(&self, scale: &Matrix<K>) -> Result<Matrix<K>> {
        if !scale.is_vector() {
            return Err(MatrixError::NotAVector {
                shape: scale.shape(),
            });
        }
        if self.cols() != scale.rows() {
            return Err(MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: (scale.rows(), scale.rows()),
            });
        }
        let (n, m) = self.shape();
        let lhs = self.entries();
        let mut out = vec![K::zero(); n * m];
        for i in 0..n {
            for j in 0..m {
                let a = &lhs[i * m + j];
                if a.is_zero() {
                    continue;
                }
                let s = scale.get(j, 0)?;
                if s.is_zero() {
                    continue;
                }
                out[i * m + j] = out[i * m + j].add(&a.mul(s));
            }
        }
        Matrix::from_vec(n, m, out)
    }

    /// Hadamard (pointwise) product `e₁ ∘ e₂` (entrywise `⊙`, Section 6.2).
    pub fn hadamard(&self, other: &Matrix<K>) -> Result<Matrix<K>> {
        if self.shape() != other.shape() {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "hadamard",
            });
        }
        let data = self
            .entries()
            .iter()
            .zip(other.entries())
            .map(|(a, b)| a.mul(b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Scalar multiplication `e₁ × e₂` where `e₁` is `1 × 1`.
    pub fn scalar_mul(&self, scalar: &K) -> Matrix<K> {
        self.map(|v| scalar.mul(v))
    }

    /// The paper's `1(e)`: a `rows × 1` ones vector matching this matrix's
    /// row count.
    pub fn ones_like(&self) -> Matrix<K> {
        Matrix::ones_vector(self.rows())
    }

    /// The paper's `diag(e)` operator: for an `n × 1` vector, the `n × n`
    /// diagonal matrix with the vector on its main diagonal.
    pub fn diag(&self) -> Result<Matrix<K>> {
        if !self.is_vector() {
            return Err(MatrixError::NotAVector {
                shape: self.shape(),
            });
        }
        let n = self.rows();
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            out.set(i, i, self.get(i, 0)?.clone())?;
        }
        Ok(out)
    }

    /// The main diagonal of a square matrix, as an `n × 1` vector.
    pub fn diagonal_vector(&self) -> Result<Matrix<K>> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        let n = self.rows();
        let mut out = Matrix::zeros(n, 1);
        for i in 0..n {
            out.set(i, 0, self.get(i, i)?.clone())?;
        }
        Ok(out)
    }

    /// The trace `tr(A)` of a square matrix.
    pub fn trace(&self) -> Result<K> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut acc = K::zero();
        for i in 0..self.rows() {
            acc = acc.add(self.get(i, i)?);
        }
        Ok(acc)
    }

    /// `Aᵏ` for a square matrix (k = 0 gives the identity).
    pub fn pow(&self, k: usize) -> Result<Matrix<K>> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut acc = Matrix::identity(self.rows());
        for _ in 0..k {
            acc = acc.matmul(self)?;
        }
        Ok(acc)
    }
}

impl<K: Ring> Matrix<K> {
    /// Entrywise negation.
    pub fn neg(&self) -> Matrix<K> {
        self.map(|v| v.neg())
    }

    /// Matrix subtraction.
    pub fn sub(&self, other: &Matrix<K>) -> Result<Matrix<K>> {
        self.add(&other.neg())
    }
}

impl<K: Field> Matrix<K> {
    /// Gauss–Jordan inverse of a square matrix over a field.  This is the
    /// *baseline* numeric inverse against which the Csanky / for-MATLANG
    /// inverse of Section 4.2 is validated.
    pub fn inverse(&self) -> Result<Matrix<K>> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        let n = self.rows();
        let mut a = self.clone();
        let mut inv: Matrix<K> = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot row with the largest magnitude entry in this column.
            let mut pivot = None;
            let mut best = 0.0f64;
            for row in col..n {
                let v = a.get(row, col)?.to_f64().abs();
                if v > best && !a.get(row, col)?.is_zero() {
                    best = v;
                    pivot = Some(row);
                }
            }
            let pivot = pivot.ok_or_else(|| MatrixError::Singular {
                message: format!("no pivot in column {col}"),
            })?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let pivot_value = a.get(col, col)?.clone();
            let pivot_inv = pivot_value.inv().ok_or_else(|| MatrixError::Singular {
                message: format!("zero pivot in column {col}"),
            })?;
            for j in 0..n {
                let av = a.get(col, j)?.mul(&pivot_inv);
                a.set(col, j, av)?;
                let iv = inv.get(col, j)?.mul(&pivot_inv);
                inv.set(col, j, iv)?;
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let factor = a.get(row, col)?.clone();
                if factor.is_zero() {
                    continue;
                }
                for j in 0..n {
                    let av = a.get(row, j)?.sub(&factor.mul(a.get(col, j)?));
                    a.set(row, j, av)?;
                    let iv = inv.get(row, j)?.sub(&factor.mul(inv.get(col, j)?));
                    inv.set(row, j, iv)?;
                }
            }
        }
        Ok(inv)
    }

    /// Determinant via LU-style elimination with partial pivoting.  Baseline
    /// for the Csanky determinant of Section 4.2.
    pub fn determinant(&self) -> Result<K> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        let n = self.rows();
        let mut a = self.clone();
        let mut det = K::one();
        let mut sign_flip = false;
        for col in 0..n {
            let mut pivot = None;
            let mut best = 0.0f64;
            for row in col..n {
                let v = a.get(row, col)?.to_f64().abs();
                if v > best && !a.get(row, col)?.is_zero() {
                    best = v;
                    pivot = Some(row);
                }
            }
            let pivot = match pivot {
                Some(p) => p,
                None => return Ok(K::zero()),
            };
            if pivot != col {
                a.swap_rows(pivot, col);
                sign_flip = !sign_flip;
            }
            let pivot_value = a.get(col, col)?.clone();
            det = det.mul(&pivot_value);
            let pivot_inv = pivot_value.inv().ok_or_else(|| MatrixError::Singular {
                message: "zero pivot".to_string(),
            })?;
            for row in (col + 1)..n {
                let factor = a.get(row, col)?.mul(&pivot_inv);
                if factor.is_zero() {
                    continue;
                }
                for j in col..n {
                    let av = a.get(row, j)?.sub(&factor.mul(a.get(col, j)?));
                    a.set(row, j, av)?;
                }
            }
        }
        if sign_flip {
            det = det.neg();
        }
        Ok(det)
    }
}

impl<K: Semiring> Matrix<K> {
    /// Swap two rows in place.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols() {
            let a = self.get(r1, j).expect("in bounds").clone();
            let b = self.get(r2, j).expect("in bounds").clone();
            self.set(r1, j, b).expect("in bounds");
            self.set(r2, j, a).expect("in bounds");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Boolean, MinPlus, Real};

    fn m(rows: &[&[f64]]) -> Matrix<Real> {
        Matrix::from_f64_rows(rows).unwrap()
    }

    #[test]
    fn transpose_involution() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1).unwrap().0, 6.0);
    }

    #[test]
    fn addition_and_shape_errors() {
        let a = m(&[&[1.0, 2.0]]);
        let b = m(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).unwrap(), m(&[&[4.0, 6.0]]));
        let c = m(&[&[1.0], &[2.0]]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.matmul(&b).unwrap(), m(&[&[19.0, 22.0], &[43.0, 50.0]]));
        let v = m(&[&[1.0], &[1.0]]);
        assert_eq!(a.matmul(&v).unwrap(), m(&[&[3.0], &[7.0]]));
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn matmul_identity_is_neutral() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i: Matrix<Real> = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn hadamard_pointwise() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[2.0, 2.0], &[2.0, 2.0]]);
        assert_eq!(a.hadamard(&b).unwrap(), m(&[&[2.0, 4.0], &[6.0, 8.0]]));
        let c = m(&[&[1.0]]);
        assert!(a.hadamard(&c).is_err());
    }

    #[test]
    fn scalar_mul_scales_every_entry() {
        let a = m(&[&[1.0, 2.0]]);
        assert_eq!(a.scalar_mul(&Real(3.0)), m(&[&[3.0, 6.0]]));
    }

    #[test]
    fn diag_and_diagonal_vector() {
        let v = m(&[&[1.0], &[2.0], &[3.0]]);
        let d = v.diag().unwrap();
        assert_eq!(d.get(1, 1).unwrap().0, 2.0);
        assert_eq!(d.get(0, 1).unwrap().0, 0.0);
        assert_eq!(d.diagonal_vector().unwrap(), v);
        let nonvec = m(&[&[1.0, 2.0]]);
        assert!(nonvec.diag().is_err());
        assert!(nonvec.diagonal_vector().is_err());
    }

    #[test]
    fn ones_like_uses_row_count() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.ones_like(), Matrix::ones_vector(2));
    }

    #[test]
    fn trace_and_pow() {
        let a = m(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert_eq!(a.trace().unwrap().0, 2.0);
        assert_eq!(a.pow(0).unwrap(), Matrix::identity(2));
        assert_eq!(a.pow(3).unwrap(), m(&[&[1.0, 3.0], &[0.0, 1.0]]));
        let nonsq = m(&[&[1.0, 2.0]]);
        assert!(nonsq.trace().is_err());
        assert!(nonsq.pow(2).is_err());
    }

    #[test]
    fn subtraction_and_negation() {
        let a = m(&[&[3.0, 4.0]]);
        let b = m(&[&[1.0, 1.0]]);
        assert_eq!(a.sub(&b).unwrap(), m(&[&[2.0, 3.0]]));
        assert_eq!(a.neg(), m(&[&[-3.0, -4.0]]));
    }

    #[test]
    fn inverse_of_invertible_matrix() {
        let a = m(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-9));
    }

    #[test]
    fn inverse_requires_pivoting() {
        // Leading principal minor is zero, so a pivot swap is required.
        let a = m(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let inv = a.inverse().unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(2), 1e-9));
    }

    #[test]
    fn inverse_of_singular_matrix_fails() {
        let a = m(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.inverse().is_err());
        let nonsq = m(&[&[1.0, 2.0]]);
        assert!(nonsq.inverse().is_err());
    }

    #[test]
    fn determinant_values() {
        assert_eq!(
            m(&[&[1.0, 2.0], &[3.0, 4.0]]).determinant().unwrap().0,
            -2.0
        );
        assert_eq!(m(&[&[1.0, 2.0], &[2.0, 4.0]]).determinant().unwrap().0, 0.0);
        let a = m(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert!((a.determinant().unwrap().0 - (-1.0)).abs() < 1e-12);
        assert!(m(&[&[1.0, 2.0]]).determinant().is_err());
    }

    #[test]
    fn boolean_matmul_is_reachability_step() {
        let adj: Matrix<Boolean> =
            Matrix::from_f64_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]).unwrap();
        let two_step = adj.matmul(&adj).unwrap();
        assert_eq!(two_step.get(0, 2).unwrap(), &Boolean(true));
        assert_eq!(two_step.get(0, 1).unwrap(), &Boolean(false));
    }

    #[test]
    fn minplus_matmul_is_shortest_path_step() {
        let inf = f64::INFINITY;
        let w: Matrix<MinPlus> = Matrix::from_rows(vec![
            vec![MinPlus(0.0), MinPlus(2.0), MinPlus(inf)],
            vec![MinPlus(inf), MinPlus(0.0), MinPlus(3.0)],
            vec![MinPlus(inf), MinPlus(inf), MinPlus(0.0)],
        ])
        .unwrap();
        let two = w.matmul(&w).unwrap();
        assert_eq!(two.get(0, 2).unwrap(), &MinPlus(5.0));
    }

    #[test]
    fn swap_rows_swaps_in_place() {
        let mut a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.swap_rows(0, 1);
        assert_eq!(a, m(&[&[3.0, 4.0], &[1.0, 2.0]]));
        a.swap_rows(1, 1);
        assert_eq!(a, m(&[&[3.0, 4.0], &[1.0, 2.0]]));
    }
}
