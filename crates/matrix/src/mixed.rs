//! Mixed-representation matrix products: CSR·dense and dense·CSR without
//! promoting the sparse operand.
//!
//! The adaptive [`crate::MatrixRepr`] frequently multiplies a sparse matrix
//! by a dense one (e.g. a CSR adjacency matrix against a densified power of
//! itself).  Promoting the sparse side to dense first costs
//! `Θ(rows × cols)` just to materialize the operand and then pays the dense
//! kernel's full scan; the kernels here instead walk the stored entries of
//! the sparse side, so the work is `O(nnz · width)` plus the unavoidable
//! dense-output writes.
//!
//! Both kernels accumulate each output row in the same `i → k → j` order as
//! the dense [`Matrix::matmul`] and the Gustavson
//! [`SparseMatrix::matmul`], so results are bit-identical to either
//! same-representation product — a property the evaluator-parity suites
//! rely on.

use crate::{Matrix, MatrixError, Result, SparseMatrix};
use matlang_semiring::Semiring;

impl<K: Semiring> SparseMatrix<K> {
    /// Sparse·dense product `self · other` with a dense result:
    /// `O(Σᵢ nnz(selfᵢ) · other.cols())` semiring operations — the zero rows
    /// and zero entries of `self` cost nothing.
    pub fn matmul_dense(&self, other: &Matrix<K>) -> Result<Matrix<K>> {
        if self.cols() != other.rows() {
            return Err(MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let (n, m) = (self.rows(), other.cols());
        let rhs = other.entries();
        let mut out = vec![K::zero(); n * m];
        for (i, out_row) in out.chunks_mut(m.max(1)).enumerate().take(n) {
            let (cols, vals) = self.row_entries(i);
            for (&k, a) in cols.iter().zip(vals) {
                let b_row = &rhs[k * m..(k + 1) * m];
                for (acc, b) in out_row.iter_mut().zip(b_row) {
                    *acc = acc.add(&a.mul(b));
                }
            }
        }
        Matrix::from_vec(n, m, out)
    }
}

impl<K: Semiring> Matrix<K> {
    /// Dense·sparse product `self · other` with a dense result: for each
    /// non-zero `self[i, k]` only row `k` of the CSR operand is visited, so
    /// the cost is `O(rows · inner + Σ_{(i,k) ≠ 0} nnz(other_k))` instead of
    /// the dense kernel's full `rows × inner × cols` sweep.
    pub fn matmul_sparse(&self, other: &SparseMatrix<K>) -> Result<Matrix<K>> {
        if self.cols() != other.rows() {
            return Err(MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let (n, m) = (self.rows(), other.cols());
        let inner = self.cols();
        let lhs = self.entries();
        let mut out = vec![K::zero(); n * m];
        for (i, out_row) in out.chunks_mut(m.max(1)).enumerate().take(n) {
            let a_row = &lhs[i * inner..(i + 1) * inner];
            for (k, a) in a_row.iter().enumerate() {
                if a.is_zero() {
                    continue;
                }
                let (cols, vals) = other.row_entries(k);
                for (&j, b) in cols.iter().zip(vals) {
                    out_row[j] = out_row[j].add(&a.mul(b));
                }
            }
        }
        Matrix::from_vec(n, m, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Boolean, MinPlus, Nat, Real};

    fn dense(rows: &[&[f64]]) -> Matrix<Real> {
        Matrix::from_f64_rows(rows).unwrap()
    }

    #[test]
    fn mixed_products_agree_with_dense_kernel() {
        let a = dense(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]]);
        let b = dense(&[&[0.0, 1.0], &[2.0, 0.0], &[0.0, 5.0]]);
        let expected = a.matmul(&b).unwrap();
        let sa = SparseMatrix::from_dense(&a);
        let sb = SparseMatrix::from_dense(&b);
        assert_eq!(sa.matmul_dense(&b).unwrap(), expected);
        assert_eq!(a.matmul_sparse(&sb).unwrap(), expected);
    }

    #[test]
    fn mixed_products_check_inner_dimensions() {
        let a = dense(&[&[1.0, 2.0]]);
        let sa = SparseMatrix::from_dense(&a);
        assert!(matches!(
            sa.matmul_dense(&a),
            Err(MatrixError::InnerDimensionMismatch { .. })
        ));
        assert!(matches!(
            a.matmul_sparse(&sa),
            Err(MatrixError::InnerDimensionMismatch { .. })
        ));
    }

    #[test]
    fn mixed_products_are_semiring_generic() {
        // Boolean reachability step and a tropical shortest-path relaxation:
        // the kernels must be exact for non-numeric zeros (false, +∞).
        let adj: Matrix<Boolean> = Matrix::from_rows(vec![
            vec![Boolean(false), Boolean(true)],
            vec![Boolean(true), Boolean(false)],
        ])
        .unwrap();
        let s = SparseMatrix::from_dense(&adj);
        assert_eq!(s.matmul_dense(&adj).unwrap(), adj.matmul(&adj).unwrap());

        let w: Matrix<MinPlus> = Matrix::from_rows(vec![
            vec![MinPlus(0.0), MinPlus(2.0)],
            vec![MinPlus(f64::INFINITY), MinPlus(0.0)],
        ])
        .unwrap();
        let sw = SparseMatrix::from_dense(&w);
        assert_eq!(w.matmul_sparse(&sw).unwrap(), w.matmul(&w).unwrap());

        let c: Matrix<Nat> =
            Matrix::from_rows(vec![vec![Nat(1), Nat(0)], vec![Nat(3), Nat(2)]]).unwrap();
        let sc = SparseMatrix::from_dense(&c);
        assert_eq!(sc.matmul_dense(&c).unwrap(), c.matmul(&c).unwrap());
    }

    #[test]
    fn mixed_products_handle_degenerate_shapes() {
        let a: Matrix<Real> = Matrix::zeros(2, 3);
        let b: Matrix<Real> = Matrix::zeros(3, 0);
        let sa = SparseMatrix::from_dense(&a);
        let sb = SparseMatrix::from_dense(&b);
        assert_eq!(sa.matmul_dense(&b).unwrap().shape(), (2, 0));
        assert_eq!(a.matmul_sparse(&sb).unwrap().shape(), (2, 0));
    }
}
