//! Random matrix generation for workloads, tests and benchmarks.
//!
//! The paper's experiments (re-created in EXPERIMENTS.md) run over random
//! graphs, random LU-factorizable matrices and random invertible matrices;
//! these generators produce them deterministically from a seed so that every
//! benchmark run is reproducible.

use crate::Matrix;
use matlang_semiring::Semiring;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random matrix generation.
#[derive(Debug, Clone)]
pub struct RandomMatrixConfig {
    /// RNG seed; the same seed always produces the same matrix.
    pub seed: u64,
    /// Inclusive lower bound of generated entries (before semiring injection).
    pub min_value: f64,
    /// Inclusive upper bound of generated entries.
    pub max_value: f64,
    /// Probability that an entry is zero (sparsity knob; 0.0 means dense).
    pub zero_probability: f64,
    /// Round generated values to integers (useful for exact semirings).
    pub integer_entries: bool,
}

impl Default for RandomMatrixConfig {
    fn default() -> Self {
        RandomMatrixConfig {
            seed: 0xC0FFEE,
            min_value: -1.0,
            max_value: 1.0,
            zero_probability: 0.0,
            integer_entries: false,
        }
    }
}

impl RandomMatrixConfig {
    /// A config with the given seed and defaults elsewhere.
    pub fn seeded(seed: u64) -> Self {
        RandomMatrixConfig {
            seed,
            ..Default::default()
        }
    }

    fn sample<K: Semiring, R: Rng>(&self, rng: &mut R) -> K {
        if self.zero_probability > 0.0 && rng.gen_bool(self.zero_probability.clamp(0.0, 1.0)) {
            return K::zero();
        }
        let mut v = rng.gen_range(self.min_value..=self.max_value);
        if self.integer_entries {
            v = v.round();
        }
        K::from_f64(v)
    }
}

/// A dense random `rows × cols` matrix.
pub fn random_matrix<K: Semiring>(
    rows: usize,
    cols: usize,
    config: &RandomMatrixConfig,
) -> Matrix<K> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let data = (0..rows * cols).map(|_| config.sample(&mut rng)).collect();
    Matrix::from_vec(rows, cols, data).expect("generated data has the right length")
}

/// A random `n × 1` column vector.
pub fn random_vector<K: Semiring>(n: usize, config: &RandomMatrixConfig) -> Matrix<K> {
    random_matrix(n, 1, config)
}

/// A random 0/1 adjacency matrix of a directed graph on `n` vertices with the
/// given edge probability (no self loops).
pub fn random_adjacency<K: Semiring>(n: usize, edge_probability: f64, seed: u64) -> Matrix<K> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(edge_probability.clamp(0.0, 1.0)) {
                m.set(i, j, K::one()).expect("in bounds");
            }
        }
    }
    m
}

/// A random diagonally dominant (hence invertible and LU-factorizable without
/// pivoting) `n × n` matrix.  Diagonal dominance guarantees every leading
/// principal minor is non-zero, which is exactly the paper's
/// "LU-factorizable" precondition of Proposition 4.1.
pub fn random_invertible<K: Semiring>(n: usize, seed: u64) -> Matrix<K> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        let mut off_diag_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v: f64 = rng.gen_range(-1.0..=1.0);
                off_diag_sum += v.abs();
                m.set(i, j, K::from_f64(v)).expect("in bounds");
            }
        }
        // Strictly dominant diagonal entry with a random sign-free offset.
        let diag = off_diag_sum + rng.gen_range(1.0..=2.0);
        m.set(i, i, K::from_f64(diag)).expect("in bounds");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Boolean, Real};

    #[test]
    fn random_matrix_is_deterministic_per_seed() {
        let cfg = RandomMatrixConfig::seeded(7);
        let a: Matrix<Real> = random_matrix(4, 4, &cfg);
        let b: Matrix<Real> = random_matrix(4, 4, &cfg);
        assert_eq!(a, b);
        let other: Matrix<Real> = random_matrix(4, 4, &RandomMatrixConfig::seeded(8));
        assert_ne!(a, other);
    }

    #[test]
    fn random_vector_has_vector_shape() {
        let v: Matrix<Real> = random_vector(5, &RandomMatrixConfig::default());
        assert_eq!(v.shape(), (5, 1));
    }

    #[test]
    fn zero_probability_one_gives_zero_matrix() {
        let cfg = RandomMatrixConfig {
            zero_probability: 1.0,
            ..Default::default()
        };
        let m: Matrix<Real> = random_matrix(3, 3, &cfg);
        assert!(m.is_zero());
    }

    #[test]
    fn integer_entries_are_integers() {
        let cfg = RandomMatrixConfig {
            integer_entries: true,
            min_value: -5.0,
            max_value: 5.0,
            ..Default::default()
        };
        let m: Matrix<Real> = random_matrix(4, 4, &cfg);
        assert!(m.entries().iter().all(|v| v.0.fract() == 0.0));
    }

    #[test]
    fn random_adjacency_has_no_self_loops_and_is_boolean() {
        let adj: Matrix<Boolean> = random_adjacency(6, 0.5, 42);
        for i in 0..6 {
            assert_eq!(adj.get(i, i).unwrap(), &Boolean(false));
        }
        let dense: Matrix<Boolean> = random_adjacency(6, 1.0, 42);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(dense.get(i, j).unwrap(), &Boolean(i != j));
            }
        }
    }

    #[test]
    fn random_invertible_is_actually_invertible() {
        for seed in 0..5 {
            let m: Matrix<Real> = random_invertible(6, seed);
            let det = m.determinant().unwrap();
            assert!(det.0.abs() > 1e-9, "determinant too small for seed {seed}");
        }
    }
}
