//! Random matrix generation for workloads, tests and benchmarks.
//!
//! The paper's experiments (re-created in EXPERIMENTS.md) run over random
//! graphs, random LU-factorizable matrices and random invertible matrices;
//! these generators produce them deterministically from a seed so that every
//! benchmark run is reproducible.

use crate::{Matrix, SparseMatrix};
use matlang_semiring::Semiring;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random matrix generation.
#[derive(Debug, Clone)]
pub struct RandomMatrixConfig {
    /// RNG seed; the same seed always produces the same matrix.
    pub seed: u64,
    /// Inclusive lower bound of generated entries (before semiring injection).
    pub min_value: f64,
    /// Inclusive upper bound of generated entries.
    pub max_value: f64,
    /// Probability that an entry is zero (sparsity knob; 0.0 means dense).
    pub zero_probability: f64,
    /// Round generated values to integers (useful for exact semirings).
    pub integer_entries: bool,
}

impl Default for RandomMatrixConfig {
    fn default() -> Self {
        RandomMatrixConfig {
            seed: 0xC0FFEE,
            min_value: -1.0,
            max_value: 1.0,
            zero_probability: 0.0,
            integer_entries: false,
        }
    }
}

impl RandomMatrixConfig {
    /// A config with the given seed and defaults elsewhere.
    pub fn seeded(seed: u64) -> Self {
        RandomMatrixConfig {
            seed,
            ..Default::default()
        }
    }

    fn sample<K: Semiring, R: Rng>(&self, rng: &mut R) -> K {
        if self.zero_probability > 0.0 && rng.gen_bool(self.zero_probability.clamp(0.0, 1.0)) {
            return K::zero();
        }
        let mut v = rng.gen_range(self.min_value..=self.max_value);
        if self.integer_entries {
            v = v.round();
        }
        K::from_f64(v)
    }
}

/// A dense random `rows × cols` matrix.
pub fn random_matrix<K: Semiring>(
    rows: usize,
    cols: usize,
    config: &RandomMatrixConfig,
) -> Matrix<K> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let data = (0..rows * cols).map(|_| config.sample(&mut rng)).collect();
    Matrix::from_vec(rows, cols, data).expect("generated data has the right length")
}

/// A random `n × 1` column vector.
pub fn random_vector<K: Semiring>(n: usize, config: &RandomMatrixConfig) -> Matrix<K> {
    random_matrix(n, 1, config)
}

/// A random 0/1 adjacency matrix of a directed graph on `n` vertices with the
/// given edge probability (no self loops).
pub fn random_adjacency<K: Semiring>(n: usize, edge_probability: f64, seed: u64) -> Matrix<K> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(edge_probability.clamp(0.0, 1.0)) {
                m.set(i, j, K::one()).expect("in bounds");
            }
        }
    }
    m
}

/// A sparse Erdős–Rényi-style random adjacency matrix built directly in CSR
/// form: a directed graph on `n` vertices where every vertex has out-degree
/// drawn around `avg_degree` (no self loops, no duplicate edges).
///
/// Unlike [`random_adjacency`] this never materialises the `n × n` entry
/// grid — generation is `O(n · avg_degree)` — so it scales to graphs whose
/// dense form would not fit in memory.  Edge weights are `K::one()`.
pub fn sparse_erdos_renyi<K: Semiring>(n: usize, avg_degree: f64, seed: u64) -> SparseMatrix<K> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_degree = n.saturating_sub(1);
    let mut taken = vec![false; n];
    let mut triplets = Vec::with_capacity((n as f64 * avg_degree) as usize);
    for i in 0..n {
        let degree = sample_degree(&mut rng, avg_degree, max_degree);
        push_out_edges(&mut rng, &mut triplets, &mut taken, i, n, degree);
    }
    SparseMatrix::from_triplets(n, n, triplets).expect("generated edges in bounds")
}

/// A sparse random adjacency matrix with a power-law out-degree profile:
/// vertex `i` has expected out-degree `∝ (i + 1)^{-alpha}`, scaled so the
/// overall average out-degree is `avg_degree`.  Models the heavy-tailed
/// degree distributions of real-world graphs; `alpha` around `1.0`–`2.5`
/// is typical.  Generation is `O(n · avg_degree)`; edge weights are
/// `K::one()`.
pub fn sparse_power_law<K: Semiring>(
    n: usize,
    avg_degree: f64,
    alpha: f64,
    seed: u64,
) -> SparseMatrix<K> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weight_sum: f64 = (1..=n).map(|i| (i as f64).powf(-alpha)).sum();
    let scale = if weight_sum > 0.0 {
        avg_degree * n as f64 / weight_sum
    } else {
        0.0
    };
    let max_degree = n.saturating_sub(1);
    let mut taken = vec![false; n];
    let mut triplets = Vec::with_capacity((n as f64 * avg_degree) as usize);
    for i in 0..n {
        let expected = scale * ((i + 1) as f64).powf(-alpha);
        let degree = sample_degree(&mut rng, expected, max_degree);
        push_out_edges(&mut rng, &mut triplets, &mut taken, i, n, degree);
    }
    SparseMatrix::from_triplets(n, n, triplets).expect("generated edges in bounds")
}

/// Draws an integer degree whose expectation is `expected` (floor plus a
/// Bernoulli trial on the fractional part), clamped to `[0, max_degree]`.
fn sample_degree(rng: &mut StdRng, expected: f64, max_degree: usize) -> usize {
    let expected = expected.max(0.0);
    let base = expected.floor();
    let degree = base as usize + usize::from(rng.gen_bool(expected - base));
    degree.min(max_degree)
}

/// Samples `degree` distinct out-neighbours of vertex `i` (excluding `i`
/// itself) by rejection against the reusable `taken` bitmap, and appends the
/// edges as weight-one triplets.  Duplicate detection is O(1) per draw, so
/// expected cost is `O(degree)` for `degree ≪ n` and `O(n log n)` even in
/// the fully-clamped `degree = n − 1` case (power-law head vertices).
fn push_out_edges<K: Semiring>(
    rng: &mut StdRng,
    triplets: &mut Vec<(usize, usize, K)>,
    taken: &mut [bool],
    i: usize,
    n: usize,
    degree: usize,
) {
    let first = triplets.len();
    while triplets.len() - first < degree {
        let j = rng.gen_range(0..n);
        if j != i && !taken[j] {
            taken[j] = true;
            triplets.push((i, j, K::one()));
        }
    }
    for (_, j, _) in &triplets[first..] {
        taken[*j] = false;
    }
}

/// A random diagonally dominant (hence invertible and LU-factorizable without
/// pivoting) `n × n` matrix.  Diagonal dominance guarantees every leading
/// principal minor is non-zero, which is exactly the paper's
/// "LU-factorizable" precondition of Proposition 4.1.
pub fn random_invertible<K: Semiring>(n: usize, seed: u64) -> Matrix<K> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        let mut off_diag_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v: f64 = rng.gen_range(-1.0..=1.0);
                off_diag_sum += v.abs();
                m.set(i, j, K::from_f64(v)).expect("in bounds");
            }
        }
        // Strictly dominant diagonal entry with a random sign-free offset.
        let diag = off_diag_sum + rng.gen_range(1.0..=2.0);
        m.set(i, i, K::from_f64(diag)).expect("in bounds");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Boolean, Real};

    #[test]
    fn random_matrix_is_deterministic_per_seed() {
        let cfg = RandomMatrixConfig::seeded(7);
        let a: Matrix<Real> = random_matrix(4, 4, &cfg);
        let b: Matrix<Real> = random_matrix(4, 4, &cfg);
        assert_eq!(a, b);
        let other: Matrix<Real> = random_matrix(4, 4, &RandomMatrixConfig::seeded(8));
        assert_ne!(a, other);
    }

    #[test]
    fn random_vector_has_vector_shape() {
        let v: Matrix<Real> = random_vector(5, &RandomMatrixConfig::default());
        assert_eq!(v.shape(), (5, 1));
    }

    #[test]
    fn zero_probability_one_gives_zero_matrix() {
        let cfg = RandomMatrixConfig {
            zero_probability: 1.0,
            ..Default::default()
        };
        let m: Matrix<Real> = random_matrix(3, 3, &cfg);
        assert!(m.is_zero());
    }

    #[test]
    fn integer_entries_are_integers() {
        let cfg = RandomMatrixConfig {
            integer_entries: true,
            min_value: -5.0,
            max_value: 5.0,
            ..Default::default()
        };
        let m: Matrix<Real> = random_matrix(4, 4, &cfg);
        assert!(m.entries().iter().all(|v| v.0.fract() == 0.0));
    }

    #[test]
    fn random_adjacency_has_no_self_loops_and_is_boolean() {
        let adj: Matrix<Boolean> = random_adjacency(6, 0.5, 42);
        for i in 0..6 {
            assert_eq!(adj.get(i, i).unwrap(), &Boolean(false));
        }
        let dense: Matrix<Boolean> = random_adjacency(6, 1.0, 42);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(dense.get(i, j).unwrap(), &Boolean(i != j));
            }
        }
    }

    #[test]
    fn sparse_erdos_renyi_has_expected_shape_and_degree() {
        let n = 200;
        let adj: crate::SparseMatrix<Boolean> = sparse_erdos_renyi(n, 8.0, 11);
        assert_eq!(adj.shape(), (n, n));
        // No self loops.
        for i in 0..n {
            assert!(adj.get(i, i).unwrap().is_zero());
        }
        // Average degree within a generous tolerance of the target.
        let avg = adj.nnz() as f64 / n as f64;
        assert!((6.0..10.0).contains(&avg), "avg degree {avg}");
        // Deterministic per seed.
        let again: crate::SparseMatrix<Boolean> = sparse_erdos_renyi(n, 8.0, 11);
        assert_eq!(adj, again);
        let other: crate::SparseMatrix<Boolean> = sparse_erdos_renyi(n, 8.0, 12);
        assert_ne!(adj, other);
    }

    #[test]
    fn sparse_power_law_is_heavy_headed() {
        let n = 300;
        let adj: crate::SparseMatrix<Boolean> = sparse_power_law(n, 4.0, 1.5, 3);
        assert_eq!(adj.shape(), (n, n));
        for i in 0..n {
            assert!(adj.get(i, i).unwrap().is_zero());
        }
        // Early vertices must carry far more out-edges than late ones.
        let head: usize = (0..10)
            .map(|i| {
                (0..n)
                    .filter(|&j| !adj.get(i, j).unwrap().is_zero())
                    .count()
            })
            .sum();
        let tail: usize = (n - 10..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| !adj.get(i, j).unwrap().is_zero())
                    .count()
            })
            .sum();
        assert!(head > 5 * tail.max(1), "head {head}, tail {tail}");
    }

    #[test]
    fn sparse_generators_handle_degenerate_sizes() {
        let empty: crate::SparseMatrix<Real> = sparse_erdos_renyi(0, 8.0, 1);
        assert_eq!(empty.shape(), (0, 0));
        let single: crate::SparseMatrix<Real> = sparse_power_law(1, 8.0, 2.0, 1);
        assert_eq!(single.nnz(), 0);
    }

    #[test]
    fn random_invertible_is_actually_invertible() {
        for seed in 0..5 {
            let m: Matrix<Real> = random_invertible(6, seed);
            let det = m.determinant().unwrap();
            assert!(det.0.abs() > 1e-9, "determinant too small for seed {seed}");
        }
    }
}
