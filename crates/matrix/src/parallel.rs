//! Hand-rolled row-partitioned parallel kernels on a reusable worker pool.
//!
//! The build environment is offline (no rayon), so parallelism is plain
//! threads: the output rows are split into one contiguous chunk per worker,
//! each worker runs the *identical* serial per-row kernel over its chunk,
//! and the chunks are reassembled in row order.  Because every output row is
//! produced by the same code in the same semiring-operation order as the
//! serial kernel, threaded operations are **bit-identical** to their serial
//! counterparts — parallelism never perturbs results, not even over
//! floating-point semirings.
//!
//! Chunks execute on the process-wide [`crate::pool::WorkerPool`] rather
//! than freshly spawned `std::thread::scope` threads: the workers are
//! created once and parked between calls, so a server executing thousands
//! of small products per second does not pay thread spawn/teardown per
//! product.  The pool only changes *where* a chunk runs — chunking itself
//! is still a pure function of `(rows, threads)`, so results are
//! unaffected.
//!
//! The worker count is a caller decision; [`configured_threads`] provides
//! the process-wide default, reading the **`MATLANG_THREADS`** environment
//! variable and falling back to [`std::thread::available_parallelism`].
//! Passing `threads ≤ 1` (or a matrix too small to split) short-circuits to
//! the serial kernel, so the threaded entry points are always safe to call.
//!
//! Threaded kernels: dense matrix product, Gustavson SpMM, and the dense
//! elementwise `add` / `hadamard` (row-partitioned exactly like the
//! products; elementwise kernels are memory-bound, so the win appears later
//! than for products, but large Σ-loop bodies benefit).

use crate::pool::WorkerPool;
use crate::{Matrix, MatrixError, Result, SparseMatrix};
use matlang_semiring::Semiring;

/// Environment variable overriding the default worker count.
pub const MATLANG_THREADS_ENV: &str = "MATLANG_THREADS";

/// The process-default worker count for the threaded kernels: the value of
/// the `MATLANG_THREADS` environment variable when it parses to an integer
/// `≥ 1`, otherwise [`std::thread::available_parallelism`] (1 when even
/// that is unavailable).
pub fn configured_threads() -> usize {
    std::env::var(MATLANG_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Splits `rows` into at most `threads` contiguous, non-empty, near-equal
/// ranges covering `0..rows`.
fn row_ranges(rows: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let workers = threads.min(rows).max(1);
    let chunk = rows.div_ceil(workers);
    (0..rows)
        .step_by(chunk.max(1))
        .map(|start| start..(start + chunk).min(rows))
        .collect()
}

impl<K: Semiring> Matrix<K> {
    /// Matrix product `self · other` computed by up to `threads` pooled
    /// workers, each running the serial i-k-j kernel over a contiguous
    /// chunk of output rows.  Bit-identical to [`Matrix::matmul`].
    pub fn matmul_threaded(&self, other: &Matrix<K>, threads: usize) -> Result<Matrix<K>> {
        if self.cols() != other.rows() {
            return Err(MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let (n, m) = (self.rows(), other.cols());
        if threads <= 1 || n <= 1 || m == 0 {
            return self.matmul(other);
        }
        let mut out = vec![K::zero(); n * m];
        let ranges = row_ranges(n, threads);
        // Every range has the same length except possibly the last, so the
        // chunks line up with the ranges one-to-one.
        let chunk_rows = ranges[0].len();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .into_iter()
            .zip(out.chunks_mut(chunk_rows * m))
            .map(|(range, out_chunk)| {
                Box::new(move || self.matmul_into_rows(other, range, out_chunk))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        WorkerPool::global().scoped(tasks);
        Matrix::from_vec(n, m, out)
    }

    /// Row-partitioned dense elementwise kernel shared by
    /// [`Matrix::add_threaded`] and [`Matrix::hadamard_threaded`]: each
    /// pooled worker applies `combine` entrywise over a contiguous chunk of
    /// rows.  Per-entry order and arithmetic are identical to the serial
    /// kernels, so results are bit-identical.
    fn zip_threaded<F>(
        &self,
        other: &Matrix<K>,
        threads: usize,
        op: &'static str,
        combine: F,
    ) -> Result<Matrix<K>>
    where
        F: Fn(&K, &K) -> K + Send + Sync + Copy,
    {
        if self.shape() != other.shape() {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op,
            });
        }
        let (n, m) = self.shape();
        let mut out = vec![K::zero(); n * m];
        let ranges = row_ranges(n, threads);
        let chunk_rows = ranges[0].len();
        let lhs = self.entries();
        let rhs = other.entries();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .into_iter()
            .zip(out.chunks_mut(chunk_rows * m))
            .map(|(range, out_chunk)| {
                let span = range.start * m..range.start * m + out_chunk.len();
                let (lhs, rhs) = (&lhs[span.clone()], &rhs[span]);
                Box::new(move || {
                    for ((slot, a), b) in out_chunk.iter_mut().zip(lhs).zip(rhs) {
                        *slot = combine(a, b);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        WorkerPool::global().scoped(tasks);
        Matrix::from_vec(n, m, out)
    }

    /// Matrix addition `self + other` computed by up to `threads` pooled
    /// workers over contiguous row chunks.  Bit-identical to
    /// [`Matrix::add`].
    pub fn add_threaded(&self, other: &Matrix<K>, threads: usize) -> Result<Matrix<K>> {
        if threads <= 1 || self.rows() <= 1 || self.cols() == 0 || self.shape() != other.shape() {
            return self.add(other);
        }
        self.zip_threaded(other, threads, "add", |a, b| a.add(b))
    }

    /// Hadamard product `self ∘ other` computed by up to `threads` pooled
    /// workers over contiguous row chunks.  Bit-identical to
    /// [`Matrix::hadamard`].
    pub fn hadamard_threaded(&self, other: &Matrix<K>, threads: usize) -> Result<Matrix<K>> {
        if threads <= 1 || self.rows() <= 1 || self.cols() == 0 || self.shape() != other.shape() {
            return self.hadamard(other);
        }
        self.zip_threaded(other, threads, "hadamard", |a, b| a.mul(b))
    }
}

impl<K: Semiring> SparseMatrix<K> {
    /// Sparse product `self · other` (SpMM) computed by up to `threads`
    /// pooled workers.  Gustavson's algorithm is embarrassingly parallel
    /// over output rows: each worker runs the serial row kernel over a
    /// contiguous row range and the CSR blocks are concatenated with
    /// [`SparseMatrix::vstack`].  Bit-identical to [`SparseMatrix::matmul`].
    pub fn matmul_threaded(
        &self,
        other: &SparseMatrix<K>,
        threads: usize,
    ) -> Result<SparseMatrix<K>> {
        if self.cols() != other.rows() {
            return Err(MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        if threads <= 1 || self.rows() <= 1 {
            return Ok(self.matmul_rows(other, 0..self.rows()));
        }
        let ranges = row_ranges(self.rows(), threads);
        let mut blocks: Vec<Option<SparseMatrix<K>>> = vec![None; ranges.len()];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .into_iter()
            .zip(blocks.iter_mut())
            .map(|(range, slot)| {
                Box::new(move || {
                    *slot = Some(self.matmul_rows(other, range));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        WorkerPool::global().scoped(tasks);
        let blocks: Vec<SparseMatrix<K>> = blocks
            .into_iter()
            .map(|b| b.expect("SpMM worker completed"))
            .collect();
        SparseMatrix::vstack(&blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_matrix, sparse_erdos_renyi, RandomMatrixConfig};
    use matlang_semiring::{Boolean, Real};

    #[test]
    fn configured_threads_is_at_least_one() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn row_ranges_cover_without_overlap() {
        for (rows, threads) in [(1, 4), (7, 2), (8, 3), (100, 16), (5, 1), (3, 8)] {
            let ranges = row_ranges(rows, threads);
            assert!(ranges.len() <= threads.max(1));
            assert!(ranges.iter().all(|r| !r.is_empty()));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, rows);
        }
    }

    #[test]
    fn threaded_dense_matmul_is_bit_identical() {
        let cfg = RandomMatrixConfig {
            seed: 3,
            min_value: -2.0,
            max_value: 2.0,
            zero_probability: 0.3,
            integer_entries: false,
        };
        let a: Matrix<Real> = random_matrix(33, 17, &cfg);
        let b: Matrix<Real> = random_matrix(17, 29, &RandomMatrixConfig { seed: 4, ..cfg });
        let serial = a.matmul(&b).unwrap();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(a.matmul_threaded(&b, threads).unwrap(), serial);
        }
    }

    #[test]
    fn threaded_spmm_is_bit_identical() {
        let a: SparseMatrix<Boolean> = sparse_erdos_renyi(120, 5.0, 9);
        let b: SparseMatrix<Boolean> = sparse_erdos_renyi(120, 3.0, 10);
        let serial = a.matmul(&b).unwrap();
        for threads in [1, 2, 3, 7, 200] {
            assert_eq!(a.matmul_threaded(&b, threads).unwrap(), serial);
        }
    }

    #[test]
    fn threaded_elementwise_is_bit_identical() {
        let cfg = RandomMatrixConfig {
            seed: 11,
            min_value: -3.0,
            max_value: 3.0,
            zero_probability: 0.4,
            integer_entries: false,
        };
        let a: Matrix<Real> = random_matrix(37, 19, &cfg);
        let b: Matrix<Real> = random_matrix(37, 19, &RandomMatrixConfig { seed: 12, ..cfg });
        let sum = a.add(&b).unwrap();
        let had = a.hadamard(&b).unwrap();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(a.add_threaded(&b, threads).unwrap(), sum);
            assert_eq!(a.hadamard_threaded(&b, threads).unwrap(), had);
        }
    }

    #[test]
    fn threaded_kernels_check_shapes() {
        let a: Matrix<Real> = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul_threaded(&a, 2),
            Err(MatrixError::InnerDimensionMismatch { .. })
        ));
        let s: SparseMatrix<Real> = SparseMatrix::zeros(2, 3);
        assert!(matches!(
            s.matmul_threaded(&s, 2),
            Err(MatrixError::InnerDimensionMismatch { .. })
        ));
        let b: Matrix<Real> = Matrix::zeros(3, 2);
        assert!(matches!(
            a.add_threaded(&b, 2),
            Err(MatrixError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            a.hadamard_threaded(&b, 2),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn vstack_reassembles_row_blocks() {
        let m: SparseMatrix<Real> = sparse_erdos_renyi(10, 2.0, 5);
        let top = m.matmul_rows(&m, 0..4);
        let bottom = m.matmul_rows(&m, 4..10);
        let stacked = SparseMatrix::vstack(&[top, bottom]).unwrap();
        assert_eq!(stacked, m.matmul(&m).unwrap());
        let empty: Vec<SparseMatrix<Real>> = Vec::new();
        assert_eq!(SparseMatrix::vstack(&empty).unwrap().shape(), (0, 0));
        let mismatched = [SparseMatrix::<Real>::zeros(1, 2), SparseMatrix::zeros(1, 3)];
        assert!(SparseMatrix::vstack(&mismatched).is_err());
    }
}
