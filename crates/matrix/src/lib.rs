//! Dense and sparse matrices over arbitrary commutative semirings.
//!
//! MATLANG instances assign concrete matrices to matrix variables
//! (`mat : M ↦ Mat[K]`, Section 2 and Section 6.1 of the paper).  This crate
//! provides that `Mat[K]` in three interchangeable representations:
//!
//! * [`Matrix`] — dense, row-major storage with every operation the MATLANG
//!   evaluator and the paper's algorithms need (transpose, matrix product,
//!   addition, Hadamard product, scalar multiplication, canonical vectors,
//!   ones vectors, diagonalization, trace, permutation matrices, and the
//!   order matrices `S≤`/`S<` of Section 3.2);
//! * [`SparseMatrix`] — compressed sparse row (CSR) storage whose kernels
//!   cost `O(nnz)` instead of `O(rows × cols)`, the natural fit for graph
//!   adjacency matrices;
//! * [`MatrixRepr`] — the adaptive representation that picks dense or CSR
//!   per result via a density threshold, used by the backend-aware
//!   evaluator in `matlang_core`; its matrix product dispatches mixed
//!   sparse·dense / dense·sparse operand pairs to the `O(nnz)`-aware
//!   kernels in [`mixed`] instead of promoting the sparse side.
//!
//! The heavy kernels also come in row-partitioned parallel variants
//! ([`parallel`]): workers of the reusable process-wide [`pool::WorkerPool`]
//! each run the serial per-row kernel over a chunk of output rows, so
//! threaded operations (both matmuls plus dense elementwise add/Hadamard)
//! are bit-identical to serial ones while paying no per-operation thread
//! spawn.  [`configured_threads`] reads the `MATLANG_THREADS` environment
//! variable (default: `available_parallelism`).
//!
//! The [`MatrixStorage`] trait is the common interface: anything generic
//! over it (the evaluator, the graph algorithms, the RA⁺_K and WL
//! translations) runs on any of the three backends unchanged.

pub mod error;
pub mod matrix;
pub mod mixed;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod random;
pub mod repr;
pub mod snapshot;
pub mod sparse;
pub mod special;
pub mod storage;

pub use error::MatrixError;
pub use matrix::Matrix;
pub use parallel::{configured_threads, MATLANG_THREADS_ENV};
pub use pool::WorkerPool;
pub use random::{
    random_adjacency, random_invertible, random_matrix, random_vector, sparse_erdos_renyi,
    sparse_power_law, RandomMatrixConfig,
};
pub use repr::MatrixRepr;
pub use snapshot::{CodecError, MatrixCodec};
pub use sparse::{CsrBuilder, SparseMatrix};
pub use storage::MatrixStorage;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, MatrixError>;
