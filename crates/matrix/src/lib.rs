//! Dense matrices over arbitrary commutative semirings.
//!
//! MATLANG instances assign concrete matrices to matrix variables
//! (`mat : M ↦ Mat[K]`, Section 2 and Section 6.1 of the paper).  This crate
//! provides that `Mat[K]`: a dense, row-major matrix generic over the
//! [`Semiring`](matlang_semiring::Semiring) trait, together with every operation the MATLANG evaluator
//! and the paper's algorithms need — transpose, matrix product, addition,
//! Hadamard (pointwise) product, scalar multiplication, canonical vectors,
//! ones vectors, diagonalization, trace, permutation matrices, and the order
//! matrices `S≤`/`S<` used in Section 3.2.

pub mod error;
pub mod matrix;
pub mod ops;
pub mod random;
pub mod special;

pub use error::MatrixError;
pub use matrix::Matrix;
pub use random::{
    random_adjacency, random_invertible, random_matrix, random_vector, RandomMatrixConfig,
};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, MatrixError>;
