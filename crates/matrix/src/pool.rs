//! A small reusable scoped worker pool for the row-partitioned kernels.
//!
//! The first generation of the parallel kernels spawned fresh OS threads
//! through `std::thread::scope` on **every** product.  That is correct but
//! pays thread creation and teardown (~tens of microseconds each) per
//! operation — measurable once a query server executes thousands of
//! prepared products per second.  [`WorkerPool`] keeps a fixed set of
//! process-lifetime worker threads parked on a condition variable and feeds
//! them borrowed closures per call:
//!
//! * [`WorkerPool::scoped`] submits a batch of tasks and **blocks until
//!   every task has finished** before returning, which is what makes it
//!   sound to run closures borrowing local data (`&Matrix`, `&mut [K]`
//!   output chunks) on threads that outlive the call.  The lifetime is
//!   erased at the submission boundary and re-established by the
//!   completion latch — exactly the contract `std::thread::scope` provides,
//!   minus the per-call spawn.
//! * The last task of a batch runs inline on the submitting thread, so a
//!   caller is never parked idle while work it could do sits in the queue,
//!   and a `threads = 1` request never touches the pool at all.
//! * Worker panics are caught, the latch still opens, and the panic is
//!   re-raised on the submitting thread — matching `std::thread::scope`'s
//!   propagation behaviour instead of deadlocking the pool.
//!
//! Determinism is untouched: the pool only changes *where* a row chunk is
//! computed, never how chunks are formed or combined, so threaded kernels
//! remain bit-identical to their serial counterparts.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A task with its borrows erased to `'static`; only ever constructed in
/// [`WorkerPool::scoped`], which waits for completion before the real
/// lifetime ends.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// Opens once every task of a batch has run (or panicked).
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Arc<Latch> {
        Arc::new(Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        })
    }

    fn arrive(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch poisoned");
        }
    }
}

/// A fixed-size pool of parked worker threads executing borrowed task
/// batches; see the module docs.  Use [`WorkerPool::global`] — one pool per
/// process is the point.
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: usize,
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// The process-wide pool, created on first use with one worker per unit
    /// of [`std::thread::available_parallelism`].  The pool size bounds how
    /// many tasks run *simultaneously*, not how many a batch may contain —
    /// excess tasks queue and are drained by the same workers.
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::with_workers(workers)
        })
    }

    fn with_workers(workers: usize) -> WorkerPool {
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("matlang-pool".into())
                .spawn(move || loop {
                    let job = {
                        let mut jobs = queue.jobs.lock().expect("pool queue poisoned");
                        loop {
                            match jobs.pop_front() {
                                Some(job) => break job,
                                None => {
                                    jobs = queue.available.wait(jobs).expect("pool queue poisoned");
                                }
                            }
                        }
                    };
                    job();
                })
                .expect("failed to spawn pool worker");
        }
        WorkerPool { queue, workers }
    }

    /// Number of worker threads backing this pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task to completion before returning, using the pool's
    /// workers plus the calling thread (which executes the batch's last
    /// task inline).  Panics if any task panicked, after all tasks have
    /// settled — the same observable behaviour as `std::thread::scope`.
    pub fn scoped<'env>(&self, mut tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let Some(inline) = tasks.pop() else {
            return;
        };
        let latch = Latch::new(tasks.len());
        {
            let mut jobs = self.queue.jobs.lock().expect("pool queue poisoned");
            for task in tasks {
                // SAFETY: the job is only boxed-up borrow-erased data plus
                // code; `latch.wait()` below does not return until the job
                // has run (its latch guard arrives even on panic), so no
                // borrow in `task` is used past its real `'env` lifetime.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'env>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(task)
                };
                let latch = Arc::clone(&latch);
                jobs.push_back(Box::new(move || {
                    if catch_unwind(AssertUnwindSafe(job)).is_err() {
                        latch.panicked.store(true, Ordering::Release);
                    }
                    latch.arrive();
                }));
            }
            self.queue.available.notify_all();
        }
        let inline_result = catch_unwind(AssertUnwindSafe(inline));
        latch.wait();
        if latch.panicked.load(Ordering::Acquire) || inline_result.is_err() {
            panic!("worker-pool task panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn global_pool_has_workers_and_runs_borrowed_tasks() {
        let pool = WorkerPool::global();
        assert!(pool.workers() >= 1);
        let mut out = vec![0usize; 64];
        let counter = AtomicUsize::new(0);
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
                .chunks_mut(16)
                .enumerate()
                .map(|(chunk_index, chunk)| {
                    let counter = &counter;
                    Box::new(move || {
                        for (offset, slot) in chunk.iter_mut().enumerate() {
                            *slot = chunk_index * 16 + offset;
                        }
                        counter.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scoped(tasks);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        WorkerPool::global().scoped(Vec::new());
    }

    #[test]
    fn oversubscribed_batches_drain() {
        // Far more tasks than workers: everything still completes.
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..257)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        WorkerPool::global().scoped(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn panicking_task_propagates_without_deadlock() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    Box::new(move || {
                        if i == 1 {
                            panic!("boom");
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            WorkerPool::global().scoped(tasks);
        }));
        assert!(result.is_err());
        // The pool is still usable afterwards.
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        WorkerPool::global().scoped(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
