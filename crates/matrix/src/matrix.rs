//! The dense matrix type and its constructors/accessors.

use crate::{MatrixError, Result};
use matlang_semiring::{ApproxEq, Semiring};
use std::fmt;

/// A dense, row-major matrix over a commutative semiring `K`.
///
/// Shapes are `(rows, cols)`; vectors are `n × 1` matrices and scalars are
/// `1 × 1` matrices, exactly as in the paper's typing discipline.
#[derive(Clone, PartialEq)]
pub struct Matrix<K> {
    rows: usize,
    cols: usize,
    data: Vec<K>,
}

impl<K: Semiring> Matrix<K> {
    /// Creates a matrix from row-major data.  Fails if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<K>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::BadConstruction {
                message: format!(
                    "expected {} entries for a {}x{} matrix, got {}",
                    rows * cols,
                    rows,
                    cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested rows.  Fails on ragged input.
    pub fn from_rows(rows: Vec<Vec<K>>) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(MatrixError::BadConstruction {
                message: "ragged rows".to_string(),
            });
        }
        let data = rows.into_iter().flatten().collect();
        Matrix::from_vec(nrows, ncols, data)
    }

    /// Creates a matrix from float entries, injecting each via
    /// [`Semiring::from_f64`].  Convenient in tests and examples.
    pub fn from_f64_rows(rows: &[&[f64]]) -> Result<Self> {
        let converted = rows
            .iter()
            .map(|r| r.iter().map(|&v| K::from_f64(v)).collect())
            .collect();
        Matrix::from_rows(converted)
    }

    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![K::zero(); rows * cols],
        }
    }

    /// The `rows × cols` all-ones matrix (paper notation `1`, Section 6.2).
    pub fn all_ones(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![K::one(); rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, K::one()).expect("identity index in bounds");
        }
        m
    }

    /// The `n × 1` ones (column) vector — the paper's `1(e)` result.
    pub fn ones_vector(n: usize) -> Self {
        Matrix::all_ones(n, 1)
    }

    /// The `i`-th canonical (column) vector `bᵢⁿ` of dimension `n`
    /// (1-indexed in the paper, 0-indexed here: `canonical(n, 0) = b₁ⁿ`).
    pub fn canonical(n: usize, i: usize) -> Result<Self> {
        if i >= n {
            return Err(MatrixError::IndexOutOfBounds {
                row: i,
                col: 0,
                shape: (n, 1),
            });
        }
        let mut m = Matrix::zeros(n, 1);
        m.set(i, 0, K::one())?;
        Ok(m)
    }

    /// A `1 × 1` matrix holding a single value.
    pub fn scalar(value: K) -> Self {
        Matrix {
            rows: 1,
            cols: 1,
            data: vec![value],
        }
    }

    /// The shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether this is a column vector (`n × 1`).
    pub fn is_vector(&self) -> bool {
        self.cols == 1
    }

    /// Whether this is a `1 × 1` matrix.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Whether this matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> Result<&K> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                row,
                col,
                shape: self.shape(),
            });
        }
        Ok(&self.data[row * self.cols + col])
    }

    /// Set the entry at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: K) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                row,
                col,
                shape: self.shape(),
            });
        }
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    /// The value of a `1 × 1` matrix.
    pub fn as_scalar(&self) -> Result<K> {
        if !self.is_scalar() {
            return Err(MatrixError::NotAScalar {
                shape: self.shape(),
            });
        }
        Ok(self.data[0].clone())
    }

    /// Row-major access to the raw entries.
    pub fn entries(&self) -> &[K] {
        &self.data
    }

    /// Iterate over `(row, col, value)` triples in row-major order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, &K)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(idx, v)| (idx / cols, idx % cols, v))
    }

    /// Extract row `i` as a `1 × cols` matrix.
    pub fn row(&self, i: usize) -> Result<Matrix<K>> {
        if i >= self.rows {
            return Err(MatrixError::IndexOutOfBounds {
                row: i,
                col: 0,
                shape: self.shape(),
            });
        }
        let data = self.data[i * self.cols..(i + 1) * self.cols].to_vec();
        Matrix::from_vec(1, self.cols, data)
    }

    /// Extract column `j` as a `rows × 1` matrix.
    pub fn column(&self, j: usize) -> Result<Matrix<K>> {
        if j >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                row: 0,
                col: j,
                shape: self.shape(),
            });
        }
        let data = (0..self.rows)
            .map(|i| self.data[i * self.cols + j].clone())
            .collect();
        Matrix::from_vec(self.rows, 1, data)
    }

    /// Apply a function to every entry, producing a new matrix.
    pub fn map<F: Fn(&K) -> K>(&self, f: F) -> Matrix<K> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Pointwise combination of `k ≥ 1` same-shaped matrices via `f`, the
    /// semantics of MATLANG's `f(e₁, …, e_k)` operator.
    pub fn zip_with<F: Fn(&[K]) -> K>(matrices: &[&Matrix<K>], f: F) -> Result<Matrix<K>> {
        let first = matrices
            .first()
            .ok_or_else(|| MatrixError::BadConstruction {
                message: "pointwise application requires at least one argument".to_string(),
            })?;
        let shape = first.shape();
        for m in matrices {
            if m.shape() != shape {
                return Err(MatrixError::ShapeMismatch {
                    left: shape,
                    right: m.shape(),
                    op: "pointwise function application",
                });
            }
        }
        let mut data = Vec::with_capacity(shape.0 * shape.1);
        let mut args = Vec::with_capacity(matrices.len());
        for idx in 0..shape.0 * shape.1 {
            args.clear();
            args.extend(matrices.iter().map(|m| m.data[idx].clone()));
            data.push(f(&args));
        }
        Matrix::from_vec(shape.0, shape.1, data)
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|v| v.is_zero())
    }

    /// Number of non-zero entries (counted on demand; dense storage keeps
    /// zeros materialised).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| !v.is_zero()).count()
    }

    /// Fraction of entries that are non-zero (`nnz / (rows·cols)`; 0 for an
    /// empty shape).  Used by the adaptive representation heuristic in
    /// [`crate::MatrixRepr`].
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Heap bytes held by this matrix's row-major entry buffer:
    /// `rows · cols · size_of::<K>()`.  Deliberately counts live payload
    /// (not `Vec` capacity slack) so the figure is reproducible from the
    /// shape alone.  O(1) — reads lengths only.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<K>()
    }

    /// Approximate equality with tolerance `tol` on every entry.
    pub fn approx_eq(&self, other: &Matrix<K>, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(b, tol))
    }

    /// Convert every entry to `f64` (best effort), row-major.
    pub fn to_f64_rows(&self) -> Vec<Vec<f64>> {
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self.data[i * self.cols + j].to_f64())
                    .collect()
            })
            .collect()
    }
}

impl<K: Semiring> fmt::Debug for Matrix<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Matrix {}x{} (nnz={}, density={:.4}) [",
            self.rows,
            self.cols,
            self.nnz(),
            self.density()
        )?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self.data[i * self.cols + j])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl<K: Semiring> fmt::Display for Matrix<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>8.4}", self.data[i * self.cols + j].to_f64())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Boolean, Real};

    #[test]
    fn construction_and_accessors() {
        let m: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(0, 1).unwrap().0, 2.0);
        assert_eq!(m.get(1, 0).unwrap().0, 3.0);
        assert!(m.is_square());
        assert!(!m.is_vector());
        assert!(!m.is_scalar());
    }

    #[test]
    fn from_vec_checks_length() {
        let r: Result<Matrix<Real>> = Matrix::from_vec(2, 2, vec![Real(1.0); 3]);
        assert!(matches!(r, Err(MatrixError::BadConstruction { .. })));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r: Result<Matrix<Real>> =
            Matrix::from_rows(vec![vec![Real(1.0)], vec![Real(1.0), Real(2.0)]]);
        assert!(matches!(r, Err(MatrixError::BadConstruction { .. })));
    }

    #[test]
    fn canonical_vectors() {
        let b2: Matrix<Real> = Matrix::canonical(4, 1).unwrap();
        assert_eq!(b2.shape(), (4, 1));
        assert_eq!(b2.get(1, 0).unwrap().0, 1.0);
        assert_eq!(b2.get(0, 0).unwrap().0, 0.0);
        assert!(Matrix::<Real>::canonical(3, 3).is_err());
    }

    #[test]
    fn identity_and_ones() {
        let i: Matrix<Real> = Matrix::identity(3);
        assert_eq!(i.get(0, 0).unwrap().0, 1.0);
        assert_eq!(i.get(0, 1).unwrap().0, 0.0);
        let ones: Matrix<Real> = Matrix::ones_vector(3);
        assert_eq!(ones.shape(), (3, 1));
        assert!(ones.entries().iter().all(|v| v.0 == 1.0));
    }

    #[test]
    fn scalar_roundtrip() {
        let s: Matrix<Real> = Matrix::scalar(Real(42.0));
        assert!(s.is_scalar());
        assert_eq!(s.as_scalar().unwrap().0, 42.0);
        let m: Matrix<Real> = Matrix::zeros(2, 2);
        assert!(m.as_scalar().is_err());
    }

    #[test]
    fn row_and_column_extraction() {
        let m: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let r = m.row(1).unwrap();
        assert_eq!(r.shape(), (1, 2));
        assert_eq!(r.get(0, 0).unwrap().0, 3.0);
        let c = m.column(0).unwrap();
        assert_eq!(c.shape(), (2, 1));
        assert_eq!(c.get(1, 0).unwrap().0, 3.0);
        assert!(m.row(5).is_err());
        assert!(m.column(5).is_err());
    }

    #[test]
    fn indexing_out_of_bounds() {
        let mut m: Matrix<Real> = Matrix::zeros(2, 2);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 2, Real(1.0)).is_err());
    }

    #[test]
    fn zip_with_applies_pointwise() {
        let a: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 2.0]]).unwrap();
        let b: Matrix<Real> = Matrix::from_f64_rows(&[&[3.0, 4.0]]).unwrap();
        let sum = Matrix::zip_with(&[&a, &b], |args| Real(args[0].0 + args[1].0)).unwrap();
        assert_eq!(sum.get(0, 1).unwrap().0, 6.0);
        let bad: Matrix<Real> = Matrix::zeros(2, 2);
        assert!(Matrix::zip_with(&[&a, &bad], |args| args[0]).is_err());
        assert!(Matrix::<Real>::zip_with(&[], |_| Real(0.0)).is_err());
    }

    #[test]
    fn map_and_is_zero() {
        let m: Matrix<Real> = Matrix::zeros(2, 3);
        assert!(m.is_zero());
        let m2 = m.map(|_| Real(1.0));
        assert!(!m2.is_zero());
    }

    #[test]
    fn approx_eq_and_exact_eq() {
        let a: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0]]).unwrap();
        let b: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0 + 1e-12]]).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        assert_ne!(a, b);
        let c: Matrix<Real> = Matrix::zeros(2, 1);
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    fn boolean_matrices_work() {
        let adj: Matrix<Boolean> = Matrix::from_f64_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        assert_eq!(adj.get(0, 1).unwrap(), &Boolean(true));
        assert_eq!(adj.get(1, 1).unwrap(), &Boolean(false));
    }

    #[test]
    fn display_and_debug_do_not_panic() {
        let m: Matrix<Real> = Matrix::identity(2);
        let _ = format!("{m}");
        let _ = format!("{m:?}");
    }

    #[test]
    fn nnz_and_density() {
        let m: Matrix<Real> = Matrix::identity(4);
        assert_eq!(m.nnz(), 4);
        assert!((m.density() - 0.25).abs() < 1e-12);
        assert_eq!(Matrix::<Real>::zeros(3, 3).nnz(), 0);
        assert_eq!(Matrix::<Real>::zeros(0, 3).density(), 0.0);
        assert!(format!("{m:?}").contains("nnz=4"));
    }

    #[test]
    fn iter_entries_yields_row_major_triples() {
        let m: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let triples: Vec<_> = m.iter_entries().map(|(i, j, v)| (i, j, v.0)).collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]
        );
    }

    #[test]
    fn to_f64_rows_roundtrip() {
        let m: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.to_f64_rows(), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }
}
