//! Special matrices used throughout the paper: the order matrices `S≤`/`S<`
//! of Section 3.2, the shift matrices `Prev`/`Next` of Appendix B.1, and
//! permutation matrices used by PLU decomposition (Section 4.1).

use crate::{Matrix, MatrixError, Result};
use matlang_semiring::Semiring;

impl<K: Semiring> Matrix<K> {
    /// The `n × n` upper-triangular order matrix `S≤` with
    /// `bᵢᵀ · S≤ · bⱼ = 1` iff `i ≤ j` (Section 3.2).
    pub fn order_leq(n: usize) -> Matrix<K> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                m.set(i, j, K::one()).expect("in bounds");
            }
        }
        m
    }

    /// The strict order matrix `S< = S≤ − I` with `bᵢᵀ · S< · bⱼ = 1` iff `i < j`.
    pub fn order_lt(n: usize) -> Matrix<K> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, K::one()).expect("in bounds");
            }
        }
        m
    }

    /// The `Prev` shift matrix of Appendix B.1: `Prev · bᵢ = bᵢ₋₁` for `i > 1`
    /// and `Prev · b₁ = 0`.
    pub fn shift_prev(n: usize) -> Matrix<K> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n.saturating_sub(1) {
            m.set(i, i + 1, K::one()).expect("in bounds");
        }
        m
    }

    /// The `Next` shift matrix: `Next · bᵢ = bᵢ₊₁` for `i < n` and `Next · bₙ = 0`.
    pub fn shift_next(n: usize) -> Matrix<K> {
        Matrix::shift_prev(n).transpose()
    }

    /// A permutation matrix from a permutation given as an image list:
    /// `perm[i] = j` means row `i` of the result has a one in column `j`,
    /// i.e. `P · A` moves row `j` of `A` into row `i`.
    pub fn permutation(perm: &[usize]) -> Result<Matrix<K>> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in perm {
            if p >= n {
                return Err(MatrixError::BadConstruction {
                    message: format!("permutation image {p} out of range for size {n}"),
                });
            }
            if seen[p] {
                return Err(MatrixError::BadConstruction {
                    message: format!("duplicate permutation image {p}"),
                });
            }
            seen[p] = true;
        }
        let mut m = Matrix::zeros(n, n);
        for (i, &j) in perm.iter().enumerate() {
            m.set(i, j, K::one())?;
        }
        Ok(m)
    }

    /// The row-interchange permutation `P = I − u·uᵀ` with `u = bᵢ − bⱼ`
    /// (Section 4.1 / Appendix C.2): swaps rows `i` and `j` when multiplied
    /// from the left.
    pub fn row_swap(n: usize, i: usize, j: usize) -> Result<Matrix<K>> {
        if i >= n || j >= n {
            return Err(MatrixError::IndexOutOfBounds {
                row: i.max(j),
                col: 0,
                shape: (n, n),
            });
        }
        let mut perm: Vec<usize> = (0..n).collect();
        perm.swap(i, j);
        Matrix::permutation(&perm)
    }

    /// Whether this matrix is lower triangular (all entries strictly above the
    /// diagonal are zero).
    pub fn is_lower_triangular(&self) -> bool {
        self.iter_entries().all(|(i, j, v)| j <= i || v.is_zero())
    }

    /// Whether this matrix is upper triangular (all entries strictly below the
    /// diagonal are zero).
    pub fn is_upper_triangular(&self) -> bool {
        self.iter_entries().all(|(i, j, v)| j >= i || v.is_zero())
    }

    /// Whether this matrix is a permutation matrix (square 0/1 matrix with a
    /// single one per row and per column).
    pub fn is_permutation(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        let n = self.rows();
        for i in 0..n {
            let ones = (0..n)
                .filter(|&j| self.get(i, j).map(|v| v.is_one()).unwrap_or(false))
                .count();
            let zeros = (0..n)
                .filter(|&j| self.get(i, j).map(|v| v.is_zero()).unwrap_or(false))
                .count();
            if ones != 1 || zeros != n - 1 {
                return false;
            }
        }
        for j in 0..n {
            let ones = (0..n)
                .filter(|&i| self.get(i, j).map(|v| v.is_one()).unwrap_or(false))
                .count();
            if ones != 1 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::Real;

    #[test]
    fn order_matrices_encode_the_order() {
        let leq: Matrix<Real> = Matrix::order_leq(4);
        let lt: Matrix<Real> = Matrix::order_lt(4);
        for i in 0..4 {
            for j in 0..4 {
                let bi: Matrix<Real> = Matrix::canonical(4, i).unwrap();
                let bj: Matrix<Real> = Matrix::canonical(4, j).unwrap();
                let vleq = bi
                    .transpose()
                    .matmul(&leq)
                    .unwrap()
                    .matmul(&bj)
                    .unwrap()
                    .as_scalar()
                    .unwrap();
                let vlt = bi
                    .transpose()
                    .matmul(&lt)
                    .unwrap()
                    .matmul(&bj)
                    .unwrap()
                    .as_scalar()
                    .unwrap();
                assert_eq!(vleq.0, if i <= j { 1.0 } else { 0.0 });
                assert_eq!(vlt.0, if i < j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn shift_matrices_shift_canonical_vectors() {
        let prev: Matrix<Real> = Matrix::shift_prev(4);
        let next: Matrix<Real> = Matrix::shift_next(4);
        for i in 0..4 {
            let bi: Matrix<Real> = Matrix::canonical(4, i).unwrap();
            let p = prev.matmul(&bi).unwrap();
            let n = next.matmul(&bi).unwrap();
            if i == 0 {
                assert!(p.is_zero());
            } else {
                assert_eq!(p, Matrix::canonical(4, i - 1).unwrap());
            }
            if i == 3 {
                assert!(n.is_zero());
            } else {
                assert_eq!(n, Matrix::canonical(4, i + 1).unwrap());
            }
        }
    }

    #[test]
    fn permutation_construction_and_validation() {
        let p: Matrix<Real> = Matrix::permutation(&[2, 0, 1]).unwrap();
        assert!(p.is_permutation());
        assert!(Matrix::<Real>::permutation(&[0, 0, 1]).is_err());
        assert!(Matrix::<Real>::permutation(&[0, 3, 1]).is_err());
    }

    #[test]
    fn row_swap_swaps_rows_from_the_left() {
        let p: Matrix<Real> = Matrix::row_swap(3, 0, 2).unwrap();
        let a: Matrix<Real> =
            Matrix::from_f64_rows(&[&[1.0, 0.0, 0.0], &[0.0, 2.0, 0.0], &[0.0, 0.0, 3.0]]).unwrap();
        let swapped = p.matmul(&a).unwrap();
        assert_eq!(swapped.get(0, 2).unwrap().0, 3.0);
        assert_eq!(swapped.get(2, 0).unwrap().0, 1.0);
        assert!(Matrix::<Real>::row_swap(2, 0, 5).is_err());
    }

    #[test]
    fn triangular_predicates() {
        let l: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 0.0], &[5.0, 2.0]]).unwrap();
        let u: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 5.0], &[0.0, 2.0]]).unwrap();
        assert!(l.is_lower_triangular());
        assert!(!l.is_upper_triangular());
        assert!(u.is_upper_triangular());
        assert!(!u.is_lower_triangular());
        let d: Matrix<Real> = Matrix::identity(3);
        assert!(d.is_lower_triangular() && d.is_upper_triangular());
    }

    #[test]
    fn permutation_predicate_rejects_non_permutations() {
        let m: Matrix<Real> = Matrix::from_f64_rows(&[&[1.0, 1.0], &[0.0, 0.0]]).unwrap();
        assert!(!m.is_permutation());
        let nonsq: Matrix<Real> = Matrix::zeros(2, 3);
        assert!(!nonsq.is_permutation());
        let scaled: Matrix<Real> = Matrix::from_f64_rows(&[&[2.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert!(!scaled.is_permutation());
    }
}
