//! Byte-exact binary serialization of matrix payloads, the kernel under
//! the server's snapshot/WAL persistence.
//!
//! The encodings mirror the in-memory layouts that
//! [`heap_bytes`](crate::MatrixStorage::heap_bytes) accounts for: a dense
//! matrix is its row-major entry array, a CSR matrix is its three parallel
//! arrays (`indptr`, `indices`, `values`) written verbatim.  Element values
//! travel as little-endian `f64` via [`Semiring::to_f64`] /
//! [`Semiring::from_f64`] — every value a server instance holds originally
//! arrived as an `f64` wire token, so the round trip is exact and a decoded
//! matrix compares bit-identical to the one that was encoded.
//!
//! The payload starts with a one-byte representation tag, so an adaptive
//! [`MatrixRepr`] restores into the *same* variant it was saved from (no
//! re-normalization on load — a restore must not change performance
//! characteristics behind the caller's back).  Decoders accept either tag
//! and convert when the requested storage type differs, which lets a dense
//! instance restore a snapshot taken from an adaptive one and vice versa.
//!
//! Framing, checksums and file atomicity live a layer up in the server's
//! persistence module; this module is only the `matrix bytes ⇄ matrix`
//! kernel and therefore never touches the filesystem.

use crate::matrix::Matrix;
use crate::repr::MatrixRepr;
use crate::sparse::{CsrBuilder, SparseMatrix};
use crate::storage::MatrixStorage;
use matlang_semiring::Semiring;
use std::fmt;

/// Representation tag for a dense (row-major) payload.
pub const TAG_DENSE: u8 = 0;
/// Representation tag for a CSR payload.
pub const TAG_SPARSE: u8 = 1;

/// Why a matrix payload failed to decode.
///
/// `Truncated` means the byte stream ended before the declared payload did
/// (a torn write); `Corrupt` means the bytes are self-inconsistent (bad
/// tag, broken CSR invariants, absurd dimensions).  Callers above treat
/// both as "this snapshot/record is unusable", but the distinction matters
/// for WAL recovery, where a truncated *tail* is expected after a crash
/// while corruption mid-file is not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended early: `needed` more bytes than were `available`.
    Truncated { needed: usize, available: usize },
    /// The bytes decode to an impossible matrix.
    Corrupt(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated matrix payload: needed {needed} bytes, {available} available"
                )
            }
            CodecError::Corrupt(why) => write!(f, "corrupt matrix payload: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Byte-exact encode/decode for a matrix storage backend.
///
/// `decode` consumes its payload from the front of `buf`, leaving any
/// trailing bytes for the caller's framing layer — so a section reader can
/// verify it was consumed exactly.
pub trait MatrixCodec: MatrixStorage {
    /// Appends this matrix's binary payload (tag byte included) to `out`.
    fn encode_matrix(&self, out: &mut Vec<u8>);

    /// Decodes one matrix payload from the front of `buf`, advancing it
    /// past the consumed bytes.
    fn decode_matrix(buf: &mut &[u8]) -> Result<Self, CodecError>;
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if buf.len() < n {
        return Err(CodecError::Truncated {
            needed: n,
            available: buf.len(),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn read_u8(buf: &mut &[u8]) -> Result<u8, CodecError> {
    Ok(take(buf, 1)?[0])
}

fn read_u64(buf: &mut &[u8]) -> Result<u64, CodecError> {
    Ok(u64::from_le_bytes(
        take(buf, 8)?.try_into().expect("8 bytes"),
    ))
}

fn read_f64(buf: &mut &[u8]) -> Result<f64, CodecError> {
    Ok(f64::from_le_bytes(
        take(buf, 8)?.try_into().expect("8 bytes"),
    ))
}

/// A `u64` read from the wire, checked to fit in `usize` (a 4-billion-row
/// header on a 32-bit host must fail cleanly, not wrap).
fn read_dim(buf: &mut &[u8], what: &str) -> Result<usize, CodecError> {
    let raw = read_u64(buf)?;
    usize::try_from(raw).map_err(|_| CodecError::Corrupt(format!("{what} {raw} overflows usize")))
}

fn encode_dense<K: Semiring>(m: &Matrix<K>, out: &mut Vec<u8>) {
    let (rows, cols) = m.shape();
    out.push(TAG_DENSE);
    put_u64(out, rows as u64);
    put_u64(out, cols as u64);
    out.reserve(rows * cols * 8);
    for v in m.entries() {
        put_f64(out, v.to_f64());
    }
}

fn encode_sparse<K: Semiring>(m: &SparseMatrix<K>, out: &mut Vec<u8>) {
    out.push(TAG_SPARSE);
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    put_u64(out, m.nnz() as u64);
    out.reserve((m.rows() + 1 + m.nnz()) * 8 + m.nnz() * 8);
    for &p in m.csr_indptr() {
        put_u64(out, p as u64);
    }
    for &j in m.csr_indices() {
        put_u64(out, j as u64);
    }
    for v in m.csr_values() {
        put_f64(out, v.to_f64());
    }
}

/// Decodes a dense payload (the tag byte has already been consumed).
fn decode_dense_body<K: Semiring>(buf: &mut &[u8]) -> Result<Matrix<K>, CodecError> {
    let rows = read_dim(buf, "rows")?;
    let cols = read_dim(buf, "cols")?;
    let total = rows
        .checked_mul(cols)
        .and_then(|t| t.checked_mul(8))
        .ok_or_else(|| CodecError::Corrupt(format!("dense shape {rows}x{cols} overflows")))?;
    // Bound the allocation by the bytes actually present before reserving.
    if buf.len() < total {
        return Err(CodecError::Truncated {
            needed: total,
            available: buf.len(),
        });
    }
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(K::from_f64(read_f64(buf)?));
    }
    Matrix::from_vec(rows, cols, data)
        .map_err(|e| CodecError::Corrupt(format!("dense reconstruction failed: {e}")))
}

/// Decodes a CSR payload (the tag byte has already been consumed),
/// validating every CSR invariant before construction so hostile bytes
/// error instead of panicking inside [`CsrBuilder`].
fn decode_sparse_body<K: Semiring>(buf: &mut &[u8]) -> Result<SparseMatrix<K>, CodecError> {
    let rows = read_dim(buf, "rows")?;
    let cols = read_dim(buf, "cols")?;
    let nnz = read_dim(buf, "nnz")?;
    let total = rows
        .checked_add(1)
        .and_then(|r| r.checked_add(nnz))
        .and_then(|w| w.checked_add(nnz))
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| CodecError::Corrupt(format!("csr sizes {rows}+{nnz} overflow")))?;
    if buf.len() < total {
        return Err(CodecError::Truncated {
            needed: total,
            available: buf.len(),
        });
    }
    let mut indptr = Vec::with_capacity(rows + 1);
    for _ in 0..rows + 1 {
        indptr.push(read_dim(buf, "indptr entry")?);
    }
    if indptr[0] != 0 {
        return Err(CodecError::Corrupt("indptr must start at 0".into()));
    }
    if indptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(CodecError::Corrupt("indptr must be non-decreasing".into()));
    }
    if *indptr.last().expect("rows+1 entries") != nnz {
        return Err(CodecError::Corrupt(format!(
            "indptr ends at {}, expected nnz {nnz}",
            indptr.last().expect("rows+1 entries")
        )));
    }
    let mut indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        indices.push(read_dim(buf, "column index")?);
    }
    for row in 0..rows {
        let cols_of_row = &indices[indptr[row]..indptr[row + 1]];
        if cols_of_row.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CodecError::Corrupt(format!(
                "row {row} columns not strictly increasing"
            )));
        }
        if cols_of_row.last().is_some_and(|&j| j >= cols) {
            return Err(CodecError::Corrupt(format!(
                "row {row} has a column past cols={cols}"
            )));
        }
    }
    let mut builder = CsrBuilder::new(rows, cols, nnz);
    for row in 0..rows {
        for &col in &indices[indptr[row]..indptr[row + 1]] {
            let value = K::from_f64(read_f64(buf)?);
            if value.is_zero() {
                // The encoder never writes semiring zeros (CSR stores
                // none), so one here means the value bytes are damaged.
                return Err(CodecError::Corrupt(format!(
                    "stored zero at ({row}, {col})"
                )));
            }
            builder.push(col, value);
        }
        builder.finish_row();
    }
    Ok(builder.build())
}

impl<K: Semiring> MatrixCodec for Matrix<K> {
    fn encode_matrix(&self, out: &mut Vec<u8>) {
        encode_dense(self, out);
    }

    fn decode_matrix(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match read_u8(buf)? {
            TAG_DENSE => decode_dense_body(buf),
            TAG_SPARSE => Ok(decode_sparse_body::<K>(buf)?.to_dense()),
            tag => Err(CodecError::Corrupt(format!("unknown repr tag {tag}"))),
        }
    }
}

impl<K: Semiring> MatrixCodec for SparseMatrix<K> {
    fn encode_matrix(&self, out: &mut Vec<u8>) {
        encode_sparse(self, out);
    }

    fn decode_matrix(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match read_u8(buf)? {
            TAG_DENSE => Ok(SparseMatrix::from_dense(&decode_dense_body::<K>(buf)?)),
            TAG_SPARSE => decode_sparse_body(buf),
            tag => Err(CodecError::Corrupt(format!("unknown repr tag {tag}"))),
        }
    }
}

impl<K: Semiring> MatrixCodec for MatrixRepr<K> {
    fn encode_matrix(&self, out: &mut Vec<u8>) {
        match self {
            MatrixRepr::Dense(m) => encode_dense(m, out),
            MatrixRepr::Sparse(m) => encode_sparse(m, out),
        }
    }

    fn decode_matrix(buf: &mut &[u8]) -> Result<Self, CodecError> {
        // The tag picks the variant directly — restoring must reproduce
        // the exact pre-save representation, not re-run the density
        // heuristics (which could flip a borderline matrix and change
        // performance after a reboot).
        match read_u8(buf)? {
            TAG_DENSE => Ok(MatrixRepr::Dense(decode_dense_body(buf)?)),
            TAG_SPARSE => Ok(MatrixRepr::Sparse(decode_sparse_body(buf)?)),
            tag => Err(CodecError::Corrupt(format!("unknown repr tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Boolean, MinPlus, Nat, Real};

    fn roundtrip<M: MatrixCodec>(m: &M) -> M {
        let mut bytes = Vec::new();
        m.encode_matrix(&mut bytes);
        let mut cursor = bytes.as_slice();
        let back = M::decode_matrix(&mut cursor).expect("decode");
        assert!(cursor.is_empty(), "payload must be consumed exactly");
        back
    }

    fn sample_sparse<K: Semiring>() -> SparseMatrix<K> {
        SparseMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 1, K::from_f64(1.0)),
                (1, 2, K::from_f64(2.0)),
                (2, 3, K::from_f64(3.0)),
                (3, 0, K::from_f64(4.0)),
                (3, 3, K::from_f64(5.0)),
            ],
        )
        .expect("triplets")
    }

    #[test]
    fn dense_roundtrips_across_semirings() {
        let real = Matrix::<Real>::from_f64_rows(&[&[1.5, 0.0], &[-2.25, 3.0]]).unwrap();
        assert_eq!(roundtrip(&real), real);
        let boolean = sample_sparse::<Boolean>().to_dense();
        assert_eq!(roundtrip(&boolean), boolean);
        let nat = sample_sparse::<Nat>().to_dense();
        assert_eq!(roundtrip(&nat), nat);
    }

    #[test]
    fn csr_roundtrips_with_identical_raw_arrays() {
        let m = sample_sparse::<Real>();
        let back = roundtrip(&m);
        assert_eq!(back.csr_indptr(), m.csr_indptr());
        assert_eq!(back.csr_indices(), m.csr_indices());
        assert_eq!(back, m);
    }

    #[test]
    fn minplus_infinities_survive_the_f64_bridge() {
        // MinPlus's additive zero is +inf, so stored values are finite or
        // -inf only; the multiplicative identity 0.0 must also survive.
        let m = SparseMatrix::<MinPlus>::from_triplets(
            2,
            2,
            vec![
                (0, 0, MinPlus::from_f64(0.0)),
                (0, 1, MinPlus::from_f64(-7.5)),
                (1, 0, MinPlus::from_f64(f64::NEG_INFINITY)),
            ],
        )
        .unwrap();
        assert_eq!(roundtrip(&m), m);
        assert_eq!(roundtrip(&m.to_dense()), m.to_dense());
    }

    #[test]
    fn repr_restores_the_exact_variant() {
        let dense = MatrixRepr::Dense(sample_sparse::<Real>().to_dense());
        assert!(matches!(roundtrip(&dense), MatrixRepr::Dense(_)));
        let sparse = MatrixRepr::Sparse(sample_sparse::<Real>());
        assert!(matches!(roundtrip(&sparse), MatrixRepr::Sparse(_)));
        assert_eq!(roundtrip(&sparse), sparse);
    }

    #[test]
    fn decoders_convert_across_tags() {
        let sparse = sample_sparse::<Real>();
        let mut bytes = Vec::new();
        sparse.encode_matrix(&mut bytes);
        let dense = Matrix::<Real>::decode_matrix(&mut bytes.as_slice()).unwrap();
        assert_eq!(dense, sparse.to_dense());

        let mut dense_bytes = Vec::new();
        dense.encode_matrix(&mut dense_bytes);
        let back = SparseMatrix::<Real>::decode_matrix(&mut dense_bytes.as_slice()).unwrap();
        assert_eq!(back, sparse);
    }

    #[test]
    fn empty_and_degenerate_shapes_roundtrip() {
        let empty = SparseMatrix::<Real>::zeros(0, 0);
        assert_eq!(roundtrip(&empty), empty);
        let tall = SparseMatrix::<Real>::zeros(5, 0);
        assert_eq!(roundtrip(&tall), tall);
        let dense_empty = Matrix::<Real>::zeros(0, 3);
        assert_eq!(roundtrip(&dense_empty), dense_empty);
    }

    #[test]
    fn truncated_payloads_report_truncation() {
        let m = sample_sparse::<Real>();
        let mut bytes = Vec::new();
        m.encode_matrix(&mut bytes);
        for cut in [0, 1, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut cursor = &bytes[..cut];
            let err = SparseMatrix::<Real>::decode_matrix(&mut cursor).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_structure_is_rejected_not_panicked() {
        let m = sample_sparse::<Real>();
        let mut bytes = Vec::new();
        m.encode_matrix(&mut bytes);

        // Bad tag.
        let mut bad_tag = bytes.clone();
        bad_tag[0] = 9;
        assert!(matches!(
            SparseMatrix::<Real>::decode_matrix(&mut bad_tag.as_slice()),
            Err(CodecError::Corrupt(_))
        ));

        // Break indptr monotonicity: indptr[1] lives at offset 1 + 3*8 + 8.
        let mut bad_indptr = bytes.clone();
        let off = 1 + 24 + 8;
        bad_indptr[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            SparseMatrix::<Real>::decode_matrix(&mut bad_indptr.as_slice()),
            Err(CodecError::Corrupt(_))
        ));

        // Declare absurd dims on a dense header: decoding must refuse to
        // allocate, reporting truncation against the actual buffer.
        let dense = m.to_dense();
        let mut dense_bytes = Vec::new();
        dense.encode_matrix(&mut dense_bytes);
        dense_bytes[1..9].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(
            Matrix::<Real>::decode_matrix(&mut dense_bytes.as_slice()),
            Err(CodecError::Truncated { .. })
        ));
    }
}
