//! Sparse matrices in compressed sparse row (CSR) form.
//!
//! Graph adjacency matrices — the primary inputs of the paper's query
//! language — are overwhelmingly sparse in practice: an n-node graph with
//! average degree d has `d·n ≪ n²` non-zero entries.  [`SparseMatrix`]
//! stores only those entries and implements every kernel the MATLANG
//! evaluator needs (transpose, add, Hadamard, SpMM, scalar multiplication,
//! diag, trace, pow, canonical/ones vectors) with cost proportional to the
//! number of non-zeros rather than to `rows × cols`.
//!
//! Invariants (maintained by every constructor and kernel, and relied upon
//! by the derived `PartialEq`):
//!
//! * `indptr` has length `rows + 1`, starts at 0, is non-decreasing and ends
//!   at `nnz`;
//! * within each row, column indices are strictly increasing;
//! * no explicit zeros are stored — `values[i].is_zero()` is always false.
//!
//! Dropping semiring-zero entries is sound by the annihilation and identity
//! laws (`0 ⊙ k = 0`, `0 ⊕ k = k`); note that for the tropical semirings the
//! zero element is ±∞, so "sparse" there means "few finite entries".

use crate::{Matrix, MatrixError, Result};
use matlang_semiring::{Ring, Semiring};
use std::fmt;

/// A sparse matrix over a commutative semiring `K`, stored in CSR form.
///
/// Shapes follow the same conventions as the dense [`Matrix`]: vectors are
/// `n × 1` matrices and scalars are `1 × 1` matrices.
#[derive(Clone, PartialEq)]
pub struct SparseMatrix<K> {
    rows: usize,
    cols: usize,
    /// `indptr[i]..indptr[i + 1]` is the range of `indices`/`values`
    /// holding row `i`.
    indptr: Vec<usize>,
    /// Column index of each stored entry, strictly increasing per row.
    indices: Vec<usize>,
    /// The stored (non-zero) entries, parallel to `indices`.
    values: Vec<K>,
}

impl<K: Semiring> SparseMatrix<K> {
    /// The `rows × cols` zero matrix (no stored entries).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        SparseMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![K::one(); n],
        }
    }

    /// A `1 × 1` matrix holding a single value.
    pub fn scalar(value: K) -> Self {
        SparseMatrix::from_triplets(1, 1, vec![(0, 0, value)]).expect("scalar triplet in bounds")
    }

    /// The `n × 1` ones (column) vector — the paper's `1(e)` result.  Note
    /// this is the *densest* possible vector; it is provided so that sparse
    /// evaluation supports the full operator set.
    pub fn ones_vector(n: usize) -> Self {
        SparseMatrix {
            rows: n,
            cols: 1,
            indptr: (0..=n).collect(),
            indices: vec![0; n],
            values: vec![K::one(); n],
        }
    }

    /// The `i`-th canonical (column) vector `bᵢⁿ` of dimension `n` — a
    /// single stored entry, the best case for sparse storage.
    pub fn canonical(n: usize, i: usize) -> Result<Self> {
        if i >= n {
            return Err(MatrixError::IndexOutOfBounds {
                row: i,
                col: 0,
                shape: (n, 1),
            });
        }
        let mut indptr = vec![0; n + 1];
        for p in indptr.iter_mut().skip(i + 1) {
            *p = 1;
        }
        Ok(SparseMatrix {
            rows: n,
            cols: 1,
            indptr,
            indices: vec![0],
            values: vec![K::one()],
        })
    }

    /// Builds a sparse matrix from `(row, col, value)` triplets.  Duplicate
    /// coordinates are combined with `⊕`; entries that are (or combine to)
    /// zero are dropped.  Fails on out-of-bounds coordinates.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(usize, usize, K)>,
    ) -> Result<Self> {
        for &(r, c, _) in &triplets {
            if r >= rows || c >= cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    shape: (rows, cols),
                });
            }
        }
        triplets.sort_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(usize, usize, K)> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv = lv.add(&v),
                _ => merged.push((r, c, v)),
            }
        }
        let mut out = CsrBuilder::new(rows, cols, merged.len());
        let mut row = 0;
        for (r, c, v) in merged {
            while row < r {
                out.finish_row();
                row += 1;
            }
            out.push(c, v);
        }
        for _ in row..rows {
            out.finish_row();
        }
        Ok(out.build())
    }

    /// Exact conversion from a dense matrix: stores precisely the non-zero
    /// entries.
    pub fn from_dense(dense: &Matrix<K>) -> Self {
        let (rows, cols) = dense.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                let v = dense.get(i, j).expect("in bounds");
                if !v.is_zero() {
                    indices.push(j);
                    values.push(v.clone());
                }
            }
            indptr.push(indices.len());
        }
        SparseMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Exact conversion to a dense matrix.
    pub fn to_dense(&self) -> Matrix<K> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (i, j, v) in self.iter_entries() {
            out.set(i, j, v.clone()).expect("in bounds");
        }
        out
    }

    /// The shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether this is a column vector (`n × 1`).
    pub fn is_vector(&self) -> bool {
        self.cols == 1
    }

    /// Whether this is a `1 × 1` matrix.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Whether this matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are non-zero (`nnz / (rows·cols)`; 0 for an
    /// empty shape).
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.values.is_empty()
    }

    /// Heap bytes held by the CSR arrays: `indptr` + `indices` (both
    /// `usize`) plus `values` (`K`).  Deliberately counts live payload
    /// (not `Vec` capacity slack) so the figure is reproducible from
    /// `rows` and `nnz` alone: `(rows + 1 + nnz)·8 + nnz·size_of::<K>()`.
    /// O(1) — reads lengths only.
    pub fn heap_bytes(&self) -> usize {
        (self.indptr.len() + self.indices.len()) * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<K>()
    }

    /// The entry at `(row, col)`, returned by value (`0` for an absent
    /// entry).
    pub fn get(&self, row: usize, col: usize) -> Result<K> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                row,
                col,
                shape: self.shape(),
            });
        }
        let (cols, vals) = self.row_slices(row);
        match cols.binary_search(&col) {
            Ok(pos) => Ok(vals[pos].clone()),
            Err(_) => Ok(K::zero()),
        }
    }

    /// The value of a `1 × 1` matrix.
    pub fn as_scalar(&self) -> Result<K> {
        if !self.is_scalar() {
            return Err(MatrixError::NotAScalar {
                shape: self.shape(),
            });
        }
        self.get(0, 0)
    }

    /// Sets the entry at `(row, col)` **in place**, maintaining the CSR
    /// invariants: a zero value removes any stored entry, a non-zero value
    /// overwrites in place when the coordinate is already stored and is
    /// otherwise inserted at its sorted position.  Overwrites cost `O(log
    /// nnz(row))`; structural inserts/removes shift the tail of the entry
    /// arrays, `O(nnz)` worst case — the incremental-update hook behind the
    /// query server's `UPDATE`, where point mutations must not rebuild the
    /// whole matrix.
    pub fn set_entry(&mut self, row: usize, col: usize, value: K) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                row,
                col,
                shape: self.shape(),
            });
        }
        let (start, end) = (self.indptr[row], self.indptr[row + 1]);
        match (
            self.indices[start..end].binary_search(&col),
            value.is_zero(),
        ) {
            (Ok(pos), false) => self.values[start + pos] = value,
            (Ok(pos), true) => {
                self.indices.remove(start + pos);
                self.values.remove(start + pos);
                for p in self.indptr.iter_mut().skip(row + 1) {
                    *p -= 1;
                }
            }
            (Err(_), true) => {}
            (Err(pos), false) => {
                self.indices.insert(start + pos, col);
                self.values.insert(start + pos, value);
                for p in self.indptr.iter_mut().skip(row + 1) {
                    *p += 1;
                }
            }
        }
        Ok(())
    }

    /// Iterate over the stored `(row, col, value)` triples in row-major
    /// order.  Zero entries are not visited.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, &K)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row_slices(i);
            cols.iter().zip(vals).map(move |(&j, v)| (i, j, v))
        })
    }

    /// The column indices and values of the stored entries of row `i`, as
    /// parallel slices sorted by column.  For an adjacency matrix this *is*
    /// the out-neighbour list of vertex `i`, so graph traversals (BFS, the
    /// sparse transitive closure in `matlang_algorithms`) can walk the CSR
    /// structure without copying it into an adjacency list first.
    pub fn row_entries(&self, i: usize) -> (&[usize], &[K]) {
        self.row_slices(i)
    }

    /// The raw CSR row-pointer array (`rows + 1` monotone offsets into
    /// [`csr_indices`](Self::csr_indices)/[`csr_values`](Self::csr_values)).
    /// Read-only: mutation goes through [`set_entry`](Self::set_entry) or a
    /// rebuild via [`CsrBuilder`] so the invariants cannot be broken from
    /// outside.  Exposed for byte-exact serialization (the snapshot codec
    /// writes these arrays verbatim).
    pub fn csr_indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The raw CSR column-index array, one entry per stored value, sorted
    /// strictly increasing within each row.  See
    /// [`csr_indptr`](Self::csr_indptr).
    pub fn csr_indices(&self) -> &[usize] {
        &self.indices
    }

    /// The raw CSR value array, parallel to
    /// [`csr_indices`](Self::csr_indices).  Never contains semiring zeros.
    pub fn csr_values(&self) -> &[K] {
        &self.values
    }

    /// The column indices and values of row `i`.
    fn row_slices(&self, i: usize) -> (&[usize], &[K]) {
        let range = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[range.clone()], &self.values[range])
    }

    /// Matrix transpose `eᵀ` in `O(nnz + rows + cols)` via counting sort.
    pub fn transpose(&self) -> SparseMatrix<K> {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values: Vec<Option<K>> = vec![None; self.nnz()];
        // Row-major traversal writes each output row in increasing column
        // (= source row) order, preserving the sortedness invariant.
        for (i, j, v) in self.iter_entries() {
            let slot = counts[j];
            counts[j] += 1;
            indices[slot] = i;
            values[slot] = Some(v.clone());
        }
        SparseMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values: values
                .into_iter()
                .map(|v| v.expect("slot filled"))
                .collect(),
        }
    }

    /// Matrix addition `e₁ + e₂` (entrywise `⊕`) by sorted row merge,
    /// `O(nnz₁ + nnz₂)`.
    pub fn add(&self, other: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        if self.shape() != other.shape() {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "add",
            });
        }
        let mut out = CsrBuilder::new(self.rows, self.cols, self.nnz() + other.nnz());
        for i in 0..self.rows {
            let (ac, av) = self.row_slices(i);
            let (bc, bv) = other.row_slices(i);
            let (mut p, mut q) = (0, 0);
            while p < ac.len() || q < bc.len() {
                let take_a = q >= bc.len() || (p < ac.len() && ac[p] < bc[q]);
                let take_b = p >= ac.len() || (q < bc.len() && bc[q] < ac[p]);
                if take_a {
                    out.push(ac[p], av[p].clone());
                    p += 1;
                } else if take_b {
                    out.push(bc[q], bv[q].clone());
                    q += 1;
                } else {
                    out.push(ac[p], av[p].add(&bv[q]));
                    p += 1;
                    q += 1;
                }
            }
            out.finish_row();
        }
        Ok(out.build())
    }

    /// Hadamard (pointwise) product `e₁ ∘ e₂` (entrywise `⊙`) by sorted row
    /// intersection, `O(nnz₁ + nnz₂)`.
    pub fn hadamard(&self, other: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        if self.shape() != other.shape() {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "hadamard",
            });
        }
        let mut out = CsrBuilder::new(self.rows, self.cols, self.nnz().min(other.nnz()));
        for i in 0..self.rows {
            let (ac, av) = self.row_slices(i);
            let (bc, bv) = other.row_slices(i);
            let (mut p, mut q) = (0, 0);
            while p < ac.len() && q < bc.len() {
                match ac[p].cmp(&bc[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(ac[p], av[p].mul(&bv[q]));
                        p += 1;
                        q += 1;
                    }
                }
            }
            out.finish_row();
        }
        Ok(out.build())
    }

    /// Sparse matrix product `e₁ · e₂` (SpMM), Gustavson's row-by-row
    /// algorithm: `O(Σᵢ Σ_{k ∈ row i} nnz(Bₖ))` semiring operations — for an
    /// n-node, average-degree-d adjacency matrix this is `Θ(n·d²)` versus the
    /// dense `Θ(n³)`.
    pub fn matmul(&self, other: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        if self.cols != other.rows {
            return Err(MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let timer = matlang_obs::enabled().then(std::time::Instant::now);
        let out = self.matmul_rows(other, 0..self.rows);
        if let Some(t) = timer {
            matlang_obs::histogram!("kernel_sparse_matmul_us")
                .observe(t.elapsed().as_micros() as u64);
        }
        Ok(out)
    }

    /// The Gustavson kernel restricted to the output rows in `rows`: computes
    /// the `rows.len() × other.cols` horizontal slice of `self · other`.
    /// This is the unit of work of the row-partitioned parallel SpMM in
    /// [`crate::parallel`]; running it over `0..self.rows()` is exactly
    /// [`SparseMatrix::matmul`], so serial and parallel products perform the
    /// identical per-row semiring operations in the identical order.
    ///
    /// Callers must have checked `self.cols == other.rows` and that `rows`
    /// is within `0..self.rows`.
    pub(crate) fn matmul_rows(
        &self,
        other: &SparseMatrix<K>,
        rows: std::ops::Range<usize>,
    ) -> SparseMatrix<K> {
        let m = other.cols;
        let block_nnz = self.indptr[rows.end] - self.indptr[rows.start];
        let mut out = CsrBuilder::new(rows.len(), m, block_nnz);
        // Dense accumulator reused across rows; `occupied` tracks the touched
        // columns so clearing costs O(row nnz), not O(m).
        let mut acc: Vec<K> = vec![K::zero(); m];
        let mut present = vec![false; m];
        let mut occupied: Vec<usize> = Vec::new();
        for i in rows {
            let (ac, av) = self.row_slices(i);
            for (&k, a) in ac.iter().zip(av) {
                let (bc, bv) = other.row_slices(k);
                for (&j, b) in bc.iter().zip(bv) {
                    let term = a.mul(b);
                    if present[j] {
                        acc[j] = acc[j].add(&term);
                    } else {
                        acc[j] = term;
                        present[j] = true;
                        occupied.push(j);
                    }
                }
            }
            occupied.sort_unstable();
            for &j in &occupied {
                let v = std::mem::replace(&mut acc[j], K::zero());
                present[j] = false;
                out.push(j, v);
            }
            occupied.clear();
            out.finish_row();
        }
        out.build()
    }

    /// Vertical concatenation of row blocks sharing a column count — the
    /// reassembly step of the row-partitioned parallel SpMM.  An empty block
    /// list produces the `0 × 0` matrix.
    pub fn vstack(blocks: &[SparseMatrix<K>]) -> Result<SparseMatrix<K>> {
        let cols = blocks.first().map(|b| b.cols).unwrap_or(0);
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for block in blocks {
            if block.cols != cols {
                return Err(MatrixError::ShapeMismatch {
                    left: (rows, cols),
                    right: block.shape(),
                    op: "vstack",
                });
            }
            let offset = indices.len();
            indptr.extend(block.indptr.iter().skip(1).map(|p| p + offset));
            indices.extend_from_slice(&block.indices);
            values.extend_from_slice(&block.values);
        }
        Ok(SparseMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Sparse matrix–vector product against a dense vector: `A · x` with `x`
    /// given as a slice of length `cols`.  `O(nnz)` semiring operations.
    pub fn matvec(&self, x: &[K]) -> Result<Vec<K>> {
        if x.len() != self.cols {
            return Err(MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![K::zero(); self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row_slices(i);
            for (&j, v) in cols.iter().zip(vals) {
                *slot = slot.add(&v.mul(&x[j]));
            }
        }
        Ok(out)
    }

    /// Scalar multiplication `e₁ × e₂` where the scalar multiplies every
    /// stored entry (products that become zero are dropped).
    pub fn scalar_mul(&self, scalar: &K) -> SparseMatrix<K> {
        self.map_nonzero(|v| scalar.mul(v))
    }

    /// Applies `f` to every *stored* entry, dropping results that are zero.
    /// The zero entries are untouched, so this is only the pointwise map
    /// `f` when `f(0) = 0` — exactly the property that scalar
    /// multiplication and negation enjoy.
    pub fn map_nonzero<F: Fn(&K) -> K>(&self, f: F) -> SparseMatrix<K> {
        let mut out = CsrBuilder::new(self.rows, self.cols, self.nnz());
        for i in 0..self.rows {
            let (cols, vals) = self.row_slices(i);
            for (&j, v) in cols.iter().zip(vals) {
                out.push(j, f(v));
            }
            out.finish_row();
        }
        out.build()
    }

    /// The paper's `diag(e)` operator: for an `n × 1` vector, the `n × n`
    /// diagonal matrix with the vector on its main diagonal — the canonical
    /// sparse matrix (`nnz ≤ n` out of `n²` entries).
    pub fn diag(&self) -> Result<SparseMatrix<K>> {
        if !self.is_vector() {
            return Err(MatrixError::NotAVector {
                shape: self.shape(),
            });
        }
        let n = self.rows;
        let mut out = CsrBuilder::new(n, n, self.nnz());
        for i in 0..n {
            let (_, vals) = self.row_slices(i);
            if let Some(v) = vals.first() {
                out.push(i, v.clone());
            }
            out.finish_row();
        }
        Ok(out.build())
    }

    /// Fused `diag(scale) · self` for an `n × 1` vector `scale`: row `i` of
    /// the result is row `i` of `self` scaled by `scale[i]`.  Replays the
    /// Gustavson kernel's per-row operations for a diagonal left operand
    /// (an absent `scale[i]` empties the row, each surviving entry is the
    /// single term `s ⊙ a`, zero products are dropped by the builder), so
    /// the result is bit-identical to `scale.diag()?.matmul(self)` without
    /// materializing the diagonal.
    pub fn scale_rows(&self, scale: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        if !scale.is_vector() {
            return Err(MatrixError::NotAVector {
                shape: scale.shape(),
            });
        }
        if scale.rows != self.rows {
            return Err(MatrixError::InnerDimensionMismatch {
                left: (scale.rows, scale.rows),
                right: self.shape(),
            });
        }
        let mut out = CsrBuilder::new(self.rows, self.cols, self.nnz());
        for i in 0..self.rows {
            let (_, svals) = scale.row_slices(i);
            if let Some(s) = svals.first() {
                let (cols, vals) = self.row_slices(i);
                for (&j, a) in cols.iter().zip(vals) {
                    out.push(j, s.mul(a));
                }
            }
            out.finish_row();
        }
        Ok(out.build())
    }

    /// Fused `self · diag(scale)` for an `m × 1` vector `scale`: column `j`
    /// of the result is column `j` of `self` scaled by `scale[j]`.
    /// Bit-identical to `self.matmul(&scale.diag()?)` — the Gustavson
    /// kernel visits the stored entries of each row in ascending column
    /// order and a diagonal right row contributes at most one term, which
    /// is exactly this loop.
    pub fn scale_cols(&self, scale: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        if !scale.is_vector() {
            return Err(MatrixError::NotAVector {
                shape: scale.shape(),
            });
        }
        if self.cols != scale.rows {
            return Err(MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: (scale.rows, scale.rows),
            });
        }
        let mut out = CsrBuilder::new(self.rows, self.cols, self.nnz());
        for i in 0..self.rows {
            let (cols, vals) = self.row_slices(i);
            for (&j, a) in cols.iter().zip(vals) {
                let (_, svals) = scale.row_slices(j);
                if let Some(s) = svals.first() {
                    out.push(j, a.mul(s));
                }
            }
            out.finish_row();
        }
        Ok(out.build())
    }

    /// The main diagonal of a square matrix, as an `n × 1` vector.
    pub fn diagonal_vector(&self) -> Result<SparseMatrix<K>> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut out = CsrBuilder::new(self.rows, 1, self.rows.min(self.nnz()));
        for i in 0..self.rows {
            let (cols, vals) = self.row_slices(i);
            if let Ok(pos) = cols.binary_search(&i) {
                out.push(0, vals[pos].clone());
            }
            out.finish_row();
        }
        Ok(out.build())
    }

    /// The trace `tr(A)` of a square matrix, `O(rows · log max-degree)`.
    pub fn trace(&self) -> Result<K> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut acc = K::zero();
        for i in 0..self.rows {
            let (cols, vals) = self.row_slices(i);
            if let Ok(pos) = cols.binary_search(&i) {
                acc = acc.add(&vals[pos]);
            }
        }
        Ok(acc)
    }

    /// `Aᵏ` for a square matrix (`k = 0` gives the identity).  Matches the
    /// dense [`Matrix::pow`] iteration order exactly.
    pub fn pow(&self, k: usize) -> Result<SparseMatrix<K>> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut acc = SparseMatrix::identity(self.rows);
        for _ in 0..k {
            acc = acc.matmul(self)?;
        }
        Ok(acc)
    }
}

impl<K: Ring> SparseMatrix<K> {
    /// Entrywise negation.  In a ring `−v = 0 ⇔ v = 0`, so the sparsity
    /// pattern is preserved.
    pub fn neg(&self) -> SparseMatrix<K> {
        self.map_nonzero(|v| v.neg())
    }

    /// Matrix subtraction.
    pub fn sub(&self, other: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        self.add(&other.neg())
    }
}

/// Incremental CSR constructor, used by every kernel and available to
/// callers that produce entries in row-major order (e.g. the per-source BFS
/// transitive closure in `matlang_algorithms`, which would otherwise have to
/// buffer and re-sort triplets).
///
/// Rows must be finished in order via [`finish_row`](CsrBuilder::finish_row)
/// (exactly `rows` times), and entries within a row pushed in strictly
/// increasing column order; zero values are dropped automatically, which
/// keeps the no-stored-zeros invariant.
pub struct CsrBuilder<K> {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<K>,
}

impl<K: Semiring> CsrBuilder<K> {
    /// A builder for a `rows × cols` matrix, with room for `capacity`
    /// entries.
    pub fn new(rows: usize, cols: usize, capacity: usize) -> Self {
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0);
        CsrBuilder {
            rows,
            cols,
            indptr,
            indices: Vec::with_capacity(capacity),
            values: Vec::with_capacity(capacity),
        }
    }

    /// Appends an entry to the current row.
    ///
    /// # Panics
    ///
    /// If `col` is out of bounds or not strictly greater than the previous
    /// column pushed in this row (the checks are cheap compares, kept in
    /// release builds to protect the CSR invariants behind `PartialEq`).
    pub fn push(&mut self, col: usize, value: K) {
        assert!(
            col < self.cols,
            "column {col} out of bounds ({})",
            self.cols
        );
        assert!(
            self.indices.len() == *self.indptr.last().expect("non-empty")
                || *self.indices.last().expect("non-empty") < col,
            "columns must be pushed in strictly increasing order within a row"
        );
        if !value.is_zero() {
            self.indices.push(col);
            self.values.push(value);
        }
    }

    /// Closes the current row; the next [`push`](CsrBuilder::push) starts
    /// the following one.
    pub fn finish_row(&mut self) {
        self.indptr.push(self.indices.len());
    }

    /// Finalizes the matrix.
    ///
    /// # Panics
    ///
    /// If the number of finished rows differs from the `rows` the builder
    /// was created with.
    pub fn build(self) -> SparseMatrix<K> {
        assert_eq!(
            self.indptr.len(),
            self.rows + 1,
            "every row must be finished"
        );
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr,
            indices: self.indices,
            values: self.values,
        }
    }
}

impl<K: Semiring> fmt::Debug for SparseMatrix<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SparseMatrix {}x{} (nnz={}, density={:.4}) [",
            self.rows,
            self.cols,
            self.nnz(),
            self.density()
        )?;
        const MAX_SHOWN: usize = 32;
        for (count, (i, j, v)) in self.iter_entries().enumerate() {
            if count == MAX_SHOWN {
                writeln!(f, "  … {} more", self.nnz() - MAX_SHOWN)?;
                break;
            }
            writeln!(f, "  ({i}, {j}) = {v:?}")?;
        }
        write!(f, "]")
    }
}

impl<K: Semiring> fmt::Display for SparseMatrix<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} sparse, nnz={}, density={:.4}",
            self.rows,
            self.cols,
            self.nnz(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Boolean, IntRing, MinPlus, Nat, Real};

    fn dense(rows: &[&[f64]]) -> Matrix<Real> {
        Matrix::from_f64_rows(rows).unwrap()
    }

    fn sparse(rows: &[&[f64]]) -> SparseMatrix<Real> {
        SparseMatrix::from_dense(&dense(rows))
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let d = dense(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
        assert_eq!(s.get(0, 2).unwrap().0, 2.0);
        assert_eq!(s.get(1, 1).unwrap().0, 0.0);
        assert!(s.get(3, 0).is_err());
    }

    #[test]
    fn from_triplets_merges_and_drops_zeros() {
        let s: SparseMatrix<Real> = SparseMatrix::from_triplets(
            2,
            2,
            vec![
                (1, 1, Real(2.0)),
                (0, 0, Real(1.0)),
                (1, 1, Real(3.0)),
                (0, 1, Real(0.0)),
            ],
        )
        .unwrap();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(1, 1).unwrap().0, 5.0);
        assert_eq!(s.get(0, 1).unwrap().0, 0.0);
        assert!(SparseMatrix::<Real>::from_triplets(1, 1, vec![(1, 0, Real(1.0))]).is_err());
    }

    #[test]
    fn from_triplets_cancellation_is_dropped() {
        let s: SparseMatrix<IntRing> = SparseMatrix::from_triplets(
            1,
            2,
            vec![(0, 0, IntRing(5)), (0, 0, IntRing(-5)), (0, 1, IntRing(1))],
        )
        .unwrap();
        assert_eq!(s.nnz(), 1);
        assert!(s.get(0, 0).unwrap().is_zero());
    }

    #[test]
    fn constructors_match_dense() {
        assert_eq!(
            SparseMatrix::<Real>::identity(3).to_dense(),
            Matrix::identity(3)
        );
        assert_eq!(
            SparseMatrix::<Real>::zeros(2, 3).to_dense(),
            Matrix::zeros(2, 3)
        );
        assert_eq!(
            SparseMatrix::<Real>::ones_vector(4).to_dense(),
            Matrix::ones_vector(4)
        );
        assert_eq!(
            SparseMatrix::<Real>::canonical(4, 2).unwrap().to_dense(),
            Matrix::canonical(4, 2).unwrap()
        );
        assert!(SparseMatrix::<Real>::canonical(3, 3).is_err());
        assert_eq!(SparseMatrix::scalar(Real(7.0)).as_scalar().unwrap().0, 7.0);
        assert!(SparseMatrix::<Real>::zeros(2, 2).as_scalar().is_err());
    }

    #[test]
    fn transpose_matches_dense() {
        let s = sparse(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        assert_eq!(s.transpose().to_dense(), s.to_dense().transpose());
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn add_and_hadamard_match_dense() {
        let a = sparse(&[&[1.0, 0.0], &[2.0, 3.0]]);
        let b = sparse(&[&[0.0, 4.0], &[5.0, 0.0]]);
        assert_eq!(
            a.add(&b).unwrap().to_dense(),
            a.to_dense().add(&b.to_dense()).unwrap()
        );
        assert_eq!(
            a.hadamard(&b).unwrap().to_dense(),
            a.to_dense().hadamard(&b.to_dense()).unwrap()
        );
        let c = sparse(&[&[1.0]]);
        assert!(a.add(&c).is_err());
        assert!(a.hadamard(&c).is_err());
    }

    #[test]
    fn ring_subtraction_cancels_structurally() {
        let a: SparseMatrix<IntRing> =
            SparseMatrix::from_triplets(2, 2, vec![(0, 0, IntRing(3)), (1, 1, IntRing(2))])
                .unwrap();
        let diff = a.sub(&a).unwrap();
        assert!(diff.is_zero());
        assert_eq!(diff.nnz(), 0);
        assert_eq!(a.neg().get(0, 0).unwrap(), IntRing(-3));
    }

    #[test]
    fn matmul_matches_dense() {
        let a = sparse(&[&[1.0, 2.0, 0.0], &[0.0, 0.0, 3.0]]);
        let b = sparse(&[&[0.0, 1.0], &[1.0, 0.0], &[2.0, 2.0]]);
        assert_eq!(
            a.matmul(&b).unwrap().to_dense(),
            a.to_dense().matmul(&b.to_dense()).unwrap()
        );
        assert!(b.matmul(&sparse(&[&[1.0, 1.0]])).is_err());
    }

    #[test]
    fn matmul_drops_cancelled_entries() {
        // Over ℤ: [1 −1]·[1, 1]ᵀ = 0 must produce an empty row, not a stored 0.
        let a: SparseMatrix<IntRing> =
            SparseMatrix::from_triplets(1, 2, vec![(0, 0, IntRing(1)), (0, 1, IntRing(-1))])
                .unwrap();
        let b: SparseMatrix<IntRing> =
            SparseMatrix::from_triplets(2, 1, vec![(0, 0, IntRing(1)), (1, 0, IntRing(1))])
                .unwrap();
        let prod = a.matmul(&b).unwrap();
        assert_eq!(prod.nnz(), 0);
    }

    #[test]
    fn boolean_matmul_is_reachability_step() {
        let adj: SparseMatrix<Boolean> =
            SparseMatrix::from_triplets(3, 3, vec![(0, 1, Boolean(true)), (1, 2, Boolean(true))])
                .unwrap();
        let two = adj.matmul(&adj).unwrap();
        assert_eq!(two.get(0, 2).unwrap(), Boolean(true));
        assert_eq!(two.nnz(), 1);
    }

    #[test]
    fn minplus_zero_is_infinite_and_stays_unstored() {
        let inf = f64::INFINITY;
        let w: SparseMatrix<MinPlus> = SparseMatrix::from_dense(
            &Matrix::from_rows(vec![
                vec![MinPlus(0.0), MinPlus(2.0), MinPlus(inf)],
                vec![MinPlus(inf), MinPlus(0.0), MinPlus(3.0)],
                vec![MinPlus(inf), MinPlus(inf), MinPlus(0.0)],
            ])
            .unwrap(),
        );
        assert_eq!(w.nnz(), 5);
        let two = w.matmul(&w).unwrap();
        assert_eq!(two.get(0, 2).unwrap(), MinPlus(5.0));
        assert_eq!(two.to_dense(), w.to_dense().matmul(&w.to_dense()).unwrap());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = sparse(&[&[1.0, 2.0], &[0.0, 3.0]]);
        let x = vec![Real(4.0), Real(5.0)];
        let y = a.matvec(&x).unwrap();
        assert_eq!(y, vec![Real(14.0), Real(15.0)]);
        assert!(a.matvec(&[Real(1.0)]).is_err());
    }

    #[test]
    fn scalar_mul_and_zero_absorption() {
        let a = sparse(&[&[1.0, 0.0], &[2.0, 3.0]]);
        assert_eq!(
            a.scalar_mul(&Real(2.0)).to_dense(),
            a.to_dense().scalar_mul(&Real(2.0))
        );
        let zeroed = a.scalar_mul(&Real(0.0));
        assert!(zeroed.is_zero());
        assert_eq!(zeroed.nnz(), 0);
    }

    #[test]
    fn diag_trace_and_diagonal_vector() {
        let v = sparse(&[&[1.0], &[0.0], &[3.0]]);
        let d = v.diag().unwrap();
        assert_eq!(d.to_dense(), v.to_dense().diag().unwrap());
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.diagonal_vector().unwrap(), v);
        assert_eq!(d.trace().unwrap().0, 4.0);
        let nonvec = sparse(&[&[1.0, 2.0]]);
        assert!(nonvec.diag().is_err());
        assert!(nonvec.diagonal_vector().is_err());
        assert!(nonvec.trace().is_err());
    }

    #[test]
    fn pow_matches_dense() {
        let a = sparse(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert_eq!(a.pow(0).unwrap(), SparseMatrix::identity(2));
        assert_eq!(a.pow(3).unwrap().to_dense(), a.to_dense().pow(3).unwrap());
        assert!(sparse(&[&[1.0, 2.0]]).pow(2).is_err());
    }

    #[test]
    fn nnz_density_and_nat_semiring() {
        let s: SparseMatrix<Nat> =
            SparseMatrix::from_triplets(2, 2, vec![(0, 0, Nat(1)), (1, 0, Nat(2))]).unwrap();
        assert_eq!(s.nnz(), 2);
        assert!((s.density() - 0.5).abs() < 1e-12);
        assert_eq!(SparseMatrix::<Nat>::zeros(0, 5).density(), 0.0);
    }

    #[test]
    fn display_and_debug_mention_nnz() {
        let s = sparse(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let display = format!("{s}");
        assert!(display.contains("nnz=2"));
        let debug = format!("{s:?}");
        assert!(debug.contains("density"));
    }

    #[test]
    fn iter_entries_is_row_major_and_nonzero_only() {
        let s = sparse(&[&[0.0, 1.0], &[2.0, 0.0]]);
        let triples: Vec<_> = s.iter_entries().map(|(i, j, v)| (i, j, v.0)).collect();
        assert_eq!(triples, vec![(0, 1, 1.0), (1, 0, 2.0)]);
    }

    #[test]
    fn set_entry_updates_in_place_and_keeps_invariants() {
        let mut s = sparse(&[&[0.0, 1.0, 0.0], &[2.0, 0.0, 3.0], &[0.0, 0.0, 0.0]]);
        let mut d = s.to_dense();
        // Overwrite an existing entry, insert before/after stored columns,
        // insert into an empty row, clear an entry, clear an absent entry.
        for (i, j, v) in [
            (0, 1, 5.0),
            (1, 1, 7.0),
            (0, 0, 4.0),
            (2, 2, 9.0),
            (1, 0, 0.0),
            (2, 0, 0.0),
        ] {
            s.set_entry(i, j, Real(v)).unwrap();
            d.set(i, j, Real(v)).unwrap();
            assert_eq!(s, SparseMatrix::from_dense(&d), "after set ({i},{j})={v}");
        }
        assert_eq!(s.nnz(), 5);
        // Mutated matrices still multiply correctly.
        assert_eq!(s.matmul(&s).unwrap().to_dense(), d.matmul(&d).unwrap());
        assert!(matches!(
            s.set_entry(3, 0, Real(1.0)),
            Err(MatrixError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            s.set_entry(0, 9, Real(1.0)),
            Err(MatrixError::IndexOutOfBounds { .. })
        ));
    }
}
