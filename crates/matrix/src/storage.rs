//! The storage abstraction behind the evaluator: a common interface over
//! dense, sparse and adaptive matrix representations.
//!
//! The MATLANG semantics of Sections 2, 3 and 6 only ever manipulate
//! matrices through a fixed operation set (transpose, product, addition,
//! Hadamard product, scalar multiplication, `1(e)`, `diag(e)`, canonical
//! vectors and pointwise function application).  [`MatrixStorage`] captures
//! exactly that set, so the evaluator in `matlang_core` — and everything
//! built on it (graph algorithms, the RA⁺_K and WL translations) — is
//! generic over the backing representation:
//!
//! * [`Matrix`] — dense row-major storage, the seed implementation;
//! * [`SparseMatrix`] — CSR storage, `O(nnz)` kernels;
//! * [`MatrixRepr`] — adaptive storage that picks a representation per
//!   result using a density threshold.

use crate::repr::MatrixRepr;
use crate::sparse::SparseMatrix;
use crate::{Matrix, Result};
use matlang_semiring::Semiring;
use std::fmt::Debug;

/// A matrix representation the MATLANG evaluator can run on.
///
/// Implementations must agree exactly: for any two backends `A` and `B` and
/// any operation below, converting the operands with
/// [`from_dense`](MatrixStorage::from_dense), applying the operation, and
/// converting back with [`to_dense`](MatrixStorage::to_dense) must produce
/// identical dense matrices (the property suites in `crates/matrix/tests`
/// and `crates/core/tests` check this).
pub trait MatrixStorage: Clone + PartialEq + Debug + Send + Sync + Sized + 'static {
    /// The semiring of entries.
    type Elem: Semiring;

    /// The `rows × cols` zero matrix.
    fn zeros(rows: usize, cols: usize) -> Self;

    /// The `n × n` identity matrix.
    fn identity(n: usize) -> Self;

    /// A `1 × 1` matrix holding a single value.
    fn scalar(value: Self::Elem) -> Self;

    /// The `n × 1` ones vector (paper notation `1(e)`).
    fn ones_vector(n: usize) -> Self;

    /// The `i`-th canonical vector `bᵢⁿ` (0-indexed), used by loop semantics.
    fn canonical(n: usize, i: usize) -> Result<Self>;

    /// Exact conversion from dense storage.
    fn from_dense(dense: Matrix<Self::Elem>) -> Self;

    /// Exact conversion to dense storage.
    fn to_dense(&self) -> Matrix<Self::Elem>;

    /// Exact conversion from sparse (COO) storage.  Backends that can hold
    /// sparse data directly override this to avoid densifying.
    fn from_sparse(sparse: SparseMatrix<Self::Elem>) -> Self
    where
        Self: Sized,
    {
        Self::from_dense(sparse.to_dense())
    }

    /// Number of rows.
    fn rows(&self) -> usize;

    /// Number of columns.
    fn cols(&self) -> usize;

    /// The shape `(rows, cols)`.
    fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Whether this is a `1 × 1` matrix.
    fn is_scalar(&self) -> bool {
        self.shape() == (1, 1)
    }

    /// Whether this is a column vector (`n × 1`).
    fn is_vector(&self) -> bool {
        self.cols() == 1
    }

    /// Whether this matrix is square.
    fn is_square(&self) -> bool {
        self.rows() == self.cols()
    }

    /// The value of a `1 × 1` matrix.
    fn as_scalar(&self) -> Result<Self::Elem>;

    /// Number of non-zero entries.
    fn nnz(&self) -> usize;

    /// Fraction of entries that are non-zero (0 for an empty shape).
    fn density(&self) -> f64 {
        let total = self.rows() * self.cols();
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Heap bytes held by this matrix's backing buffers — exact per
    /// backend (`rows·cols·size_of::<K>()` dense; `indptr`/`indices`/
    /// `values` for CSR; the active variant for the adaptive wrapper) and
    /// O(1), so resource accounting can re-read it on every mutation.
    /// The conservative default prices the dense layout.
    fn heap_bytes(&self) -> usize {
        self.rows() * self.cols() * std::mem::size_of::<Self::Elem>()
    }

    /// The non-zero entries as owned `(row, col, value)` triples in
    /// row-major order.
    fn nonzero_entries(&self) -> Vec<(usize, usize, Self::Elem)>;

    /// Matrix transpose `eᵀ`.
    fn transpose(&self) -> Self;

    /// Matrix addition `e₁ + e₂` (entrywise `⊕`).
    fn add(&self, other: &Self) -> Result<Self>;

    /// Matrix product `e₁ · e₂`.
    fn matmul(&self, other: &Self) -> Result<Self>;

    /// Matrix product computed with up to `threads` worker threads.
    /// Implementations must be **bit-identical** to
    /// [`matmul`](MatrixStorage::matmul) for every operand pair and thread
    /// count — the row-partitioned kernels in [`crate::parallel`] guarantee
    /// this by running the serial per-row kernel on every row.  The default
    /// ignores `threads` and runs the serial product, so backends without a
    /// parallel kernel stay correct.
    fn matmul_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        let _ = threads;
        self.matmul(other)
    }

    /// Re-selects the storage representation according to a planner hint
    /// (`sparse = true` prefers CSR, `false` prefers dense).  Entries are
    /// never changed; single-representation backends ignore the hint, the
    /// adaptive [`MatrixRepr`] honors it via [`MatrixRepr::prefer`].
    fn prefer_repr(self, sparse: bool) -> Self {
        let _ = sparse;
        self
    }

    /// Hadamard (pointwise) product `e₁ ∘ e₂` (entrywise `⊙`).
    fn hadamard(&self, other: &Self) -> Result<Self>;

    /// Matrix addition computed with up to `threads` worker threads.
    /// Implementations must be **bit-identical** to
    /// [`add`](MatrixStorage::add); the default ignores `threads` and runs
    /// the serial kernel.
    fn add_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        let _ = threads;
        self.add(other)
    }

    /// Hadamard product computed with up to `threads` worker threads.
    /// Implementations must be **bit-identical** to
    /// [`hadamard`](MatrixStorage::hadamard); the default ignores `threads`
    /// and runs the serial kernel.
    fn hadamard_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        let _ = threads;
        self.hadamard(other)
    }

    /// Sets one entry **in place** — the incremental-update hook used by
    /// streaming/mutating workloads (e.g. the query server's `UPDATE`).
    /// Setting a zero clears the entry; backends must keep their structural
    /// invariants (CSR stores no explicit zeros) without rebuilding the
    /// matrix.
    fn set_entry(&mut self, row: usize, col: usize, value: Self::Elem) -> Result<()>;

    /// Scalar multiplication: every entry multiplied by `scalar`.
    fn scalar_mul(&self, scalar: &Self::Elem) -> Self;

    /// The paper's `diag(e)`: an `n × 1` vector becomes the `n × n` diagonal
    /// matrix.
    fn diag(&self) -> Result<Self>;

    /// Fused `diag(scale) · self` for an `n × 1` vector `scale` — the
    /// kernel behind the planner's diag-pushdown rewrite, which turns
    /// `diag(v) · A` into a row scaling instead of materializing the
    /// `n × n` diagonal and multiplying.  Implementations must agree
    /// exactly with the default (diagonalize, then multiply), including
    /// the error cases and their order: a non-vector `scale` fails like
    /// [`diag`](MatrixStorage::diag), a row-count mismatch fails like the
    /// product would.
    fn scale_rows(&self, scale: &Self) -> Result<Self> {
        scale.diag()?.matmul(self)
    }

    /// Fused `self · diag(scale)` for an `m × 1` vector `scale`: the
    /// column-scaling mirror of [`scale_rows`](MatrixStorage::scale_rows),
    /// with the same agreement requirements.
    fn scale_cols(&self, scale: &Self) -> Result<Self> {
        self.matmul(&scale.diag()?)
    }

    /// The trace of a square matrix.
    fn trace(&self) -> Result<Self::Elem>;

    /// `Aᵏ` for a square matrix (`k = 0` gives the identity).
    fn pow(&self, k: usize) -> Result<Self>;

    /// Pointwise combination of `k ≥ 1` same-shaped matrices via `f` — the
    /// semantics of MATLANG's `f(e₁, …, e_k)` operator.  Because an
    /// arbitrary `f` need not map zeros to zero, sparse backends evaluate
    /// this densely and re-compress afterwards.
    fn zip_with<F: Fn(&[Self::Elem]) -> Self::Elem>(matrices: &[&Self], f: F) -> Result<Self>;

    /// Reads one entry (zero if structurally absent) — the random-access
    /// hook behind delta propagation's entrywise rules (Hadamard, row/col
    /// scaling need `other`-side values only at the delta's support).
    fn get_entry(&self, row: usize, col: usize) -> Result<Self::Elem>;

    /// Masked merge: a new matrix equal to `self` except that every entry
    /// in `delta`'s support becomes `self[i,j] ⊕ delta[i,j]`.  This is the
    /// kernel that folds an accumulated delta overlay back into a cached
    /// value; under an idempotent `⊕` and an insert-only update it equals
    /// full recomputation.  The default goes entry by entry through
    /// [`get_entry`](MatrixStorage::get_entry)/[`set_entry`](MatrixStorage::set_entry)
    /// (right for dense storage); CSR overrides with one `O(nnz + Δ)`
    /// two-pointer merge.
    fn apply_delta(&self, delta: &SparseMatrix<Self::Elem>) -> Result<Self> {
        if self.shape() != delta.shape() {
            return Err(crate::MatrixError::ShapeMismatch {
                left: self.shape(),
                right: delta.shape(),
                op: "apply_delta",
            });
        }
        let mut out = self.clone();
        for (i, j, v) in delta.iter_entries() {
            let merged = out.get_entry(i, j)?.add(v);
            out.set_entry(i, j, merged)?;
        }
        Ok(out)
    }

    /// Sparse-delta × matrix product `delta · self`, returned sparse.
    /// For a point update this is the `Δ(A·B) = ΔA·B` rule: only the
    /// delta's few rows of the product are recomputed, costing
    /// `O(Δnnz · row-degree)` instead of a full product.  Backends override
    /// the (correct but densifying) default.
    fn matmul_delta_pre(
        &self,
        delta: &SparseMatrix<Self::Elem>,
    ) -> Result<SparseMatrix<Self::Elem>> {
        delta.matmul(&SparseMatrix::from_dense(&self.to_dense()))
    }

    /// Matrix × sparse-delta product `self · delta`, returned sparse —
    /// the mirror rule `Δ(A·B) = A·ΔB`.  The CSR override binary-searches
    /// each stored row of `self` for the delta's row indices, costing
    /// `O(rows · Δnnz · log degree)` — independent of `self`'s total `nnz`
    /// per delta entry — which is what makes point-update propagation
    /// through a big product cheap.
    fn matmul_delta_post(
        &self,
        delta: &SparseMatrix<Self::Elem>,
    ) -> Result<SparseMatrix<Self::Elem>> {
        SparseMatrix::from_dense(&self.to_dense()).matmul(delta)
    }
}

impl<K: Semiring> MatrixStorage for Matrix<K> {
    type Elem = K;

    fn zeros(rows: usize, cols: usize) -> Self {
        Matrix::zeros(rows, cols)
    }

    fn identity(n: usize) -> Self {
        Matrix::identity(n)
    }

    fn scalar(value: K) -> Self {
        Matrix::scalar(value)
    }

    fn ones_vector(n: usize) -> Self {
        Matrix::ones_vector(n)
    }

    fn canonical(n: usize, i: usize) -> Result<Self> {
        Matrix::canonical(n, i)
    }

    fn from_dense(dense: Matrix<K>) -> Self {
        dense
    }

    fn to_dense(&self) -> Matrix<K> {
        self.clone()
    }

    fn rows(&self) -> usize {
        Matrix::rows(self)
    }

    fn cols(&self) -> usize {
        Matrix::cols(self)
    }

    fn as_scalar(&self) -> Result<K> {
        Matrix::as_scalar(self)
    }

    fn nnz(&self) -> usize {
        Matrix::nnz(self)
    }

    fn heap_bytes(&self) -> usize {
        Matrix::heap_bytes(self)
    }

    fn nonzero_entries(&self) -> Vec<(usize, usize, K)> {
        self.iter_entries()
            .filter(|(_, _, v)| !v.is_zero())
            .map(|(i, j, v)| (i, j, v.clone()))
            .collect()
    }

    fn transpose(&self) -> Self {
        Matrix::transpose(self)
    }

    fn add(&self, other: &Self) -> Result<Self> {
        Matrix::add(self, other)
    }

    fn matmul(&self, other: &Self) -> Result<Self> {
        Matrix::matmul(self, other)
    }

    fn matmul_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        Matrix::matmul_threaded(self, other, threads)
    }

    fn hadamard(&self, other: &Self) -> Result<Self> {
        Matrix::hadamard(self, other)
    }

    fn add_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        Matrix::add_threaded(self, other, threads)
    }

    fn hadamard_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        Matrix::hadamard_threaded(self, other, threads)
    }

    fn set_entry(&mut self, row: usize, col: usize, value: K) -> Result<()> {
        Matrix::set(self, row, col, value)
    }

    fn scalar_mul(&self, scalar: &K) -> Self {
        Matrix::scalar_mul(self, scalar)
    }

    fn diag(&self) -> Result<Self> {
        Matrix::diag(self)
    }

    fn scale_rows(&self, scale: &Self) -> Result<Self> {
        Matrix::scale_rows(self, scale)
    }

    fn scale_cols(&self, scale: &Self) -> Result<Self> {
        Matrix::scale_cols(self, scale)
    }

    fn trace(&self) -> Result<K> {
        Matrix::trace(self)
    }

    fn pow(&self, k: usize) -> Result<Self> {
        Matrix::pow(self, k)
    }

    fn zip_with<F: Fn(&[K]) -> K>(matrices: &[&Self], f: F) -> Result<Self> {
        Matrix::zip_with(matrices, f)
    }

    fn get_entry(&self, row: usize, col: usize) -> Result<K> {
        Matrix::get(self, row, col).cloned()
    }

    fn matmul_delta_pre(&self, delta: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        let (rows, cols) = self.shape();
        if delta.cols() != rows {
            return Err(crate::MatrixError::InnerDimensionMismatch {
                left: delta.shape(),
                right: self.shape(),
            });
        }
        let mut out = crate::CsrBuilder::new(delta.rows(), cols, delta.nnz());
        let mut acc: Vec<K> = vec![K::zero(); cols];
        for i in 0..delta.rows() {
            let (ks, vs) = delta.row_entries(i);
            if !ks.is_empty() {
                for slot in acc.iter_mut() {
                    *slot = K::zero();
                }
                for (k, v) in ks.iter().zip(vs) {
                    let row = &self.entries()[k * cols..(k + 1) * cols];
                    for (j, m) in row.iter().enumerate() {
                        if !m.is_zero() {
                            acc[j] = acc[j].add(&v.mul(m));
                        }
                    }
                }
                for (j, v) in acc.iter().enumerate() {
                    if !v.is_zero() {
                        out.push(j, v.clone());
                    }
                }
            }
            out.finish_row();
        }
        Ok(out.build())
    }

    fn matmul_delta_post(&self, delta: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        let (rows, cols) = self.shape();
        if cols != delta.rows() {
            return Err(crate::MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: delta.shape(),
            });
        }
        let entries: Vec<(usize, usize, &K)> = delta.iter_entries().collect();
        let mut out = crate::CsrBuilder::new(rows, delta.cols(), entries.len().max(1));
        let mut acc: Vec<(usize, K)> = Vec::new();
        for i in 0..rows {
            let row = &self.entries()[i * cols..(i + 1) * cols];
            acc.clear();
            for &(k, j, dv) in &entries {
                let m = &row[k];
                if m.is_zero() {
                    continue;
                }
                let term = m.mul(dv);
                match acc.iter_mut().find(|(jj, _)| *jj == j) {
                    Some((_, a)) => *a = a.add(&term),
                    None => acc.push((j, term)),
                }
            }
            acc.sort_by_key(|&(j, _)| j);
            for (j, v) in acc.drain(..) {
                out.push(j, v);
            }
            out.finish_row();
        }
        Ok(out.build())
    }
}

impl<K: Semiring> MatrixStorage for SparseMatrix<K> {
    type Elem = K;

    fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix::zeros(rows, cols)
    }

    fn identity(n: usize) -> Self {
        SparseMatrix::identity(n)
    }

    fn scalar(value: K) -> Self {
        SparseMatrix::scalar(value)
    }

    fn ones_vector(n: usize) -> Self {
        SparseMatrix::ones_vector(n)
    }

    fn canonical(n: usize, i: usize) -> Result<Self> {
        SparseMatrix::canonical(n, i)
    }

    fn from_dense(dense: Matrix<K>) -> Self {
        SparseMatrix::from_dense(&dense)
    }

    fn from_sparse(sparse: SparseMatrix<K>) -> Self {
        sparse
    }

    fn to_dense(&self) -> Matrix<K> {
        SparseMatrix::to_dense(self)
    }

    fn rows(&self) -> usize {
        SparseMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        SparseMatrix::cols(self)
    }

    fn as_scalar(&self) -> Result<K> {
        SparseMatrix::as_scalar(self)
    }

    fn nnz(&self) -> usize {
        SparseMatrix::nnz(self)
    }

    fn heap_bytes(&self) -> usize {
        SparseMatrix::heap_bytes(self)
    }

    fn nonzero_entries(&self) -> Vec<(usize, usize, K)> {
        self.iter_entries()
            .map(|(i, j, v)| (i, j, v.clone()))
            .collect()
    }

    fn transpose(&self) -> Self {
        SparseMatrix::transpose(self)
    }

    fn add(&self, other: &Self) -> Result<Self> {
        SparseMatrix::add(self, other)
    }

    fn matmul(&self, other: &Self) -> Result<Self> {
        SparseMatrix::matmul(self, other)
    }

    fn matmul_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        SparseMatrix::matmul_threaded(self, other, threads)
    }

    fn hadamard(&self, other: &Self) -> Result<Self> {
        SparseMatrix::hadamard(self, other)
    }

    fn set_entry(&mut self, row: usize, col: usize, value: K) -> Result<()> {
        SparseMatrix::set_entry(self, row, col, value)
    }

    fn scalar_mul(&self, scalar: &K) -> Self {
        SparseMatrix::scalar_mul(self, scalar)
    }

    fn diag(&self) -> Result<Self> {
        SparseMatrix::diag(self)
    }

    fn scale_rows(&self, scale: &Self) -> Result<Self> {
        SparseMatrix::scale_rows(self, scale)
    }

    fn scale_cols(&self, scale: &Self) -> Result<Self> {
        SparseMatrix::scale_cols(self, scale)
    }

    fn trace(&self) -> Result<K> {
        SparseMatrix::trace(self)
    }

    fn pow(&self, k: usize) -> Result<Self> {
        SparseMatrix::pow(self, k)
    }

    fn zip_with<F: Fn(&[K]) -> K>(matrices: &[&Self], f: F) -> Result<Self> {
        // An arbitrary pointwise f need not preserve zeros, so evaluate
        // densely and compress the result back to CSR.
        let dense: Vec<Matrix<K>> = matrices.iter().map(|m| m.to_dense()).collect();
        let refs: Vec<&Matrix<K>> = dense.iter().collect();
        Ok(SparseMatrix::from_dense(&Matrix::zip_with(&refs, f)?))
    }

    fn get_entry(&self, row: usize, col: usize) -> Result<K> {
        SparseMatrix::get(self, row, col)
    }

    fn apply_delta(&self, delta: &SparseMatrix<K>) -> Result<Self> {
        // One two-pointer row merge; `CsrBuilder::push` drops zero sums, so
        // the no-explicit-zeros CSR invariant is preserved.
        SparseMatrix::add(self, delta)
    }

    fn matmul_delta_pre(&self, delta: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        delta.matmul(self)
    }

    fn matmul_delta_post(&self, delta: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        if self.cols() != delta.rows() {
            return Err(crate::MatrixError::InnerDimensionMismatch {
                left: self.shape(),
                right: delta.shape(),
            });
        }
        let entries: Vec<(usize, usize, &K)> = delta.iter_entries().collect();
        let mut out = crate::CsrBuilder::new(self.rows(), delta.cols(), entries.len().max(1));
        let mut acc: Vec<(usize, K)> = Vec::new();
        for i in 0..self.rows() {
            let (cols_i, vals_i) = self.row_entries(i);
            acc.clear();
            for &(k, j, dv) in &entries {
                if let Ok(pos) = cols_i.binary_search(&k) {
                    let term = vals_i[pos].mul(dv);
                    match acc.iter_mut().find(|(jj, _)| *jj == j) {
                        Some((_, a)) => *a = a.add(&term),
                        None => acc.push((j, term)),
                    }
                }
            }
            acc.sort_by_key(|&(j, _)| j);
            for (j, v) in acc.drain(..) {
                out.push(j, v);
            }
            out.finish_row();
        }
        Ok(out.build())
    }
}

impl<K: Semiring> MatrixStorage for MatrixRepr<K> {
    type Elem = K;

    fn zeros(rows: usize, cols: usize) -> Self {
        MatrixRepr::Sparse(SparseMatrix::zeros(rows, cols)).normalized()
    }

    fn identity(n: usize) -> Self {
        MatrixRepr::Sparse(SparseMatrix::identity(n)).normalized()
    }

    fn scalar(value: K) -> Self {
        MatrixRepr::Dense(Matrix::scalar(value))
    }

    fn ones_vector(n: usize) -> Self {
        MatrixRepr::Dense(Matrix::ones_vector(n))
    }

    fn canonical(n: usize, i: usize) -> Result<Self> {
        Ok(MatrixRepr::Sparse(SparseMatrix::canonical(n, i)?).normalized())
    }

    fn from_dense(dense: Matrix<K>) -> Self {
        MatrixRepr::Dense(dense).normalized()
    }

    fn from_sparse(sparse: SparseMatrix<K>) -> Self {
        MatrixRepr::from_sparse_auto(sparse)
    }

    fn to_dense(&self) -> Matrix<K> {
        MatrixRepr::to_dense(self)
    }

    fn rows(&self) -> usize {
        MatrixRepr::rows(self)
    }

    fn cols(&self) -> usize {
        MatrixRepr::cols(self)
    }

    fn as_scalar(&self) -> Result<K> {
        MatrixRepr::as_scalar(self)
    }

    fn nnz(&self) -> usize {
        MatrixRepr::nnz(self)
    }

    fn heap_bytes(&self) -> usize {
        MatrixRepr::heap_bytes(self)
    }

    fn nonzero_entries(&self) -> Vec<(usize, usize, K)> {
        match self {
            MatrixRepr::Dense(d) => MatrixStorage::nonzero_entries(d),
            MatrixRepr::Sparse(s) => MatrixStorage::nonzero_entries(s),
        }
    }

    fn transpose(&self) -> Self {
        MatrixRepr::transpose(self)
    }

    fn add(&self, other: &Self) -> Result<Self> {
        MatrixRepr::add(self, other)
    }

    fn matmul(&self, other: &Self) -> Result<Self> {
        MatrixRepr::matmul(self, other)
    }

    fn matmul_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        MatrixRepr::matmul_threaded(self, other, threads)
    }

    fn prefer_repr(self, sparse: bool) -> Self {
        MatrixRepr::prefer(self, sparse)
    }

    fn hadamard(&self, other: &Self) -> Result<Self> {
        MatrixRepr::hadamard(self, other)
    }

    fn add_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        MatrixRepr::add_threaded(self, other, threads)
    }

    fn hadamard_threaded(&self, other: &Self, threads: usize) -> Result<Self> {
        MatrixRepr::hadamard_threaded(self, other, threads)
    }

    fn set_entry(&mut self, row: usize, col: usize, value: K) -> Result<()> {
        MatrixRepr::set_entry(self, row, col, value)
    }

    fn scalar_mul(&self, scalar: &K) -> Self {
        MatrixRepr::scalar_mul(self, scalar)
    }

    fn diag(&self) -> Result<Self> {
        MatrixRepr::diag(self)
    }

    fn scale_rows(&self, scale: &Self) -> Result<Self> {
        MatrixRepr::scale_rows(self, scale)
    }

    fn scale_cols(&self, scale: &Self) -> Result<Self> {
        MatrixRepr::scale_cols(self, scale)
    }

    fn trace(&self) -> Result<K> {
        MatrixRepr::trace(self)
    }

    fn pow(&self, k: usize) -> Result<Self> {
        MatrixRepr::pow(self, k)
    }

    fn zip_with<F: Fn(&[K]) -> K>(matrices: &[&Self], f: F) -> Result<Self> {
        MatrixRepr::zip_with(matrices, f)
    }

    fn get_entry(&self, row: usize, col: usize) -> Result<K> {
        MatrixRepr::get(self, row, col)
    }

    fn apply_delta(&self, delta: &SparseMatrix<K>) -> Result<Self> {
        // Keep the current representation: a patched cache entry stays in
        // whatever form the executor's repr hints chose for it.
        match self {
            MatrixRepr::Dense(d) => Ok(MatrixRepr::Dense(MatrixStorage::apply_delta(d, delta)?)),
            MatrixRepr::Sparse(s) => Ok(MatrixRepr::Sparse(s.add(delta)?)),
        }
    }

    fn matmul_delta_pre(&self, delta: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        match self {
            MatrixRepr::Dense(d) => MatrixStorage::matmul_delta_pre(d, delta),
            MatrixRepr::Sparse(s) => MatrixStorage::matmul_delta_pre(s, delta),
        }
    }

    fn matmul_delta_post(&self, delta: &SparseMatrix<K>) -> Result<SparseMatrix<K>> {
        match self {
            MatrixRepr::Dense(d) => MatrixStorage::matmul_delta_post(d, delta),
            MatrixRepr::Sparse(s) => MatrixStorage::matmul_delta_post(s, delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::Real;

    fn backend_agreement<M: MatrixStorage<Elem = Real>>() {
        let a = Matrix::from_f64_rows(&[&[1.0, 0.0], &[2.0, 3.0]]).unwrap();
        let b = Matrix::from_f64_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let ma = M::from_dense(a.clone());
        let mb = M::from_dense(b.clone());
        assert_eq!(ma.to_dense(), a);
        assert_eq!(ma.shape(), (2, 2));
        assert!(ma.is_square() && !ma.is_vector() && !ma.is_scalar());
        assert_eq!(ma.add(&mb).unwrap().to_dense(), a.add(&b).unwrap());
        assert_eq!(ma.matmul(&mb).unwrap().to_dense(), a.matmul(&b).unwrap());
        assert_eq!(
            ma.hadamard(&mb).unwrap().to_dense(),
            a.hadamard(&b).unwrap()
        );
        assert_eq!(ma.transpose().to_dense(), a.transpose());
        assert_eq!(ma.trace().unwrap(), a.trace().unwrap());
        assert_eq!(ma.pow(2).unwrap().to_dense(), a.pow(2).unwrap());
        assert_eq!(
            ma.scalar_mul(&Real(2.0)).to_dense(),
            a.scalar_mul(&Real(2.0))
        );
        assert_eq!(M::identity(2).to_dense(), Matrix::identity(2));
        assert_eq!(M::zeros(2, 3).to_dense(), Matrix::zeros(2, 3));
        assert_eq!(M::ones_vector(3).to_dense(), Matrix::ones_vector(3));
        assert_eq!(
            M::canonical(3, 1).unwrap().to_dense(),
            Matrix::canonical(3, 1).unwrap()
        );
        assert_eq!(M::scalar(Real(5.0)).as_scalar().unwrap(), Real(5.0));
        assert_eq!(ma.nnz(), 3);
        assert!((ma.density() - 0.75).abs() < 1e-12);
        assert_eq!(ma.nonzero_entries().len(), 3);
        let doubled = M::zip_with(&[&ma], |vs| Real(vs[0].0 * 2.0)).unwrap();
        assert_eq!(doubled.to_dense(), a.scalar_mul(&Real(2.0)));
        let vec = M::from_dense(Matrix::from_f64_rows(&[&[1.0], &[0.0]]).unwrap());
        assert_eq!(
            vec.diag().unwrap().to_dense(),
            Matrix::from_f64_rows(&[&[1.0, 0.0], &[0.0, 0.0]]).unwrap()
        );
        // The fused diagonal-product kernels must agree exactly with
        // materializing the diagonal and multiplying.
        let scale = M::from_dense(Matrix::from_f64_rows(&[&[3.0], &[0.0]]).unwrap());
        assert_eq!(
            ma.scale_rows(&scale).unwrap().to_dense(),
            scale.diag().unwrap().matmul(&ma).unwrap().to_dense()
        );
        assert_eq!(
            ma.scale_cols(&scale).unwrap().to_dense(),
            ma.matmul(&scale.diag().unwrap()).unwrap().to_dense()
        );
        // Error cases mirror the unfused path: non-vector scale, mismatch.
        assert!(ma.scale_rows(&mb).is_err());
        assert!(ma.scale_cols(&mb).is_err());
        let long = M::from_dense(Matrix::from_f64_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap());
        assert!(ma.scale_rows(&long).is_err());
        assert!(ma.scale_cols(&long).is_err());
    }

    /// The delta kernels must agree exactly with the unfused reference:
    /// `apply_delta` with an entrywise `⊕` merge, and the one-sided delta
    /// products with full products against the densified delta.
    fn delta_kernel_agreement<M: MatrixStorage<Elem = Real>>() {
        let a =
            Matrix::from_f64_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]).unwrap();
        let ma = M::from_dense(a.clone());
        assert_eq!(ma.get_entry(0, 2).unwrap(), Real(2.0));
        assert_eq!(ma.get_entry(1, 0).unwrap(), Real(0.0));
        assert!(ma.get_entry(3, 0).is_err());

        let delta = SparseMatrix::from_triplets(
            3,
            3,
            vec![(0, 1, Real(7.0)), (2, 2, Real(1.0)), (1, 0, Real(2.0))],
        )
        .unwrap();
        let patched = ma.apply_delta(&delta).unwrap();
        let expected = a.add(&delta.to_dense()).unwrap();
        assert_eq!(patched.to_dense(), expected);

        let pre = ma.matmul_delta_pre(&delta).unwrap();
        assert_eq!(
            pre.to_dense(),
            delta.to_dense().matmul(&a).unwrap(),
            "delta·self diverged"
        );
        let post = ma.matmul_delta_post(&delta).unwrap();
        assert_eq!(
            post.to_dense(),
            a.matmul(&delta.to_dense()).unwrap(),
            "self·delta diverged"
        );

        // A rectangular case exercises the shape plumbing: 3×2 delta·self
        // needs delta cols = self rows.
        let rect = Matrix::from_f64_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[3.0, 0.0]]).unwrap();
        let mrect = M::from_dense(rect.clone());
        let dvec = SparseMatrix::from_triplets(1, 3, vec![(0, 1, Real(5.0))]).unwrap();
        assert_eq!(
            mrect.matmul_delta_pre(&dvec).unwrap().to_dense(),
            dvec.to_dense().matmul(&rect).unwrap()
        );
        let dpost = SparseMatrix::from_triplets(2, 4, vec![(1, 3, Real(2.0))]).unwrap();
        assert_eq!(
            mrect.matmul_delta_post(&dpost).unwrap().to_dense(),
            rect.matmul(&dpost.to_dense()).unwrap()
        );

        // Shape errors mirror the unfused path.
        assert!(ma.apply_delta(&dpost).is_err());
        assert!(ma.matmul_delta_pre(&dpost).is_err());
        assert!(mrect.matmul_delta_post(&dvec).is_err());
    }

    #[test]
    fn dense_delta_kernels_agree() {
        delta_kernel_agreement::<Matrix<Real>>();
    }

    #[test]
    fn sparse_delta_kernels_agree() {
        delta_kernel_agreement::<SparseMatrix<Real>>();
    }

    #[test]
    fn adaptive_delta_kernels_agree() {
        delta_kernel_agreement::<MatrixRepr<Real>>();
    }

    #[test]
    fn dense_backend_agrees_with_itself() {
        backend_agreement::<Matrix<Real>>();
    }

    #[test]
    fn sparse_backend_agrees_with_dense() {
        backend_agreement::<SparseMatrix<Real>>();
    }

    #[test]
    fn adaptive_backend_agrees_with_dense() {
        backend_agreement::<MatrixRepr<Real>>();
    }

    /// `heap_bytes` is exact and reproducible from shape/nnz per backend:
    /// dense prices every entry, CSR prices `indptr`/`indices`/`values`,
    /// and the adaptive wrapper prices whichever variant is active.
    #[test]
    fn heap_bytes_exact_per_backend() {
        let elem = std::mem::size_of::<Real>();
        let word = std::mem::size_of::<usize>();

        let dense = Matrix::<Real>::from_f64_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 3.0]]).unwrap();
        assert_eq!(MatrixStorage::heap_bytes(&dense), 2 * 3 * elem);

        let sparse = SparseMatrix::from_dense(&dense);
        assert_eq!(sparse.nnz(), 3);
        assert_eq!(
            MatrixStorage::heap_bytes(&sparse),
            (2 + 1 + 3) * word + 3 * elem
        );

        let adaptive_sparse = MatrixRepr::Sparse(sparse.clone());
        assert_eq!(
            MatrixStorage::heap_bytes(&adaptive_sparse),
            MatrixStorage::heap_bytes(&sparse)
        );
        let adaptive_dense = MatrixRepr::Dense(dense.clone());
        assert_eq!(
            MatrixStorage::heap_bytes(&adaptive_dense),
            MatrixStorage::heap_bytes(&dense)
        );

        // Empty shapes account only for the CSR row-pointer array.
        assert_eq!(MatrixStorage::heap_bytes(&Matrix::<Real>::zeros(0, 0)), 0);
        assert_eq!(
            MatrixStorage::heap_bytes(&SparseMatrix::<Real>::zeros(4, 4)),
            5 * word
        );
    }
}
