//! Edge-case coverage for the mixed sparse·dense / dense·sparse product
//! kernels (`crates/matrix/src/mixed.rs`): degenerate and extreme shapes,
//! all-zero CSR operands, checked against dense-kernel parity over the
//! Boolean, ℕ and min-plus semirings.
//!
//! The mixed kernels walk only the stored entries of the sparse operand, so
//! the shapes most likely to expose an indexing or bounds bug are exactly
//! the ones a random graph never produces: zero-row/zero-column matrices,
//! `1×n` / `n×1` strips, and operands with no stored entries at all.

use matlang_matrix::{Matrix, SparseMatrix};
use matlang_semiring::{Boolean, MinPlus, Nat, Semiring};

/// Asserts both mixed kernels agree with the dense product for `a · b`.
fn assert_mixed_parity<K: Semiring>(a: &Matrix<K>, b: &Matrix<K>) {
    let expected = a.matmul(b).expect("dense product");
    let sa = SparseMatrix::from_dense(a);
    let sb = SparseMatrix::from_dense(b);
    assert_eq!(
        sa.matmul_dense(b).expect("sparse·dense"),
        expected,
        "sparse·dense diverged for {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    assert_eq!(
        a.matmul_sparse(&sb).expect("dense·sparse"),
        expected,
        "dense·sparse diverged for {:?} · {:?}",
        a.shape(),
        b.shape()
    );
}

/// A deterministic dense matrix with a mix of zero and non-zero entries,
/// built through `from_f64` so the same pattern works over any semiring.
fn patterned<K: Semiring>(rows: usize, cols: usize, stride: usize) -> Matrix<K> {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            if (i * cols + j) % stride.max(1) == 0 {
                m.set(i, j, K::from_f64(((i + 2 * j) % 5 + 1) as f64))
                    .expect("in bounds");
            }
        }
    }
    m
}

fn edge_shapes<K: Semiring>() -> Vec<(Matrix<K>, Matrix<K>)> {
    vec![
        // Empty inner dimension: (2×0)·(0×3) is the 2×3 zero matrix.
        (Matrix::zeros(2, 0), Matrix::zeros(0, 3)),
        // Empty outer dimensions.
        (Matrix::zeros(0, 4), patterned(4, 3, 2)),
        (patterned(3, 4, 2), Matrix::zeros(4, 0)),
        // Fully empty.
        (Matrix::zeros(0, 0), Matrix::zeros(0, 0)),
        // 1×n row strip times n×1 column strip (and the outer product).
        (patterned(1, 7, 2), patterned(7, 1, 3)),
        (patterned(7, 1, 3), patterned(1, 7, 2)),
        // n×1 and 1×n against square operands.
        (patterned(1, 5, 1), patterned(5, 5, 3)),
        (patterned(5, 5, 3), patterned(5, 1, 2)),
        // Scalar-ish 1×1 products.
        (patterned(1, 1, 1), patterned(1, 7, 2)),
        // All-zero CSR operand on either side.
        (Matrix::zeros(4, 6), patterned(6, 3, 2)),
        (patterned(3, 4, 2), Matrix::zeros(4, 5)),
        (Matrix::zeros(3, 3), Matrix::zeros(3, 3)),
    ]
}

fn run_edge_shapes<K: Semiring>() {
    for (a, b) in edge_shapes::<K>() {
        assert_mixed_parity(&a, &b);
    }
}

#[test]
fn mixed_edge_shapes_boolean() {
    run_edge_shapes::<Boolean>();
}

#[test]
fn mixed_edge_shapes_nat() {
    run_edge_shapes::<Nat>();
}

#[test]
fn mixed_edge_shapes_minplus() {
    // Min-plus is the adversarial semiring here: its zero is +∞, so any
    // kernel that confuses "absent entry" with the number 0 diverges.
    run_edge_shapes::<MinPlus>();
}

#[test]
fn all_zero_csr_times_all_zero_csr_is_zero() {
    let a: Matrix<MinPlus> = Matrix::zeros(5, 4);
    let b: Matrix<MinPlus> = Matrix::zeros(4, 5);
    let sa = SparseMatrix::from_dense(&a);
    let product = sa.matmul_dense(&b).unwrap();
    assert_eq!(product.shape(), (5, 5));
    // Every entry is the min-plus zero (+∞), not the number 0.
    assert_eq!(product.nnz(), 0);
    assert_eq!(product, a.matmul(&b).unwrap());
}

#[test]
fn single_entry_strips_hit_every_position() {
    // A 1×n sparse row with its single non-zero at each position in turn,
    // against a patterned dense operand: exercises the column-offset
    // arithmetic of the mixed kernels entry by entry.
    let b = patterned::<Nat>(6, 4, 2);
    for k in 0..6 {
        let mut a: Matrix<Nat> = Matrix::zeros(1, 6);
        a.set(0, k, Nat(3)).unwrap();
        assert_mixed_parity(&a, &b);
        let mut col: Matrix<Nat> = Matrix::zeros(6, 1);
        col.set(k, 0, Nat(2)).unwrap();
        assert_mixed_parity(&b.transpose(), &col);
    }
}
