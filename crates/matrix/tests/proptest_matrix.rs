//! Property-based tests for the algebraic laws of dense semiring matrices.

use matlang_matrix::{Matrix, RandomMatrixConfig};
use matlang_semiring::{Boolean, Nat, Real};
use proptest::prelude::*;

/// Random small natural-number matrix (exact arithmetic, so laws hold exactly).
fn nat_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<Nat>> {
    proptest::collection::vec(0u64..20, rows * cols).prop_map(move |data| {
        Matrix::from_vec(rows, cols, data.into_iter().map(Nat).collect()).unwrap()
    })
}

fn bool_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<Boolean>> {
    proptest::collection::vec(any::<bool>(), rows * cols).prop_map(move |data| {
        Matrix::from_vec(rows, cols, data.into_iter().map(Boolean).collect()).unwrap()
    })
}

proptest! {
    #[test]
    fn transpose_is_an_involution(m in nat_matrix(3, 4)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_reverses_products(a in nat_matrix(3, 3), b in nat_matrix(3, 3)) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn addition_is_commutative_and_associative(
        a in nat_matrix(3, 3),
        b in nat_matrix(3, 3),
        c in nat_matrix(3, 3),
    ) {
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        prop_assert_eq!(
            a.add(&b).unwrap().add(&c).unwrap(),
            a.add(&b.add(&c).unwrap()).unwrap()
        );
    }

    #[test]
    fn matmul_is_associative(
        a in nat_matrix(2, 3),
        b in nat_matrix(3, 2),
        c in nat_matrix(2, 2),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in nat_matrix(3, 3),
        b in nat_matrix(3, 3),
        c in nat_matrix(3, 3),
    ) {
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn identity_is_neutral_for_matmul(a in nat_matrix(4, 4)) {
        let id = Matrix::<Nat>::identity(4);
        prop_assert_eq!(a.matmul(&id).unwrap(), a.clone());
        prop_assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn zero_annihilates_matmul(a in nat_matrix(3, 3)) {
        let zero = Matrix::<Nat>::zeros(3, 3);
        prop_assert!(a.matmul(&zero).unwrap().is_zero());
        prop_assert!(zero.matmul(&a).unwrap().is_zero());
    }

    #[test]
    fn hadamard_is_commutative(a in nat_matrix(3, 3), b in nat_matrix(3, 3)) {
        prop_assert_eq!(a.hadamard(&b).unwrap(), b.hadamard(&a).unwrap());
    }

    #[test]
    fn diag_of_diagonal_vector_roundtrip(a in nat_matrix(4, 1)) {
        let d = a.diag().unwrap();
        prop_assert_eq!(d.diagonal_vector().unwrap(), a);
    }

    #[test]
    fn trace_is_invariant_under_transpose(a in nat_matrix(4, 4)) {
        prop_assert_eq!(a.trace().unwrap(), a.transpose().trace().unwrap());
    }

    #[test]
    fn boolean_matmul_matches_reachability_semantics(a in bool_matrix(3, 3), b in bool_matrix(3, 3)) {
        let prod = a.matmul(&b).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = (0..3).any(|k| a.get(i, k).unwrap().0 && b.get(k, j).unwrap().0);
                prop_assert_eq!(prod.get(i, j).unwrap().0, expected);
            }
        }
    }

    #[test]
    fn canonical_vectors_select_columns(j in 0usize..4, a in nat_matrix(4, 4)) {
        let bj = Matrix::<Nat>::canonical(4, j).unwrap();
        prop_assert_eq!(a.matmul(&bj).unwrap(), a.column(j).unwrap());
    }

    #[test]
    fn canonical_vectors_select_entries(i in 0usize..4, j in 0usize..4, a in nat_matrix(4, 4)) {
        let bi = Matrix::<Nat>::canonical(4, i).unwrap();
        let bj = Matrix::<Nat>::canonical(4, j).unwrap();
        let entry = bi.transpose().matmul(&a).unwrap().matmul(&bj).unwrap();
        prop_assert_eq!(entry.as_scalar().unwrap(), a.get(i, j).unwrap().clone());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gauss_jordan_inverse_is_a_two_sided_inverse(seed in 0u64..500) {
        let a: Matrix<Real> = matlang_matrix::random_invertible(5, seed);
        let inv = a.inverse().unwrap();
        let id = Matrix::<Real>::identity(5);
        prop_assert!(a.matmul(&inv).unwrap().approx_eq(&id, 1e-6));
        prop_assert!(inv.matmul(&a).unwrap().approx_eq(&id, 1e-6));
    }

    #[test]
    fn determinant_is_multiplicative(seed in 0u64..200) {
        let a: Matrix<Real> = matlang_matrix::random_invertible(4, seed);
        let b: Matrix<Real> = matlang_matrix::random_invertible(4, seed + 1000);
        let det_ab = a.matmul(&b).unwrap().determinant().unwrap().0;
        let det_a_det_b = a.determinant().unwrap().0 * b.determinant().unwrap().0;
        let scale = det_ab.abs().max(det_a_det_b.abs()).max(1.0);
        prop_assert!((det_ab - det_a_det_b).abs() / scale < 1e-6);
    }

    #[test]
    fn random_matrix_respects_bounds(seed in 0u64..200) {
        let cfg = RandomMatrixConfig { seed, min_value: -2.0, max_value: 3.0, ..Default::default() };
        let m: Matrix<Real> = matlang_matrix::random_matrix(4, 4, &cfg);
        prop_assert!(m.entries().iter().all(|v| v.0 >= -2.0 && v.0 <= 3.0));
    }
}
