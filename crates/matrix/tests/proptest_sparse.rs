//! Property-based parity tests for the sparse subsystem: the sparse↔dense
//! roundtrip is the identity, and every sparse kernel agrees with its dense
//! counterpart over the `Boolean`, `Nat` and `Tropical` (min-plus)
//! semirings.  The adaptive [`MatrixRepr`] must agree as well, whatever
//! representation its density heuristic picks.

use matlang_matrix::{Matrix, MatrixRepr, SparseMatrix};
use matlang_semiring::{Boolean, MinPlus, Nat, Semiring};
use proptest::prelude::*;

/// Sparse-ish random natural-number matrix: most entries are zero, exercising
/// the compressed paths; values stay small so arithmetic is exact.
fn nat_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<Nat>> {
    proptest::collection::vec(0u64..8, rows * cols).prop_map(move |data| {
        Matrix::from_vec(
            rows,
            cols,
            data.into_iter()
                .map(|v| if v < 5 { Nat(0) } else { Nat(v) })
                .collect(),
        )
        .unwrap()
    })
}

fn bool_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<Boolean>> {
    proptest::collection::vec(0u64..4, rows * cols).prop_map(move |data| {
        Matrix::from_vec(
            rows,
            cols,
            data.into_iter().map(|v| Boolean(v == 0)).collect(),
        )
        .unwrap()
    })
}

/// Tropical matrix where the semiring zero (`+∞`) is the common entry.
fn tropical_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<MinPlus>> {
    proptest::collection::vec(0i64..10, rows * cols).prop_map(move |data| {
        Matrix::from_vec(
            rows,
            cols,
            data.into_iter()
                .map(|v| {
                    if v < 6 {
                        MinPlus::zero()
                    } else {
                        MinPlus(v as f64)
                    }
                })
                .collect(),
        )
        .unwrap()
    })
}

/// Asserts that every kernel agrees between the dense matrix `a` (and `b`)
/// and their sparse / adaptive conversions.
fn assert_kernels_agree<K: Semiring>(a: &Matrix<K>, b: &Matrix<K>) {
    let sa = SparseMatrix::from_dense(a);
    let sb = SparseMatrix::from_dense(b);
    let ra = MatrixRepr::from_dense_auto(a.clone());
    let rb = MatrixRepr::from_dense_auto(b.clone());

    // Roundtrip is the identity.
    assert_eq!(&sa.to_dense(), a);
    assert_eq!(&ra.to_dense(), a);

    // nnz / density agree.
    assert_eq!(sa.nnz(), a.nnz());
    assert!((sa.density() - a.density()).abs() < 1e-12);

    // Unary kernels.
    assert_eq!(sa.transpose().to_dense(), a.transpose());
    assert_eq!(ra.transpose().to_dense(), a.transpose());
    let k = K::from_f64(2.0);
    assert_eq!(sa.scalar_mul(&k).to_dense(), a.scalar_mul(&k));
    assert_eq!(ra.scalar_mul(&k).to_dense(), a.scalar_mul(&k));

    // Binary, same-shape kernels.
    assert_eq!(sa.add(&sb).unwrap().to_dense(), a.add(b).unwrap());
    assert_eq!(ra.add(&rb).unwrap().to_dense(), a.add(b).unwrap());
    assert_eq!(sa.hadamard(&sb).unwrap().to_dense(), a.hadamard(b).unwrap());
    assert_eq!(ra.hadamard(&rb).unwrap().to_dense(), a.hadamard(b).unwrap());

    // Products (square inputs only, by construction below).
    if a.cols() == b.rows() {
        assert_eq!(sa.matmul(&sb).unwrap().to_dense(), a.matmul(b).unwrap());
        assert_eq!(ra.matmul(&rb).unwrap().to_dense(), a.matmul(b).unwrap());
    }

    if a.is_square() {
        assert_eq!(sa.trace().unwrap(), a.trace().unwrap());
        assert_eq!(ra.trace().unwrap(), a.trace().unwrap());
        assert_eq!(sa.pow(3).unwrap().to_dense(), a.pow(3).unwrap());
        assert_eq!(ra.pow(3).unwrap().to_dense(), a.pow(3).unwrap());
        assert_eq!(
            sa.diagonal_vector().unwrap().to_dense(),
            a.diagonal_vector().unwrap()
        );
        // Matrix–vector product against the first column of b.
        let x: Vec<K> = (0..b.rows())
            .map(|i| b.get(i, 0).unwrap().clone())
            .collect();
        let y = sa.matvec(&x).unwrap();
        let dense_y = a.matmul(&b.column(0).unwrap()).unwrap();
        for (i, v) in y.iter().enumerate() {
            assert_eq!(v, dense_y.get(i, 0).unwrap());
        }
    }

    if a.is_vector() {
        assert_eq!(sa.diag().unwrap().to_dense(), a.diag().unwrap());
        assert_eq!(ra.diag().unwrap().to_dense(), a.diag().unwrap());
    }
}

proptest! {
    #[test]
    fn nat_kernels_agree(a in nat_matrix(5, 5), b in nat_matrix(5, 5)) {
        assert_kernels_agree(&a, &b);
    }

    #[test]
    fn boolean_kernels_agree(a in bool_matrix(6, 6), b in bool_matrix(6, 6)) {
        assert_kernels_agree(&a, &b);
    }

    #[test]
    fn tropical_kernels_agree(a in tropical_matrix(5, 5), b in tropical_matrix(5, 5)) {
        assert_kernels_agree(&a, &b);
    }

    #[test]
    fn rectangular_kernels_agree(a in nat_matrix(3, 7), b in nat_matrix(3, 7)) {
        assert_kernels_agree(&a, &b);
    }

    #[test]
    fn vector_kernels_agree(a in bool_matrix(8, 1), b in bool_matrix(8, 1)) {
        assert_kernels_agree(&a, &b);
    }

    #[test]
    fn rectangular_products_agree(a in nat_matrix(4, 6), b in nat_matrix(6, 3)) {
        let sa = SparseMatrix::from_dense(&a);
        let sb = SparseMatrix::from_dense(&b);
        prop_assert_eq!(sa.matmul(&sb).unwrap().to_dense(), a.matmul(&b).unwrap());
    }

    #[test]
    fn triplet_construction_agrees_with_dense(a in nat_matrix(5, 4)) {
        let triplets: Vec<(usize, usize, Nat)> = a
            .iter_entries()
            .filter(|(_, _, v)| !v.is_zero())
            .map(|(i, j, v)| (i, j, *v))
            .collect();
        let s = SparseMatrix::from_triplets(5, 4, triplets).unwrap();
        prop_assert_eq!(s.to_dense(), a);
    }

    #[test]
    fn sparse_roundtrip_through_repr_is_identity(a in tropical_matrix(6, 6)) {
        let repr = MatrixRepr::from_sparse_auto(SparseMatrix::from_dense(&a));
        prop_assert_eq!(repr.to_sparse().to_dense(), a);
    }
}
