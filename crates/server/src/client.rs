//! A minimal blocking client for the wire protocol.
//!
//! Used by the integration tests, the `server_throughput` bench and the
//! `server_demo` example; handy for embedding too.  Every method maps
//! one-to-one onto a protocol command and returns `Err(message)` for `ERR`
//! replies.

use crate::protocol::{read_result, WireResult};
use matlang_matrix::{Matrix, MatrixStorage};
use matlang_semiring::Real;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.writer, "{line}").map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<String, String> {
        let mut reply = String::new();
        if self
            .reader
            .read_line(&mut reply)
            .map_err(|e| e.to_string())?
            == 0
        {
            return Err("connection closed".to_string());
        }
        let reply = reply.trim_end().to_string();
        match reply.strip_prefix("ERR ") {
            Some(message) => Err(message.to_string()),
            None => Ok(reply),
        }
    }

    /// `INSTANCE <name> <backend>`.
    pub fn create_instance(&mut self, name: &str, adaptive: bool) -> Result<(), String> {
        let backend = if adaptive { "adaptive" } else { "dense" };
        self.send(&format!("INSTANCE {name} {backend}")).map(|_| ())
    }

    /// `DIM <instance> <sym> <n>`.
    pub fn set_dim(&mut self, instance: &str, sym: &str, value: usize) -> Result<(), String> {
        self.send(&format!("DIM {instance} {sym} {value}"))
            .map(|_| ())
    }

    /// `LOAD` from explicit entries.
    pub fn load(
        &mut self,
        instance: &str,
        var: &str,
        rows: usize,
        cols: usize,
        entries: &[(usize, usize, f64)],
    ) -> Result<(), String> {
        writeln!(
            self.writer,
            "LOAD {instance} {var} {rows} {cols} {}",
            entries.len()
        )
        .map_err(|e| e.to_string())?;
        for (i, j, v) in entries {
            writeln!(self.writer, "{i} {j} {v}").map_err(|e| e.to_string())?;
        }
        self.writer.flush().map_err(|e| e.to_string())?;
        self.read_reply().map(|_| ())
    }

    /// `LOAD` from a dense matrix (ships its non-zero entries).
    pub fn load_matrix(
        &mut self,
        instance: &str,
        var: &str,
        matrix: &Matrix<Real>,
    ) -> Result<(), String> {
        let entries: Vec<(usize, usize, f64)> = matrix
            .nonzero_entries()
            .into_iter()
            .map(|(i, j, v)| (i, j, v.0))
            .collect();
        self.load(instance, var, matrix.rows(), matrix.cols(), &entries)
    }

    /// `GEN … er …`; returns the generated non-zero count.
    pub fn gen_erdos_renyi(
        &mut self,
        instance: &str,
        var: &str,
        sym: &str,
        avg_degree: f64,
        seed: u64,
    ) -> Result<usize, String> {
        let reply = self.send(&format!(
            "GEN {instance} {var} {sym} er {avg_degree} {seed}"
        ))?;
        parse_kv(&reply, "nnz")
    }

    /// `PREPARE`; returns the query id.
    pub fn prepare(&mut self, instance: &str, text: &str) -> Result<usize, String> {
        let reply = self.send(&format!("PREPARE {instance} {text}"))?;
        reply
            .split_whitespace()
            .nth(2)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("malformed PREPARE reply `{reply}`"))
    }

    /// `EXEC`; returns the result block.
    pub fn exec(&mut self, instance: &str, qid: usize) -> Result<WireResult, String> {
        let header = self.send(&format!("EXEC {instance} {qid}"))?;
        read_result(&header, &mut self.reader)
    }

    /// `EXECBATCH`; returns one result block per query id.
    pub fn exec_batch(
        &mut self,
        instance: &str,
        qids: &[usize],
    ) -> Result<Vec<WireResult>, String> {
        let qid_list = qids
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let header = self.send(&format!("EXECBATCH {instance} {qid_list}"))?;
        let count: usize = header
            .strip_prefix("BATCH ")
            .and_then(|t| t.trim().parse().ok())
            .ok_or_else(|| format!("malformed EXECBATCH reply `{header}`"))?;
        let mut results = Vec::with_capacity(count);
        for _ in 0..count {
            let header = self.read_reply()?;
            results.push(read_result(&header, &mut self.reader)?);
        }
        Ok(results)
    }

    /// `QUERY` (one-shot, unprepared); returns the result block.
    pub fn query(&mut self, instance: &str, text: &str) -> Result<WireResult, String> {
        let header = self.send(&format!("QUERY {instance} {text}"))?;
        read_result(&header, &mut self.reader)
    }

    /// `UPDATE`; returns `(entries applied, cache entries invalidated)`.
    pub fn update(
        &mut self,
        instance: &str,
        var: &str,
        entries: &[(usize, usize, f64)],
    ) -> Result<(usize, u64), String> {
        let triples = entries
            .iter()
            .map(|(i, j, v)| format!("{i} {j} {v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let reply = self.send(&format!("UPDATE {instance} {var} {triples}"))?;
        Ok((
            parse_kv(&reply, "entries")?,
            parse_kv(&reply, "invalidated")?,
        ))
    }

    /// `LIST`; returns the instance names.
    pub fn list(&mut self) -> Result<Vec<String>, String> {
        let reply = self.send("LIST")?;
        Ok(reply
            .split_whitespace()
            .skip(2)
            .map(str::to_string)
            .collect())
    }

    /// `DROP <instance>`.
    pub fn drop_instance(&mut self, instance: &str) -> Result<(), String> {
        self.send(&format!("DROP {instance}")).map(|_| ())
    }

    /// `PING`.
    pub fn ping(&mut self) -> Result<(), String> {
        self.send("PING").map(|_| ())
    }

    /// `QUIT` (the server closes the connection after acknowledging).
    pub fn quit(mut self) -> Result<(), String> {
        self.send("QUIT").map(|_| ())
    }
}

fn parse_kv<T: std::str::FromStr>(reply: &str, key: &str) -> Result<T, String> {
    reply
        .split_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("missing {key}= in reply `{reply}`"))
}

impl WireResult {
    /// Rebuilds the dense matrix this result denotes.
    pub fn to_dense(&self) -> Matrix<Real> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for &(i, j, v) in &self.entries {
            out.set(i, j, Real(v)).expect("wire entry in bounds");
        }
        out
    }
}
