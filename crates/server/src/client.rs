//! A minimal blocking client for the wire protocol.
//!
//! Used by the integration tests, the `server_throughput` bench and the
//! `server_demo` example; handy for embedding too.  Every method maps
//! one-to-one onto a protocol command and returns a typed [`ClientError`]
//! for `ERR` replies, so callers can branch on [`ErrorCode`] instead of
//! string-matching messages.

use crate::protocol::{read_lines_block, read_result, SemiringKind, WireResult};
use matlang_matrix::{Matrix, MatrixStorage};
use matlang_semiring::Real;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// The stable error category of a failed request — the client-side twin of
/// [`crate::ServerError::code`], plus the client-local failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// `EEXISTS` — the instance name is already taken.
    InstanceExists,
    /// `ENOINST` — no such instance.
    UnknownInstance,
    /// `ENOVAR` — no such matrix variable.
    UnknownVariable,
    /// `ENOQUERY` — no such prepared query id.
    UnknownQueryId,
    /// `ENOPREP` — `EXEC` before any `PREPARE`.
    NoPreparedQueries,
    /// `EPARSE` — the query text failed to parse.
    Parse,
    /// `ETYPE` — the query text failed to type-check.
    Type,
    /// `EEVAL` — evaluation failed at runtime.
    Eval,
    /// `ESTORE` — a storage-layer operation failed.
    Storage,
    /// `EPROTO` — the request was malformed or out of protocol.
    Protocol,
    /// A local I/O failure — the socket, not the server, failed.
    Io,
    /// The server's reply did not match the protocol grammar.
    Malformed,
    /// An `ERR` code this client version does not know (a newer server).
    Unknown,
}

impl ErrorCode {
    /// Maps a wire code token to its category, if this client knows it.
    pub fn from_wire(code: &str) -> Option<ErrorCode> {
        match code {
            "EEXISTS" => Some(ErrorCode::InstanceExists),
            "ENOINST" => Some(ErrorCode::UnknownInstance),
            "ENOVAR" => Some(ErrorCode::UnknownVariable),
            "ENOQUERY" => Some(ErrorCode::UnknownQueryId),
            "ENOPREP" => Some(ErrorCode::NoPreparedQueries),
            "EPARSE" => Some(ErrorCode::Parse),
            "ETYPE" => Some(ErrorCode::Type),
            "EEVAL" => Some(ErrorCode::Eval),
            "ESTORE" => Some(ErrorCode::Storage),
            "EPROTO" => Some(ErrorCode::Protocol),
            _ => None,
        }
    }
}

/// A failed request: the stable category plus the server's (or the local
/// I/O layer's) human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientError {
    /// The stable error category to branch on.
    pub code: ErrorCode,
    /// The human-readable message (free to be reworded server-side).
    pub message: String,
}

impl ClientError {
    fn io(e: impl fmt::Display) -> ClientError {
        ClientError {
            code: ErrorCode::Io,
            message: e.to_string(),
        }
    }

    fn malformed(message: impl Into<String>) -> ClientError {
        ClientError {
            code: ErrorCode::Malformed,
            message: message.into(),
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ClientError {}

/// The server's `HELLO` banner: protocol revision and capability tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerHello {
    /// The protocol revision the server speaks.
    pub proto: u32,
    /// The announced capability tokens (`delta`, `errcodes`, …).
    pub caps: Vec<String>,
}

impl ServerHello {
    /// Whether the server announced a capability token.
    pub fn has_capability(&self, cap: &str) -> bool {
        self.caps.iter().any(|c| c == cap)
    }
}

/// How the server maintained its memo cache on an `UPDATE`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaWire {
    /// The update was propagated exactly, patching `patched` cached nodes.
    Applied {
        /// Cached nodes patched.
        patched: u64,
    },
    /// The update fell back to invalidation; `reason` is the stable
    /// fallback code (`non-idempotent-semiring`, `not-insert-only`, …).
    Fallback {
        /// The stable fallback-reason code.
        reason: String,
    },
    /// The server predates the delta tokens (proto 1).
    Unreported,
}

/// The parsed reply to an `UPDATE`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateReply {
    /// Entries applied to the instance matrix.
    pub applied: usize,
    /// Cached plan nodes dropped (0 on a fully patched delta pass).
    pub invalidated: u64,
    /// How the cache was maintained.
    pub delta: DeltaWire,
}

/// One instance row of a detailed `LIST` reply (proto 2 `obs`):
/// `name:backend:semiring:delta_patches:delta_fallbacks`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceEntry {
    /// The instance name.
    pub name: String,
    /// Storage backend (`dense` / `adaptive`).
    pub backend: String,
    /// Semiring wire name (`real` / `bool` / `nat` / `minplus`).
    pub semiring: String,
    /// Cumulative cached nodes patched by delta propagation.
    pub delta_patches: u64,
    /// Cumulative `UPDATE`s that fell back to invalidation.
    pub delta_fallbacks: u64,
}

/// One slow-query record from a `SLOWLOG` reply: the trace id, label and
/// wall time of the offending request, plus the forensic detail lines
/// (rewritten plan + per-node observations) captured when it crossed the
/// slow threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowlogEntry {
    /// The observability trace id of the slow request.
    pub trace_id: u64,
    /// The request line, as labeled in the trace ring.
    pub label: String,
    /// Total wall time of the request, microseconds.
    pub total_us: u64,
    /// Captured forensics: the rewritten-DAG explain plus per-node
    /// observed shapes/nnz/hits (empty if the detail ring had evicted it).
    pub detail: Vec<String>,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, line: &str) -> Result<String, ClientError> {
        writeln!(self.writer, "{line}").map_err(ClientError::io)?;
        self.writer.flush().map_err(ClientError::io)?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<String, ClientError> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply).map_err(ClientError::io)? == 0 {
            return Err(ClientError::io("connection closed"));
        }
        let reply = reply.trim_end().to_string();
        match reply.strip_prefix("ERR ") {
            Some(rest) => {
                // `ERR <CODE> <message>`; a code this client version does
                // not know (or a pre-errcodes server) degrades to
                // `Unknown` with the full text preserved.
                let mut parts = rest.splitn(2, ' ');
                let first = parts.next().unwrap_or("");
                Err(match (ErrorCode::from_wire(first), parts.next()) {
                    (Some(code), Some(message)) => ClientError {
                        code,
                        message: message.to_string(),
                    },
                    _ => ClientError {
                        code: ErrorCode::Unknown,
                        message: rest.to_string(),
                    },
                })
            }
            None => Ok(reply),
        }
    }

    /// `HELLO`; returns the server's protocol banner.
    pub fn hello(&mut self) -> Result<ServerHello, ClientError> {
        let reply = self.send("HELLO")?;
        let proto = parse_kv(&reply, "proto")?;
        let caps = reply
            .split_whitespace()
            .find_map(|token| token.strip_prefix("caps="))
            .map(|list| list.split(',').map(str::to_string).collect())
            .unwrap_or_default();
        Ok(ServerHello { proto, caps })
    }

    /// `INSTANCE <name> <backend>` over the default semiring (ℝ).
    pub fn create_instance(&mut self, name: &str, adaptive: bool) -> Result<(), ClientError> {
        self.create_instance_with(name, adaptive, SemiringKind::Real)
    }

    /// `INSTANCE <name> <backend> <semiring>`.
    pub fn create_instance_with(
        &mut self,
        name: &str,
        adaptive: bool,
        semiring: SemiringKind,
    ) -> Result<(), ClientError> {
        let backend = if adaptive { "adaptive" } else { "dense" };
        self.send(&format!("INSTANCE {name} {backend} {}", semiring.name()))
            .map(|_| ())
    }

    /// `DIM <instance> <sym> <n>`.
    pub fn set_dim(&mut self, instance: &str, sym: &str, value: usize) -> Result<(), ClientError> {
        self.send(&format!("DIM {instance} {sym} {value}"))
            .map(|_| ())
    }

    /// `LOAD` from explicit entries.
    pub fn load(
        &mut self,
        instance: &str,
        var: &str,
        rows: usize,
        cols: usize,
        entries: &[(usize, usize, f64)],
    ) -> Result<(), ClientError> {
        writeln!(
            self.writer,
            "LOAD {instance} {var} {rows} {cols} {}",
            entries.len()
        )
        .map_err(ClientError::io)?;
        for (i, j, v) in entries {
            writeln!(self.writer, "{i} {j} {v}").map_err(ClientError::io)?;
        }
        self.writer.flush().map_err(ClientError::io)?;
        self.read_reply().map(|_| ())
    }

    /// `LOAD` from a dense matrix (ships its non-zero entries).
    pub fn load_matrix(
        &mut self,
        instance: &str,
        var: &str,
        matrix: &Matrix<Real>,
    ) -> Result<(), ClientError> {
        let entries: Vec<(usize, usize, f64)> = matrix
            .nonzero_entries()
            .into_iter()
            .map(|(i, j, v)| (i, j, v.0))
            .collect();
        self.load(instance, var, matrix.rows(), matrix.cols(), &entries)
    }

    /// `GEN … er …`; returns the generated non-zero count.
    pub fn gen_erdos_renyi(
        &mut self,
        instance: &str,
        var: &str,
        sym: &str,
        avg_degree: f64,
        seed: u64,
    ) -> Result<usize, ClientError> {
        let reply = self.send(&format!(
            "GEN {instance} {var} {sym} er {avg_degree} {seed}"
        ))?;
        parse_kv(&reply, "nnz")
    }

    /// `PREPARE`; returns the query id.
    pub fn prepare(&mut self, instance: &str, text: &str) -> Result<usize, ClientError> {
        let reply = self.send(&format!("PREPARE {instance} {text}"))?;
        reply
            .split_whitespace()
            .nth(2)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ClientError::malformed(format!("malformed PREPARE reply `{reply}`")))
    }

    /// `EXEC`; returns the result block.
    pub fn exec(&mut self, instance: &str, qid: usize) -> Result<WireResult, ClientError> {
        let header = self.send(&format!("EXEC {instance} {qid}"))?;
        read_result(&header, &mut self.reader).map_err(ClientError::malformed)
    }

    /// `EXECBATCH`; returns one result block per query id.
    pub fn exec_batch(
        &mut self,
        instance: &str,
        qids: &[usize],
    ) -> Result<Vec<WireResult>, ClientError> {
        let qid_list = qids
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let header = self.send(&format!("EXECBATCH {instance} {qid_list}"))?;
        let count: usize = header
            .strip_prefix("BATCH ")
            .and_then(|t| t.trim().parse().ok())
            .ok_or_else(|| {
                ClientError::malformed(format!("malformed EXECBATCH reply `{header}`"))
            })?;
        let mut results = Vec::with_capacity(count);
        for _ in 0..count {
            let header = self.read_reply()?;
            results.push(read_result(&header, &mut self.reader).map_err(ClientError::malformed)?);
        }
        Ok(results)
    }

    /// `QUERY` (one-shot, unprepared); returns the result block.
    pub fn query(&mut self, instance: &str, text: &str) -> Result<WireResult, ClientError> {
        let header = self.send(&format!("QUERY {instance} {text}"))?;
        read_result(&header, &mut self.reader).map_err(ClientError::malformed)
    }

    /// `UPDATE`; returns how many entries applied and how the server
    /// maintained its memo cache (delta propagation or invalidation).
    pub fn update(
        &mut self,
        instance: &str,
        var: &str,
        entries: &[(usize, usize, f64)],
    ) -> Result<UpdateReply, ClientError> {
        let triples = entries
            .iter()
            .map(|(i, j, v)| format!("{i} {j} {v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let reply = self.send(&format!("UPDATE {instance} {var} {triples}"))?;
        let delta = if reply.split_whitespace().any(|t| t == "delta=applied") {
            DeltaWire::Applied {
                patched: parse_kv(&reply, "patched")?,
            }
        } else if reply.split_whitespace().any(|t| t == "delta=fallback") {
            DeltaWire::Fallback {
                reason: parse_kv(&reply, "reason")?,
            }
        } else {
            DeltaWire::Unreported
        };
        Ok(UpdateReply {
            applied: parse_kv(&reply, "entries")?,
            invalidated: parse_kv(&reply, "invalidated")?,
            delta,
        })
    }

    /// `LIST`; returns the instance names.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        Ok(self
            .list_detailed()?
            .into_iter()
            .map(|entry| entry.name)
            .collect())
    }

    /// `LIST`; returns one [`InstanceEntry`] per instance with its
    /// backend, semiring and cumulative delta-maintenance counters.
    pub fn list_detailed(&mut self) -> Result<Vec<InstanceEntry>, ClientError> {
        let reply = self.send("LIST")?;
        reply
            .split_whitespace()
            .skip(2)
            .map(|field| {
                // Parse the colon-separated fields from the right, so an
                // instance name containing `:` survives intact.
                let mut parts = field.rsplitn(5, ':');
                let parsed = (|| {
                    let delta_fallbacks = parts.next()?.parse().ok()?;
                    let delta_patches = parts.next()?.parse().ok()?;
                    let semiring = parts.next()?.to_string();
                    let backend = parts.next()?.to_string();
                    let name = parts.next()?.to_string();
                    Some(InstanceEntry {
                        name,
                        backend,
                        semiring,
                        delta_patches,
                        delta_fallbacks,
                    })
                })();
                parsed.ok_or_else(|| {
                    ClientError::malformed(format!("malformed LIST field `{field}`"))
                })
            })
            .collect()
    }

    /// `METRICS`; returns the server's Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let header = self.send("METRICS")?;
        read_lines_block(&header, "METRICS", &mut self.reader)
            .map(|lines| lines.join("\n"))
            .map_err(ClientError::malformed)
    }

    /// `METRICS`, parsed: every un-labeled counter/gauge sample
    /// (`name value` lines without `{…}` labels) as a name → value map,
    /// so callers assert on typed numbers instead of string-grepping the
    /// exposition text.  Histogram quantile lines (labeled) are skipped.
    pub fn metrics_map(&mut self) -> Result<std::collections::BTreeMap<String, f64>, ClientError> {
        let text = self.metrics()?;
        Ok(parse_metrics_map(&text))
    }

    /// `METRICS WINDOW <secs>`; returns the windowed exposition (counter
    /// deltas and rates, histogram quantiles over roughly the last `secs`
    /// seconds of scrape-to-scrape snapshots).
    pub fn metrics_window(&mut self, secs: u64) -> Result<String, ClientError> {
        let header = self.send(&format!("METRICS WINDOW {secs}"))?;
        read_lines_block(&header, "METRICS", &mut self.reader)
            .map(|lines| lines.join("\n"))
            .map_err(ClientError::malformed)
    }

    /// `STATS <instance>`; returns the per-instance observed-vs-estimated
    /// report (per-variable planned/current/observed nnz, drift against
    /// the plan-time snapshot, re-plan counter).
    pub fn stats(&mut self, instance: &str) -> Result<Vec<String>, ClientError> {
        let header = self.send(&format!("STATS {instance}"))?;
        read_lines_block(&header, "STATS", &mut self.reader).map_err(ClientError::malformed)
    }

    /// `SLOWLOG [n]`; returns the most recent slow queries (newest first)
    /// with their captured forensics.
    pub fn slowlog(&mut self, n: Option<usize>) -> Result<Vec<SlowlogEntry>, ClientError> {
        let request = match n {
            Some(n) => format!("SLOWLOG {n}"),
            None => "SLOWLOG".to_string(),
        };
        let header = self.send(&request)?;
        let lines = read_lines_block(&header, "SLOWLOG", &mut self.reader)
            .map_err(ClientError::malformed)?;
        let mut entries = Vec::new();
        let mut iter = lines.into_iter();
        while let Some(line) = iter.next() {
            let Some(rest) = line.strip_prefix("ENTRY ") else {
                return Err(ClientError::malformed(format!(
                    "expected ENTRY line, got `{line}`"
                )));
            };
            let trace_id = rest
                .split_whitespace()
                .find_map(|t| t.strip_prefix("trace="))
                .and_then(|v| u64::from_str_radix(v, 16).ok())
                .ok_or_else(|| ClientError::malformed(format!("missing trace= in `{line}`")))?;
            let total_us = parse_kv(rest, "total_us")?;
            let detail_count: usize = parse_kv(rest, "detail")?;
            // The label is everything after the detail= token.
            let label = rest
                .split_once("detail=")
                .map(|(_, tail)| {
                    tail.split_once(' ')
                        .map(|(_, label)| label.to_string())
                        .unwrap_or_default()
                })
                .unwrap_or_default();
            let detail: Vec<String> = iter.by_ref().take(detail_count).collect();
            if detail.len() != detail_count {
                return Err(ClientError::malformed("truncated SLOWLOG entry detail"));
            }
            entries.push(SlowlogEntry {
                trace_id,
                label,
                total_us,
                detail,
            });
        }
        Ok(entries)
    }

    /// `EXPLAIN <instance> <query>`; returns the rewritten-plan rendering
    /// (one line per DAG node with cost estimates) without executing.
    pub fn explain(&mut self, instance: &str, text: &str) -> Result<Vec<String>, ClientError> {
        let header = self.send(&format!("EXPLAIN {instance} {text}"))?;
        read_lines_block(&header, "EXPLAIN", &mut self.reader).map_err(ClientError::malformed)
    }

    /// `PROFILE <instance> <query>`; executes once and returns the
    /// per-node wall-time/shape/nnz rendering.
    pub fn profile(&mut self, instance: &str, text: &str) -> Result<Vec<String>, ClientError> {
        let header = self.send(&format!("PROFILE {instance} {text}"))?;
        read_lines_block(&header, "PROFILE", &mut self.reader).map_err(ClientError::malformed)
    }

    /// `HEALTH`; returns the one-line readiness payload
    /// (`status=… bytes=… budget=… …`).
    pub fn health(&mut self) -> Result<String, ClientError> {
        let reply = self.send("HEALTH")?;
        reply
            .strip_prefix("OK health ")
            .map(str::to_string)
            .ok_or_else(|| ClientError::malformed(format!("malformed HEALTH reply `{reply}`")))
    }

    /// `TOP [n]`; returns one line per instance, ranked by accounted
    /// bytes, with the byte breakdown and cache-residency columns.
    pub fn top(&mut self, n: Option<usize>) -> Result<Vec<String>, ClientError> {
        let request = match n {
            Some(n) => format!("TOP {n}"),
            None => "TOP".to_string(),
        };
        let header = self.send(&request)?;
        read_lines_block(&header, "TOP", &mut self.reader).map_err(ClientError::malformed)
    }

    /// `TRACE EXPORT [n]`; returns the newest `n` finished traces
    /// (default 32) as a Chrome trace-event JSON document, loadable in
    /// `chrome://tracing` or Perfetto.
    pub fn trace_export(&mut self, n: Option<usize>) -> Result<String, ClientError> {
        let request = match n {
            Some(n) => format!("TRACE EXPORT {n}"),
            None => "TRACE EXPORT".to_string(),
        };
        let header = self.send(&request)?;
        read_lines_block(&header, "TRACE", &mut self.reader)
            .map(|lines| {
                let mut text = lines.join("\n");
                text.push('\n');
                text
            })
            .map_err(ClientError::malformed)
    }

    /// `DROP <instance>`.
    pub fn drop_instance(&mut self, instance: &str) -> Result<(), ClientError> {
        self.send(&format!("DROP {instance}")).map(|_| ())
    }

    /// `SAVE <instance> [path]` — snapshot the instance to its data-dir
    /// slot (no path) or export it to an explicit file.  Returns the
    /// snapshot size in bytes.
    pub fn save(&mut self, instance: &str, path: Option<&str>) -> Result<u64, ClientError> {
        let request = match path {
            Some(p) => format!("SAVE {instance} {p}"),
            None => format!("SAVE {instance}"),
        };
        let reply = self.send(&request)?;
        parse_kv(&reply, "bytes")
    }

    /// `RESTORE <instance> <path>` — create a fresh instance from a
    /// snapshot file.  Returns `(dims, vars)` restored.
    pub fn restore(&mut self, instance: &str, path: &str) -> Result<(usize, usize), ClientError> {
        let reply = self.send(&format!("RESTORE {instance} {path}"))?;
        Ok((parse_kv(&reply, "dims")?, parse_kv(&reply, "vars")?))
    }

    /// `PERSIST <instance> on|off` — toggle durability for an instance.
    pub fn set_persist(&mut self, instance: &str, on: bool) -> Result<(), ClientError> {
        let flag = if on { "on" } else { "off" };
        self.send(&format!("PERSIST {instance} {flag}")).map(|_| ())
    }

    /// `WALSTAT <instance>` — durability counters for an instance.
    pub fn walstat(&mut self, instance: &str) -> Result<crate::store::WalStat, ClientError> {
        let reply = self.send(&format!("WALSTAT {instance}"))?;
        let persisted = reply
            .split_whitespace()
            .find_map(|token| token.strip_prefix("persist="))
            .ok_or_else(|| {
                ClientError::malformed(format!("missing persist= in reply `{reply}`"))
            })?
            == "on";
        Ok(crate::store::WalStat {
            persisted,
            seq: parse_kv(&reply, "seq")?,
            records: parse_kv(&reply, "records")?,
            wal_bytes: parse_kv(&reply, "wal_bytes")?,
            snapshot_bytes: parse_kv(&reply, "snapshot_bytes")?,
            compact_threshold: parse_kv(&reply, "compact")?,
        })
    }

    /// `PING`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING").map(|_| ())
    }

    /// `QUIT` (the server closes the connection after acknowledging).
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send("QUIT").map(|_| ())
    }
}

fn parse_kv<T: std::str::FromStr>(reply: &str, key: &str) -> Result<T, ClientError> {
    reply
        .split_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ClientError::malformed(format!("missing {key}= in reply `{reply}`")))
}

/// Parses a Prometheus text exposition into a name → value map of the
/// un-labeled samples.  Deliberately lenient — a scrape should never fail
/// because one line is odd: `#` comments, labeled samples (`{…}` names),
/// lines without a parseable number, and non-finite values (`NaN`,
/// `+Inf`/`-Inf`, which `f64::parse` happily accepts) are all skipped
/// rather than surfaced as errors.
pub fn parse_metrics_map(text: &str) -> std::collections::BTreeMap<String, f64> {
    let mut map = std::collections::BTreeMap::new();
    for line in text.lines() {
        if line.trim_start().starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        if let (Some(name), Some(value)) = (tokens.next(), tokens.next()) {
            if name.contains('{') {
                continue; // labeled sample (histogram quantile, per-instance gauge)
            }
            if let Ok(value) = value.parse::<f64>() {
                if value.is_finite() {
                    map.insert(name.to_string(), value);
                }
            }
        }
    }
    map
}

impl WireResult {
    /// Rebuilds the dense matrix this result denotes.
    pub fn to_dense(&self) -> Matrix<Real> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for &(i, j, v) in &self.entries {
            out.set(i, j, Real(v)).expect("wire entry in bounds");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::parse_metrics_map;

    #[test]
    fn metrics_map_tolerates_hostile_exposition() {
        // Hand-crafted payload with every way a scrape line can go wrong:
        // comments, labels, NaN/Inf (which f64::parse accepts!), missing
        // values, non-numeric values, blank lines and leading whitespace.
        let text = "\
# HELP exec_total statements executed\n\
# TYPE exec_total counter\n\
exec_total 42\n\
exec_latency_us{quantile=\"0.99\"} 1234\n\
instance_bytes{name=\"g\"} 512\n\
broken_nan NaN\n\
broken_inf +Inf\n\
broken_neg_inf -Inf\n\
dangling_name\n\
not_a_number twelve\n\
\n\
   # indented comment\n\
instance_bytes 512\n\
trailing_tokens 7 extra garbage\n";
        let map = parse_metrics_map(text);
        assert_eq!(map.get("exec_total"), Some(&42.0));
        assert_eq!(map.get("instance_bytes"), Some(&512.0));
        // Prometheus exposition ignores anything past the value token.
        assert_eq!(map.get("trailing_tokens"), Some(&7.0));
        // Everything hostile is skipped, never an error or a NaN entry.
        assert!(!map.contains_key("broken_nan"));
        assert!(!map.contains_key("broken_inf"));
        assert!(!map.contains_key("broken_neg_inf"));
        assert!(!map.contains_key("dangling_name"));
        assert!(!map.contains_key("not_a_number"));
        assert!(map.keys().all(|k| !k.contains('{')));
        assert!(map.values().all(|v| v.is_finite()));
        assert_eq!(map.len(), 3);
    }
}
