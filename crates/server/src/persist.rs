//! Durable storage under the store: snapshot files and the write-ahead log.
//!
//! This module owns the *file formats* and their integrity story; policy
//! (when to snapshot, when to compact, how instances map to matrices)
//! lives in [`crate::store`].  Two artifacts exist per persisted instance,
//! both little-endian and CRC32-checked:
//!
//! * **Snapshot** (`<name>.snap`) — the full instance at one point in
//!   time: a magic/version header, the WAL sequence number the snapshot
//!   covers, then length-prefixed checksummed sections (meta, dims, one
//!   per variable).  Variable payloads are the byte-exact encodings of
//!   [`matlang_matrix::MatrixCodec`], opaque at this layer.  Snapshots are
//!   written to a temporary file, fsync'd, then atomically renamed over
//!   the previous one — a crash mid-write leaves the old snapshot intact.
//! * **WAL** (`<name>.wal`) — an append-only log of applied `UPDATE`
//!   batches, one CRC-framed record per batch, fsync'd per append.
//!   Opening the log replays it: records are trusted up to the first
//!   short or checksum-failing frame, and the file is truncated there, so
//!   a torn tail from a crash mid-append costs exactly the un-acked batch.
//!
//! Recovery is therefore: newest valid snapshot + the WAL records whose
//! sequence number exceeds the snapshot's covered sequence.  Corruption
//! never panics — every decoding path returns [`PersistError`] and the
//! store degrades to "this instance did not recover".

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Current snapshot file version, bumped on any layout change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Snapshot file magic: identifies the format before any parsing.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MLSNAP01";

/// Section kinds inside a snapshot file.
const SECTION_META: u32 = 1;
const SECTION_DIMS: u32 = 2;
const SECTION_VAR: u32 = 3;

/// Why a snapshot or WAL could not be used.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The bytes on disk are not a valid artifact (bad magic, checksum
    /// mismatch, impossible structure).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O failed: {e}"),
            PersistError::Corrupt(why) => write!(f, "persistence artifact corrupt: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn corrupt(why: impl Into<String>) -> PersistError {
    PersistError::Corrupt(why.into())
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, no dependencies.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the checksum framing every snapshot section
/// and WAL record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian read/write helpers over byte buffers.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], PersistError> {
    if buf.len() < n {
        return Err(corrupt(format!(
            "{what}: needed {n} bytes, {} available",
            buf.len()
        )));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn read_u32(buf: &mut &[u8], what: &str) -> Result<u32, PersistError> {
    Ok(u32::from_le_bytes(
        take(buf, 4, what)?.try_into().expect("4 bytes"),
    ))
}

fn read_u64(buf: &mut &[u8], what: &str) -> Result<u64, PersistError> {
    Ok(u64::from_le_bytes(
        take(buf, 8, what)?.try_into().expect("8 bytes"),
    ))
}

fn read_len(buf: &mut &[u8], what: &str) -> Result<usize, PersistError> {
    let raw = read_u64(buf, what)?;
    let len = usize::try_from(raw).map_err(|_| corrupt(format!("{what} {raw} overflows usize")))?;
    if len > buf.len() {
        return Err(corrupt(format!(
            "{what} {len} exceeds remaining {} bytes",
            buf.len()
        )));
    }
    Ok(len)
}

fn read_str(buf: &mut &[u8], what: &str) -> Result<String, PersistError> {
    let len = read_len(buf, what)?;
    let bytes = take(buf, len, what)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(format!("{what} is not UTF-8")))
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// A decoded (or to-be-encoded) snapshot: everything needed to rebuild an
/// instance except the lazily-rebuilt runtime state (memo caches, plans,
/// overlays, observed statistics — deliberately never persisted).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Semiring tag (`real`/`bool`/`nat`/`minplus`).
    pub semiring: String,
    /// Backend tag (`dense`/`adaptive`).
    pub backend: String,
    /// The WAL sequence number this snapshot covers: replay skips records
    /// with `seq <= covered_seq`.
    pub covered_seq: u64,
    /// Size-symbol bindings, in insertion order.
    pub dims: Vec<(String, u64)>,
    /// Variable name → [`matlang_matrix::MatrixCodec`] payload bytes.
    pub vars: Vec<(String, Vec<u8>)>,
}

fn put_section(out: &mut Vec<u8>, kind: u32, payload: &[u8]) {
    let start = out.len();
    put_u32(out, kind);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    // The checksum covers the section header too — a bit-flip in the kind
    // or length must not let the payload reparse as a different section.
    let crc = crc32(&out[start..]);
    put_u32(out, crc);
}

impl Snapshot {
    /// Serializes the snapshot to its on-disk byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut out, SNAPSHOT_VERSION);
        put_u64(&mut out, self.covered_seq);

        let mut meta = Vec::new();
        put_str(&mut meta, &self.semiring);
        put_str(&mut meta, &self.backend);
        put_section(&mut out, SECTION_META, &meta);

        let mut dims = Vec::new();
        put_u64(&mut dims, self.dims.len() as u64);
        for (sym, value) in &self.dims {
            put_str(&mut dims, sym);
            put_u64(&mut dims, *value);
        }
        put_section(&mut out, SECTION_DIMS, &dims);

        for (name, payload) in &self.vars {
            let mut var = Vec::new();
            put_str(&mut var, name);
            var.extend_from_slice(payload);
            put_section(&mut out, SECTION_VAR, &var);
        }
        out
    }

    /// Parses a snapshot from its on-disk byte form, verifying the magic,
    /// version and every section checksum.
    pub fn decode(mut bytes: &[u8]) -> Result<Snapshot, PersistError> {
        let buf = &mut bytes;
        let magic = take(buf, SNAPSHOT_MAGIC.len(), "snapshot magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(corrupt("bad snapshot magic"));
        }
        let version = read_u32(buf, "snapshot version")?;
        if version != SNAPSHOT_VERSION {
            return Err(corrupt(format!(
                "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
            )));
        }
        let covered_seq = read_u64(buf, "covered seq")?;

        let mut meta: Option<(String, String)> = None;
        let mut dims = Vec::new();
        let mut vars = Vec::new();
        while !buf.is_empty() {
            let framed: &[u8] = buf;
            let kind = read_u32(buf, "section kind")?;
            let len = read_len(buf, "section length")?;
            let payload = take(buf, len, "section payload")?;
            let stored = read_u32(buf, "section checksum")?;
            let actual = crc32(&framed[..4 + 8 + len]);
            if stored != actual {
                return Err(corrupt(format!(
                    "section kind {kind} checksum mismatch (stored {stored:08x}, computed {actual:08x})"
                )));
            }
            let mut payload = payload;
            let p = &mut payload;
            match kind {
                SECTION_META => {
                    let semiring = read_str(p, "semiring tag")?;
                    let backend = read_str(p, "backend tag")?;
                    meta = Some((semiring, backend));
                }
                SECTION_DIMS => {
                    let count = read_u64(p, "dim count")?;
                    for _ in 0..count {
                        let sym = read_str(p, "dim symbol")?;
                        let value = read_u64(p, "dim value")?;
                        dims.push((sym, value));
                    }
                }
                SECTION_VAR => {
                    let name = read_str(p, "variable name")?;
                    vars.push((name, p.to_vec()));
                }
                other => return Err(corrupt(format!("unknown section kind {other}"))),
            }
        }
        let (semiring, backend) = meta.ok_or_else(|| corrupt("snapshot has no meta section"))?;
        Ok(Snapshot {
            semiring,
            backend,
            covered_seq,
            dims,
            vars,
        })
    }

    /// Writes the snapshot to `path` crash-atomically: the bytes go to a
    /// sibling `.tmp` file which is fsync'd and then renamed over `path`
    /// (the directory is fsync'd too, so the rename itself is durable).
    /// Returns the file size in bytes.
    pub fn write_atomic(&self, path: &Path) -> Result<u64, PersistError> {
        let bytes = self.encode();
        let tmp = path.with_extension("snap.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            // Durability of the rename; best-effort on filesystems where
            // directories cannot be opened for sync.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(bytes.len() as u64)
    }

    /// Reads and decodes a snapshot file.
    pub fn read(path: &Path) -> Result<Snapshot, PersistError> {
        Snapshot::decode(&fs::read(path)?)
    }
}

// ---------------------------------------------------------------------------
// Write-ahead log.
// ---------------------------------------------------------------------------

/// One applied `UPDATE` batch: the entries that actually mutated the
/// instance (a partially-applied batch logs only its applied prefix).
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotone per-instance sequence number, 1-based.
    pub seq: u64,
    /// The variable the batch mutated.
    pub var: String,
    /// `(row, col, value)` wire entries, in application order.
    pub entries: Vec<(u64, u64, f64)>,
}

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 + self.var.len() + 8 + self.entries.len() * 24);
        put_u64(&mut out, self.seq);
        put_str(&mut out, &self.var);
        put_u64(&mut out, self.entries.len() as u64);
        for &(i, j, v) in &self.entries {
            put_u64(&mut out, i);
            put_u64(&mut out, j);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode_payload(mut payload: &[u8]) -> Result<WalRecord, PersistError> {
        let buf = &mut payload;
        let seq = read_u64(buf, "record seq")?;
        let var = read_str(buf, "record variable")?;
        let count = read_u64(buf, "record entry count")?;
        if count.checked_mul(24) != Some(buf.len() as u64) {
            return Err(corrupt(format!(
                "record declares {count} entries but carries {} bytes",
                buf.len()
            )));
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let i = read_u64(buf, "entry row")?;
            let j = read_u64(buf, "entry col")?;
            let v = f64::from_le_bytes(take(buf, 8, "entry value")?.try_into().expect("8 bytes"));
            entries.push((i, j, v));
        }
        Ok(WalRecord { seq, var, entries })
    }
}

/// An open write-ahead log, positioned at its valid end.
///
/// Construction *is* recovery: [`Wal::open`] parses every intact record,
/// truncates away any torn tail, and returns the records for replay.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Bytes of valid records currently in the file.
    pub bytes: u64,
    /// Number of valid records currently in the file.
    pub records: u64,
    /// Sequence number of the newest record ever appended (survives
    /// truncation so compaction does not reset the sequence space).
    pub last_seq: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying its intact
    /// prefix.  Records are trusted up to the first short frame or
    /// checksum failure; everything after that point is discarded and the
    /// file is truncated to the valid prefix, making a torn tail from a
    /// crash mid-append invisible to later appends.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>), PersistError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        let mut records = Vec::new();
        let mut valid_end = 0usize;
        let mut cursor = raw.as_slice();
        loop {
            if cursor.len() < 8 {
                break; // clean EOF or a torn frame header
            }
            let len = u32::from_le_bytes(cursor[0..4].try_into().expect("4 bytes")) as usize;
            let stored_crc = u32::from_le_bytes(cursor[4..8].try_into().expect("4 bytes"));
            if cursor.len() < 8 + len {
                break; // torn payload
            }
            let payload = &cursor[8..8 + len];
            if crc32(payload) != stored_crc {
                break; // torn or corrupt — nothing after it is trusted
            }
            let Ok(record) = WalRecord::decode_payload(payload) else {
                break;
            };
            records.push(record);
            valid_end += 8 + len;
            cursor = &cursor[8 + len..];
        }
        if (valid_end as u64) < raw.len() as u64 {
            file.set_len(valid_end as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))?;
        let last_seq = records.last().map(|r| r.seq).unwrap_or(0);
        Ok((
            Wal {
                file,
                bytes: valid_end as u64,
                records: records.len() as u64,
                last_seq,
            },
            records,
        ))
    }

    /// Appends one record and fsyncs it.  Returns the framed size in
    /// bytes (what the `wal_bytes` gauge grows by).
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, PersistError> {
        let payload = record.encode_payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.bytes += frame.len() as u64;
        self.records += 1;
        self.last_seq = record.seq;
        Ok(frame.len() as u64)
    }

    /// Empties the log (after a compacting snapshot has made its records
    /// redundant).  `last_seq` is preserved — the sequence space is the
    /// instance's, not the file's.
    pub fn truncate(&mut self) -> Result<(), PersistError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.bytes = 0;
        self.records = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Naming and layout.
// ---------------------------------------------------------------------------

/// Whether `name` can safely become a file stem inside the data
/// directory: non-empty, ASCII alphanumerics plus `_ - .`, and not a
/// dot-only name (which would collide with directory entries).
pub fn filesystem_safe(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
        && !name.chars().all(|c| c == '.')
}

/// The snapshot path for instance `name` under `dir`.
pub fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.snap"))
}

/// The WAL path for instance `name` under `dir`.
pub fn wal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.wal"))
}

/// Removes the snapshot and WAL files (and any half-written snapshot
/// temp) for instance `name`, ignoring files that are already absent.
/// Returns the first real error encountered, after attempting all three.
pub fn remove_instance_files(dir: &Path, name: &str) -> Result<(), PersistError> {
    let mut first_error = None;
    for path in [
        snapshot_path(dir, name),
        wal_path(dir, name),
        snapshot_path(dir, name).with_extension("snap.tmp"),
    ] {
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                first_error.get_or_insert(PersistError::Io(e));
            }
        }
    }
    match first_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// The instance names that have a snapshot file under `dir` (the unit of
/// recovery — a WAL without a snapshot cannot be replayed because the
/// base state is unknown).
pub fn scan_snapshots(dir: &Path) -> Vec<String> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("snap") {
                return None;
            }
            let stem = path.file_stem()?.to_str()?;
            filesystem_safe(stem).then(|| stem.to_string())
        })
        .collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            semiring: "real".into(),
            backend: "adaptive".into(),
            covered_seq: 42,
            dims: vec![("n".into(), 4), ("m".into(), 7)],
            vars: vec![("G".into(), vec![1, 2, 3, 4, 5]), ("W".into(), vec![])],
        }
    }

    #[test]
    fn snapshot_bytes_roundtrip() {
        let snap = sample_snapshot();
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn snapshot_rejects_flipped_bits() {
        let snap = sample_snapshot();
        let good = snap.encode();
        // Flip one bit in every byte position; decode must never succeed
        // with different content and never panic.
        for pos in 0..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            if let Ok(decoded) = Snapshot::decode(&bad) {
                // A flip in the covered_seq field is outside any section
                // checksum; everything else must be caught.
                assert!(
                    (8..20).contains(&pos),
                    "undetected corruption at byte {pos}"
                );
                assert_eq!(decoded.dims, snap.dims);
            }
        }
    }

    #[test]
    fn snapshot_write_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("matlang-persist-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = snapshot_path(&dir, "atomic-check");
        let snap = sample_snapshot();
        let bytes = snap.write_atomic(&path).unwrap();
        assert_eq!(bytes, snap.encode().len() as u64);
        assert_eq!(Snapshot::read(&path).unwrap(), snap);
        assert!(!path.with_extension("snap.tmp").exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_appends_replay_and_tolerate_torn_tails() {
        let dir = std::env::temp_dir().join(format!("matlang-wal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, "torn-check");
        let _ = fs::remove_file(&path);

        let records: Vec<WalRecord> = (1..=3)
            .map(|seq| WalRecord {
                seq,
                var: "G".into(),
                entries: vec![(seq, seq + 1, seq as f64 * 0.5)],
            })
            .collect();
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert!(replayed.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
            assert_eq!(wal.records, 3);
            assert_eq!(wal.last_seq, 3);
        }

        // Clean reopen replays everything.
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records);
        let full_len = wal.bytes;
        drop(wal);

        // Tear the tail mid-record: only the intact prefix replays, and
        // the file is truncated back to it.
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records[..2]);
        assert!(wal.bytes < full_len);
        assert_eq!(fs::metadata(&path).unwrap().len(), wal.bytes);
        drop(wal);

        // Corrupt a checksum mid-log: replay stops before the damaged
        // record even though bytes follow it.
        let raw = fs::read(&path).unwrap();
        let mut bad = raw.clone();
        bad[4] ^= 0xFF; // first record's CRC field
        fs::write(&path, &bad).unwrap();
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(wal.bytes, 0);
        drop(wal);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wal_truncate_keeps_the_sequence() {
        let dir = std::env::temp_dir().join(format!("matlang-walseq-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, "seq-check");
        let _ = fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord {
            seq: 9,
            var: "G".into(),
            entries: vec![],
        })
        .unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.bytes, 0);
        assert_eq!(wal.records, 0);
        assert_eq!(wal.last_seq, 9);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn names_are_vetted_before_touching_the_filesystem() {
        for good in ["g", "graph-7", "a.b", "X_1"] {
            assert!(filesystem_safe(good), "{good} should be accepted");
        }
        for bad in ["", ".", "..", "a/b", "a\\b", "a b", "ü", &"x".repeat(200)] {
            assert!(!filesystem_safe(bad), "{bad:?} should be rejected");
        }
    }
}
