//! Connection dispatch: a bounded hand-off queue and a worker pool.
//!
//! The accept loop pushes accepted connections into a [`ConnQueue`] with a
//! fixed capacity; `N` worker threads pop connections and run their entire
//! session (the protocol is session-oriented — one connection, one
//! client).  When every worker is busy and the queue is full, **the accept
//! loop itself blocks** on the `not_full` condition: backpressure
//! propagates to the OS accept backlog instead of the server buffering
//! unbounded work.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

struct QueueState {
    connections: VecDeque<TcpStream>,
    closed: bool,
}

/// A blocking, bounded, closeable MPMC hand-off queue for accepted
/// connections.
pub struct ConnQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl ConnQueue {
    /// A queue admitting at most `capacity` waiting connections.
    pub fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                connections: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a connection, blocking while the queue is full
    /// (backpressure).  Returns `false` — dropping the connection — once
    /// the queue is closed.
    pub fn push(&self, connection: TcpStream) -> bool {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.connections.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return false;
        }
        state.connections.push_back(connection);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues a connection, blocking while the queue is empty.  Returns
    /// `None` once the queue is closed — the workers' shutdown signal.
    pub fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return None;
            }
            if let Some(connection) = state.connections.pop_front() {
                self.not_full.notify_one();
                return Some(connection);
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: not-yet-served connections are dropped (their
    /// sockets close), new pushes are refused, and blocked workers wake up
    /// to exit.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        state.connections.clear();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of connections currently waiting (for tests/monitoring).
    pub fn waiting(&self) -> usize {
        self.state.lock().expect("queue poisoned").connections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::Arc;

    fn connection_pair(listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _ = listener.accept().unwrap();
        client
    }

    #[test]
    fn queue_hands_off_and_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = ConnQueue::new(2);
        assert!(queue.push(connection_pair(&listener)));
        assert_eq!(queue.waiting(), 1);
        assert!(queue.pop().is_some());
        assert_eq!(queue.waiting(), 0);
        queue.close();
        assert!(!queue.push(connection_pair(&listener)));
        assert!(queue.pop().is_none());
    }

    #[test]
    fn full_queue_blocks_until_a_worker_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = Arc::new(ConnQueue::new(1));
        assert!(queue.push(connection_pair(&listener)));
        // The second push must block (backpressure) until a pop happens on
        // another thread.
        let queue2 = Arc::clone(&queue);
        let popper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            queue2.pop()
        });
        let started = std::time::Instant::now();
        assert!(queue.push(connection_pair(&listener)));
        assert!(
            started.elapsed() >= std::time::Duration::from_millis(25),
            "push returned before the queue had room"
        );
        assert!(popper.join().unwrap().is_some());
        queue.close();
    }
}
